"""Deterministic fault injection for robustness testing.

Production BOLT's promise is that it *never makes a binary wrong*:
functions it cannot safely analyze are conservatively skipped, bad
profile records are dropped, and a rewrite that cannot be validated is
abandoned rather than shipped.  This module makes that promise
testable: it produces deterministically-corrupted binaries and
profiles covering the failure shapes real deployments hit —

Binary faults (:data:`BINARY_FAULTS`):

* ``garbage-text`` — function bodies overwritten with invalid opcodes
  (a packer, data-in-text, or plain disassembler bug).
* ``truncate-section`` — an executable section loses its tail
  (truncated download / corrupt objcopy).
* ``bogus-reloc`` — a relocation against a symbol that does not exist
  (stale --emit-relocs side tables).
* ``wrong-symbol-size`` — FUNC symbol sizes shrunk (hand-written asm
  with bad .size directives, the paper's section 3.3 headache).

Profile faults (:data:`PROFILE_FAULTS`):

* ``negative-counts`` — corrupted aggregation produced negative counts.
* ``out-of-range`` — branch/sample offsets beyond the function body
  (stale profile from a larger build).
* ``mid-instruction`` — branch endpoints shifted off instruction
  boundaries (skid, or a cross-build profile).

All injectors are pure: they deep-copy their input (binaries via a
serialization round-trip) and are deterministic in ``seed``.
"""

import random

from repro.belf import RelocType, SymbolType, read_binary, write_binary
from repro.belf.relocation import Relocation

#: A byte that can never begin a valid BX86 instruction.
BAD_OPCODE = 0xFF

BINARY_FAULTS = ("garbage-text", "truncate-section", "bogus-reloc",
                 "wrong-symbol-size")
PROFILE_FAULTS = ("negative-counts", "out-of-range", "mid-instruction")


class FaultInjectionError(Exception):
    """The requested fault cannot be injected (e.g. no targets)."""


def clone_binary(binary):
    """An independent copy, via the real serialization round-trip."""
    return read_binary(write_binary(binary))


def clone_profile(profile):
    from repro.profiling import BinaryProfile

    out = BinaryProfile(event=profile.event, lbr=profile.lbr,
                        build_id=profile.build_id)
    out.branches = {key: list(value)
                    for key, value in profile.branches.items()}
    out.ip_samples = dict(profile.ip_samples)
    return out


# ---------------------------------------------------------------------------
# Binary faults
# ---------------------------------------------------------------------------


def inject_binary_fault(binary, kind, targets=None, fraction=0.25, seed=0):
    """Corrupt a copy of ``binary``; returns (corrupted, affected names).

    ``targets`` restricts corruption to the named functions (e.g. the
    ones a workload never executes, so output equivalence stays
    checkable); otherwise a deterministic ``fraction`` of functions is
    picked.
    """
    if kind not in BINARY_FAULTS:
        raise FaultInjectionError(f"unknown binary fault {kind!r}")
    out = clone_binary(binary)
    rng = random.Random(seed)
    victims = _pick_functions(out, targets, fraction, rng)
    if not victims:
        raise FaultInjectionError(f"no functions to corrupt for {kind!r}")
    if kind == "garbage-text":
        return out, _garbage_text(out, victims)
    if kind == "truncate-section":
        return out, _truncate_section(out, victims)
    if kind == "bogus-reloc":
        return out, _bogus_reloc(out, victims)
    return out, _wrong_symbol_size(out, victims)


def _pick_functions(binary, targets, fraction, rng):
    syms = [s for s in binary.functions() if s.size > 0]
    if targets is not None:
        wanted = set(targets)  # hoisted: was rebuilt per symbol
        chosen = [s for s in syms if s.link_name() in wanted]
    else:
        count = max(1, int(len(syms) * fraction))
        chosen = rng.sample(sorted(syms, key=lambda s: s.link_name()),
                            min(count, len(syms)))
    return sorted(chosen, key=lambda s: s.value)


def _garbage_text(binary, victims):
    affected = []
    for sym in victims:
        section = binary.section_at(sym.value)
        if section is None or not section.is_exec:
            continue
        off = sym.value - section.addr
        # The body begins with an undecodable byte: disassembly fails
        # immediately and the function must be conservatively skipped.
        span = min(4, sym.size)
        section.data[off : off + span] = bytes([BAD_OPCODE]) * span
        affected.append(sym.link_name())
    return affected


def _truncate_section(binary, victims):
    """Drop every byte from the lowest victim's start to section end."""
    by_section = {}
    for sym in victims:
        section = binary.section_at(sym.value)
        if section is not None and section.is_exec:
            by_section.setdefault(section.name, []).append(sym)
    affected = []
    for name, syms in by_section.items():
        section = binary.get_section(name)
        cut = min(s.value for s in syms) - section.addr
        # Functions wholly or partly beyond the cut lose bytes.
        for other in binary.functions():
            if (binary.section_at(other.value) is section
                    and other.value + other.size > section.addr + cut):
                affected.append(other.link_name())
        del section.data[cut:]
    return sorted(set(affected))


def _bogus_reloc(binary, victims):
    """Attach relocations naming a symbol that does not exist.

    Placed over a ``MOV_RI64`` immediate when one exists in a victim —
    in relocations mode the rewriter symbolizes that operand through
    the relocation and must cope with the unresolvable name."""
    from repro.isa import Op, decode_stream

    affected = []
    for sym in victims:
        section = binary.section_at(sym.value)
        if section is None or not section.is_exec:
            continue
        start = sym.value - section.addr
        offset = start  # fallback: function start
        try:
            insns = decode_stream(section.data, start, start + sym.size,
                                  base_address=sym.value)
        except Exception:
            insns = []
        for insn in insns:
            if insn.op == Op.MOV_RI64:
                offset = insn.address - section.addr + 2
                break
        binary.relocations.append(Relocation(
            section=section.name, offset=offset, type=RelocType.ABS64,
            symbol=f"__bolt_fault_missing_{sym.link_name()}__", addend=0))
        affected.append(sym.link_name())
    binary.emit_relocs = True
    return affected


def _wrong_symbol_size(binary, victims):
    """Shrink symbol sizes: the classic bad hand-written-asm metadata."""
    names = {s.link_name() for s in victims}
    affected = []
    for sym in binary.symbols:
        if sym.type == SymbolType.FUNC and sym.link_name() in names \
                and sym.size > 2:
            sym.size = sym.size // 2 + 1
            affected.append(sym.link_name())
    binary.invalidate_symbol_cache()
    return affected


# ---------------------------------------------------------------------------
# Profile faults
# ---------------------------------------------------------------------------


def inject_profile_fault(profile, kind, fraction=0.25, seed=0):
    """Corrupt a copy of ``profile``; returns the corrupted profile."""
    if kind not in PROFILE_FAULTS:
        raise FaultInjectionError(f"unknown profile fault {kind!r}")
    out = clone_profile(profile)
    rng = random.Random(seed)
    if kind == "negative-counts":
        _negative_counts(out, fraction, rng)
    elif kind == "out-of-range":
        _out_of_range(out, fraction, rng)
    else:
        _mid_instruction(out, fraction, rng)
    return out


def _sample_keys(mapping, fraction, rng):
    keys = sorted(mapping)
    count = max(1, int(len(keys) * fraction)) if keys else 0
    return rng.sample(keys, min(count, len(keys)))


def _negative_counts(profile, fraction, rng):
    for key in _sample_keys(profile.branches, fraction, rng):
        entry = profile.branches[key]
        entry[0] = -abs(entry[0]) - 1
    for key in _sample_keys(profile.ip_samples, fraction, rng):
        profile.ip_samples[key] = -abs(profile.ip_samples[key]) - 1


def _out_of_range(profile, fraction, rng):
    """Push offsets far beyond any plausible function body."""
    for (f, t) in _sample_keys(profile.branches, fraction, rng):
        entry = profile.branches.pop((f, t))
        shifted = ((f[0], f[1] + 0x100000), (t[0], t[1] + 0x100000))
        profile.branches[shifted] = entry
    for loc in _sample_keys(profile.ip_samples, fraction, rng):
        count = profile.ip_samples.pop(loc)
        profile.ip_samples[(loc[0], loc[1] + 0x100000)] = count


def _mid_instruction(profile, fraction, rng):
    """Shift branch endpoints off instruction boundaries (skid)."""
    for (f, t) in _sample_keys(profile.branches, fraction, rng):
        entry = profile.branches.pop((f, t))
        shifted = ((f[0], f[1] + 1), (t[0], max(1, t[1] + 1)))
        merged = profile.branches.setdefault(shifted, [0, 0])
        merged[0] += entry[0]
        merged[1] += entry[1]


# ---------------------------------------------------------------------------
# Helpers for choosing safe targets
# ---------------------------------------------------------------------------


def executed_functions(binary, inputs=None, max_instructions=10_000_000,
                       engine=None):
    """Link names of every function fetched during a run.

    Fault-injection tests that want to assert output equivalence pick
    corruption targets *outside* this set: the corrupted input binary
    and the rewritten one must then behave identically.
    """
    from repro.profiling import AddressMapper
    from repro.uarch import run_binary

    cpu = run_binary(binary, inputs=inputs,
                     max_instructions=max_instructions, fetch_heat=True,
                     engine=engine)
    mapper = AddressMapper(binary)
    names = set()
    for addr in cpu.fetch_heat:
        loc = mapper.map(addr)
        if loc is not None:
            names.add(loc[0])
    return names


def unexecuted_functions(binary, inputs=None, max_instructions=10_000_000,
                         engine=None):
    """FUNC symbols never fetched during a run (safe corruption targets)."""
    hot = executed_functions(binary, inputs=inputs,
                             max_instructions=max_instructions,
                             engine=engine)
    return sorted(s.link_name() for s in binary.functions()
                  if s.size > 0 and s.link_name() not in hot)
