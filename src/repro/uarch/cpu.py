"""Block-cached execution engine for the BX86 simulator.

The pre-PR 5 per-instruction interpreter lives on verbatim in
:mod:`repro.uarch._reference_cpu` (class :class:`ReferenceCPU`) as the
equivalence oracle.  This module adds :class:`BlockCPU`, a bit-exact
but several-times-faster engine built on three ideas:

1. **Per-binary trace cache.**  Code is immutable after load, so
   straight-line instruction runs are pre-decoded once into traces
   keyed by entry pc and shared by every CPU instance executing the
   same :class:`~repro.belf.binary.Binary` (fleet shard collection
   decodes each binary once instead of once per host).  Each step is a
   flat tuple ``(kind, a, b, c, d, pc, fetch_events)`` with operands
   pre-extracted — no per-instruction ``insn.regs[0]`` attribute
   chases and no 60-arm opcode dispatch.

2. **Block-hoisted fetch accounting.**  Within a straight-line trace
   the i-side access stream is consecutive addresses, so every L1I
   access to the same line as the previous ifetch is a guaranteed
   MRU-fast-path hit (``ways[0] == tag``: no LRU state change), and
   every ITLB access to the same page is a guaranteed ``_last`` hit.
   Only the *events* — the first access of a trace and each line/page
   change, computed at build time — need real ``access()`` calls (at
   their exact position in the stream, preserving shared-LLC ordering
   against data misses); the rest are flushed as batched counter
   increments.  With ``prefetch_next_line`` enabled, prefetch installs
   can disturb LRU state between ifetches, so every L1I access becomes
   an event (the trace-cache key includes the flag).

3. **Write-to-exec-range invalidation.**  Every store is bounds-checked
   against the executable ranges; the first write that lands in code
   sets ``machine.code_dirty``, the engine seeds the reference decode
   cache with exactly the instructions fetched so far (reference
   semantics: stale decodes persist for already-fetched pcs), and
   execution falls back to the inherited interpretive loop — still
   bit-exact, including for self-modifying code.

Per-instruction sampler/skid ticks, LBR records, branch-predictor
updates and data-side cache/TLB accounting stay exact by construction:
they run per step, in stream order, on the same model objects.
"""

import weakref

from repro.belf import BUILTIN_BASE
from repro.isa import decode, DecodeError, RAX, RSP
from repro.isa.opcodes import Op, CondCode
from repro.uarch._reference_cpu import (
    _MASK,
    _wrap,
    ExecutionLimitExceeded,
    ReferenceCPU,
)
from repro.uarch.config import UarchConfig
from repro.uarch.machine import Machine, MachineFault, EXIT_MAGIC

_U64 = 0xFFFFFFFFFFFFFFFF
_SIGN = 0x8000000000000000
_TWO64 = 0x10000000000000000

#: Maximum instructions per cached trace.
_TRACE_CAP = 256

# Straight-line step kinds (hot ones first: executor dispatch is an
# if/elif chain in this order).
_K_LOAD = 0
_K_MOV_RI = 1
_K_MOV_RR = 2
_K_ADD_RI = 3
_K_ADD_RR = 4
_K_STORE = 5
_K_CMP_RI = 6
_K_CMP_RR = 7
_K_SUB_RR = 8
_K_SUB_RI = 9
_K_LEA = 10
_K_LOADIDX = 11
_K_STOREIDX = 12
_K_PUSH = 13
_K_POP = 14
_K_IMUL_RR = 15
_K_IMUL_RI = 16
_K_AND_RR = 17
_K_AND_RI = 18
_K_OR_RR = 19
_K_OR_RI = 20
_K_XOR_RR = 21
_K_XOR_RI = 22
_K_SHL_RI = 23
_K_SHR_RI = 24
_K_SAR_RI = 25
_K_SHL_RR = 26
_K_SHR_RR = 27
_K_SAR_RR = 28
_K_NEG = 29
_K_IDIV = 30
_K_IMOD = 31
_K_TEST_RR = 32
_K_TEST_RI = 33
_K_SETCC = 34
_K_LOAD_ABS = 35
_K_STORE_ABS = 36
_K_OUT = 37
_K_NOP = 38

# Terminator kinds (separate dispatch space).
_T_JCC = 0
_T_JMP = 1
_T_CALL = 2
_T_CALL_REG = 3
_T_CALL_MEM = 4
_T_JMP_REG = 5
_T_JMP_MEM = 6
_T_RET = 7
_T_HALT = 8
_T_TRAP = 9
_T_UNKNOWN = 10

_CC_EQ = int(CondCode.EQ)
_CC_NE = int(CondCode.NE)
_CC_LT = int(CondCode.LT)
_CC_LE = int(CondCode.LE)
_CC_GT = int(CondCode.GT)
_CC_GE = int(CondCode.GE)
_CC_ULT = int(CondCode.ULT)
_CC_ULE = int(CondCode.ULE)
_CC_UGT = int(CondCode.UGT)


def _cc_eval(cc, a, b):
    """Condition evaluation, same chain as ReferenceCPU._cc_true."""
    if cc == _CC_EQ:
        return a == b
    if cc == _CC_NE:
        return a != b
    if cc == _CC_LT:
        return a < b
    if cc == _CC_LE:
        return a <= b
    if cc == _CC_GT:
        return a > b
    if cc == _CC_GE:
        return a >= b
    ua, ub = a & _MASK, b & _MASK
    if cc == _CC_ULT:
        return ua < ub
    if cc == _CC_ULE:
        return ua <= ub
    if cc == _CC_UGT:
        return ua > ub
    return ua >= ub


#: Binary -> {(line_size, page_size, prefetch): {entry_pc: trace}}.
#: Traces describe the *pristine* code image, so they are valid for any
#: Machine freshly loaded from the same Binary; machines whose code has
#: been written (``machine.code_dirty``) stop using and feeding this.
_TRACE_CACHES = weakref.WeakKeyDictionary()


def _shared_traces(binary, key):
    try:
        per_binary = _TRACE_CACHES.get(binary)
        if per_binary is None:
            per_binary = {}
            _TRACE_CACHES[binary] = per_binary
    except TypeError:           # un-weakref-able binary stand-in: no sharing
        return {}
    cache = per_binary.get(key)
    if cache is None:
        cache = {}
        per_binary[key] = cache
    return cache


class BlockCPU(ReferenceCPU):
    """Trace-cached engine; bit-exact with :class:`ReferenceCPU`."""

    def __init__(self, machine, config=None, sampler=None):
        super().__init__(machine, config=config, sampler=sampler)
        cfg = self.config
        self._traces = _shared_traces(
            machine.binary,
            (cfg.line_size, cfg.page_size, bool(cfg.prefetch_next_line)))
        self._trace_fetched = {}    # entry pc -> instructions fetched
        self._dirty_seeded = False

    # -- dirty-code fallback --------------------------------------------------

    def _seed_decode_cache(self):
        """Reproduce the reference decode cache at the dirty transition.

        The reference interpreter never invalidates its per-CPU decode
        cache, so after a code write, already-fetched pcs keep their
        stale decodes while never-fetched pcs see the new bytes.  Seed
        exactly the fetched prefix of every executed trace, then the
        inherited interpretive loop behaves as if it had run all along.
        """
        if self._dirty_seeded:
            return
        self._dirty_seeded = True
        dc = self._decode_cache
        traces = self._traces
        for entry, cnt in self._trace_fetched.items():
            trace = traces.get(entry)
            if trace is None:       # pragma: no cover - traces are never evicted
                continue
            pcs = trace[2]
            insns = trace[4]
            for j in range(cnt):
                dc[pcs[j]] = insns[j]
        self._trace_fetched.clear()

    # -- data-side accounting (cold arms; hot arms inline this) ---------------

    def _dacc(self, addr, pc, is_write):
        if addr < 0:
            kind = "write" if is_write else "read"
            raise MachineFault(f"bad {kind} address {addr:#x} at pc={pc:#x}")
        c = self.counters
        cyc = 0
        c.dtlb_accesses += 1
        if not self.dtlb.access(addr):
            c.dtlb_misses += 1
            cyc += self.config.tlb_miss_penalty
        c.l1d_accesses += 1
        if not self.l1d.access(addr):
            c.l1d_misses += 1
            cyc += self._miss_path(addr)
        if is_write:
            c.mem_writes += 1
        else:
            c.mem_reads += 1
        return cyc

    # -- trace construction ---------------------------------------------------

    def _build_trace(self, entry):
        """Decode a straight-line run starting at ``entry``.

        Returns ``(steps, term, pcs, sizes, insns, cum_ia, cum_evi,
        cum_evp, fall_pc, total)``.  Raises MachineFault exactly when
        the reference fetch of ``entry`` would (non-executable entry or
        decode error); mid-trace fetch problems truncate the trace so
        the fault is raised on the *next* trace build, preserving the
        reference's raise timing.
        """
        machine = self.machine
        memory = machine.memory
        cfg = self.config
        line_bits = self.l1i.line_bits
        page_bits = self.itlb.page_bits
        ev_all = cfg.prefetch_next_line
        steps = []
        pcs = []
        sizes = []
        insns = []
        cum_ia = []
        cum_evi = []
        cum_evp = []
        term = None
        pc = entry
        prev_line = None
        prev_page = None
        ia = evi = evp = 0
        first = True

        while True:
            if first:
                first = False
                if not machine.is_executable_address(pc):
                    raise MachineFault(
                        f"jump to non-executable address {pc:#x}")
                try:
                    insn = decode(memory.read_bytes(pc, 16), 0, pc)
                except DecodeError as exc:
                    raise MachineFault(str(exc)) from None
            else:
                if not machine.is_executable_address(pc):
                    break
                try:
                    insn = decode(memory.read_bytes(pc, 16), 0, pc)
                except DecodeError:
                    break
            size = insn.size

            # Fetch events: accesses whose line/page differs from the
            # previous ifetch access must be real access() calls.
            ev = []
            page = pc >> page_bits
            if page != prev_page:
                ev.append((0, pc))
                evp += 1
                prev_page = page
            line = pc >> line_bits
            n_ia = 1
            if ev_all or line != prev_line:
                ev.append((1, pc))
                evi += 1
            prev_line = line
            end = pc + size - 1
            end_line = end >> line_bits
            if end_line != line:
                n_ia = 2
                ev.append((1, end))
                evi += 1
                prev_line = end_line
            ia += n_ia
            fev = tuple(ev) if ev else None

            pcs.append(pc)
            sizes.append(size)
            insns.append(insn)
            cum_ia.append(ia)
            cum_evi.append(evi)
            cum_evp.append(evp)

            op = insn.op
            npc = pc + size
            prepped = _prep_straight(op, insn)
            if prepped is None:
                term = _prep_term(op, insn, pc, npc, fev)
                break
            k, a, b, c, d = prepped
            steps.append((k, a, b, c, d, pc, fev))
            # A fallthrough into the builtin region cannot occur for
            # linked binaries (code sits far below BUILTIN_BASE), but
            # truncate defensively rather than mis-handle it.
            if npc >= BUILTIN_BASE or len(steps) >= _TRACE_CAP:
                break
            pc = npc

        fall_pc = pcs[-1] + sizes[-1]
        return (steps, term, pcs, sizes, insns, cum_ia, cum_evi, cum_evp,
                fall_pc, len(pcs))

    # -- main loop ------------------------------------------------------------

    def run(self, max_instructions=50_000_000):
        """Run until halt; returns the exit code (rax at exit)."""
        machine = self.machine
        if machine.code_dirty:
            self._seed_decode_cache()
            return ReferenceCPU.run(self, max_instructions)
        if self.halted:
            return self.exit_code

        regs = self.regs
        counters = self.counters
        cfg = self.config
        memory = machine.memory
        read_word = memory.read_word
        write_word = memory.write_word
        l1i = self.l1i
        itlb = self.itlb
        l1i_access = l1i.access
        itlb_access = itlb.access
        dtlb_access = self.dtlb.access
        l1d_access = self.l1d.access
        bp = self.bp
        lbr = self.lbr
        sampler = self.sampler
        out_append = self.output.append
        base_cpi = int(cfg.base_cpi)
        taken_pen = cfg.taken_branch_penalty
        mispred_pen = cfg.mispredict_penalty
        tlb_pen = cfg.tlb_miss_penalty
        line_size = cfg.line_size
        prefetch = cfg.prefetch_next_line
        exec_lo, exec_hi = machine.exec_bounds()
        traces = self._traces
        tf = self._trace_fetched
        fetch_heat = self.fetch_heat
        rsp_i = RSP
        rax_i = RAX
        builtin_base = BUILTIN_BASE
        exit_magic = EXIT_MAGIC
        remaining = max_instructions

        fa = self.flag_a
        fb = self.flag_b
        acc = skid_rem = last_taken = 0
        if sampler is not None:
            take_sample = sampler.take_sample
            ev_name = sampler.event
            s_event = (0 if ev_name == "cycles"
                       else 1 if ev_name == "instructions" else 2)
            s_period = sampler.period
            s_skid = sampler.skid
            acc = self._sample_acc
            skid_rem = self._skid_remaining
            last_taken = getattr(self, "_last_taken", 0)

            def tick(tpc, tcyc):
                nonlocal acc, skid_rem, last_taken
                if s_event == 0:
                    acc += tcyc
                elif s_event == 1:
                    acc += 1
                else:
                    tb = counters.taken_branches
                    acc += tb - last_taken
                    last_taken = tb
                if skid_rem >= 0:
                    if skid_rem == 0:
                        take_sample(
                            tpc, lbr.snapshot() if lbr is not None else None)
                        skid_rem = -1
                    else:
                        skid_rem -= 1
                if acc >= s_period:
                    acc -= s_period
                    if s_skid <= 0:
                        take_sample(
                            tpc, lbr.snapshot() if lbr is not None else None)
                    else:
                        skid_rem = s_skid - 1

        def sync():
            self.flag_a = fa
            self.flag_b = fb
            if sampler is not None:
                self._sample_acc = acc
                self._skid_remaining = skid_rem
                self._last_taken = last_taken

        while True:
            if remaining <= 0:
                sync()
                raise ExecutionLimitExceeded(
                    f"exceeded {max_instructions} instructions"
                    f" at pc={self.pc:#x}")
            entry = self.pc
            trace = traces.get(entry)
            if trace is None:
                try:
                    trace = self._build_trace(entry)
                except MachineFault:
                    sync()
                    raise
                traces[entry] = trace
            (steps, term, pcs, sizes, insns, cum_ia, cum_evi, cum_evp,
             fall_pc, total) = trace
            n_straight = total if term is None else total - 1
            if remaining >= total:
                count = total
                run_steps = steps
            else:
                count = remaining
                run_steps = steps if count >= n_straight else steps[:count]
            done = 0
            cyc_total = 0
            bail = False
            executed_term = False
            pc = entry

            try:
                for st in run_steps:
                    k, a, b, c, d, pc, fev = st
                    cyc = 0
                    if fev is not None:
                        for ek, eaddr in fev:
                            if ek:
                                if not l1i_access(eaddr):
                                    counters.l1i_misses += 1
                                    cyc += self._miss_path(eaddr)
                                    if prefetch:
                                        l1i.install(eaddr + line_size)
                            elif not itlb_access(eaddr):
                                counters.itlb_misses += 1
                                cyc += tlb_pen

                    if k == 0:          # LOAD
                        addr = regs[b] + c
                        if addr < 0:
                            raise MachineFault(
                                f"bad read address {addr:#x} at pc={pc:#x}")
                        counters.dtlb_accesses += 1
                        if not dtlb_access(addr):
                            counters.dtlb_misses += 1
                            cyc += tlb_pen
                        counters.l1d_accesses += 1
                        if not l1d_access(addr):
                            counters.l1d_misses += 1
                            cyc += self._miss_path(addr)
                        counters.mem_reads += 1
                        regs[a] = read_word(addr)
                    elif k == 1:        # MOV_RI32 / MOV_RI64
                        regs[a] = b
                    elif k == 2:        # MOV_RR
                        regs[a] = regs[b]
                    elif k == 3:        # ADD_RI
                        v = (regs[a] + b) & _U64
                        regs[a] = v - _TWO64 if v >= _SIGN else v
                    elif k == 4:        # ADD_RR
                        v = (regs[a] + regs[b]) & _U64
                        regs[a] = v - _TWO64 if v >= _SIGN else v
                    elif k == 5:        # STORE
                        addr = regs[a] + b
                        if addr < 0:
                            raise MachineFault(
                                f"bad write address {addr:#x} at pc={pc:#x}")
                        counters.dtlb_accesses += 1
                        if not dtlb_access(addr):
                            counters.dtlb_misses += 1
                            cyc += tlb_pen
                        counters.l1d_accesses += 1
                        if not l1d_access(addr):
                            counters.l1d_misses += 1
                            cyc += self._miss_path(addr)
                        counters.mem_writes += 1
                        write_word(addr, regs[c])
                        if (addr < exec_hi and addr + 8 > exec_lo
                                and machine.code_write_check(addr)):
                            bail = True
                    elif k == 6:        # CMP_RI
                        fa = regs[a]
                        fb = b
                    elif k == 7:        # CMP_RR
                        fa = regs[a]
                        fb = regs[b]
                    elif k == 8:        # SUB_RR
                        v = (regs[a] - regs[b]) & _U64
                        regs[a] = v - _TWO64 if v >= _SIGN else v
                    elif k == 9:        # SUB_RI
                        v = (regs[a] - b) & _U64
                        regs[a] = v - _TWO64 if v >= _SIGN else v
                    elif k == 10:       # LEA
                        v = (regs[b] + c) & _U64
                        regs[a] = v - _TWO64 if v >= _SIGN else v
                    elif k == 11:       # LOADIDX
                        addr = regs[b] + 8 * regs[c] + d
                        cyc += self._dacc(addr, pc, False)
                        regs[a] = read_word(addr)
                    elif k == 12:       # STOREIDX
                        addr = regs[a] + 8 * regs[b] + c
                        cyc += self._dacc(addr, pc, True)
                        write_word(addr, regs[d])
                        if (addr < exec_hi and addr + 8 > exec_lo
                                and machine.code_write_check(addr)):
                            bail = True
                    elif k == 13:       # PUSH
                        rsp = _wrap(regs[rsp_i] - 8)
                        regs[rsp_i] = rsp
                        cyc += self._dacc(rsp, pc, True)
                        write_word(rsp, regs[a])
                        if (rsp < exec_hi and rsp + 8 > exec_lo
                                and machine.code_write_check(rsp)):
                            bail = True
                    elif k == 14:       # POP
                        rsp = regs[rsp_i]
                        cyc += self._dacc(rsp, pc, False)
                        regs[a] = read_word(rsp)
                        regs[rsp_i] = _wrap(rsp + 8)
                    elif k == 15:       # IMUL_RR
                        regs[a] = _wrap(regs[a] * regs[b])
                    elif k == 16:       # IMUL_RI
                        regs[a] = _wrap(regs[a] * b)
                    elif k == 17:       # AND_RR
                        regs[a] = _wrap(regs[a] & regs[b])
                    elif k == 18:       # AND_RI
                        regs[a] = _wrap(regs[a] & b)
                    elif k == 19:       # OR_RR
                        regs[a] = _wrap(regs[a] | regs[b])
                    elif k == 20:       # OR_RI
                        regs[a] = _wrap(regs[a] | b)
                    elif k == 21:       # XOR_RR
                        regs[a] = _wrap(regs[a] ^ regs[b])
                    elif k == 22:       # XOR_RI
                        regs[a] = _wrap(regs[a] ^ b)
                    elif k == 23:       # SHL_RI
                        regs[a] = _wrap(regs[a] << (b & 63))
                    elif k == 24:       # SHR_RI
                        regs[a] = _wrap((regs[a] & _MASK) >> (b & 63))
                    elif k == 25:       # SAR_RI
                        regs[a] = _wrap(regs[a] >> (b & 63))
                    elif k == 26:       # SHL_RR
                        regs[a] = _wrap(regs[a] << (regs[b] & 63))
                    elif k == 27:       # SHR_RR
                        regs[a] = _wrap((regs[a] & _MASK) >> (regs[b] & 63))
                    elif k == 28:       # SAR_RR
                        regs[a] = _wrap(regs[a] >> (regs[b] & 63))
                    elif k == 29:       # NEG
                        regs[a] = _wrap(-regs[a])
                    elif k == 30 or k == 31:    # IDIV_RR / IMOD_RR
                        divisor = regs[b]
                        if divisor == 0:
                            raise MachineFault(
                                f"division by zero at pc={pc:#x}")
                        dividend = regs[a]
                        quotient = abs(dividend) // abs(divisor)
                        if (dividend < 0) != (divisor < 0):
                            quotient = -quotient
                        if k == 30:
                            regs[a] = _wrap(quotient)
                        else:
                            regs[a] = _wrap(dividend - quotient * divisor)
                    elif k == 32:       # TEST_RR
                        fa = _wrap(regs[a] & regs[b])
                        fb = 0
                    elif k == 33:       # TEST_RI
                        fa = _wrap(regs[a] & b)
                        fb = 0
                    elif k == 34:       # SETCC
                        regs[a] = 1 if _cc_eval(int(CondCode(b)), fa, fb) else 0
                    elif k == 35:       # LOAD_ABS
                        cyc += self._dacc(b, pc, False)
                        regs[a] = read_word(b)
                    elif k == 36:       # STORE_ABS
                        cyc += self._dacc(a, pc, True)
                        write_word(a, regs[b])
                        if (a < exec_hi and a + 8 > exec_lo
                                and machine.code_write_check(a)):
                            bail = True
                    elif k == 37:       # OUT
                        out_append(regs[a])
                    # k == 38: NOP / NOPN

                    cyc += base_cpi
                    cyc_total += cyc
                    done += 1
                    if sampler is not None:
                        tick(pc, cyc)
                    if bail:
                        break

                if term is not None and not bail and count == total:
                    tk, a, b, pc, npc, fev = term
                    cyc = 0
                    if fev is not None:
                        for ek, eaddr in fev:
                            if ek:
                                if not l1i_access(eaddr):
                                    counters.l1i_misses += 1
                                    cyc += self._miss_path(eaddr)
                                    if prefetch:
                                        l1i.install(eaddr + line_size)
                            elif not itlb_access(eaddr):
                                counters.itlb_misses += 1
                                cyc += tlb_pen

                    if tk == 0:         # JCC_SHORT / JCC_LONG
                        counters.cond_branches += 1
                        taken = _cc_eval(a, fa, fb)
                        correct = bp.update_cond(pc, taken)
                        if not correct:
                            counters.branch_misses += 1
                            cyc += mispred_pen
                        if taken:
                            counters.cond_taken += 1
                            counters.taken_branches += 1
                            cyc += taken_pen
                            if lbr is not None:
                                lbr.record(pc, b, not correct)
                            npc = b
                    elif tk == 7:       # RET / REPZ_RET
                        counters.returns += 1
                        rsp = regs[rsp_i]
                        cyc += self._dacc(rsp, pc, False)
                        target = read_word(rsp) & _MASK
                        regs[rsp_i] = _wrap(rsp + 8)
                        correct = bp.predict_return(target)
                        if not correct:
                            counters.branch_misses += 1
                            cyc += mispred_pen
                        if target == exit_magic:
                            self.halted = True
                            self.exit_code = regs[rax_i]
                            npc = pc
                        else:
                            counters.taken_branches += 1
                            cyc += taken_pen
                            if lbr is not None:
                                lbr.record(pc, target, not correct)
                            npc = target
                    elif tk == 2:       # CALL
                        counters.calls += 1
                        rsp = _wrap(regs[rsp_i] - 8)
                        regs[rsp_i] = rsp
                        cyc += self._dacc(rsp, pc, True)
                        write_word(rsp, npc)
                        if rsp < exec_hi and rsp + 8 > exec_lo:
                            machine.code_write_check(rsp)
                        bp.push_return(npc)
                        counters.taken_branches += 1
                        cyc += taken_pen
                        if lbr is not None:
                            lbr.record(pc, a, False)
                        npc = a
                    elif tk == 1:       # JMP_SHORT / JMP_NEAR
                        counters.uncond_branches += 1
                        counters.taken_branches += 1
                        cyc += taken_pen
                        if lbr is not None:
                            lbr.record(pc, a, False)
                        npc = a
                    elif tk == 3 or tk == 4:    # CALL_REG / CALL_MEM
                        counters.calls += 1
                        counters.indirect_branches += 1
                        if tk == 3:
                            target = regs[a] & _MASK
                        else:
                            cyc += self._dacc(a, pc, False)
                            target = read_word(a) & _MASK
                        correct = bp.predict_indirect(pc, target)
                        if not correct:
                            counters.branch_misses += 1
                            cyc += mispred_pen
                        rsp = _wrap(regs[rsp_i] - 8)
                        regs[rsp_i] = rsp
                        cyc += self._dacc(rsp, pc, True)
                        write_word(rsp, npc)
                        if rsp < exec_hi and rsp + 8 > exec_lo:
                            machine.code_write_check(rsp)
                        bp.push_return(npc)
                        counters.taken_branches += 1
                        cyc += taken_pen
                        if lbr is not None:
                            lbr.record(pc, target, not correct)
                        npc = target
                    elif tk == 5 or tk == 6:    # JMP_REG / JMP_MEM
                        counters.uncond_branches += 1
                        counters.indirect_branches += 1
                        if tk == 5:
                            target = regs[a] & _MASK
                        else:
                            cyc += self._dacc(a, pc, False)
                            target = read_word(a) & _MASK
                        correct = bp.predict_indirect(pc, target)
                        if not correct:
                            counters.branch_misses += 1
                            cyc += mispred_pen
                        counters.taken_branches += 1
                        cyc += taken_pen
                        if lbr is not None:
                            lbr.record(pc, target, not correct)
                        npc = target
                    elif tk == 8:       # HALT
                        self.halted = True
                        self.exit_code = regs[rax_i]
                        npc = pc
                    elif tk == 9:       # TRAP
                        raise MachineFault(f"trap at pc={pc:#x}")
                    else:               # pragma: no cover
                        raise MachineFault(
                            f"unimplemented opcode {a!r} at {pc:#x}")

                    cyc += base_cpi
                    cyc_total += cyc
                    done += 1
                    executed_term = True
                    term_pc = pc
                    term_cyc = cyc
            except MachineFault:
                # Dispatch-phase fault at `pc`: the reference counts the
                # faulting instruction (fetched) but not its cycles.
                counters.instructions += done + 1
                counters.cycles += cyc_total
                idx = done
                counters.l1i_accesses += cum_ia[idx]
                l1i.accesses += cum_ia[idx] - cum_evi[idx]
                counters.itlb_accesses += idx + 1
                itlb.accesses += idx + 1 - cum_evp[idx]
                if fetch_heat is not None:
                    for j in range(idx + 1):
                        p = pcs[j]
                        fetch_heat[p] = fetch_heat.get(p, 0) + sizes[j]
                if done + 1 > tf.get(entry, 0):
                    tf[entry] = done + 1
                self.pc = pc
                sync()
                raise

            # Flush block-batched accounting for the `done` completed steps.
            counters.instructions += done
            counters.cycles += cyc_total
            if done:
                idx = done - 1
                counters.l1i_accesses += cum_ia[idx]
                l1i.accesses += cum_ia[idx] - cum_evi[idx]
                counters.itlb_accesses += done
                itlb.accesses += done - cum_evp[idx]
                if fetch_heat is not None:
                    for j in range(done):
                        p = pcs[j]
                        fetch_heat[p] = fetch_heat.get(p, 0) + sizes[j]
                if done > tf.get(entry, 0):
                    tf[entry] = done
            remaining -= done

            if executed_term:
                if npc >= builtin_base and not self.halted:
                    self.pc = npc
                    sync()
                    self._run_builtin(npc)  # may raise; sets self.pc on return
                else:
                    self.pc = npc
                if sampler is not None:
                    tick(term_pc, term_cyc)
                if self.halted:
                    sync()
                    return self.exit_code
            else:
                self.pc = pcs[done] if done < total else fall_pc

            if machine.code_dirty:
                sync()
                self._seed_decode_cache()
                try:
                    return ReferenceCPU.run(self, remaining)
                except ExecutionLimitExceeded:
                    raise ExecutionLimitExceeded(
                        f"exceeded {max_instructions} instructions"
                        f" at pc={self.pc:#x}") from None


def _prep_straight(op, insn):
    """(kind, a, b, c, d) for a straight-line op; None for terminators."""
    r = insn.regs
    if op == Op.LOAD:
        return (_K_LOAD, r[0], r[1], insn.disp, 0)
    if op == Op.MOV_RI32 or op == Op.MOV_RI64:
        return (_K_MOV_RI, r[0], insn.imm, 0, 0)
    if op == Op.MOV_RR:
        return (_K_MOV_RR, r[0], r[1], 0, 0)
    if op == Op.ADD_RI:
        return (_K_ADD_RI, r[0], insn.imm, 0, 0)
    if op == Op.ADD_RR:
        return (_K_ADD_RR, r[0], r[1], 0, 0)
    if op == Op.STORE:
        return (_K_STORE, r[0], insn.disp, r[1], 0)
    if op == Op.CMP_RI:
        return (_K_CMP_RI, r[0], insn.imm, 0, 0)
    if op == Op.CMP_RR:
        return (_K_CMP_RR, r[0], r[1], 0, 0)
    if op == Op.SUB_RR:
        return (_K_SUB_RR, r[0], r[1], 0, 0)
    if op == Op.SUB_RI:
        return (_K_SUB_RI, r[0], insn.imm, 0, 0)
    if op == Op.LEA:
        return (_K_LEA, r[0], r[1], insn.disp, 0)
    if op == Op.LOADIDX:
        return (_K_LOADIDX, r[0], r[1], r[2], insn.disp)
    if op == Op.STOREIDX:
        return (_K_STOREIDX, r[0], r[1], insn.disp, r[2])
    if op == Op.PUSH:
        return (_K_PUSH, r[0], 0, 0, 0)
    if op == Op.POP:
        return (_K_POP, r[0], 0, 0, 0)
    if op == Op.IMUL_RR:
        return (_K_IMUL_RR, r[0], r[1], 0, 0)
    if op == Op.IMUL_RI:
        return (_K_IMUL_RI, r[0], insn.imm, 0, 0)
    if op == Op.AND_RR:
        return (_K_AND_RR, r[0], r[1], 0, 0)
    if op == Op.AND_RI:
        return (_K_AND_RI, r[0], insn.imm, 0, 0)
    if op == Op.OR_RR:
        return (_K_OR_RR, r[0], r[1], 0, 0)
    if op == Op.OR_RI:
        return (_K_OR_RI, r[0], insn.imm, 0, 0)
    if op == Op.XOR_RR:
        return (_K_XOR_RR, r[0], r[1], 0, 0)
    if op == Op.XOR_RI:
        return (_K_XOR_RI, r[0], insn.imm, 0, 0)
    if op == Op.SHL_RI:
        return (_K_SHL_RI, r[0], insn.imm, 0, 0)
    if op == Op.SHR_RI:
        return (_K_SHR_RI, r[0], insn.imm, 0, 0)
    if op == Op.SAR_RI:
        return (_K_SAR_RI, r[0], insn.imm, 0, 0)
    if op == Op.SHL_RR:
        return (_K_SHL_RR, r[0], r[1], 0, 0)
    if op == Op.SHR_RR:
        return (_K_SHR_RR, r[0], r[1], 0, 0)
    if op == Op.SAR_RR:
        return (_K_SAR_RR, r[0], r[1], 0, 0)
    if op == Op.NEG:
        return (_K_NEG, r[0], 0, 0, 0)
    if op == Op.IDIV_RR:
        return (_K_IDIV, r[0], r[1], 0, 0)
    if op == Op.IMOD_RR:
        return (_K_IMOD, r[0], r[1], 0, 0)
    if op == Op.TEST_RR:
        return (_K_TEST_RR, r[0], r[1], 0, 0)
    if op == Op.TEST_RI:
        return (_K_TEST_RI, r[0], insn.imm, 0, 0)
    if op == Op.SETCC:
        return (_K_SETCC, r[0], insn.imm, 0, 0)
    if op == Op.LOAD_ABS:
        return (_K_LOAD_ABS, r[0], insn.addr, 0, 0)
    if op == Op.STORE_ABS:
        return (_K_STORE_ABS, insn.addr, r[0], 0, 0)
    if op == Op.OUT:
        return (_K_OUT, r[0], 0, 0, 0)
    if op == Op.NOP or op == Op.NOPN:
        return (_K_NOP, 0, 0, 0, 0)
    return None


def _prep_term(op, insn, pc, npc, fev):
    """Terminator step tuple ``(kind, a, b, pc, npc, fev)``."""
    if op == Op.JCC_SHORT or op == Op.JCC_LONG:
        return (_T_JCC, int(insn.cc), insn.target, pc, npc, fev)
    if op == Op.JMP_SHORT or op == Op.JMP_NEAR:
        return (_T_JMP, insn.target, 0, pc, npc, fev)
    if op == Op.CALL:
        return (_T_CALL, insn.target, 0, pc, npc, fev)
    if op == Op.CALL_REG:
        return (_T_CALL_REG, insn.regs[0], 0, pc, npc, fev)
    if op == Op.CALL_MEM:
        return (_T_CALL_MEM, insn.addr, 0, pc, npc, fev)
    if op == Op.JMP_REG:
        return (_T_JMP_REG, insn.regs[0], 0, pc, npc, fev)
    if op == Op.JMP_MEM:
        return (_T_JMP_MEM, insn.addr, 0, pc, npc, fev)
    if op == Op.RET or op == Op.REPZ_RET:
        return (_T_RET, 0, 0, pc, npc, fev)
    if op == Op.HALT:
        return (_T_HALT, 0, 0, pc, npc, fev)
    if op == Op.TRAP:
        return (_T_TRAP, 0, 0, pc, npc, fev)
    return (_T_UNKNOWN, op, 0, pc, npc, fev)


def CPU(machine, config=None, sampler=None, engine=None):
    """Build a CPU for ``machine`` using the selected execution engine.

    ``engine`` (or ``config.engine`` when None) chooses between the
    block-cached engine (``"block"``, default) and the preserved
    per-instruction reference interpreter (``"ref"``).  Both produce
    bit-identical architectural and microarchitectural results.
    """
    cfg = config or UarchConfig()
    eng = engine or cfg.engine
    if eng == "ref":
        return ReferenceCPU(machine, config=cfg, sampler=sampler)
    if eng != "block":
        raise ValueError(f"unknown execution engine {eng!r}")
    return BlockCPU(machine, config=cfg, sampler=sampler)


def run_binary(binary, *, inputs=None, config=None, sampler=None,
               max_instructions=50_000_000, fetch_heat=False, engine=None):
    """Convenience: load, optionally poke input arrays, run.

    ``inputs``: {array link name: [values]} written before execution.
    ``engine``: "block" | "ref" | None (use ``config.engine``).
    Returns the CPU (with counters, output, exit code).
    """
    machine = Machine(binary)
    if inputs:
        for link_name, values in inputs.items():
            machine.poke_array(link_name, values)
    cpu = CPU(machine, config=config, sampler=sampler, engine=engine)
    if fetch_heat:
        cpu.fetch_heat = {}
    cpu.run(max_instructions)
    return cpu
