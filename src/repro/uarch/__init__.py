"""Trace-driven microarchitecture model.

Executes BELF executables and charges cycles through models of the
hardware structures the BOLT paper's optimizations target (section 6.1,
Figure 6): L1 I-/D-caches, a shared LLC, I-/D-TLBs, a conditional
branch predictor with BTB and return-address stack, and Intel-LBR-style
last-branch records (section 5).

Cache/TLB sizes are scaled down so simulator-scale binaries exhibit the
front-end-boundedness of the paper's 100+ MB data-center binaries; see
DESIGN.md for the fidelity argument.
"""

from repro.uarch.caches import Cache, TLB
from repro.uarch.branch_predictor import BranchPredictor
from repro.uarch.lbr import LBR
from repro.uarch.counters import Counters
from repro.uarch.config import UarchConfig
from repro.uarch.machine import Machine, MachineFault
from repro.uarch.cpu import BlockCPU, CPU, ExecutionLimitExceeded, run_binary
from repro.uarch._reference_cpu import ReferenceCPU

__all__ = [
    "Cache",
    "TLB",
    "BranchPredictor",
    "LBR",
    "Counters",
    "UarchConfig",
    "Machine",
    "MachineFault",
    "CPU",
    "BlockCPU",
    "ReferenceCPU",
    "ExecutionLimitExceeded",
    "run_binary",
]
