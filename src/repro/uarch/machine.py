"""Memory, loader and process state."""

from bisect import bisect_right

from repro.belf import SectionType, STACK_TOP

#: Sentinel return address: when main returns here, the program exits.
EXIT_MAGIC = 0xE0D0F00D

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS
_PAGE_MASK = _PAGE_SIZE - 1


class MachineFault(Exception):
    """Hardware-level fault (bad memory access, division by zero,
    invalid opcode, uncaught exception)."""


class Memory:
    """Sparse paged byte-addressable memory."""

    def __init__(self):
        self.pages = {}

    def _page(self, page_index):
        page = self.pages.get(page_index)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self.pages[page_index] = page
        return page

    def write_bytes(self, addr, data):
        offset = addr & _PAGE_MASK
        page_index = addr >> _PAGE_BITS
        pos = 0
        remaining = len(data)
        while remaining:
            chunk = min(_PAGE_SIZE - offset, remaining)
            self._page(page_index)[offset : offset + chunk] = data[pos : pos + chunk]
            pos += chunk
            remaining -= chunk
            offset = 0
            page_index += 1

    def read_bytes(self, addr, size):
        offset = addr & _PAGE_MASK
        page_index = addr >> _PAGE_BITS
        if offset + size <= _PAGE_SIZE:
            page = self.pages.get(page_index)
            if page is None:
                return bytes(size)
            return bytes(page[offset : offset + size])
        out = bytearray()
        remaining = size
        while remaining:
            chunk = min(_PAGE_SIZE - offset, remaining)
            page = self.pages.get(page_index)
            if page is None:
                out += b"\x00" * chunk
            else:
                out += page[offset : offset + chunk]
            remaining -= chunk
            offset = 0
            page_index += 1
        return bytes(out)

    def read_word(self, addr):
        """Signed 64-bit little-endian read."""
        offset = addr & _PAGE_MASK
        if offset <= _PAGE_SIZE - 8:
            page = self.pages.get(addr >> _PAGE_BITS)
            if page is None:
                return 0
            return int.from_bytes(page[offset : offset + 8], "little", signed=True)
        return int.from_bytes(self.read_bytes(addr, 8), "little", signed=True)

    def write_word(self, addr, value):
        value &= (1 << 64) - 1
        offset = addr & _PAGE_MASK
        if offset <= _PAGE_SIZE - 8:
            self._page(addr >> _PAGE_BITS)[offset : offset + 8] = value.to_bytes(8, "little")
        else:
            self.write_bytes(addr, value.to_bytes(8, "little"))


class Machine:
    """A loaded process: memory image + metadata the CPU needs."""

    def __init__(self, binary):
        self.binary = binary
        self.memory = Memory()
        self.exec_ranges = []        # (start, end) of executable sections
        #: Set once any executable byte has been overwritten after load;
        #: tells code-caching engines their pre-decoded traces are stale.
        self.code_dirty = False
        self.load(binary)
        self._func_index = None

    def load(self, binary):
        if not binary.is_executable:
            raise MachineFault("cannot load a relocatable object")
        for section in binary.sections.values():
            if not section.is_alloc:
                continue
            if section.type == SectionType.NOBITS:
                self.memory.write_bytes(section.addr, b"\x00" * section.size)
            else:
                self.memory.write_bytes(section.addr, bytes(section.data))
            if section.is_exec:
                self.exec_ranges.append((section.addr, section.addr + section.size))
        self.entry = binary.entry
        self._index_exec_ranges()

    def _index_exec_ranges(self):
        ranges = sorted(self.exec_ranges)
        self._exec_starts = [start for start, _ in ranges]
        self._exec_ends = [end for _, end in ranges]
        self._exec_lo = ranges[0][0] if ranges else 0
        self._exec_hi = max(self._exec_ends) if ranges else 0

    def exec_bounds(self):
        """(lowest, highest) executable address bound; (0, 0) if none."""
        return self._exec_lo, self._exec_hi

    def invalidate_code_cache(self):
        """Mark the code image as modified.

        Writes performed *by the CPU* are detected automatically; callers
        that poke executable bytes directly through ``machine.memory``
        must call this so block-cached engines drop their traces.
        """
        self.code_dirty = True

    def code_write_check(self, addr, size=8):
        """Flag (and report) a write overlapping an executable range."""
        if addr >= self._exec_hi or addr + size <= self._exec_lo:
            return False
        idx = bisect_right(self._exec_starts, addr + size - 1) - 1
        if idx >= 0 and self._exec_ends[idx] > addr:
            self.code_dirty = True
            return True
        return False

    def initial_stack(self):
        """Set up the stack; returns the initial rsp (EXIT_MAGIC pushed)."""
        rsp = STACK_TOP - 64
        self.memory.write_word(rsp, EXIT_MAGIC)
        return rsp

    def is_executable_address(self, addr):
        if addr < self._exec_lo or addr >= self._exec_hi:
            return False
        idx = bisect_right(self._exec_starts, addr) - 1
        return idx >= 0 and addr < self._exec_ends[idx]

    # -- symbol helpers (used by the unwinder and profilers) -----------------

    def _build_func_index(self):
        funcs = sorted(
            (s for s in self.binary.functions() if s.size > 0),
            key=lambda s: s.value,
        )
        self._func_index = ([s.value for s in funcs], funcs)

    def function_at(self, addr):
        """FUNC symbol covering ``addr`` (binary search), or None."""
        if self._func_index is None:
            self._build_func_index()
        starts, funcs = self._func_index
        idx = bisect_right(starts, addr) - 1
        if idx < 0:
            return None
        sym = funcs[idx]
        return sym if sym.contains(addr) else None

    def poke_array(self, link_name, values):
        """Write 64-bit values into a global array (workload inputs)."""
        sym = self.binary.get_symbol(link_name)
        if sym is None:
            raise KeyError(f"no symbol {link_name}")
        if values:
            self.code_write_check(sym.value, 8 * len(values))
        for i, value in enumerate(values):
            self.memory.write_word(sym.value + 8 * i, value)

    def peek_array(self, link_name, count):
        """Read 64-bit values from a global array (e.g. PGO counters)."""
        sym = self.binary.get_symbol(link_name)
        if sym is None:
            raise KeyError(f"no symbol {link_name}")
        return [self.memory.read_word(sym.value + 8 * i) for i in range(count)]
