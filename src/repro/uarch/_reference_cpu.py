"""The reference CPU: per-instruction interpreter, preserved verbatim.

This is the pre-PR 5 interpreter (fetch -> decode-cache -> if/elif
dispatch -> per-instruction accounting), kept as the equivalence oracle
for the block-cached engine in :mod:`repro.uarch.cpu` — the same
pattern as :mod:`repro.core._reference_kernels` from PR 3.  Select it
with ``UarchConfig(engine="ref")`` or ``--engine ref``.

Executes decoded BX86 instructions out of the loaded memory image,
charging cycles via :class:`UarchConfig` penalties.  Supports:

* hardware-style sampling with configurable event and skid (section 5.1);
* LBR capture of taken branches (section 5.1);
* frame-pointer unwinding for ``__throw`` using the binary's CFI-lite
  frame records (section 3.4) — including after BOLT has rewritten them.
"""

from repro.belf import BUILTIN_BASE
from repro.isa import decode, DecodeError, RAX, RBP, RDI, RSP
from repro.isa.opcodes import Op, CondCode
from repro.uarch.branch_predictor import BranchPredictor
from repro.uarch.caches import Cache, TLB
from repro.uarch.config import UarchConfig
from repro.uarch.counters import Counters
from repro.uarch.lbr import LBR
from repro.uarch.machine import Machine, MachineFault, EXIT_MAGIC

_MASK = (1 << 64) - 1


def _wrap(value):
    value &= _MASK
    return value - (1 << 64) if value >= 1 << 63 else value


class ExecutionLimitExceeded(Exception):
    """The instruction budget ran out (likely an infinite loop)."""


class ReferenceCPU:
    def __init__(self, machine, config=None, sampler=None):
        self.machine = machine
        self.config = config or UarchConfig()
        self.sampler = sampler
        cfg = self.config
        self.counters = Counters()
        self.l1i = Cache(cfg.l1i_size, cfg.l1i_assoc, cfg.line_size)
        self.l1d = Cache(cfg.l1d_size, cfg.l1d_assoc, cfg.line_size)
        self.l2 = (Cache(cfg.l2_size, cfg.l2_assoc, cfg.line_size)
                   if cfg.l2_size else None)
        self.llc = Cache(cfg.llc_size, cfg.llc_assoc, cfg.line_size)
        self.itlb = TLB(cfg.itlb_entries, cfg.page_size)
        self.dtlb = TLB(cfg.dtlb_entries, cfg.page_size)
        self.bp = BranchPredictor(cfg.bp_table_bits, cfg.btb_entries,
                                  cfg.ras_depth, kind=cfg.bp_kind)
        self.lbr = LBR() if (sampler is not None and sampler.use_lbr) else None

        self.regs = [0] * 16
        self.flag_a = 0
        self.flag_b = 0
        self.pc = machine.entry
        self.halted = False
        self.exit_code = None
        self.output = []
        self.fetch_heat = None      # optional: line-index -> fetch bytes count

        self._decode_cache = {}
        self._sample_acc = 0
        self._skid_remaining = -1

        self.regs[RSP] = machine.initial_stack()

    # -- memory with perf accounting -------------------------------------------

    def _miss_path(self, addr):
        """Cost of an L1 miss: optional private L2, then LLC, then DRAM."""
        c = self.counters
        cfg = self.config
        if self.l2 is not None:
            c.l2_accesses += 1
            if self.l2.access(addr):
                return cfg.l2_hit_latency
            c.l2_misses += 1
        c.llc_accesses += 1
        if self.llc.access(addr):
            return cfg.l1_miss_penalty
        c.llc_misses += 1
        return cfg.llc_miss_penalty

    def _data_access(self, addr, is_write):
        c = self.counters
        cycles = 0
        c.dtlb_accesses += 1
        if not self.dtlb.access(addr):
            c.dtlb_misses += 1
            cycles += self.config.tlb_miss_penalty
        c.l1d_accesses += 1
        if not self.l1d.access(addr):
            c.l1d_misses += 1
            cycles += self._miss_path(addr)
        if is_write:
            c.mem_writes += 1
        else:
            c.mem_reads += 1
        return cycles

    def _read_mem(self, addr):
        if addr < 0:
            raise MachineFault(f"bad read address {addr:#x} at pc={self.pc:#x}")
        self._cycles += self._data_access(addr, False)
        return self.machine.memory.read_word(addr)

    def _write_mem(self, addr, value):
        if addr < 0:
            raise MachineFault(f"bad write address {addr:#x} at pc={self.pc:#x}")
        self._cycles += self._data_access(addr, True)
        self.machine.memory.write_word(addr, value)

    # -- fetch ---------------------------------------------------------------------

    def _fetch(self, pc):
        insn = self._decode_cache.get(pc)
        if insn is None:
            if not self.machine.is_executable_address(pc):
                raise MachineFault(f"jump to non-executable address {pc:#x}")
            data = self.machine.memory.read_bytes(pc, 16)
            try:
                insn = decode(data, 0, pc)
            except DecodeError as exc:
                raise MachineFault(str(exc)) from None
            self._decode_cache[pc] = insn
        c = self.counters
        cfg = self.config
        c.itlb_accesses += 1
        if not self.itlb.access(pc):
            c.itlb_misses += 1
            self._cycles += cfg.tlb_miss_penalty
        c.l1i_accesses += 1
        if not self.l1i.access(pc):
            c.l1i_misses += 1
            self._cycles += self._miss_path(pc)
            if cfg.prefetch_next_line:
                self.l1i.install(pc + cfg.line_size)
        end = pc + insn.size - 1
        if (end >> self.l1i.line_bits) != (pc >> self.l1i.line_bits):
            c.l1i_accesses += 1
            if not self.l1i.access(end):
                c.l1i_misses += 1
                self._cycles += self._miss_path(end)
                if cfg.prefetch_next_line:
                    self.l1i.install(end + cfg.line_size)
        if self.fetch_heat is not None:
            self.fetch_heat[pc] = self.fetch_heat.get(pc, 0) + insn.size
        return insn

    # -- condition codes ------------------------------------------------------------

    def _cc_true(self, cc):
        a, b = self.flag_a, self.flag_b
        if cc == CondCode.EQ:
            return a == b
        if cc == CondCode.NE:
            return a != b
        if cc == CondCode.LT:
            return a < b
        if cc == CondCode.LE:
            return a <= b
        if cc == CondCode.GT:
            return a > b
        if cc == CondCode.GE:
            return a >= b
        ua, ub = a & _MASK, b & _MASK
        if cc == CondCode.ULT:
            return ua < ub
        if cc == CondCode.ULE:
            return ua <= ub
        if cc == CondCode.UGT:
            return ua > ub
        return ua >= ub

    # -- branches ----------------------------------------------------------------------

    def _taken(self, from_pc, to_pc, mispred=False):
        self.counters.taken_branches += 1
        self._cycles += self.config.taken_branch_penalty
        if self.lbr is not None:
            self.lbr.record(from_pc, to_pc, mispred)

    # -- builtins ------------------------------------------------------------------------

    def _run_builtin(self, address):
        if address == BUILTIN_BASE:  # __throw
            self._unwind(self.regs[RDI])
        else:
            raise MachineFault(f"call to unknown builtin {address:#x}")

    def _unwind(self, value):
        """Frame-pointer unwinding using CFI-lite frame records."""
        memory = self.machine.memory
        records = self.machine.binary.frame_records
        ra = memory.read_word(self.regs[RSP]) & _MASK
        rbp = self.regs[RBP]
        while True:
            if ra == EXIT_MAGIC:
                raise MachineFault(f"uncaught exception (value={value})")
            sym = self.machine.function_at(ra - 1)
            if sym is None:
                raise MachineFault(
                    f"cannot unwind through unknown code at {ra:#x}")
            record = records.get(sym.link_name())
            if record is None:
                raise MachineFault(
                    f"cannot unwind through {sym.link_name()} (no frame info)")
            lp = record.landing_pad_for(ra - 1 - sym.value)
            if lp is not None:
                self.regs[RAX] = value
                self.regs[RBP] = rbp
                self.regs[RSP] = _wrap(rbp - record.frame_size)
                self.pc = sym.value + lp
                return
            for reg, offset in record.saved_regs:
                self.regs[reg] = memory.read_word(rbp - offset)
            ra = memory.read_word(rbp + 8) & _MASK
            new_rbp = memory.read_word(rbp)
            self.regs[RSP] = _wrap(rbp + 16)
            rbp = new_rbp

    # -- main loop -------------------------------------------------------------------------

    def run(self, max_instructions=50_000_000):
        """Run until halt; returns the exit code (rax at exit)."""
        regs = self.regs
        memory = self.machine.memory
        counters = self.counters
        cfg = self.config
        remaining = max_instructions

        while not self.halted:
            if remaining <= 0:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_instructions} instructions at pc={self.pc:#x}")
            remaining -= 1
            self._cycles = 0
            pc = self.pc
            insn = self._fetch(pc)
            op = insn.op
            next_pc = pc + insn.size
            counters.instructions += 1

            if op == Op.MOV_RR:
                regs[insn.regs[0]] = regs[insn.regs[1]]
            elif op == Op.MOV_RI32 or op == Op.MOV_RI64:
                regs[insn.regs[0]] = insn.imm
            elif op == Op.LOAD:
                regs[insn.regs[0]] = self._read_mem(regs[insn.regs[1]] + insn.disp)
            elif op == Op.STORE:
                self._write_mem(regs[insn.regs[0]] + insn.disp, regs[insn.regs[1]])
            elif op == Op.LOAD_ABS:
                regs[insn.regs[0]] = self._read_mem(insn.addr)
            elif op == Op.STORE_ABS:
                self._write_mem(insn.addr, regs[insn.regs[0]])
            elif op == Op.LOADIDX:
                addr = regs[insn.regs[1]] + 8 * regs[insn.regs[2]] + insn.disp
                regs[insn.regs[0]] = self._read_mem(addr)
            elif op == Op.STOREIDX:
                addr = regs[insn.regs[0]] + 8 * regs[insn.regs[1]] + insn.disp
                self._write_mem(addr, regs[insn.regs[2]])
            elif op == Op.LEA:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[1]] + insn.disp)
            elif op == Op.ADD_RR:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[0]] + regs[insn.regs[1]])
            elif op == Op.ADD_RI:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[0]] + insn.imm)
            elif op == Op.SUB_RR:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[0]] - regs[insn.regs[1]])
            elif op == Op.SUB_RI:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[0]] - insn.imm)
            elif op == Op.IMUL_RR:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[0]] * regs[insn.regs[1]])
            elif op == Op.IMUL_RI:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[0]] * insn.imm)
            elif op == Op.AND_RR:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[0]] & regs[insn.regs[1]])
            elif op == Op.AND_RI:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[0]] & insn.imm)
            elif op == Op.OR_RR:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[0]] | regs[insn.regs[1]])
            elif op == Op.OR_RI:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[0]] | insn.imm)
            elif op == Op.XOR_RR:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[0]] ^ regs[insn.regs[1]])
            elif op == Op.XOR_RI:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[0]] ^ insn.imm)
            elif op == Op.SHL_RI:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[0]] << (insn.imm & 63))
            elif op == Op.SHR_RI:
                regs[insn.regs[0]] = _wrap(
                    (regs[insn.regs[0]] & _MASK) >> (insn.imm & 63))
            elif op == Op.SAR_RI:
                regs[insn.regs[0]] = _wrap(regs[insn.regs[0]] >> (insn.imm & 63))
            elif op == Op.SHL_RR:
                regs[insn.regs[0]] = _wrap(
                    regs[insn.regs[0]] << (regs[insn.regs[1]] & 63))
            elif op == Op.SHR_RR:
                regs[insn.regs[0]] = _wrap(
                    (regs[insn.regs[0]] & _MASK) >> (regs[insn.regs[1]] & 63))
            elif op == Op.SAR_RR:
                regs[insn.regs[0]] = _wrap(
                    regs[insn.regs[0]] >> (regs[insn.regs[1]] & 63))
            elif op == Op.NEG:
                regs[insn.regs[0]] = _wrap(-regs[insn.regs[0]])
            elif op == Op.IDIV_RR or op == Op.IMOD_RR:
                divisor = regs[insn.regs[1]]
                if divisor == 0:
                    raise MachineFault(f"division by zero at pc={pc:#x}")
                dividend = regs[insn.regs[0]]
                quotient = abs(dividend) // abs(divisor)
                if (dividend < 0) != (divisor < 0):
                    quotient = -quotient
                if op == Op.IDIV_RR:
                    regs[insn.regs[0]] = _wrap(quotient)
                else:
                    regs[insn.regs[0]] = _wrap(dividend - quotient * divisor)
            elif op == Op.CMP_RR:
                self.flag_a = regs[insn.regs[0]]
                self.flag_b = regs[insn.regs[1]]
            elif op == Op.CMP_RI:
                self.flag_a = regs[insn.regs[0]]
                self.flag_b = insn.imm
            elif op == Op.TEST_RR:
                self.flag_a = _wrap(regs[insn.regs[0]] & regs[insn.regs[1]])
                self.flag_b = 0
            elif op == Op.TEST_RI:
                self.flag_a = _wrap(regs[insn.regs[0]] & insn.imm)
                self.flag_b = 0
            elif op == Op.SETCC:
                regs[insn.regs[0]] = 1 if self._cc_true(CondCode(insn.imm)) else 0
            elif op == Op.PUSH:
                regs[RSP] = _wrap(regs[RSP] - 8)
                self._write_mem(regs[RSP], regs[insn.regs[0]])
            elif op == Op.POP:
                regs[insn.regs[0]] = self._read_mem(regs[RSP])
                regs[RSP] = _wrap(regs[RSP] + 8)
            elif op == Op.JCC_SHORT or op == Op.JCC_LONG:
                counters.cond_branches += 1
                taken = self._cc_true(insn.cc)
                correct = self.bp.update_cond(pc, taken)
                if not correct:
                    counters.branch_misses += 1
                    self._cycles += cfg.mispredict_penalty
                if taken:
                    counters.cond_taken += 1
                    self._taken(pc, insn.target, not correct)
                    next_pc = insn.target
            elif op == Op.JMP_SHORT or op == Op.JMP_NEAR:
                counters.uncond_branches += 1
                self._taken(pc, insn.target)
                next_pc = insn.target
            elif op == Op.CALL:
                counters.calls += 1
                regs[RSP] = _wrap(regs[RSP] - 8)
                self._write_mem(regs[RSP], next_pc)
                self.bp.push_return(next_pc)
                self._taken(pc, insn.target)
                next_pc = insn.target
            elif op == Op.CALL_REG or op == Op.CALL_MEM:
                counters.calls += 1
                counters.indirect_branches += 1
                if op == Op.CALL_REG:
                    target = regs[insn.regs[0]] & _MASK
                else:
                    target = self._read_mem(insn.addr) & _MASK
                correct = self.bp.predict_indirect(pc, target)
                if not correct:
                    counters.branch_misses += 1
                    self._cycles += cfg.mispredict_penalty
                regs[RSP] = _wrap(regs[RSP] - 8)
                self._write_mem(regs[RSP], next_pc)
                self.bp.push_return(next_pc)
                self._taken(pc, target, not correct)
                next_pc = target
            elif op == Op.JMP_REG or op == Op.JMP_MEM:
                counters.uncond_branches += 1
                counters.indirect_branches += 1
                if op == Op.JMP_REG:
                    target = regs[insn.regs[0]] & _MASK
                else:
                    target = self._read_mem(insn.addr) & _MASK
                correct = self.bp.predict_indirect(pc, target)
                if not correct:
                    counters.branch_misses += 1
                    self._cycles += cfg.mispredict_penalty
                self._taken(pc, target, not correct)
                next_pc = target
            elif op == Op.RET or op == Op.REPZ_RET:
                counters.returns += 1
                target = self._read_mem(regs[RSP]) & _MASK
                regs[RSP] = _wrap(regs[RSP] + 8)
                correct = self.bp.predict_return(target)
                if not correct:
                    counters.branch_misses += 1
                    self._cycles += cfg.mispredict_penalty
                if target == EXIT_MAGIC:
                    self.halted = True
                    self.exit_code = regs[RAX]
                    next_pc = pc
                else:
                    self._taken(pc, target, not correct)
                    next_pc = target
            elif op == Op.OUT:
                self.output.append(regs[insn.regs[0]])
            elif op == Op.NOP or op == Op.NOPN:
                pass
            elif op == Op.HALT:
                self.halted = True
                self.exit_code = regs[RAX]
                next_pc = pc
            elif op == Op.TRAP:
                raise MachineFault(f"trap at pc={pc:#x}")
            else:  # pragma: no cover
                raise MachineFault(f"unimplemented opcode {op!r} at {pc:#x}")

            cycles = int(cfg.base_cpi) + self._cycles
            counters.cycles += cycles

            # Builtin interception: transfers into the builtin region run
            # natively (e.g. __throw performs unwinding and sets self.pc).
            if next_pc >= BUILTIN_BASE and not self.halted:
                self.pc = next_pc
                self._run_builtin(next_pc)
                # _unwind set self.pc to the landing pad / handler.
            else:
                self.pc = next_pc

            if self.sampler is not None:
                self._sampler_tick(pc, cycles)

        return self.exit_code

    def _sampler_tick(self, pc, cycles):
        sampler = self.sampler
        event = sampler.event
        if event == "cycles":
            self._sample_acc += cycles
        elif event == "instructions":
            self._sample_acc += 1
        else:  # taken-branches: approximate via counter delta
            acc = self.counters.taken_branches
            delta = acc - getattr(self, "_last_taken", 0)
            self._last_taken = acc
            self._sample_acc += delta
        if self._skid_remaining >= 0:
            if self._skid_remaining == 0:
                sampler.take_sample(
                    pc, self.lbr.snapshot() if self.lbr is not None else None)
                self._skid_remaining = -1
            else:
                self._skid_remaining -= 1
        if self._sample_acc >= sampler.period:
            self._sample_acc -= sampler.period
            if sampler.skid <= 0:
                sampler.take_sample(
                    pc, self.lbr.snapshot() if self.lbr is not None else None)
            else:
                self._skid_remaining = sampler.skid - 1
