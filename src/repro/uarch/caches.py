"""Set-associative LRU cache and fully-associative LRU TLB models."""


class Cache:
    """A set-associative cache with true-LRU replacement.

    ``access(addr)`` returns True on hit, installing the line on miss.
    """

    def __init__(self, size, assoc, line_size):
        if size % (assoc * line_size):
            raise ValueError("cache size must be a multiple of assoc*line")
        self.line_bits = line_size.bit_length() - 1
        if (1 << self.line_bits) != line_size:
            raise ValueError("line size must be a power of two")
        self.num_sets = size // (assoc * line_size)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self.assoc = assoc
        self.set_mask = self.num_sets - 1
        self.tag_shift = self.set_mask.bit_length()
        self.sets = [[] for _ in range(self.num_sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, addr):
        self.accesses += 1
        line = addr >> self.line_bits
        ways = self.sets[line & self.set_mask]
        tag = line >> self.tag_shift
        if ways and ways[0] == tag:
            return True  # already most-recently-used
        try:
            ways.remove(tag)
        except ValueError:
            self.misses += 1
            if len(ways) >= self.assoc:
                ways.pop()
            ways.insert(0, tag)
            return False
        ways.insert(0, tag)
        return True

    def install(self, addr):
        """Bring a line in without counting an access (prefetch)."""
        line = addr >> self.line_bits
        ways = self.sets[line & self.set_mask]
        tag = line >> self.tag_shift
        if tag in ways:
            return
        if len(ways) >= self.assoc:
            ways.pop()
        ways.insert(0, tag)

    def reset_stats(self):
        self.accesses = 0
        self.misses = 0

    def flush(self):
        for ways in self.sets:
            ways.clear()


class TLB:
    """Fully-associative LRU TLB.

    Implemented over an insertion-ordered dict: the first key is the
    least recently used entry, re-insertion moves a page to the back.
    """

    def __init__(self, entries, page_size):
        self.entries = entries
        self.page_bits = page_size.bit_length() - 1
        if (1 << self.page_bits) != page_size:
            raise ValueError("page size must be a power of two")
        self.pages = {}
        self.accesses = 0
        self.misses = 0
        self._last = None

    def access(self, addr):
        self.accesses += 1
        page = addr >> self.page_bits
        if page == self._last:
            return True  # already most-recently-used
        self._last = page
        pages = self.pages
        if page in pages:
            del pages[page]
            pages[page] = True
            return True
        self.misses += 1
        if len(pages) >= self.entries:
            del pages[next(iter(pages))]
        pages[page] = True
        return False

    def reset_stats(self):
        self.accesses = 0
        self.misses = 0

    def flush(self):
        self.pages.clear()
        self._last = None
