"""Last Branch Records: a ring of the last N *taken* branches.

Mirrors Intel's LBR facility (paper section 5.1): only taken branches
(including calls and returns) are recorded, which is why fall-through
edge counts must be inferred by the profile consumer, and why BOLT
attributes surplus flow to the not-taken path (section 5.2).
"""


class LBR:
    """Fixed-depth ring buffer of (from_pc, to_pc) taken-branch pairs."""

    DEPTH = 32

    def __init__(self, depth=DEPTH):
        self.depth = depth
        self.buffer = [None] * depth
        self.pos = 0
        self.filled = False

    def record(self, from_pc, to_pc, mispred=False):
        self.buffer[self.pos] = (from_pc, to_pc, mispred)
        self.pos = (self.pos + 1) % self.depth
        if self.pos == 0:
            self.filled = True

    def snapshot(self):
        """Records oldest-to-newest."""
        if not self.filled:
            return [x for x in self.buffer[: self.pos]]
        return self.buffer[self.pos :] + self.buffer[: self.pos]

    def state(self):
        """Comparable full state (for engine-equivalence pinning)."""
        return (self.depth, tuple(self.buffer), self.pos, self.filled)

    def clear(self):
        self.buffer = [None] * self.depth
        self.pos = 0
        self.filled = False
