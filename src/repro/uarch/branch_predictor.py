"""Branch prediction models.

The conditional direction predictor is a *tournament* (Alpha
21264-style): a per-PC bimodal table, a gshare (global-history) table,
and a per-PC chooser that learns which component predicts each branch
better.  This matters for the BOLT experiments: after layout
optimization nearly every hot conditional falls through, the global
history degenerates to a run of zeros, and a plain gshare predictor
would penalize exactly the binaries the paper speeds up; the tournament
falls back to the bimodal side for such branches, like real hardware.

Indirect branches use a BTB (last-target) and returns a return-address
stack.
"""


class BranchPredictor:
    """Tournament conditional predictor + BTB + RAS.

    ``kind``: ``"tournament"`` (default), ``"gshare"``, or ``"bimodal"``.
    """

    def __init__(self, table_bits=12, btb_entries=512, ras_depth=16,
                 kind="tournament"):
        if kind not in ("tournament", "gshare", "bimodal"):
            raise ValueError(f"unknown predictor kind {kind!r}")
        self.kind = kind
        self.table_bits = table_bits
        self.mask = (1 << table_bits) - 1
        size = 1 << table_bits
        self.bimodal = [2] * size   # 2-bit counters, weakly taken
        self.gshare = [2] * size
        self.chooser = [2] * size   # >=2 prefer gshare, <2 prefer bimodal
        self.history = 0
        self.btb = {}
        self.btb_entries = btb_entries
        self.btb_order = []
        self.ras = []
        self.ras_depth = ras_depth

    def state(self):
        """Comparable full state (for engine-equivalence pinning)."""
        return (
            self.kind,
            tuple(self.bimodal),
            tuple(self.gshare),
            tuple(self.chooser),
            self.history,
            tuple(sorted(self.btb.items())),
            tuple(self.btb_order),
            tuple(self.ras),
        )

    # -- conditional branches ------------------------------------------------

    def _bimodal_index(self, pc):
        return (pc >> 1) & self.mask

    def _gshare_index(self, pc):
        return ((pc >> 1) ^ self.history) & self.mask

    def predict_cond(self, pc):
        bi = self.bimodal[self._bimodal_index(pc)] >= 2
        gs = self.gshare[self._gshare_index(pc)] >= 2
        if self.kind == "bimodal":
            return bi
        if self.kind == "gshare":
            return gs
        use_gshare = self.chooser[self._bimodal_index(pc)] >= 2
        return gs if use_gshare else bi

    def update_cond(self, pc, taken):
        """Update all components; returns prediction correctness."""
        bi_index = self._bimodal_index(pc)
        gs_index = self._gshare_index(pc)
        bi_counter = self.bimodal[bi_index]
        gs_counter = self.gshare[gs_index]
        bi_pred = bi_counter >= 2
        gs_pred = gs_counter >= 2
        if self.kind == "bimodal":
            predicted = bi_pred
        elif self.kind == "gshare":
            predicted = gs_pred
        else:
            predicted = gs_pred if self.chooser[bi_index] >= 2 else bi_pred

        # Train the component tables.
        if taken:
            if bi_counter < 3:
                self.bimodal[bi_index] = bi_counter + 1
            if gs_counter < 3:
                self.gshare[gs_index] = gs_counter + 1
        else:
            if bi_counter > 0:
                self.bimodal[bi_index] = bi_counter - 1
            if gs_counter > 0:
                self.gshare[gs_index] = gs_counter - 1

        # Train the chooser only when the components disagree.
        if self.kind == "tournament" and bi_pred != gs_pred:
            chooser = self.chooser[bi_index]
            if gs_pred == taken and chooser < 3:
                self.chooser[bi_index] = chooser + 1
            elif bi_pred == taken and chooser > 0:
                self.chooser[bi_index] = chooser - 1

        # Path history: fold the branch PC and its outcome into the
        # history register.  Pure direction history loses all its
        # information when a layout optimizer converts hot branches to
        # fall-throughs; real correlating predictors track the path.
        self.history = (((self.history << 3) ^ (pc >> 1)
                         ^ (1 if taken else 0)) & self.mask)
        return predicted == taken

    # -- indirect branches -----------------------------------------------------

    def predict_indirect(self, pc, actual_target):
        """Look up the BTB and train it; returns prediction correctness."""
        predicted = self.btb.get(pc)
        if predicted != actual_target:
            if pc not in self.btb and len(self.btb) >= self.btb_entries:
                victim = self.btb_order.pop(0)
                self.btb.pop(victim, None)
            if pc not in self.btb:
                self.btb_order.append(pc)
            self.btb[pc] = actual_target
            return False
        return True

    # -- returns ------------------------------------------------------------------

    def push_return(self, address):
        if len(self.ras) >= self.ras_depth:
            self.ras.pop(0)
        self.ras.append(address)

    def predict_return(self, actual_target):
        """Pop the RAS; returns True when it matches the actual target."""
        if not self.ras:
            return False
        predicted = self.ras.pop()
        return predicted == actual_target
