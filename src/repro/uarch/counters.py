"""Hardware performance counters (the ``perf stat`` analog)."""


class Counters:
    """Event counts accumulated during execution."""

    FIELDS = (
        "instructions",
        "cycles",
        "cond_branches",
        "cond_taken",
        "uncond_branches",
        "taken_branches",
        "branch_misses",
        "calls",
        "returns",
        "indirect_branches",
        "l1i_accesses",
        "l1i_misses",
        "l1d_accesses",
        "l1d_misses",
        "l2_accesses",
        "l2_misses",
        "llc_accesses",
        "llc_misses",
        "itlb_accesses",
        "itlb_misses",
        "dtlb_accesses",
        "dtlb_misses",
        "mem_reads",
        "mem_writes",
    )

    def __init__(self):
        for field in self.FIELDS:
            setattr(self, field, 0)

    def as_dict(self):
        return {field: getattr(self, field) for field in self.FIELDS}

    def miss_rates(self):
        """Convenience miss-rate summary (None when no accesses)."""
        def rate(m, a):
            return (m / a) if a else None
        return {
            "branch": rate(self.branch_misses,
                           self.cond_branches + self.indirect_branches + self.returns),
            "l1i": rate(self.l1i_misses, self.l1i_accesses),
            "l1d": rate(self.l1d_misses, self.l1d_accesses),
            "llc": rate(self.llc_misses, self.llc_accesses),
            "itlb": rate(self.itlb_misses, self.itlb_accesses),
            "dtlb": rate(self.dtlb_misses, self.dtlb_accesses),
        }

    def __eq__(self, other):
        if not isinstance(other, Counters):
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f) for f in self.FIELDS)

    def __ne__(self, other):
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def diff(self, other):
        """{field: (self, other)} for every differing field."""
        return {f: (getattr(self, f), getattr(other, f))
                for f in self.FIELDS
                if getattr(self, f) != getattr(other, f)}

    def __repr__(self):
        return f"<Counters instructions={self.instructions} cycles={self.cycles}>"
