"""Microarchitecture configuration and cycle cost model."""


class UarchConfig:
    """Sizes and penalties for the performance model.

    Defaults are scaled-down relative to a real Xeon so that the
    simulator-scale workloads (hundreds of KiB of text) stress the
    front end the way 100+ MB binaries stress real 32 KiB L1I caches.
    Penalties are in cycles and roughly Ivy Bridge-shaped (the paper's
    evaluation machine).
    """

    def __init__(
        self,
        line_size=64,
        l1i_size=8192,
        l1i_assoc=4,
        l1d_size=8192,
        l1d_assoc=4,
        llc_size=65536,
        llc_assoc=8,
        l2_size=0,              # 0 disables the private L2 level
        l2_assoc=8,
        l2_hit_latency=6,
        prefetch_next_line=False,   # next-line I-prefetcher
        page_size=4096,
        itlb_entries=8,
        dtlb_entries=32,
        btb_entries=512,
        bp_table_bits=12,
        bp_kind="tournament",   # tournament | gshare | bimodal
        ras_depth=16,
        base_cpi=1.0,
        taken_branch_penalty=1,
        mispredict_penalty=14,
        l1_miss_penalty=12,
        llc_miss_penalty=120,
        tlb_miss_penalty=30,
        engine="block",         # "block" (trace-cached) | "ref" (oracle)
    ):
        if engine not in ("block", "ref"):
            raise ValueError(f"unknown execution engine {engine!r}")
        self.line_size = line_size
        self.l1i_size = l1i_size
        self.l1i_assoc = l1i_assoc
        self.l1d_size = l1d_size
        self.l1d_assoc = l1d_assoc
        self.llc_size = llc_size
        self.llc_assoc = llc_assoc
        self.l2_size = l2_size
        self.l2_assoc = l2_assoc
        self.l2_hit_latency = l2_hit_latency
        self.prefetch_next_line = prefetch_next_line
        self.page_size = page_size
        self.itlb_entries = itlb_entries
        self.dtlb_entries = dtlb_entries
        self.btb_entries = btb_entries
        self.bp_table_bits = bp_table_bits
        self.bp_kind = bp_kind
        self.ras_depth = ras_depth
        self.base_cpi = base_cpi
        self.taken_branch_penalty = taken_branch_penalty
        self.mispredict_penalty = mispredict_penalty
        self.l1_miss_penalty = l1_miss_penalty
        self.llc_miss_penalty = llc_miss_penalty
        self.tlb_miss_penalty = tlb_miss_penalty
        self.engine = engine
