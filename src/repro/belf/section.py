"""BELF sections."""

from repro.belf.constants import SectionType, SectionFlag


class Section:
    """A named byte region, optionally mapped at a virtual address.

    In relocatable objects ``addr`` is 0 and offsets are section-relative;
    the linker assigns addresses.  ``data`` is a ``bytearray`` for
    PROGBITS sections; NOBITS sections carry only ``mem_size``.
    """

    def __init__(
        self,
        name,
        type=SectionType.PROGBITS,
        flags=SectionFlag.ALLOC,
        addr=0,
        data=None,
        align=8,
        mem_size=None,
    ):
        self.name = name
        self.type = SectionType(type)
        self.flags = SectionFlag(flags)
        self.addr = addr
        self.data = bytearray(data) if data is not None else bytearray()
        self.align = align
        self._mem_size = mem_size

    @property
    def size(self):
        """Size in memory (NOBITS sections have no file data)."""
        if self.type == SectionType.NOBITS:
            return self._mem_size or 0
        return len(self.data)

    @size.setter
    def size(self, value):
        if self.type == SectionType.NOBITS:
            self._mem_size = value
        else:
            raise ValueError("size of PROGBITS sections is defined by data")

    @property
    def end(self):
        return self.addr + self.size

    @property
    def is_exec(self):
        return bool(self.flags & SectionFlag.EXEC)

    @property
    def is_alloc(self):
        return bool(self.flags & SectionFlag.ALLOC)

    @property
    def is_writable(self):
        return bool(self.flags & SectionFlag.WRITE)

    def contains(self, address):
        """Whether ``address`` falls inside this section's mapping."""
        return self.addr <= address < self.end

    def append(self, data):
        """Append bytes, returning the offset at which they were placed."""
        offset = len(self.data)
        self.data += data
        return offset

    def pad_to(self, align):
        """Zero-pad the section so its current end is ``align``-aligned."""
        remainder = len(self.data) % align
        if remainder:
            self.data += b"\x00" * (align - remainder)

    def __repr__(self):
        return (
            f"<Section {self.name} type={self.type.name} addr=0x{self.addr:x} "
            f"size={self.size}>"
        )
