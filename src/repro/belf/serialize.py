"""Byte-level (de)serialization of BELF files.

The on-disk format is deliberately simple but real: the rewriting step
of the BOLT pipeline ("rewrite binary file", Figure 3) produces actual
bytes that round-trip through this module, and the loader/simulator only
ever sees deserialized files.

Layout (all integers little-endian):

    magic "BELF", version u16, kind u8, flags u8 (bit0 = emit_relocs)
    entry u64
    name: str
    section count u32, then per section:
        name str, type u8, flags u8, align u16, addr u64, mem_size u64,
        data u64-length + bytes (PROGBITS only)
    symbol count u32, then per symbol:
        name str, module str ("" = None), section str ("" = None),
        type u8, bind u8, value u64, size u64
    relocation count u32, then per reloc:
        section str, offset u64, type u8, symbol str, addend i64
    frame record count u32, then per record:
        func str, frame_size u32, saved count u16 x (reg u8, off u32),
        callsite count u16 x (start u32, end u32, lp u32, action u16)
    line flag u8; if 1: entry count u32 x (addr u64, file str, line u32)
"""

import struct

from repro.belf.binary import Binary
from repro.belf.constants import SectionType, SectionFlag, SymbolType, SymbolBind, RelocType
from repro.belf.frameinfo import CallSiteRecord, FrameRecord
from repro.belf.linetable import LineTable
from repro.belf.relocation import Relocation
from repro.belf.section import Section
from repro.belf.symbol import Symbol

MAGIC = b"BELF"
VERSION = 1


class BelfFormatError(Exception):
    """Raised on malformed BELF bytes."""


class _Writer:
    def __init__(self):
        self.buf = bytearray()

    def raw(self, data):
        self.buf += data

    def u8(self, v):
        self.buf += struct.pack("<B", v)

    def u16(self, v):
        self.buf += struct.pack("<H", v)

    def u32(self, v):
        self.buf += struct.pack("<I", v)

    def u64(self, v):
        self.buf += struct.pack("<Q", v)

    def i64(self, v):
        self.buf += struct.pack("<q", v)

    def string(self, s):
        data = (s or "").encode("utf-8")
        self.u16(len(data))
        self.buf += data


class _Reader:
    def __init__(self, data):
        self.data = data
        self.pos = 0

    def _unpack(self, fmt, size):
        if self.pos + size > len(self.data):
            raise BelfFormatError("truncated BELF file")
        value = struct.unpack_from(fmt, self.data, self.pos)[0]
        self.pos += size
        return value

    def raw(self, n):
        if self.pos + n > len(self.data):
            raise BelfFormatError("truncated BELF file")
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def u8(self):
        return self._unpack("<B", 1)

    def u16(self):
        return self._unpack("<H", 2)

    def u32(self):
        return self._unpack("<I", 4)

    def u64(self):
        return self._unpack("<Q", 8)

    def i64(self):
        return self._unpack("<q", 8)

    def string(self):
        n = self.u16()
        return self.raw(n).decode("utf-8")


def write_binary(binary):
    """Serialize a :class:`Binary` to bytes."""
    w = _Writer()
    w.raw(MAGIC)
    w.u16(VERSION)
    w.u8(0 if binary.kind == "object" else 1)
    w.u8(1 if binary.emit_relocs else 0)
    w.u64(binary.entry or 0)
    w.string(binary.name)

    w.u32(len(binary.sections))
    for section in binary.sections.values():
        w.string(section.name)
        w.u8(int(section.type))
        w.u8(int(section.flags))
        w.u16(section.align)
        w.u64(section.addr)
        w.u64(section.size)
        if section.type == SectionType.NOBITS:
            w.u64(0)
        else:
            w.u64(len(section.data))
            w.raw(bytes(section.data))

    w.u32(len(binary.symbols))
    for sym in binary.symbols:
        w.string(sym.name)
        w.string(sym.module or "")
        w.string(sym.section or "")
        w.u8(int(sym.type))
        w.u8(int(sym.bind))
        w.u64(sym.value)
        w.u64(sym.size)

    w.u32(len(binary.relocations))
    for rel in binary.relocations:
        w.string(rel.section)
        w.u64(rel.offset)
        w.u8(int(rel.type))
        w.string(rel.symbol)
        w.i64(rel.addend)

    w.u32(len(binary.frame_records))
    for record in binary.frame_records.values():
        w.string(record.func)
        w.u32(record.frame_size)
        w.u16(len(record.saved_regs))
        for reg, off in record.saved_regs:
            w.u8(reg)
            w.u32(off)
        w.u16(len(record.callsites))
        for cs in record.callsites:
            w.u32(cs.start)
            w.u32(cs.end)
            # Signed: after BOLT's split-eh a landing pad may live in a
            # different fragment, before or after this one.
            w.i64(cs.landing_pad)
            w.u16(cs.action)

    if binary.line_table is not None:
        w.u8(1)
        w.u32(len(binary.line_table))
        for entry in binary.line_table:
            w.u64(entry.addr)
            w.string(entry.file)
            w.u32(entry.line)
    else:
        w.u8(0)

    w.u32(len(binary.func_line_tables))
    for func, rows in binary.func_line_tables.items():
        w.string(func)
        w.u32(len(rows))
        for offset, file, line in rows:
            w.u64(offset)
            w.string(file)
            w.u32(line)

    return bytes(w.buf)


def read_binary(data):
    """Deserialize bytes into a :class:`Binary`."""
    r = _Reader(data)
    if r.raw(4) != MAGIC:
        raise BelfFormatError("bad magic")
    version = r.u16()
    if version != VERSION:
        raise BelfFormatError(f"unsupported version {version}")
    kind = "exec" if r.u8() else "object"
    flags = r.u8()
    binary = Binary(kind=kind)
    binary.emit_relocs = bool(flags & 1)
    entry = r.u64()
    binary.entry = entry or None
    binary.name = r.string()

    for _ in range(r.u32()):
        name = r.string()
        stype = SectionType(r.u8())
        sflags = SectionFlag(r.u8())
        align = r.u16()
        addr = r.u64()
        mem_size = r.u64()
        data_len = r.u64()
        payload = r.raw(data_len)
        section = Section(
            name,
            type=stype,
            flags=sflags,
            addr=addr,
            data=payload,
            align=align,
            mem_size=mem_size if stype == SectionType.NOBITS else None,
        )
        binary.add_section(section)

    for _ in range(r.u32()):
        name = r.string()
        module = r.string() or None
        section = r.string() or None
        stype = SymbolType(r.u8())
        bind = SymbolBind(r.u8())
        value = r.u64()
        size = r.u64()
        binary.add_symbol(
            Symbol(name, value=value, size=size, type=stype, bind=bind,
                   section=section, module=module)
        )

    for _ in range(r.u32()):
        section = r.string()
        offset = r.u64()
        rtype = RelocType(r.u8())
        symbol = r.string()
        addend = r.i64()
        binary.relocations.append(Relocation(section, offset, rtype, symbol, addend))

    for _ in range(r.u32()):
        func = r.string()
        frame_size = r.u32()
        saved = [(r.u8(), r.u32()) for _ in range(r.u16())]
        callsites = [
            CallSiteRecord(r.u32(), r.u32(), r.i64(), r.u16())
            for _ in range(r.u16())
        ]
        binary.frame_records[func] = FrameRecord(func, frame_size, saved, callsites)

    if r.u8():
        table = LineTable()
        for _ in range(r.u32()):
            addr = r.u64()
            file = r.string()
            line = r.u32()
            table.add(addr, file, line)
        binary.line_table = table

    for _ in range(r.u32()):
        func = r.string()
        rows = [(r.u64(), r.string(), r.u32()) for _ in range(r.u32())]
        binary.func_line_tables[func] = rows

    return binary
