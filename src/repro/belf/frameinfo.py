"""CFI-lite frame information (.eh_frame / LSDA analog).

Each function compiled with frame info gets one :class:`FrameRecord`
describing its frame layout (for the unwinder) and its exception
call-site table (landing pads).  The paper (section 3.3/3.4) describes
BOLT using frame information both as a function-discovery source —
hand-written assembly may omit it, which our workload generators also do
— and as metadata it must *rewrite* when blocks move (CFI update,
``split-eh``).
"""


class CallSiteRecord:
    """One LSDA call-site entry: calls in [start, end) unwind to ``landing_pad``.

    All three values are offsets from the function start in objects and
    in executables alike (BOLT rewrites them when blocks move).
    ``action`` mirrors the paper's Figure 4 annotation; 0 means cleanup.
    """

    __slots__ = ("start", "end", "landing_pad", "action")

    def __init__(self, start, end, landing_pad, action=1):
        self.start = start
        self.end = end
        self.landing_pad = landing_pad
        self.action = action

    def __repr__(self):
        return (
            f"<CallSite [{self.start:#x},{self.end:#x}) -> {self.landing_pad:#x} "
            f"action={self.action}>"
        )


class FrameRecord:
    """Frame layout + exception table for one function.

    Attributes:
        func: link name of the function symbol.
        frame_size: bytes subtracted from rsp after the pushes.
        saved_regs: list of (reg, offset) — callee-saved registers stored
            at ``rbp - offset`` (the frame-pointer-relative slot the
            unwinder restores from).
        callsites: LSDA entries (empty when the function cannot throw
            through).
    """

    def __init__(self, func, frame_size=0, saved_regs=(), callsites=()):
        self.func = func
        self.frame_size = frame_size
        self.saved_regs = list(saved_regs)
        self.callsites = list(callsites)

    @property
    def has_landing_pads(self):
        return bool(self.callsites)

    def landing_pad_for(self, offset):
        """Landing-pad offset covering a call at ``offset``, or None."""
        for cs in self.callsites:
            if cs.start <= offset < cs.end:
                return cs.landing_pad
        return None

    def copy(self):
        return FrameRecord(
            self.func,
            self.frame_size,
            [tuple(sr) for sr in self.saved_regs],
            [CallSiteRecord(cs.start, cs.end, cs.landing_pad, cs.action) for cs in self.callsites],
        )

    def __repr__(self):
        return (
            f"<FrameRecord {self.func} frame={self.frame_size} "
            f"saved={self.saved_regs} callsites={len(self.callsites)}>"
        )
