"""Line-number debug information (.debug_line analog).

Maps code addresses (or section offsets, in objects) to source
locations.  Two consumers:

* the compiler's AutoFDO mode maps binary-level samples *back* to source
  locations through this table — the lossy step whose inaccuracy (paper
  Figure 2, section 2.2) motivates post-link optimization;
* BOLT reads it for ``-print-debug-info`` style reporting and rewrites
  it (``-update-debug-sections``) when instructions move.
"""

import bisect


class LineEntry:
    """One (address, file, line) row.  Rows cover [addr, next row's addr)."""

    __slots__ = ("addr", "file", "line")

    def __init__(self, addr, file, line):
        self.addr = addr
        self.file = file
        self.line = line

    def __repr__(self):
        return f"<Line 0x{self.addr:x} {self.file}:{self.line}>"


class LineTable:
    """A sorted table of line entries with binary-search lookup."""

    def __init__(self, entries=()):
        self.entries = list(entries)
        self._sorted = False
        self._keys = None               # cached [entry.addr], sorted

    def add(self, addr, file, line):
        self.entries.append(LineEntry(addr, file, line))
        self._sorted = False
        self._keys = None

    def _ensure_sorted(self):
        if not self._sorted:
            self.entries.sort(key=lambda e: e.addr)
            self._sorted = True
            self._keys = None

    def lookup(self, addr):
        """Source location covering ``addr``: (file, line) or None."""
        self._ensure_sorted()
        if not self.entries:
            return None
        # The bisect key list is cached across lookups; rebuilding it on
        # every query made profile attribution quadratic in table size.
        keys = self._keys
        if keys is None:
            keys = self._keys = [e.addr for e in self.entries]
        idx = bisect.bisect_right(keys, addr) - 1
        if idx < 0:
            return None
        entry = self.entries[idx]
        return (entry.file, entry.line)

    def rebase(self, mapping):
        """Return a new table with addresses translated through ``mapping``.

        ``mapping`` is a callable old_addr -> new_addr or None (entry
        dropped — e.g. the instruction was deleted).
        """
        out = LineTable()
        for entry in self.entries:
            new_addr = mapping(entry.addr)
            if new_addr is not None:
                out.add(new_addr, entry.file, entry.line)
        return out

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        self._ensure_sorted()
        return iter(self.entries)
