"""BELF relocations."""

from repro.belf.constants import RelocType


class Relocation:
    """A relocation against ``section`` at ``offset``.

    ``symbol`` is a link name (see :meth:`Symbol.link_name`).  The linker
    resolves relocations when producing an executable and — when asked to
    ``--emit-relocs`` — retains them in the output so a post-link
    optimizer can re-relocate code, exactly as BFD/Gold do for BOLT's
    relocations mode (paper section 3.2).
    """

    __slots__ = ("section", "offset", "type", "symbol", "addend")

    def __init__(self, section, offset, type, symbol, addend=0):
        self.section = section
        self.offset = offset
        self.type = RelocType(type)
        self.symbol = symbol
        self.addend = addend

    def __repr__(self):
        return (
            f"<Reloc {self.section}+0x{self.offset:x} {self.type.name} "
            f"{self.symbol}+{self.addend}>"
        )

    def __eq__(self, other):
        return (
            isinstance(other, Relocation)
            and self.section == other.section
            and self.offset == other.offset
            and self.type == other.type
            and self.symbol == other.symbol
            and self.addend == other.addend
        )

    def __hash__(self):
        return hash((self.section, self.offset, self.type, self.symbol, self.addend))
