"""Constants shared by the BELF format, the linker and the loader."""

import enum


class SectionType(enum.IntEnum):
    NULL = 0
    PROGBITS = 1   # code or initialized data
    NOBITS = 2     # .bss
    SYMTAB = 3
    RELA = 4
    FRAME = 5      # CFI-lite frame records (.eh_frame analog)
    LINES = 6      # line-number debug info (.debug_line analog)


class SectionFlag(enum.IntFlag):
    NONE = 0
    ALLOC = 1      # occupies memory at run time
    WRITE = 2
    EXEC = 4


class SymbolType(enum.IntEnum):
    NOTYPE = 0
    FUNC = 1
    OBJECT = 2
    SECTION = 3


class SymbolBind(enum.IntEnum):
    LOCAL = 0
    GLOBAL = 1


class RelocType(enum.IntEnum):
    #: 8-byte absolute: mem64[P] = S + A
    ABS64 = 0
    #: 4-byte absolute: mem32[P] = S + A
    ABS32 = 1
    #: 4-byte pc-relative: mem32[P] = S + A - (P + 4).
    #: Matches BX86 branch semantics: the rel32 field is always the last
    #: 4 bytes of the instruction, and offsets are measured from the
    #: instruction's end.
    PC32 = 2


#: Default virtual address where the linker places .text.
TEXT_BASE = 0x10000

#: Top of the runtime stack (grows down).
STACK_TOP = 0x8000000
STACK_SIZE = 0x100000

#: Base address of the simulator-native builtin functions (e.g. __throw).
BUILTIN_BASE = 0xF0000000

#: Virtual memory page size used by the TLB models.
PAGE_SIZE = 4096

#: Section names with conventional roles.
TEXT = ".text"
TEXT_COLD = ".text.cold"
RODATA = ".rodata"
DATA = ".data"
BSS = ".bss"
PLT = ".plt"
GOT = ".got"
