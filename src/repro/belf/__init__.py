"""BELF: a simplified ELF-like object/executable container.

BELF plays the role ELF plays in the BOLT paper: it carries the machine
code plus the metadata BOLT's rewriting pipeline is driven by —
symbol tables (function discovery), relocations (``--emit-relocs``
relocations mode), frame information (CFI-lite records used for
function-boundary discovery and exception unwinding, section 3.4), and
line-number debug info (AutoFDO profile mapping and
``-update-debug-sections``).
"""

from repro.belf.constants import (
    SectionType,
    SectionFlag,
    SymbolType,
    SymbolBind,
    RelocType,
    TEXT_BASE,
    STACK_TOP,
    STACK_SIZE,
    BUILTIN_BASE,
    PAGE_SIZE,
)
from repro.belf.section import Section
from repro.belf.symbol import Symbol
from repro.belf.relocation import Relocation
from repro.belf.frameinfo import FrameRecord, CallSiteRecord
from repro.belf.linetable import LineTable, LineEntry
from repro.belf.binary import Binary
from repro.belf.serialize import write_binary, read_binary, BelfFormatError

__all__ = [
    "SectionType",
    "SectionFlag",
    "SymbolType",
    "SymbolBind",
    "RelocType",
    "TEXT_BASE",
    "STACK_TOP",
    "STACK_SIZE",
    "BUILTIN_BASE",
    "PAGE_SIZE",
    "Section",
    "Symbol",
    "Relocation",
    "FrameRecord",
    "CallSiteRecord",
    "LineTable",
    "LineEntry",
    "Binary",
    "write_binary",
    "read_binary",
    "BelfFormatError",
]
