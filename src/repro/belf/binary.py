"""The BELF container: sections + symbols + relocations + metadata."""

import hashlib

from repro.belf.constants import SymbolType
from repro.belf.section import Section


class Binary:
    """A relocatable object or linked executable.

    Attributes:
        kind: ``"object"`` or ``"exec"``.
        sections: name -> :class:`Section` (insertion-ordered).
        symbols: list of :class:`Symbol`.
        relocations: list of :class:`Relocation`.  For executables this
            is only populated when the linker was invoked with
            ``emit_relocs=True`` (paper section 3.2).
        frame_records: func link-name -> :class:`FrameRecord`.
        line_table: :class:`LineTable` or None.
        entry: entry-point address (exec) or symbol name (object).
        emit_relocs: whether relocations were preserved post-link.
    """

    def __init__(self, kind="object", name=""):
        self.kind = kind
        self.name = name
        self.sections = {}
        self.symbols = []
        self.relocations = []
        self.frame_records = {}
        self.line_table = None
        self.entry = None
        self.emit_relocs = False
        #: objects only: func link name -> [(offset, file, line)] rows,
        #: offsets relative to the function's section.  The linker folds
        #: these into the executable's flat ``line_table``.
        self.func_line_tables = {}
        self._symbols_by_link_name = None

    # -- sections ---------------------------------------------------------

    def add_section(self, section):
        if section.name in self.sections:
            raise ValueError(f"duplicate section {section.name}")
        self.sections[section.name] = section
        return section

    def get_or_create_section(self, name, **kwargs):
        if name in self.sections:
            return self.sections[name]
        return self.add_section(Section(name, **kwargs))

    def get_section(self, name):
        return self.sections.get(name)

    def section_at(self, address):
        """The ALLOC section mapping ``address``, or None."""
        for section in self.sections.values():
            if section.is_alloc and section.contains(address):
                return section
        return None

    def read_word(self, address):
        """Read a little-endian 8-byte word at a mapped address."""
        section = self.section_at(address)
        if section is None:
            raise KeyError(f"address 0x{address:x} not mapped")
        off = address - section.addr
        return int.from_bytes(section.data[off : off + 8], "little", signed=False)

    # -- symbols ----------------------------------------------------------

    def add_symbol(self, symbol):
        self.symbols.append(symbol)
        self._symbols_by_link_name = None
        return symbol

    def _link_name_map(self):
        if self._symbols_by_link_name is None:
            self._symbols_by_link_name = {}
            for sym in self.symbols:
                self._symbols_by_link_name.setdefault(sym.link_name(), sym)
        return self._symbols_by_link_name

    def get_symbol(self, link_name):
        """Look up a symbol by link name (module-qualified for locals)."""
        return self._link_name_map().get(link_name)

    def invalidate_symbol_cache(self):
        self._symbols_by_link_name = None

    def functions(self):
        """All FUNC symbols."""
        return [s for s in self.symbols if s.type == SymbolType.FUNC]

    def function_at(self, address):
        """The FUNC symbol whose range contains ``address``, or None."""
        for sym in self.symbols:
            if sym.type == SymbolType.FUNC and sym.contains(address):
                return sym
        return None

    def defined_names(self):
        """Set of link names defined by this object (section != None)."""
        return {s.link_name() for s in self.symbols if s.section is not None}

    # -- misc ---------------------------------------------------------------

    def content_hash(self):
        """A build id: stable hash of executable code + function symbols.

        Profiles are stamped with the id of the binary they were
        collected on; the BOLT pipeline compares it against the binary
        being optimized to detect stale (cross-build) profiles.  Only
        code-identity inputs participate: section bytes and addresses
        of executable sections, plus FUNC symbol placement.
        """
        h = hashlib.sha256()
        for section in self.sections.values():
            if not section.is_exec:
                continue
            h.update(section.name.encode())
            h.update(section.addr.to_bytes(8, "little"))
            h.update(bytes(section.data))
        for sym in sorted(self.functions(),
                          key=lambda s: (s.link_name(), s.value)):
            h.update(sym.link_name().encode())
            h.update(sym.value.to_bytes(8, "little", signed=False))
            h.update(sym.size.to_bytes(8, "little", signed=False))
        return h.hexdigest()[:16]

    @property
    def is_executable(self):
        return self.kind == "exec"

    def text_size(self):
        """Total size of executable sections."""
        return sum(s.size for s in self.sections.values() if s.is_exec)

    def __repr__(self):
        return (
            f"<Binary {self.name!r} kind={self.kind} sections={list(self.sections)} "
            f"symbols={len(self.symbols)} relocs={len(self.relocations)}>"
        )
