"""BELF symbols."""

from repro.belf.constants import SymbolType, SymbolBind


class Symbol:
    """A named location.

    In relocatable objects ``value`` is an offset into ``section``; in
    executables it is a virtual address.  ``module`` disambiguates LOCAL
    symbols originating from different compilation units — the linker
    keeps local symbols separate per module, which is what makes
    cross-module references to local functions invisible to the linker,
    one of the relocation gaps the paper discusses in section 3.2.
    """

    def __init__(
        self,
        name,
        value=0,
        size=0,
        type=SymbolType.NOTYPE,
        bind=SymbolBind.GLOBAL,
        section=None,
        module=None,
    ):
        self.name = name
        self.value = value
        self.size = size
        self.type = SymbolType(type)
        self.bind = SymbolBind(bind)
        self.section = section
        self.module = module

    @property
    def is_function(self):
        return self.type == SymbolType.FUNC

    @property
    def is_local(self):
        return self.bind == SymbolBind.LOCAL

    @property
    def end(self):
        return self.value + self.size

    def contains(self, address):
        """Whether ``address`` lies within [value, value+size)."""
        return self.value <= address < self.value + self.size

    def link_name(self):
        """Name used for symbol resolution (locals are module-qualified)."""
        if self.is_local and self.module is not None:
            return f"{self.module}::{self.name}"
        return self.name

    def __repr__(self):
        return (
            f"<Symbol {self.link_name()} {self.type.name}/{self.bind.name} "
            f"value=0x{self.value:x} size={self.size} sec={self.section}>"
        )
