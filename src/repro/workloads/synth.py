"""The deterministic BC program generator."""

import random


class WorkloadSpec:
    """Shape parameters for a generated workload."""

    def __init__(
        self,
        name,
        seed=1,
        modules=6,
        workers_per_module=8,
        leaves_per_module=4,
        iterations=400,
        hot_entries=3,
        cold_modulus=101,
        switch_funcs_per_module=1,
        fptr_funcs_per_module=1,
        itail_funcs_per_module=0,
        eh_funcs_per_module=0,
        dup_leaf_groups=0,
        asm_module=False,
        input_size=64,
        input_kind="uniform",
        use_runtime_lib=True,
        call_fanout=3,
        cross_module_fraction=0.35,
        worker_body_scale=1.0,
    ):
        self.name = name
        self.seed = seed
        self.modules = modules
        self.workers_per_module = workers_per_module
        self.leaves_per_module = leaves_per_module
        self.iterations = iterations
        self.hot_entries = hot_entries
        self.cold_modulus = cold_modulus
        self.switch_funcs_per_module = switch_funcs_per_module
        self.fptr_funcs_per_module = fptr_funcs_per_module
        self.itail_funcs_per_module = itail_funcs_per_module
        self.eh_funcs_per_module = eh_funcs_per_module
        self.dup_leaf_groups = dup_leaf_groups
        self.asm_module = asm_module
        self.input_size = input_size
        self.input_kind = input_kind
        self.use_runtime_lib = use_runtime_lib
        self.call_fanout = call_fanout
        self.cross_module_fraction = cross_module_fraction
        self.worker_body_scale = worker_body_scale

    def copy(self, **overrides):
        out = WorkloadSpec(self.name)
        out.__dict__.update(self.__dict__)
        out.__dict__.update(overrides)
        return out


class Workload:
    """A generated program ready for the harness.

    Attributes:
        sources: [(module name, BC text)] — the application.
        lib_sources: [(name, text)] — PIC-library modules (PLT calls).
        asm_sources: [(name, text)] — modules to build *without* frame
            info (hand-written assembly analog).
        inputs: {array link name: [values]} — training/benchmark input.
        alt_inputs: {label: input dict} — alternative input mixes.
        iterations: loop count (for instruction-budget estimation).
    """

    def __init__(self, spec):
        self.spec = spec
        self.sources = []
        self.lib_sources = []
        self.asm_sources = []
        self.inputs = {}
        self.alt_inputs = {}
        self.iterations = spec.iterations


RUNTIME_LIB = """
func rt_mix(a, b) {
  return (a * 31 + b) ^ (a >> 3);
}
func rt_clamp(x, lo, hi) {
  if (x < lo) { return lo; }
  if (x > hi) { return hi; }
  return x;
}
func rt_abs(x) {
  if (x < 0) { return 0 - x; }
  return x;
}
"""


def _const_list(rng, n, lo=1, hi=97):
    return ", ".join(str(rng.randrange(lo, hi)) for _ in range(n))


class _ModulePlan:
    def __init__(self, index):
        self.index = index
        self.leaves = []        # local leaf names
        self.workers = []       # local worker names
        self.dispatchers = []
        self.fptr_calls = []
        self.itails = []
        self.eh_funcs = []
        self.init_funcs = []


def generate_workload(spec):
    """Generate the full program for a spec (deterministic in the seed)."""
    rng = random.Random(spec.seed)
    workload = Workload(spec)

    plans = [_ModulePlan(i) for i in range(spec.modules)]
    for plan in plans:
        for k in range(spec.leaves_per_module):
            plan.leaves.append(f"leaf_{plan.index}_{k}")
        for k in range(spec.workers_per_module):
            plan.workers.append(f"work_{plan.index}_{k}")
        for k in range(spec.switch_funcs_per_module):
            plan.dispatchers.append(f"dispatch_{plan.index}_{k}")
        for k in range(spec.fptr_funcs_per_module):
            plan.fptr_calls.append(f"via_ptr_{plan.index}_{k}")
        for k in range(spec.itail_funcs_per_module):
            plan.itails.append(f"itail_{plan.index}_{k}")
        for k in range(spec.eh_funcs_per_module):
            plan.eh_funcs.append(f"guarded_{plan.index}_{k}")

    # Duplicate-leaf groups: the same body emitted under different names
    # in different modules (ICF material — the linker cannot fold them
    # because each module's .rodata/constants give distinct sections in
    # real toolchains; ours CAN, so BOLT's advantage here is jump-table
    # functions, also generated below).
    dup_bodies = [
        _leaf_body(rng) for _ in range(spec.dup_leaf_groups)
    ]

    for plan in plans:
        text = _generate_module(spec, rng, plan, plans, dup_bodies)
        workload.sources.append((f"m{plan.index}", text))

    workload.sources.append(("mainmod", _generate_main(spec, rng, plans)))

    if spec.use_runtime_lib:
        workload.lib_sources.append(("rtlib", RUNTIME_LIB))

    if spec.asm_module:
        workload.asm_sources.append(("asmmod", _generate_asm_module(rng)))

    workload.inputs = {"mainmod::input": _make_input(spec, rng, spec.input_kind)}
    for kind in ("uniform", "skewed", "bursty"):
        if kind != spec.input_kind:
            workload.alt_inputs[kind] = {
                "mainmod::input": _make_input(spec, rng, kind)}
    return workload


def _make_input(spec, rng, kind):
    n = spec.input_size
    if kind == "uniform":
        return [rng.randrange(0, 1 << 16) for _ in range(n)]
    if kind == "skewed":
        # 90% small values: exercises the low switch arms / taken paths.
        return [rng.randrange(0, 8) if rng.random() < 0.9
                else rng.randrange(0, 1 << 16) for _ in range(n)]
    if kind == "bursty":
        out = []
        while len(out) < n:
            value = rng.randrange(0, 1 << 16)
            out.extend([value] * min(rng.randrange(1, 9), n - len(out)))
        return out
    raise ValueError(f"unknown input kind {kind!r}")


def _leaf_body(rng):
    c1 = rng.randrange(3, 61)
    c2 = rng.randrange(3, 61)
    c3 = rng.randrange(1, 7)
    return (f"  return (a * {c1} + b * {c2}) >> {c3};")


def _generate_module(spec, rng, plan, plans, dup_bodies):
    mi = plan.index
    lines = []
    lines.append(f"const array lut{mi}[16] = {{{_const_list(rng, 16)}}};")
    # Scalar read-only constants: the compiler keeps them in .rodata and
    # loads them at use sites (simplify-ro-loads material, Table 1 #6).
    lines.append(f"const SCALE{mi} = {rng.randrange(3, 97)};")
    lines.append(f"const BIAS{mi} = {rng.randrange(1, 50)};")
    lines.append(f"array state{mi}[32];")
    lines.append(f"var handler{mi} = 0;")
    lines.append(f"var flag{mi} = {rng.randrange(0, 2)};")
    lines.append("")

    # Leaves: small frameless functions; some share duplicated bodies.
    for k, name in enumerate(plan.leaves):
        if dup_bodies and k < len(dup_bodies) and mi % 2 == 0:
            body = dup_bodies[k % len(dup_bodies)]
        else:
            body = _leaf_body(rng)
        lines.append(f"func {name}(a, b) {{\n{body}\n}}")
        lines.append("")

    # The Figure 2 helper: branch direction depends on the argument.
    lines.append(
        f"func biased_{mi}(x, t) {{\n"
        f"  if (x > t) {{\n    return x - t + lut{mi}[x % 16];\n  }}\n"
        f"  return t - x + lut{mi}[t % 16];\n}}")
    lines.append("")

    # Switch dispatchers (dense -> jump tables).
    for name in plan.dispatchers:
        arms = []
        for case in range(8):
            leaf = plan.leaves[case % len(plan.leaves)]
            c = rng.randrange(1, 50)
            arms.append(
                f"    case {case}: {{ r = {leaf}(x, {c}); }}")
        arms_text = "\n".join(arms)
        lines.append(
            f"func {name}(x) {{\n  var r = 0;\n"
            f"  switch (x % 8) {{\n{arms_text}\n"
            f"    default: {{ r = x; }}\n  }}\n  return r;\n}}")
        lines.append("")

    # Indirect calls through a function-pointer global (ICP material;
    # the +1 keeps the call out of tail position so the function stays
    # simple and framed).
    for name in plan.fptr_calls:
        lines.append(
            f"func {name}(x) {{\n  var f = handler{mi};\n"
            f"  return f(x, {rng.randrange(1, 30)}) + 1;\n}}")
        lines.append("")

    # Indirect tail calls (become jmp *reg => non-simple functions).
    for name in plan.itails:
        lines.append(
            f"func {name}(x) {{\n  var f = handler{mi};\n"
            f"  return f(x, {rng.randrange(1, 30)});\n}}")
        lines.append("")

    # Exception material: hot guarded calls over rarely-throwing callees.
    for k, name in enumerate(plan.eh_funcs):
        modulus = rng.choice((241, 383, 499))
        lines.append(
            f"static func checked_{mi}_{k}(x) {{\n"
            f"  if (x % {modulus} == {modulus - 1}) {{\n"
            f"    throw x + {k};\n  }}\n  return x + {k + 1};\n}}")
        lines.append(
            f"func {name}(x) {{\n  var r = 0;\n"
            f"  try {{\n    r = checked_{mi}_{k}(x);\n"
            f"  }} catch (e) {{\n    r = e % 17;\n  }}\n  return r;\n}}")
        lines.append("")

    # Conditional-tail-call gates (SCTC material, Table 1 #14): a
    # frameless dispatcher whose taken path is a bare `jmp tick_N`.
    # Padding arithmetic keeps it above the compile-time inlining
    # threshold so it survives into the binary.
    tick_pad = "\n".join(
        f"  v = (v * {rng.randrange(3, 30)}) ^ (v >> {rng.randrange(1, 4)});"
        for _ in range(6))
    lines.append(
        f"func tick_{mi}() {{\n"
        f"  var v = flag{mi} + {rng.randrange(5, 60)};\n{tick_pad}\n"
        f"  return v;\n}}")
    pad_ops = "\n".join(
        f"  t = (t ^ {rng.randrange(3, 40)}) + (t >> {rng.randrange(1, 4)});"
        for _ in range(4))
    lines.append(
        f"func gate_{mi}(x) {{\n"
        f"  var t = x * {rng.randrange(3, 20)};\n{pad_ops}\n"
        f"  if (flag{mi} > t) {{\n    return tick_{mi}();\n  }}\n"
        f"  return {rng.randrange(2, 30)};\n}}")
    lines.append("")

    # Module init + handler rotation: the function pointer is mildly
    # polymorphic (dominant target ~7/8 of the time), so indirect-call
    # sites occasionally retrain the BTB — the profile shows a dominant
    # target and ICP's guarded direct call genuinely pays off.
    hot_leaf = plan.leaves[0]
    alt_leaf = plan.leaves[min(1, len(plan.leaves) - 1)]
    lines.append(
        f"func init_{mi}() {{\n  handler{mi} = &{hot_leaf};\n  return 0;\n}}")
    lines.append(
        f"func rotate_{mi}(sel) {{\n"
        f"  if (sel % 8 == 7) {{\n    handler{mi} = &{alt_leaf};\n"
        f"  }} else {{\n    handler{mi} = &{hot_leaf};\n  }}\n"
        f"  return 0;\n}}")
    plan.init_funcs.append(f"init_{mi}")
    lines.append("")

    # Workers: the bulk of the code.  Acyclic call structure: worker
    # (m, k) only calls workers with a strictly higher (m, k) rank.
    total_modules = len(plans)
    for k, name in enumerate(plan.workers):
        lines.append(_generate_worker(spec, rng, plan, plans, k, name,
                                      total_modules))
        lines.append("")
    return "\n".join(lines)


def _worker_rank(mi, k, workers_per_module):
    return mi * workers_per_module + k


def _generate_worker(spec, rng, plan, plans, k, name, total_modules):
    mi = plan.index
    my_rank = _worker_rank(mi, k, spec.workers_per_module)
    body = []
    body.append(f"  var acc = a + lut{mi}[b % 16] + SCALE{mi};")
    body.append(f"  var t = state{mi}[(a + b) % 32] + BIAS{mi};")

    # Straight-line compute, scaled by worker_body_scale.
    n_stmts = max(1, int(rng.randrange(2, 5) * spec.worker_body_scale))
    for _ in range(n_stmts):
        c = rng.randrange(2, 40)
        op = rng.choice(("+", "^", "-"))
        shift = rng.randrange(1, 5)
        body.append(f"  acc = (acc {op} (t * {c})) + (acc >> {shift});")

    # Calls: leaves, helpers, and higher-rank workers.
    callees = []
    for _ in range(spec.call_fanout):
        roll = rng.random()
        if roll < 0.45:
            callees.append((rng.choice(plan.leaves), "leaf"))
        elif roll < 0.45 + spec.cross_module_fraction:
            target_plan = plans[rng.randrange(total_modules)]
            higher = [
                (w, i) for i, w in enumerate(target_plan.workers)
                if _worker_rank(target_plan.index, i,
                                spec.workers_per_module) > my_rank
            ]
            if higher:
                callees.append((rng.choice(higher)[0], "worker"))
            else:
                callees.append((rng.choice(target_plan.leaves), "leaf"))
        else:
            higher = [
                (w, i) for i, w in enumerate(plan.workers)
                if _worker_rank(mi, i, spec.workers_per_module) > my_rank
            ]
            if higher:
                callees.append((rng.choice(higher)[0], "worker"))
            else:
                callees.append((rng.choice(plan.leaves), "leaf"))
    for callee, kind in callees:
        if kind == "leaf":
            body.append(f"  acc = acc + {callee}(acc, t);")
        else:
            body.append(f"  acc = acc + {callee}(acc % 251, b);")

    # The biased helper, called with a constant threshold on the hot
    # side (Figure 2: the callsite determines the branch direction).
    abs_expr = "rt_abs(acc)" if spec.use_runtime_lib else "(acc % 1000 + 1000)"
    side = rng.random() < 0.5
    if side:
        body.append(f"  acc = acc + biased_{mi}({abs_expr} + 100, 50);")
    else:
        body.append(f"  acc = acc + biased_{mi}({abs_expr} % 40, 90);")

    # A dispatcher or fptr call occasionally.
    if plan.dispatchers and rng.random() < 0.5:
        body.append(f"  acc = acc + {rng.choice(plan.dispatchers)}(acc);")
    if plan.fptr_calls and rng.random() < 0.35:
        body.append(f"  acc = acc + {rng.choice(plan.fptr_calls)}(b % 100);")
    if plan.eh_funcs and rng.random() < 0.4:
        body.append(f"  acc = acc + {rng.choice(plan.eh_funcs)}({abs_expr});")
    if plan.itails and rng.random() < 0.3:
        body.append(f"  acc = acc + {rng.choice(plan.itails)}(b % 64);")
    if rng.random() < 0.4:
        # Cross-module call to a conditional-tail-call gate.
        other = plans[rng.randrange(len(plans))]
        body.append(f"  acc = acc + gate_{other.index}(acc % 100);")

    # Cold error path: rarely executed, sizeable code (split material).
    cold = [f"  if ((a + b) % {spec.cold_modulus} == {spec.cold_modulus - 1}) {{"]
    if spec.use_runtime_lib:
        cold.append(f"    var e = rt_mix(acc, {rng.randrange(1, 999)});")
    else:
        cold.append(f"    var e = acc * 31 + {rng.randrange(1, 999)};")
    for _ in range(max(2, int(4 * spec.worker_body_scale))):
        c = rng.randrange(3, 77)
        cold.append(f"    e = (e * {c}) ^ (e >> 2);")
        cold.append(f"    e = e + {rng.choice(plan.leaves)}(e, {c});")
    cold.append(f"    state{mi}[e % 32] = e;")
    cold.append("    acc = acc + e % 13;")
    cold.append("  }")
    body.extend(cold)

    body.append(f"  state{mi}[(acc + b) % 32] = acc % 65536;")
    body.append("  return acc;")
    return f"func {name}(a, b) {{\n" + "\n".join(body) + "\n}"


def _generate_asm_module(rng):
    """Leaf-only module built without frame info (assembly analog)."""
    lines = []
    for k in range(3):
        c = rng.randrange(3, 31)
        lines.append(
            f"func asm_leaf_{k}(a, b) {{\n"
            f"  return (a << 2) + b * {c} + {k};\n}}")
    return "\n\n".join(lines)


def _generate_main(spec, rng, plans):
    entries = []
    # Hot entries: the first worker(s) of the first modules.
    for i in range(spec.hot_entries):
        plan = plans[i % len(plans)]
        entries.append(plan.workers[i % max(1, min(2, len(plan.workers)))])
    cold_entries = []
    for plan in plans:
        if len(plan.workers) >= 3:
            cold_entries.append(plan.workers[2])
    inits = "\n".join(f"  init_{p.index}();" for p in plans)

    hot_calls = "\n".join(
        f"    total = total + {entry}(v % 1021, i);"
        for entry in entries)
    rotates = "\n".join(
        f"      rotate_{p.index}(i / 4);"
        for p in plans if spec.fptr_funcs_per_module or spec.itail_funcs_per_module)
    rotate_block = ""
    if rotates:
        rotate_block = f"    if (i % 4 == 3) {{\n{rotates}\n    }}"
    cold_calls = "\n".join(
        f"      total = total + {entry}(v % 509, i + {j});"
        for j, entry in enumerate(cold_entries))
    asm_call = ""
    if spec.asm_module:
        asm_call = "    total = total + asm_leaf_0(v % 97, i % 13);"
    dispatch_call = ""
    if spec.switch_funcs_per_module > 0:
        dispatch_call = (
            "    if (i % 37 == 0) {\n"
            "      total = total + dispatch_0_0(v);\n"
            "    }")

    return f"""
array input[{spec.input_size}];

func main() {{
{inits}
  var i = 0;
  var total = 0;
  while (i < {spec.iterations}) {{
    var v = input[i % {spec.input_size}];
{hot_calls}
{asm_call}
{dispatch_call}
{rotate_block}
    if (i % {spec.cold_modulus} == {spec.cold_modulus - 1}) {{
{cold_calls}
    }}
    total = total & 0xFFFFFFFF;
    i = i + 1;
  }}
  out total;
  return 0;
}}
"""
