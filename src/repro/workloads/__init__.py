"""Synthetic workload generators.

The paper evaluates BOLT on Facebook data-center binaries (HHVM, TAO,
Proxygen, Multifeed) and on the Clang/GCC compilers.  None of those can
run on the simulated toolchain, so this package generates BC programs
whose *structure* matches what makes those binaries interesting for a
post-link optimizer (DESIGN.md section 2):

* large, front-end-bound text with a skewed hot/cold distribution;
* callsite-dependent branch biases (the Figure 2 accuracy story);
* switch-based jump tables, indirect calls through function pointers,
  indirect *tail* calls (non-simple function material, section 6.4);
* duplicate functions (ICF), PLT-routed utility calls, exception paths,
  hand-written-assembly-style functions without frame info;
* cold error paths inside hot functions (splitting material).
"""

from repro.workloads.synth import WorkloadSpec, generate_workload, Workload
from repro.workloads.presets import (
    PRESETS,
    FACEBOOK_NAMES,
    facebook_workloads,
    compiler_workload,
    make_workload,
)

__all__ = [
    "WorkloadSpec",
    "Workload",
    "generate_workload",
    "PRESETS",
    "FACEBOOK_NAMES",
    "facebook_workloads",
    "compiler_workload",
    "make_workload",
]
