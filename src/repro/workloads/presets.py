"""Named workload presets shaped like the paper's evaluation targets.

Scales are chosen so a measurement run executes a few hundred thousand
simulated instructions (seconds of wall time) while the text section
comfortably exceeds the scaled-down L1I/I-TLB reach — the front-end
boundedness that makes the paper's workloads respond to layout
optimization (DESIGN.md section 2).
"""

from repro.workloads.synth import WorkloadSpec, generate_workload

PRESETS = {
    # The PHP VM: the biggest binary, LTO'd, lots of everything —
    # including indirect tail calls (the non-simple functions visible in
    # the paper's Figure 9 heat map) and exception-heavy request paths.
    "hhvm": WorkloadSpec(
        "hhvm", seed=11, modules=10, workers_per_module=9,
        leaves_per_module=5, iterations=260, hot_entries=3,
        switch_funcs_per_module=1, fptr_funcs_per_module=1,
        itail_funcs_per_module=1, eh_funcs_per_module=1,
        dup_leaf_groups=3, asm_module=True, cold_modulus=101,
        worker_body_scale=1.3,
    ),
    # The social-graph cache: smaller, pointer-chasing, moderate fanout.
    "tao": WorkloadSpec(
        "tao", seed=23, modules=6, workers_per_module=7,
        leaves_per_module=4, iterations=300, hot_entries=2,
        switch_funcs_per_module=1, fptr_funcs_per_module=1,
        eh_funcs_per_module=1, dup_leaf_groups=1, cold_modulus=89,
    ),
    # The load balancer: protocol dispatch (switches) dominates.
    "proxygen": WorkloadSpec(
        "proxygen", seed=37, modules=6, workers_per_module=6,
        leaves_per_module=4, iterations=300, hot_entries=2,
        switch_funcs_per_module=2, fptr_funcs_per_module=1,
        eh_funcs_per_module=0, dup_leaf_groups=1, cold_modulus=97,
        input_kind="bursty",
    ),
    # News-feed retrieval/ranking: two differently-shaped services.
    "multifeed1": WorkloadSpec(
        "multifeed1", seed=41, modules=5, workers_per_module=8,
        leaves_per_module=3, iterations=300, hot_entries=2,
        switch_funcs_per_module=1, fptr_funcs_per_module=0,
        eh_funcs_per_module=1, cold_modulus=83, worker_body_scale=1.2,
    ),
    "multifeed2": WorkloadSpec(
        "multifeed2", seed=43, modules=5, workers_per_module=6,
        leaves_per_module=4, iterations=340, hot_entries=3,
        switch_funcs_per_module=1, fptr_funcs_per_module=1,
        eh_funcs_per_module=0, cold_modulus=113, input_kind="skewed",
    ),
    # The Clang/GCC analog: many small branchy functions, deep call
    # chains, switch-heavy (a compiler's dispatch-over-AST shape), and
    # behaviour that shifts with the input mix.
    "compiler": WorkloadSpec(
        "compiler", seed=71, modules=12, workers_per_module=10,
        leaves_per_module=5, iterations=220, hot_entries=4,
        switch_funcs_per_module=2, fptr_funcs_per_module=1,
        itail_funcs_per_module=0, eh_funcs_per_module=1,
        dup_leaf_groups=2, cold_modulus=107, worker_body_scale=0.8,
        cross_module_fraction=0.5,
    ),
    # A small fast variant for tests.
    "mini": WorkloadSpec(
        "mini", seed=5, modules=2, workers_per_module=4,
        leaves_per_module=3, iterations=120, hot_entries=2,
        switch_funcs_per_module=1, fptr_funcs_per_module=1,
        eh_funcs_per_module=1, dup_leaf_groups=1, cold_modulus=41,
    ),
}

#: The five data-center workloads of the paper's Figure 5 (HHVM is the
#: one built with LTO, per section 6.1).
FACEBOOK_NAMES = ("hhvm", "tao", "proxygen", "multifeed1", "multifeed2")


def make_workload(name, **overrides):
    spec = PRESETS[name]
    if overrides:
        spec = spec.copy(**overrides)
    return generate_workload(spec)


def facebook_workloads(**overrides):
    """The Figure 5 set: {name: Workload}."""
    return {name: make_workload(name, **overrides) for name in FACEBOOK_NAMES}


def compiler_workload(**overrides):
    """The Clang/GCC-analog workload (Figures 7, 8, 10; Table 2)."""
    return make_workload("compiler", **overrides)
