"""Feedback-directed optimization: attaching profiles to fresh IR.

Two profile flavours, matching the paper's taxonomy (sections 2.1/2.2):

* :class:`EdgeProfile` — exact block counts from an instrumented run
  (PGO).  Exact *per pre-inline block*, but context-insensitive: all
  callers of a function contribute to the same counters, so the branch
  bias of Figure 2 is averaged away.
* :class:`SourceProfile` — per-(file, line) sample counts mapped back
  through debug info (AutoFDO).  Context-insensitive *and* approximate:
  edge counts must be re-inferred from flow equations (the 84-93%
  accuracy regime of Chen et al. the paper cites).
"""

from repro.ir.instrument import derive_edge_counts
from repro.ir.passes import split_critical_edges


class EdgeProfile:
    """Exact block counts keyed by (function link name, block name)."""

    def __init__(self, block_counts=None):
        self.block_counts = dict(block_counts or {})

    def count(self, func_link, block_name):
        return self.block_counts.get((func_link, block_name), 0)

    def total(self):
        return sum(self.block_counts.values())

    def __len__(self):
        return len(self.block_counts)


class SourceProfile:
    """Sample counts keyed by (file, line) — the AutoFDO view."""

    def __init__(self, line_counts=None):
        self.line_counts = dict(line_counts or {})

    def count(self, loc):
        if loc is None:
            return 0
        return self.line_counts.get(loc, 0)

    def total(self):
        return sum(self.line_counts.values())

    def __len__(self):
        return len(self.line_counts)


def attach_edge_profile(func, profile):
    """Attach an instrumented profile to a *fresh* (unoptimized) IR
    function.  Must run right after IR construction: the block names are
    matched against the instrumented build's pre-optimization CFG."""
    split_critical_edges(func)
    link = func.link_name()
    for name, block in func.blocks.items():
        block.count = profile.count(link, name)
    func.entry_count = func.blocks[func.entry].count
    func.edge_counts = derive_edge_counts(
        func, {name: block.count for name, block in func.blocks.items()})
    return func


def attach_source_profile(func, profile):
    """Attach an AutoFDO profile: block counts from line samples, edge
    counts *inferred* (lossy) from flow equations."""
    split_critical_edges(func)
    for block in func.blocks.values():
        count = 0
        for inst in block.insts + [block.terminator]:
            count = max(count, profile.count(inst.loc))
        block.count = count
    func.entry_count = func.blocks[func.entry].count
    func.edge_counts = _infer_edges(func)
    return func


def _infer_edges(func):
    """Heuristic edge-count inference from block counts alone.

    Outgoing flow of each block is distributed across successors
    proportionally to the successors' block counts — the kind of
    approximation non-LBR/AutoFDO pipelines must make (paper 5.2).
    """
    counts = {name: (block.count or 0) for name, block in func.blocks.items()}
    edges = {}
    for name, block in func.blocks.items():
        succs = block.successors()
        if not succs:
            continue
        src = counts[name]
        weights = [counts[s] for s in succs]
        total = sum(weights)
        if total == 0:
            share = [src // len(succs)] * len(succs)
        else:
            share = [int(src * w / total) for w in weights]
        for succ, flow in zip(succs, share):
            edges[(name, succ)] = edges.get((name, succ), 0) + flow
    return edges


def collect_edge_profile(machine, counter_keys):
    """Read PGO counters out of a finished instrumented run."""
    raw = machine.peek_array("__profc", len(counter_keys))
    return EdgeProfile({key: value for key, value in zip(counter_keys, raw)})
