"""The compiler driver."""

from repro.belf import (
    Binary,
    Section,
    SectionFlag,
    SectionType,
    Symbol,
    SymbolBind,
    SymbolType,
)
from repro.codegen import CodegenOptions, emit_object, select_function
from repro.ir import (
    build_module,
    inline_module,
    InlinePolicy,
    layout_blocks,
    optimize_module,
)
from repro.ir.instrument import instrument_module
from repro.compiler.fdo import (
    EdgeProfile,
    SourceProfile,
    attach_edge_profile,
    attach_source_profile,
)
from repro.lang import parse_module, check_module
from repro.linker import link


class BuildOptions:
    """End-to-end build configuration."""

    def __init__(
        self,
        opt_level=2,
        lto=False,
        instrument=False,
        profile=None,
        codegen=None,
        inline=None,
    ):
        self.opt_level = opt_level
        self.lto = lto
        self.instrument = instrument
        self.profile = profile
        self.codegen = codegen or CodegenOptions()
        self.inline = inline or InlinePolicy()

    def copy(self, **overrides):
        out = BuildOptions(
            opt_level=self.opt_level,
            lto=self.lto,
            instrument=self.instrument,
            profile=self.profile,
            codegen=self.codegen,
            inline=self.inline,
        )
        for key, value in overrides.items():
            setattr(out, key, value)
        return out


class CompileResult:
    """Objects plus build metadata."""

    def __init__(self, objects, counter_keys=None, ir_modules=None):
        self.objects = objects
        self.counter_keys = counter_keys or []
        self.ir_modules = ir_modules or []


def build_ir(sources):
    """Parse + check + lower each (name, text) source to an IRModule."""
    modules = []
    for name, text in sources:
        ast = parse_module(text, name)
        info = check_module(ast)
        modules.append(build_module(ast, info))
    return modules


def compile_program(sources, options=None):
    """Compile source modules to relocatable objects.

    Phase order matters and mirrors real FDO pipelines:

    1. lower to IR;
    2. attach profile (or insert instrumentation) on the *fresh* IR,
       keyed by stable pre-optimization block names / source lines;
    3. inline (same-module, or cross-module with LTO), scaling counts;
    4. -O2 cleanup passes;
    5. profile-guided block layout;
    6. instruction selection + object emission.
    """
    options = options or BuildOptions()
    modules = build_ir(sources)

    counter_keys = []
    use_profile = options.profile is not None
    if options.instrument:
        for module in modules:
            counter_keys.extend(instrument_module(module, len(counter_keys)))
    elif isinstance(options.profile, EdgeProfile):
        for module in modules:
            for func in module.functions.values():
                attach_edge_profile(func, options.profile)
    elif isinstance(options.profile, SourceProfile):
        for module in modules:
            for func in module.functions.values():
                attach_source_profile(func, options.profile)

    if options.opt_level >= 2:
        inline_module(modules, policy=options.inline, lto=options.lto,
                      use_profile=use_profile)
    for module in modules:
        optimize_module(module, level=options.opt_level)
        if use_profile:
            for func in module.functions.values():
                layout_blocks(func)

    objects = []
    for module in modules:
        machine_funcs = [
            select_function(func, options.codegen)
            for func in module.functions.values()
        ]
        objects.append(emit_object(module, machine_funcs, options.codegen))
    if options.instrument:
        objects.append(make_counter_object(len(counter_keys)))
    return CompileResult(objects, counter_keys=counter_keys, ir_modules=modules)


def make_counter_object(num_counters):
    """A synthetic object providing the global __profc counter array."""
    binary = Binary(kind="object", name="__profc_module")
    section = Section(".bss", type=SectionType.NOBITS,
                      flags=SectionFlag.ALLOC | SectionFlag.WRITE,
                      align=8, mem_size=8 * max(1, num_counters))
    binary.add_section(section)
    binary.add_symbol(Symbol("__profc", value=0, size=8 * max(1, num_counters),
                             type=SymbolType.OBJECT, bind=SymbolBind.GLOBAL,
                             section=".bss"))
    return binary


def build_executable(sources, options=None, libs=(), lib_options=None,
                     name="a.out", entry="main", emit_relocs=False,
                     function_order=None, icf=False):
    """Compile and link in one step.

    ``libs``: extra source module lists compiled separately and linked
    as PIC libraries (their exports are called through the PLT).
    Returns (executable Binary, CompileResult).
    """
    options = options or BuildOptions()
    result = compile_program(sources, options)
    lib_objects = []
    if libs:
        lib_result = compile_program(libs, lib_options or BuildOptions())
        lib_objects = lib_result.objects
    exe = link(result.objects, libs=lib_objects, name=name, entry=entry,
               emit_relocs=emit_relocs, function_order=function_order,
               icf=icf)
    return exe, result
