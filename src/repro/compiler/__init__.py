"""Compiler driver: source modules -> BELF objects/executables.

Supports the build modes the paper's evaluation compares (section 6):

* plain ``-O2`` (the baseline),
* instrumented PGO (``-fprofile-generate``/``-fprofile-use`` analog),
* sample-based AutoFDO (profile mapped back through debug line info),
* LTO (cross-module inlining),

in any combination — so the harness can construct every build
configuration in Figures 7 and 8 (BOLT, PGO, PGO+LTO, PGO+LTO+BOLT).
"""

from repro.compiler.driver import (
    BuildOptions,
    compile_program,
    build_ir,
    build_executable,
    make_counter_object,
    CompileResult,
)
from repro.compiler.fdo import (
    attach_edge_profile,
    attach_source_profile,
    EdgeProfile,
    SourceProfile,
    collect_edge_profile,
)

__all__ = [
    "BuildOptions",
    "compile_program",
    "build_ir",
    "build_executable",
    "make_counter_object",
    "CompileResult",
    "attach_edge_profile",
    "attach_source_profile",
    "EdgeProfile",
    "SourceProfile",
    "collect_edge_profile",
]
