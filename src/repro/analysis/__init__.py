"""repro.analysis — static analysis, lint, and translation validation.

A standalone subsystem layered on the CFG/dataflow core:

* :mod:`repro.analysis.absint` — generic worklist abstract
  interpretation (forward/backward, lattice joins, per-block transfer
  functions).
* :mod:`repro.analysis.checkers` — IR-level checkers (stack height,
  callee-saved preservation, flags use-before-def, unreachable code,
  fall-through layout, jump-table soundness).
* :mod:`repro.analysis.binlint` — whole-binary lint over metadata,
  decode, and reconstructed CFGs.
* :mod:`repro.analysis.validation` — pre- vs post-rewrite translation
  validation (the ``--validate static`` tier).
* :mod:`repro.analysis.rules` — stable rule IDs (``BL001``...),
  severities, suppression, JSON reports.
"""

from repro.analysis.absint import (
    BOTTOM,
    TOP,
    AnalysisError,
    BlockResult,
    FlatLattice,
    Lattice,
    SetLattice,
    TupleLattice,
    solve,
)
from repro.analysis.binlint import lint_binary, lint_context
from repro.analysis.checkers import check_function
from repro.analysis.rules import (
    RULES,
    Finding,
    LintReport,
    parse_suppressions,
)
from repro.analysis.validation import validate_translation

__all__ = [
    "AnalysisError",
    "BlockResult",
    "BOTTOM",
    "check_function",
    "Finding",
    "FlatLattice",
    "Lattice",
    "lint_binary",
    "lint_context",
    "LintReport",
    "parse_suppressions",
    "RULES",
    "SetLattice",
    "solve",
    "TOP",
    "TupleLattice",
    "validate_translation",
]
