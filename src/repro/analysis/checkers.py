"""IR-level lint checkers: abstract interpretation over one function.

Each checker proves a per-path invariant over the reconstructed CFG
with a deliberately *flat* abstract domain, so it only reports
violations that hold on every abstract execution reaching the faulty
point — ``TOP`` (unknown/conflicting) never fires a finding.  That
makes the checkers safe to run as a default-on post-pass gate: a
correct pipeline produces zero findings, and a pass that breaks an
invariant (dropping a restore, unbalancing the stack, breaking the
layout contract) produces a stable ``BL0xx`` rule hit that the
rewriter contains with PR 1's demote-to-raw machinery.

Checkers consume ``func.analysis_facts`` that passes record about
their own transformations (shrink-wrapping's moved saves, frame-opts'
removed stores, SCTC's conditional tail calls), cross-checking the
facts against what the IR actually contains.
"""

from repro.analysis.absint import (
    BOTTOM,
    TOP,
    AnalysisError,
    BlockResult,
    FlatLattice,
    TupleLattice,
    solve,
)
from repro.analysis.rules import Finding
from repro.core.dataflow import FLAGS, insn_uses_defs
from repro.core.emitter import COLD_SUFFIX
from repro.core.validate import ValidationError, validate_function
from repro.isa import Op, RBP, RSP


def _is_cold_fragment(func):
    """A re-discovered ``.cold.0`` split fragment starts mid-frame, so
    entry-state assumptions (stack height 0, callee-saved registers
    pristine, flags dead) do not hold for it."""
    return func.name.endswith(COLD_SUFFIX)


def check_function(func):
    """Run every IR checker; returns a list of Findings."""
    if not func.is_simple or not func.blocks:
        return []
    findings = []
    for checker in (_check_structure, _check_unreachable,
                    _check_fallthrough, _check_jump_tables,
                    _check_stack_height, _check_callee_saved,
                    _check_flags, _check_pass_facts):
        try:
            findings.extend(checker(func))
        except AnalysisError:
            # Conservative: a non-converging analysis proves nothing.
            continue
    return findings


# ---------------------------------------------------------------------------
# Structural checkers (no abstract interpretation needed)
# ---------------------------------------------------------------------------


def _check_structure(func):
    """BL007: the validate_function structural invariants."""
    try:
        validate_function(func)
    except ValidationError as exc:
        return [Finding("BL007", str(exc), function=func.name)]
    return []


def _check_unreachable(func):
    """BL004: blocks unreachable from the entry."""
    if func.entry_label not in func.blocks:
        return []
    # Tolerant traversal: a dangling successor is BL007's finding, not
    # a reason to crash this checker.
    reachable = set()
    stack = [func.entry_label]
    while stack:
        label = stack.pop()
        if label in reachable or label not in func.blocks:
            continue
        reachable.add(label)
        node = func.blocks[label]
        stack.extend(node.successors)
        stack.extend(node.landing_pads)
    return [
        Finding("BL004", f"block {label} is unreachable from the entry",
                function=func.name, block=label)
        for label, block in func.blocks.items()
        if label not in reachable
        # Alignment padding between a terminator and the next branch
        # target decodes as an empty / nop-only block; that is layout
        # residue, not dead code.
        and any(not insn.is_nop for insn in block.insns)
    ]


def _check_fallthrough(func):
    """BL005: fall-through edges must be physically honored.

    After fixup-branches, any block that does not end in a terminator
    must be immediately followed (in layout order, within the same
    hot/cold region) by its fall-through successor; the final block of
    each region must end in a true terminator.
    """
    findings = []
    layout = func.layout()
    for index, block in enumerate(layout):
        last = block.insns[-1] if block.insns else None
        if last is not None and last.is_terminator:
            continue
        nxt = layout[index + 1] if index + 1 < len(layout) else None
        if nxt is not None and nxt.is_cold != block.is_cold:
            nxt = None  # region boundary: nothing to fall into
        ft = block.fallthrough_label
        if ft is None:
            findings.append(Finding(
                "BL005",
                f"block {block.label} ends in "
                f"{last.mnemonic() if last else '<empty>'} without a "
                f"fall-through successor: control runs off the end",
                function=func.name, block=block.label))
        elif nxt is None or nxt.label != ft:
            where = nxt.label if nxt is not None else "end of region"
            findings.append(Finding(
                "BL005",
                f"block {block.label} falls through to {ft} but is "
                f"followed by {where}",
                function=func.name, block=block.label))
    return findings


def _check_jump_tables(func):
    """BL006: every jump-table entry lands on a real block head."""
    findings = []
    labels = set(func.blocks)
    for block in func.blocks.values():
        for insn in block.insns:
            if insn.op != Op.JMP_REG:
                continue
            table = insn.get_annotation("jump-table")
            if table is None:
                continue
            bad = [e for e in table.entries if e not in labels]
            if bad:
                findings.append(Finding(
                    "BL006",
                    f"jump table at {table.address:#x}: entries "
                    f"{bad} are not block heads",
                    function=func.name, block=block.label))
                continue
            if set(block.successors) != set(table.entries):
                findings.append(Finding(
                    "BL006",
                    f"jump table at {table.address:#x}: CFG successors "
                    f"{sorted(set(block.successors))} disagree with "
                    f"table entries {sorted(set(table.entries))}",
                    function=func.name, block=block.label))
            if table.size != 8 * len(table.entries):
                findings.append(Finding(
                    "BL006",
                    f"jump table at {table.address:#x}: size "
                    f"{table.size} does not cover {len(table.entries)} "
                    f"entries",
                    function=func.name, block=block.label))
    return findings


def _check_pass_facts(func):
    """Cross-check facts passes recorded against what the IR contains.

    frame-opts' removed-store fact is checked against the callee-saved
    save slots (a removed save slot would strand the unwinder); SCTC's
    conditional-tail-call fact must still be visible as a symbolic
    conditional branch in the named block.
    """
    findings = []
    facts = func.analysis_facts

    removed = facts.get("frame-opts-removed", ())
    if removed and func.frame_record is not None:
        protected = {-offset for _, offset in func.frame_record.saved_regs}
        bad = sorted(set(removed) & protected)
        if bad:
            findings.append(Finding(
                "BL002",
                f"frame-opts removed store(s) to callee-saved save "
                f"slot(s) {bad} that the frame record still declares",
                function=func.name))

    for label in facts.get("sctc", ()):
        block = func.blocks.get(label)
        if block is None:
            continue  # the block itself was legitimately merged away
        present = any(insn.is_cond_branch and insn.sym is not None
                      for insn in block.insns)
        if not present:
            findings.append(Finding(
                "BL007",
                f"SCTC recorded a conditional tail call in {label}, "
                f"but no symbolic conditional branch is there",
                function=func.name, block=label))
    return findings


# ---------------------------------------------------------------------------
# Stack-height consistency (BL001)
# ---------------------------------------------------------------------------


def _is_cold_transfer(name):
    """A branch to a split-function cold fragment (or back to its hot
    parent) is a layout-level transfer inside one logical function, not
    a tail call: the frame is intentionally live across it."""
    return isinstance(name, str) and name.endswith(COLD_SUFFIX)


def _is_tail_call(insn):
    ann = insn.get_annotation("tailcall", "!")
    if ann != "!":
        return not _is_cold_transfer(ann)
    if insn.is_branch and insn.sym is not None:
        return not _is_cold_transfer(getattr(insn.sym, "name", insn.sym))
    return False


def _stack_step(insn, state, sink=None, func=None, block=None):
    """Abstractly execute one instruction over (height, saved rbp height).

    ``height`` is bytes pushed since function entry (concrete int or
    TOP); ``rbp_height`` is the height captured by ``mov rbp, rsp``.
    When ``sink`` is given, definite violations are appended to it.
    """
    h, rbp_h = state
    op = insn.op

    def report(message):
        if sink is not None:
            sink.append(Finding("BL001", message, function=func.name,
                                block=block.label,
                                address=insn.address))

    if insn.is_return or _is_tail_call(insn):
        if isinstance(h, int) and h != 0:
            kind = "returns" if insn.is_return else "tail-calls"
            report(f"{kind} with {h} byte(s) left on the stack "
                   f"(unbalanced push/pop or missing epilogue)")
        return h, rbp_h

    if op == Op.PUSH:
        return (h + 8 if isinstance(h, int) else h), rbp_h
    if op == Op.POP:
        if isinstance(h, int):
            h -= 8
            if h < 0:
                report("pops below the incoming stack pointer")
                h = TOP
        if insn.regs and insn.regs[0] == RBP:
            rbp_h = TOP
        elif insn.regs and insn.regs[0] == RSP:
            h = TOP
        return h, rbp_h
    if op == Op.SUB_RI and insn.regs and insn.regs[0] == RSP:
        return (h + insn.imm if isinstance(h, int) else h), rbp_h
    if op == Op.ADD_RI and insn.regs and insn.regs[0] == RSP:
        if isinstance(h, int):
            h -= insn.imm
            if h < 0:
                report("releases more stack than was allocated")
                h = TOP
        return h, rbp_h
    if op == Op.MOV_RR and insn.regs == (RSP, RBP):
        return rbp_h, rbp_h                     # mov rsp, rbp (epilogue)
    if op == Op.MOV_RR and insn.regs == (RBP, RSP):
        return h, h                             # mov rbp, rsp (prologue)
    if insn.is_call:
        return h, rbp_h                         # balanced by convention

    _, defs = insn_uses_defs(insn)
    if RSP in defs:
        h = TOP
    if RBP in defs:
        rbp_h = TOP
    return h, rbp_h


def _check_stack_height(func):
    lattice = TupleLattice(FlatLattice(), FlatLattice())

    def transfer(block, state):
        edge_states = {}
        for insn in block.insns:
            if insn.is_call and block.landing_pads:
                lp = insn.get_annotation("lp")
                targets = [lp] if lp is not None else block.landing_pads
                # Unwinding resumes with the frame as it was at the call.
                for target in targets:
                    prev = edge_states.get(target, lattice.bottom())
                    edge_states[target] = lattice.join(prev, state)
            state = _stack_step(insn, state)
        return BlockResult(state, edge_states)

    # A cold fragment is entered mid-frame: its height is unknown.
    entry_height = TOP if _is_cold_fragment(func) else 0
    in_states, _ = solve(func, lattice, transfer,
                         boundary=(entry_height, TOP))

    findings = []
    bottom = lattice.bottom()
    for label, block in func.blocks.items():
        state = in_states.get(label, bottom)
        if state == bottom:
            continue  # unreachable: BL004's business
        for insn in block.insns:
            state = _stack_step(insn, state, sink=findings, func=func,
                                block=block)
    return findings


# ---------------------------------------------------------------------------
# Callee-saved preservation (BL002)
# ---------------------------------------------------------------------------

_ORIG, _DIRTY = "orig", "dirty"
_EMPTY, _SAVED = "empty", "saved"


def _saved_reg_step(insn, state, reg, offset):
    """(register state, save-slot state) across one instruction."""
    r, s = state
    op = insn.op
    if op == Op.STORE and insn.regs == (RBP, reg) and insn.disp == -offset:
        return r, (_SAVED if r == _ORIG else TOP)
    if op == Op.LOAD and insn.regs == (reg, RBP) and insn.disp == -offset:
        return (_ORIG if s == _SAVED else TOP), s
    if op == Op.STORE and insn.regs[0] == RBP and insn.disp == -offset:
        return r, TOP                       # another register overwrote it
    if op in (Op.STORE, Op.STOREIDX, Op.STORE_ABS) \
            and not (op == Op.STORE and insn.regs[0] == RBP):
        return r, TOP                       # untracked memory write
    _, defs = insn_uses_defs(insn)
    if reg in defs:
        return _DIRTY, s
    return r, s


def _check_callee_saved(func):
    from repro.core.dataflow import stack_slot_accesses

    record = func.frame_record
    if record is None or not record.saved_regs:
        return []
    if _is_cold_fragment(func):
        # Saves happen in the hot parent; no entry invariant holds here.
        return []
    _, _, escapes = stack_slot_accesses(func)
    if escapes:
        return []  # rbp escapes: slot tracking would be unsound

    findings = []
    facts = func.analysis_facts.get("shrink-wrap", {})
    from repro.isa.registers import reg_name

    for reg, offset in record.saved_regs:
        # Cross-check the shrink-wrapping fact: if the pass claims the
        # save moved into a block, the store must actually be there.
        moved_to = facts.get(reg)
        if moved_to is not None:
            home = func.blocks.get(moved_to)
            present = home is not None and any(
                insn.op == Op.STORE and insn.regs == (RBP, reg)
                and insn.disp == -offset for insn in home.insns)
            if not present:
                findings.append(Finding(
                    "BL002",
                    f"shrink-wrapping recorded %{reg_name(reg)}'s save "
                    f"moved to {moved_to}, but no save store is there",
                    function=func.name, block=moved_to))

        lattice = TupleLattice(FlatLattice(), FlatLattice())

        def transfer(block, state, reg=reg, offset=offset):
            for insn in block.insns:
                state = _saved_reg_step(insn, state, reg, offset)
            return state

        in_states, _ = solve(func, lattice, transfer,
                             boundary=(_ORIG, _EMPTY))
        bottom = lattice.bottom()
        for label, block in func.blocks.items():
            state = in_states.get(label, bottom)
            if state == bottom:
                continue
            for insn in block.insns:
                if (insn.is_return or _is_tail_call(insn)) \
                        and state[0] == _DIRTY:
                    findings.append(Finding(
                        "BL002",
                        f"exits with callee-saved %{reg_name(reg)} "
                        f"clobbered and not restored from its save slot "
                        f"(rbp{-offset:+#x})",
                        function=func.name, block=label,
                        address=insn.address))
                    break
                state = _saved_reg_step(insn, state, reg, offset)
    return findings


# ---------------------------------------------------------------------------
# Flags use-before-def (BL003)
# ---------------------------------------------------------------------------

_FLAG_DEFS = frozenset({Op.CMP_RR, Op.CMP_RI, Op.TEST_RR, Op.TEST_RI})
_FLAG_USES = frozenset({Op.JCC_SHORT, Op.JCC_LONG, Op.SETCC})
_UNDEF, _DEF = "undef", "def"


def _flags_step(insn, state):
    if insn.op in _FLAG_DEFS:
        return _DEF
    if insn.is_call:
        return _UNDEF  # calls clobber flags (ABI)
    _, defs = insn_uses_defs(insn)
    if FLAGS in defs:
        return _DEF
    return state


def _check_flags(func):
    lattice = FlatLattice()

    def transfer(block, state):
        edge_states = {}
        for insn in block.insns:
            state = _flags_step(insn, state)
            if insn.is_call and block.landing_pads:
                lp = insn.get_annotation("lp")
                for target in ([lp] if lp is not None
                               else block.landing_pads):
                    prev = edge_states.get(target, BOTTOM)
                    edge_states[target] = lattice.join(prev, state)
        return BlockResult(state, edge_states)

    # Flags set in the hot parent may be live on entry to a cold
    # fragment (a conditional branch can target it directly).
    boundary = TOP if _is_cold_fragment(func) else _UNDEF
    in_states, _ = solve(func, lattice, transfer, boundary=boundary)

    findings = []
    for label, block in func.blocks.items():
        state = in_states.get(label, BOTTOM)
        if state is BOTTOM:
            continue
        for insn in block.insns:
            if insn.op in _FLAG_USES and state == _UNDEF:
                findings.append(Finding(
                    "BL003",
                    f"{insn.mnemonic()} consumes flags that no path "
                    f"defines (missing compare, or clobbered by a call)",
                    function=func.name, block=label,
                    address=insn.address))
                break  # one report per block is plenty
            state = _flags_step(insn, state)
    return findings
