"""Translation validation: prove the emitted bytes match the optimized IR.

The structural gate (PR 1) checks that the output binary is *well
formed*; this module checks that it is *the right binary*: for every
simple function the rewrite emitted, the bytes actually placed in the
output are decoded again and matched block-by-block against the
optimized CFG — CFG isomorphism modulo layout:

* every IR block must appear at its fragment label's address
  (``BL204`` otherwise);
* each block's decoded instruction sequence must semantically match
  the IR sequence (``BL201``): opcodes and operands are normalized so
  branch relaxation (short/near forms), alignment NOPs, cross-fragment
  branch symbolization, and jump-table relocation all compare equal,
  while any real divergence — a flipped opcode, a branch bent to the
  wrong block, a lost instruction — does not;
* fall-through edges must be physically honored by the emitted layout,
  and the decoded edge set must equal the IR edge set (``BL202``);
* every jump-table slot must hold the entry block's final address
  (``BL203``).

The comparison anchors on the emission fragments (``result.fragments``)
rather than a blind re-disassembly: split functions transfer between
their hot and cold fragments in ways a from-scratch CFG reconstruction
cannot always re-prove, but the fragment label tables are exactly the
correspondence witness the rewriter used to patch addresses.
"""

from repro.analysis.rules import Finding
from repro.isa import Op
from repro.isa.decoding import DecodeError, decode_stream

_JMP_OPS = (Op.JMP_SHORT, Op.JMP_NEAR)


def validate_translation(context, out, fragments, skip=()):
    """Match every emitted function against its IR; returns Findings."""
    if not fragments:
        return []
    from repro.core.emitter import COLD_SUFFIX
    from repro.core.rewriter import _Resolver

    resolver = _Resolver(context, fragments)
    findings = []
    for name, func in context.functions.items():
        if name in skip or func.is_folded or not func.is_simple \
                or not func.blocks:
            continue
        hot = fragments.get(name)
        if hot is None or hot.raw:
            continue  # raw bytes are validated by the structural tier
        cold = fragments.get(name + COLD_SUFFIX)
        findings.extend(
            _validate_function(func, out, hot, cold, resolver))
        if len(findings) > 100:
            break  # enough evidence; don't drown the report
    return findings


def block_semantic_hash(insns, normalize):
    """Order-sensitive hash of a normalized instruction sequence."""
    return hash(tuple(normalize(insn) for insn in insns
                      if not insn.is_nop))


def _validate_function(func, out, hot, cold, resolver):
    findings = []
    name = func.name

    # The correspondence witness: block label -> emitted address.
    label_addr = {}
    for frag in (hot, cold):
        if frag is None:
            continue
        for label, offset in frag.image.labels.items():
            label_addr[label] = frag.address + offset
    addr_label = {v: k for k, v in label_addr.items()}

    for block in func.blocks.values():
        if block.label not in label_addr:
            findings.append(Finding(
                "BL204",
                f"block {block.label} exists in the IR but was never "
                f"emitted", function=name, block=block.label))
    if findings:
        return findings

    # Decode each fragment's bytes from the *output* sections.
    chunks = {}   # block label -> decoded insns
    order = {}    # frag -> [labels in emitted order]
    for frag in (hot, cold):
        if frag is None:
            continue
        section = out.section_at(frag.address)
        if section is None:
            findings.append(Finding(
                "BL204",
                f"fragment {frag.name} at {frag.address:#x} landed "
                f"outside every output section", function=name))
            return findings
        start = frag.address - section.addr
        try:
            insns = decode_stream(section.data, start, start + frag.size,
                                  base_address=frag.address)
        except DecodeError as exc:
            findings.append(Finding(
                "BL201", f"emitted bytes do not decode: {exc}",
                function=name))
            return findings
        # Sort by offset only (stable): empty blocks share an offset
        # with their successor and must keep their emission order, or
        # the successor's instructions would be attributed to them.
        cuts = sorted(((offset, label)
                       for label, offset in frag.image.labels.items()),
                      key=lambda cut: cut[0])
        order[frag] = [label for _, label in cuts]
        bounds = [offset for offset, _ in cuts] + [frag.size]
        for (lo, label), hi in zip(cuts, bounds[1:]):
            chunks[label] = [
                i for i in insns
                if lo <= i.address - frag.address < hi
            ]

    ir_norm = _IRNormalizer(func, label_addr, resolver)
    canon = _empty_block_canonicalizer(func)
    for block in func.blocks.values():
        findings.extend(_match_block(
            func, block, chunks.get(block.label, []), ir_norm,
            addr_label, canon))
        if findings:
            return findings  # first divergence per function is enough

    findings.extend(_check_layout(func, hot, cold, order))
    findings.extend(_check_tables(func, out, label_addr))
    return findings


def _empty_block_canonicalizer(func):
    """Collapse instruction-less blocks onto their fall-through target.

    An empty block is emitted at the same address as the block after
    it, so a decoded branch to that address is ambiguous between the
    two labels; comparing edges modulo empty-block chains removes the
    ambiguity without weakening the check (an empty block transfers
    control unconditionally to its fall-through).
    """
    cache = {}

    def canon(label):
        chain = []
        current = label
        while current not in cache:
            block = func.blocks.get(current)
            if (block is None or current in chain
                    or block.fallthrough_label is None
                    or any(not insn.is_nop for insn in block.insns)):
                cache[current] = current
                break
            chain.append(current)
            current = block.fallthrough_label
        result = cache[current]
        for seen in chain:
            cache[seen] = result
        return result

    return canon


def _match_block(func, block, emitted, ir_norm, addr_label, canon):
    expect = [i for i in block.insns if not i.is_nop]
    got = [i for i in emitted if not i.is_nop]
    name = func.name
    if len(expect) != len(got):
        return [Finding(
            "BL201",
            f"block {block.label}: IR has {len(expect)} "
            f"instruction(s), output has {len(got)}",
            function=name, block=block.label)]
    findings = []
    for index, (e, g) in enumerate(zip(expect, got)):
        ne = ir_norm.normalize(e)
        ng = _norm_decoded(g)
        if ne != ng:
            findings.append(Finding(
                "BL201",
                f"block {block.label} instruction {index}: IR says "
                f"{e}, output bytes say {g}",
                function=name, block=block.label, address=g.address))
            return findings

    # Edge-count conservation: the decoded edge set must equal the
    # IR successor set (intra-function edges only).
    derived = set()
    for g in got:
        if g.is_branch and g.target in addr_label:
            derived.add(addr_label[g.target])
        if g.op == Op.JMP_REG:
            derived = derived | set(block.successors)  # via BL203/BL006
    if block.fallthrough_label is not None:
        derived.add(block.fallthrough_label)
    derived = {canon(label) for label in derived}
    if derived != {canon(label) for label in block.successors}:
        findings.append(Finding(
            "BL202",
            f"block {block.label}: decoded edges {sorted(derived)} != "
            f"IR edges {sorted(set(block.successors))}",
            function=name, block=block.label))
    return findings


def _check_layout(func, hot, cold, order):
    """BL202: fall-through adjacency in the emitted fragment layout."""
    findings = []
    for frag in (hot, cold):
        if frag is None:
            continue
        labels = order.get(frag, [])
        for index, label in enumerate(labels):
            block = func.blocks.get(label)
            if block is None:
                continue
            last = next((i for i in reversed(block.insns)
                         if not i.is_nop), None)
            if last is not None and last.is_terminator:
                continue
            ft = block.fallthrough_label
            if ft is None:
                continue  # BL005's business (IR-side defect)
            nxt = labels[index + 1] if index + 1 < len(labels) else None
            if nxt != ft:
                findings.append(Finding(
                    "BL202",
                    f"block {label} falls through to {ft} but the "
                    f"emitted layout places "
                    f"{nxt or 'the fragment end'} next",
                    function=func.name, block=label))
    return findings


def _check_tables(func, out, label_addr):
    """BL203: emitted jump-table slots point at the final addresses."""
    findings = []
    for table in func.jump_tables:
        base = getattr(table, "moved_to", None) or table.address
        section = out.section_at(base)
        if section is None:
            findings.append(Finding(
                "BL203",
                f"jump table at {base:#x} is outside every output "
                f"section", function=func.name))
            continue
        for index, label in enumerate(table.entries):
            want = label_addr.get(label)
            offset = base + 8 * index - section.addr
            raw = bytes(section.data[offset : offset + 8])
            have = int.from_bytes(raw, "little") if len(raw) == 8 else None
            if want is None or have != want:
                findings.append(Finding(
                    "BL203",
                    f"jump table at {base:#x} slot {index} holds "
                    f"{have:#x} but {label} was emitted at "
                    f"{want if want is not None else 0:#x}",
                    function=func.name, address=base + 8 * index))
                break
    return findings


# ---------------------------------------------------------------------------
# Instruction normalization
# ---------------------------------------------------------------------------

_MISSING = object()   # never equal to any resolved address


class _IRNormalizer:
    def __init__(self, func, label_addr, resolver):
        self.label_addr = label_addr
        self.resolver = resolver
        self.moved_tables = {
            t.address: t.moved_to for t in func.jump_tables
            if getattr(t, "moved_to", None) is not None
        }

    def _sym_value(self, sym):
        value = self.resolver.resolve_or_none(sym.name)
        if value is None:
            return _MISSING
        addend = sym.addend
        if isinstance(addend, tuple) and addend and addend[0] == "label":
            target = self.resolver.fragments.get(sym.name)
            if target is None or addend[1] not in target.image.labels:
                return _MISSING
            return value + target.image.labels[addend[1]]
        return value + addend

    def _branch_target(self, insn):
        if insn.label is not None:
            return self.label_addr.get(insn.label, _MISSING)
        if insn.sym is not None:
            return self._sym_value(insn.sym)
        return insn.target

    def normalize(self, insn):
        op = insn.op
        if insn.is_cond_branch:
            return ("jcc", insn.cc, self._branch_target(insn))
        if op in _JMP_OPS:
            return ("jmp", self._branch_target(insn))
        if op == Op.CALL:
            return ("call", self._branch_target(insn))
        if op in (Op.CALL_MEM, Op.JMP_MEM, Op.LOAD_ABS, Op.STORE_ABS):
            addr = self._sym_value(insn.sym) if insn.sym is not None \
                else insn.addr
            return (op, insn.regs, addr)
        if op == Op.MOV_RI64:
            imm = self._sym_value(insn.sym) if insn.sym is not None \
                else insn.imm
            return (op, insn.regs, imm)
        if op == Op.MOV_RI32:
            if insn.sym is not None:
                imm = self._sym_value(insn.sym)
            else:
                imm = self.moved_tables.get(insn.imm, insn.imm)
            return (op, insn.regs, imm)
        if insn.sym is not None:
            # Generic symbolic immediate (e.g. cmp against an address
            # constant): the output bytes hold the resolved value.
            return (op, insn.regs, self._sym_value(insn.sym), insn.disp)
        return _norm_plain(insn)


def _norm_decoded(insn):
    op = insn.op
    if insn.is_cond_branch:
        return ("jcc", insn.cc, insn.target)
    if op in _JMP_OPS:
        return ("jmp", insn.target)
    if op == Op.CALL:
        return ("call", insn.target)
    if op in (Op.CALL_MEM, Op.JMP_MEM, Op.LOAD_ABS, Op.STORE_ABS):
        return (op, insn.regs, insn.addr)
    if op in (Op.MOV_RI64, Op.MOV_RI32):
        return (op, insn.regs, insn.imm)
    return _norm_plain(insn)


def _norm_plain(insn):
    return (insn.op, insn.regs, insn.imm, insn.disp)
