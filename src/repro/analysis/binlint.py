"""Whole-binary lint: metadata/decode checks plus the IR checkers.

Three tiers, cheapest first:

1. **Metadata** (``BL101``/``BL103``/``BL104``/``BL106``): the entry
   point, every FUNC symbol's bounds, overlaps, and relocation targets
   are validated against the section map and symbol table alone.
2. **Decode** (``BL102``/``BL105``): each function body is decoded
   instruction by instruction; undecodable bytes and symbol sizes that
   cut an instruction (or leave the body without a terminator) are
   distinguished — the classic wrong-``.size``-directive headache of
   the paper's section 3.3 maps to a different rule than a packed or
   data-in-text body.
3. **IR checkers**: CFGs are reconstructed and every function that
   builds as *simple* runs the :mod:`repro.analysis.checkers` suite.

``lint_binary`` is pure (never mutates its input) and is what both the
``lint`` CLI subcommand and the ``--validate static`` gate call.
"""

from repro.analysis.checkers import check_function
from repro.analysis.rules import Finding, LintReport, parse_suppressions
from repro.belf import SymbolType
from repro.isa.decoding import DecodeError, decode

#: Symbols the rewriter may legitimately reference without defining.
_KNOWN_EXTERNAL = ("__abs__",)


def lint_binary(binary, options=None, suppress=()):
    """Lint one binary; returns a :class:`LintReport`."""
    report = LintReport(suppressions=parse_suppressions(suppress))
    _lint_metadata(binary, report)
    _lint_functions(binary, options, report)
    return report


# ---------------------------------------------------------------------------
# Tier 1+2: metadata and decode checks
# ---------------------------------------------------------------------------


def _func_symbols(binary):
    return sorted((s for s in binary.symbols
                   if s.type == SymbolType.FUNC and s.size > 0),
                  key=lambda s: (s.value, s.size))


def _lint_metadata(binary, report):
    if binary.entry:
        section = binary.section_at(binary.entry)
        if section is None or not section.is_exec:
            report.add(Finding(
                "BL101",
                f"entry point {binary.entry:#x} is not in an "
                f"executable section",
                address=binary.entry))

    syms = _func_symbols(binary)

    # Overlaps (exact aliases — ICF folding — are fine).
    for prev, cur in zip(syms, syms[1:]):
        if prev.value == cur.value and prev.size == cur.size:
            continue
        if prev.value + prev.size > cur.value:
            report.add(Finding(
                "BL104",
                f"overlaps {cur.link_name()} "
                f"([{prev.value:#x}, {prev.value + prev.size:#x}) vs "
                f"[{cur.value:#x}, {cur.value + cur.size:#x}))",
                function=prev.link_name(), address=prev.value))

    # Bounds + decode, per function symbol.
    seen_ranges = set()
    for sym in syms:
        name = sym.link_name()
        section = binary.section_at(sym.value)
        if section is None or not section.is_exec:
            report.add(Finding(
                "BL103",
                f"starts at {sym.value:#x}, outside every executable "
                f"section (truncated or mislaid section?)",
                function=name, address=sym.value))
            continue
        if sym.value + sym.size > section.end:
            report.add(Finding(
                "BL103",
                f"[{sym.value:#x}, {sym.value + sym.size:#x}) runs "
                f"past the end of {section.name} ({section.end:#x})",
                function=name, address=sym.value))
            continue
        span = (sym.value, sym.size)
        if span in seen_ranges:
            continue  # exact alias: lint the bytes once
        seen_ranges.add(span)
        _lint_body(section, sym, name, report)

    # Dangling relocations.
    known = {s.link_name() for s in binary.symbols}
    known.update(_KNOWN_EXTERNAL)
    try:
        from repro.linker import BUILTINS
        known.update(BUILTINS)
    except ImportError:  # pragma: no cover - linker always present
        pass
    for reloc in binary.relocations:
        if reloc.symbol in known:
            continue
        report.add(Finding(
            "BL106",
            f"relocation at {reloc.section}+{reloc.offset:#x} names "
            f"undefined symbol {reloc.symbol!r}",
            function=_owner_of(binary, reloc)))


def _owner_of(binary, reloc):
    section = binary.get_section(reloc.section)
    if section is None or not section.is_exec:
        return None
    address = section.addr + reloc.offset
    for sym in _func_symbols(binary):
        if sym.value <= address < sym.value + sym.size:
            return sym.link_name()
    return None


def _lint_body(section, sym, name, report):
    """Decode one function body; BL102 vs BL105 classification."""
    start = sym.value - section.addr
    end = start + sym.size
    offset = start
    last = None
    while offset < end:
        try:
            insn = decode(section.data, offset,
                          sym.value + (offset - start))
        except DecodeError as exc:
            report.add(Finding(
                "BL102", f"body does not decode: {exc}",
                function=name, address=sym.value + (offset - start)))
            return
        if offset + insn.size > end:
            report.add(Finding(
                "BL105",
                f"instruction at {insn.address:#x} straddles the "
                f"symbol's end ({sym.value + sym.size:#x}): symbol "
                f"size {sym.size} cuts the body mid-instruction",
                function=name, address=insn.address))
            return
        if not insn.is_nop:
            last = insn
        offset += insn.size
    if last is None or not last.is_terminator:
        what = last.mnemonic() if last is not None else "padding"
        report.add(Finding(
            "BL105",
            f"body ends in {what} instead of a terminator: control "
            f"falls off the symbol's end (wrong symbol size?)",
            function=name, address=sym.value + sym.size))


# ---------------------------------------------------------------------------
# Tier 3: CFG reconstruction + IR checkers
# ---------------------------------------------------------------------------


def _lint_functions(binary, options, report):
    from repro.core.binary_context import BinaryContext
    from repro.core.cfg_builder import build_all_functions
    from repro.core.discovery import discover_functions
    from repro.core.options import BoltOptions

    opts = (options or BoltOptions()).copy(
        strict=False, verify_cfg=False, validate_output="none",
        lint="none")
    try:
        context = BinaryContext(binary, opts)
        discover_functions(context)
        build_all_functions(context)
    except Exception as exc:
        report.add(Finding(
            "BL102",
            f"CFG reconstruction failed: {type(exc).__name__}: {exc}"))
        return
    for func in context.simple_functions():
        report.extend(check_function(func))


# ---------------------------------------------------------------------------
# The rewriter's post-pass lint gate
# ---------------------------------------------------------------------------


def lint_context(context, suppress=()):
    """Run the IR checkers over every simple function in a context.

    Returns {function name: [Findings]} for functions with findings.
    Used by the rewriter's post-pass gate (``BoltOptions.lint``), where
    a function whose invariants a pass broke is demoted to raw rather
    than emitted.
    """
    suppressions = parse_suppressions(suppress)
    by_function = {}
    for func in context.simple_functions():
        report = LintReport(suppressions=suppressions)
        report.extend(check_function(func))
        if len(report):
            by_function[func.name] = list(report)
    return by_function
