"""Generic abstract-interpretation engine over reconstructed CFGs.

A thin, classic worklist solver layered on the same CFG shape
``core/dataflow.py`` analyses consume: join-semilattice state, one
transfer function per block, forward or backward propagation, fixpoint
by monotone iteration.  The concrete analyses in
:mod:`repro.analysis.checkers` are deliberately *flat* (constant
propagation over a handful of facts), so the checkers only report
violations they can prove on every path — ``TOP`` (conflicting or
unknown information) is always silent.

Design notes:

* States are ordinary immutable Python values; the lattice object only
  supplies ``bottom()``, ``join()`` and (optionally) ``leq()``.
* Landing pads: exceptional edges do not leave from the end of a
  block but from each call site inside it.  A transfer function that
  cares returns a :class:`BlockResult` carrying per-successor edge
  states; plain returns mean "the block's out-state flows on every
  edge".
* Unreachable blocks keep the bottom state, which every checker treats
  as "cannot happen" — dead code never produces findings here
  (``BL004`` reports it separately).
"""

import collections


class AnalysisError(Exception):
    """The solver did not converge (non-monotone transfer function)."""


class _Top:
    """Unique ⊤ sentinel: conflicting/unknown information."""

    __slots__ = ()

    def __repr__(self):
        return "TOP"


class _Bottom:
    """Unique ⊥ sentinel: no information has reached this point."""

    __slots__ = ()

    def __repr__(self):
        return "BOTTOM"


TOP = _Top()
BOTTOM = _Bottom()


class Lattice:
    """Join-semilattice interface; subclasses define the state space."""

    def bottom(self):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def leq(self, a, b):
        """Partial order; default derives it from join (needs __eq__)."""
        return self.join(a, b) == b


class FlatLattice(Lattice):
    """BOTTOM < any concrete value < TOP (constant propagation shape)."""

    def bottom(self):
        return BOTTOM

    def join(self, a, b):
        if a is BOTTOM:
            return b
        if b is BOTTOM:
            return a
        if a is TOP or b is TOP:
            return TOP
        return a if a == b else TOP

    def leq(self, a, b):
        if a is BOTTOM or b is TOP:
            return True
        return a == b


class SetLattice(Lattice):
    """Finite powerset lattice: join is union."""

    def bottom(self):
        return frozenset()

    def join(self, a, b):
        return frozenset(a) | frozenset(b)

    def leq(self, a, b):
        return frozenset(a) <= frozenset(b)


class TupleLattice(Lattice):
    """Pointwise product of component lattices."""

    def __init__(self, *parts):
        self.parts = parts

    def bottom(self):
        return tuple(p.bottom() for p in self.parts)

    def join(self, a, b):
        return tuple(p.join(x, y) for p, x, y in zip(self.parts, a, b))

    def leq(self, a, b):
        return all(p.leq(x, y) for p, x, y in zip(self.parts, a, b))


class BlockResult:
    """Transfer-function return value with per-edge state overrides.

    ``edge_states`` maps successor label -> state for edges whose state
    differs from the block's fall-off ``out`` state (landing-pad edges
    leave from mid-block call sites, not from the terminator).
    """

    __slots__ = ("out", "edge_states")

    def __init__(self, out, edge_states=None):
        self.out = out
        self.edge_states = edge_states or {}


def flat_join(a, b):
    """Module-level flat join for transfer functions tracking locals."""
    if a is BOTTOM:
        return b
    if b is BOTTOM:
        return a
    if a is TOP or b is TOP:
        return TOP
    return a if a == b else TOP


def solve(func, lattice, transfer, direction="forward", boundary=None,
          include_landing_pads=True, max_iterations=None):
    """Run ``transfer`` to fixpoint; returns (in_states, out_states).

    ``transfer(block, state)`` maps the state at block entry (forward)
    or block exit (backward) across the block; it may return a plain
    state or a :class:`BlockResult`.  ``boundary`` seeds the entry
    block (forward) or every exit block (backward).

    Raises :class:`AnalysisError` if the iteration count exceeds
    ``max_iterations`` (default ``64 * len(blocks)``) — only possible
    for non-monotone transfer functions or unbounded-height lattices.
    """
    if direction not in ("forward", "backward"):
        raise ValueError(f"bad direction {direction!r}")
    labels = list(func.blocks)
    if not labels:
        return {}, {}
    if boundary is None:
        boundary = lattice.bottom()

    edges_out = {}   # label -> [successor labels] in propagation direction
    for label, block in func.blocks.items():
        succs = list(block.successors)
        if include_landing_pads:
            succs += [lp for lp in block.landing_pads if lp not in succs]
        edges_out[label] = [s for s in succs if s in func.blocks]
    if direction == "backward":
        reversed_edges = {label: [] for label in labels}
        for label, succs in edges_out.items():
            for succ in succs:
                reversed_edges[succ].append(label)
        roots = [label for label in labels if not edges_out[label]]
        edges_out = reversed_edges
    else:
        roots = [func.entry_label] if func.entry_label in func.blocks else []

    edges_in = {label: [] for label in labels}
    for label, succs in edges_out.items():
        for succ in succs:
            edges_in[succ].append(label)

    in_states = {label: lattice.bottom() for label in labels}
    out_states = {label: lattice.bottom() for label in labels}
    # Per-edge contributions (landing-pad edges carry call-site states).
    edge_states = {}

    worklist = collections.deque(roots)
    queued = set(roots)
    for label in roots:
        in_states[label] = boundary

    limit = max_iterations if max_iterations is not None else 64 * len(labels)
    steps = 0
    while worklist:
        steps += 1
        if steps > limit:
            raise AnalysisError(
                f"{func.name}: no fixpoint after {limit} iterations "
                f"(non-monotone transfer function?)")
        label = worklist.popleft()
        queued.discard(label)
        block = func.blocks[label]

        result = transfer(block, in_states[label])
        if not isinstance(result, BlockResult):
            result = BlockResult(result)
        out_states[label] = result.out

        for succ in edges_out[label]:
            contributed = result.edge_states.get(succ, result.out)
            if edge_states.get((label, succ)) == contributed:
                continue
            edge_states[(label, succ)] = contributed
            new_in = boundary if succ in roots else lattice.bottom()
            for pred in edges_in[succ]:
                if (pred, succ) in edge_states:
                    new_in = lattice.join(new_in, edge_states[(pred, succ)])
            if new_in != in_states[succ]:
                in_states[succ] = new_in
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return in_states, out_states
