"""Lint rule registry, findings, suppression, and report rendering.

Every checker and validator in :mod:`repro.analysis` reports through a
stable rule ID so CI can gate on (and users can suppress) individual
classes of problems:

* ``BL0xx`` — IR-level CFG/dataflow checkers (per reconstructed
  function).
* ``BL1xx`` — whole-binary metadata and decode checks.
* ``BL2xx`` — translation validation (pre- vs post-rewrite matching).

Severities reuse :class:`repro.core.diagnostics.Severity`, so findings
render as the familiar ``BOLT-WARNING:``/``BOLT-ERROR:`` lines and the
rewriter's post-pass gate can feed them straight into the PR 1
containment machinery.
"""

import json

from repro.core.diagnostics import Severity


class Rule:
    __slots__ = ("id", "name", "severity", "summary")

    def __init__(self, rule_id, name, severity, summary):
        self.id = rule_id
        self.name = name
        self.severity = severity
        self.summary = summary

    def __repr__(self):
        return f"<Rule {self.id} {self.name} {self.severity.tag}>"


_E = Severity.ERROR
_W = Severity.WARNING

RULES = {r.id: r for r in [
    # IR-level checkers (abstract interpretation over one function).
    Rule("BL001", "stack-height", _E,
         "a path reaches RET (or a tail call) with a non-zero stack "
         "height: push/pop or frame setup/teardown is unbalanced"),
    Rule("BL002", "callee-saved", _E,
         "a callee-saved register is provably clobbered on some path to "
         "an exit without being restored from its save slot"),
    Rule("BL003", "flags-undefined", _W,
         "a conditional branch or setcc consumes flags that are "
         "provably undefined (no compare on any path, or clobbered by "
         "a call)"),
    Rule("BL004", "unreachable-code", _W,
         "a basic block is unreachable from the function entry"),
    Rule("BL005", "bad-fallthrough", _E,
         "a block that can fall through is not physically followed by "
         "its fall-through successor (control would run off the end)"),
    Rule("BL006", "jump-table", _E,
         "a jump-table entry does not land on a real block head, or "
         "table entries and CFG successors disagree"),
    Rule("BL007", "cfg-invariant", _E,
         "structural CFG invariants do not hold (validate_function)"),
    # Whole-binary checks.
    Rule("BL101", "entry-point", _E,
         "the entry point does not land in executable bytes"),
    Rule("BL102", "undecodable-body", _E,
         "a function body contains bytes that do not decode"),
    Rule("BL103", "symbol-bounds", _E,
         "a function symbol's address range escapes its section "
         "(truncated or mislaid section)"),
    Rule("BL104", "overlapping-symbols", _W,
         "two function symbols overlap without being exact aliases"),
    Rule("BL105", "symbol-size", _E,
         "a function symbol's size disagrees with its code: the body "
         "ends mid-instruction or without a terminator"),
    Rule("BL106", "dangling-relocation", _E,
         "a relocation names a symbol that does not exist"),
    # Translation validation (pre- vs post-rewrite).
    Rule("BL201", "translation-mismatch", _E,
         "an output block's instructions do not match the optimized IR "
         "the rewrite promised to emit"),
    Rule("BL202", "translation-layout", _E,
         "emitted block layout breaks a fall-through edge"),
    Rule("BL203", "translation-jump-table", _E,
         "an emitted jump-table slot does not point at the entry "
         "block's new address"),
    Rule("BL204", "translation-missing-label", _E,
         "a basic block present in the IR was not emitted"),
]}


class Finding:
    """One lint finding, attributed to a stable rule ID."""

    __slots__ = ("rule", "message", "function", "block", "address")

    def __init__(self, rule, message, function=None, block=None,
                 address=None):
        if rule not in RULES:
            raise ValueError(f"unknown lint rule {rule!r}")
        self.rule = rule
        self.message = message
        self.function = function
        self.block = block
        self.address = address

    @property
    def severity(self):
        return RULES[self.rule].severity

    def render(self):
        where = f" [{self.function}]" if self.function else ""
        if self.block:
            where += f" {self.block}:"
        return f"{self.severity.tag}: lint{where} {self.rule}: {self.message}"

    def to_dict(self):
        return {
            "rule": self.rule,
            "name": RULES[self.rule].name,
            "severity": self.severity.name.lower(),
            "function": self.function,
            "block": self.block,
            "address": self.address,
            "message": self.message,
        }

    def __repr__(self):
        return f"<Finding {self.render()}>"


def parse_suppressions(spec):
    """Normalize suppression directives to a set of (function, rule).

    Accepts an iterable of strings (or one comma-separated string):

    * ``"BL003"`` — suppress a rule everywhere.
    * ``"crc32:BL001"`` — suppress a rule in one function.
    * ``"crc32:*"`` — suppress every rule in one function.
    """
    if isinstance(spec, str):
        spec = spec.split(",")
    out = set()
    for item in spec or ():
        item = item.strip()
        if not item:
            continue
        if ":" in item:
            function, rule = item.rsplit(":", 1)
            out.add((function, rule))
        else:
            out.add((None, item))
    return frozenset(out)


class LintReport:
    """Collected findings with suppression and rendering."""

    def __init__(self, suppressions=()):
        self.suppressions = parse_suppressions(suppressions) \
            if not isinstance(suppressions, frozenset) else suppressions
        self.findings = []
        self.suppressed = 0

    def add(self, finding):
        """Record one finding unless suppressed; returns True if kept."""
        sup = self.suppressions
        if ((None, finding.rule) in sup
                or (finding.function, finding.rule) in sup
                or (finding.function, "*") in sup):
            self.suppressed += 1
            return False
        self.findings.append(finding)
        return True

    def extend(self, findings):
        for finding in findings:
            self.add(finding)

    @property
    def errors(self):
        return [f for f in self.findings if f.severity >= Severity.ERROR]

    @property
    def warnings(self):
        return [f for f in self.findings
                if f.severity == Severity.WARNING]

    def worst(self):
        return max((f.severity for f in self.findings), default=None)

    def rules_hit(self):
        return sorted({f.rule for f in self.findings})

    def for_function(self, name):
        return [f for f in self.findings if f.function == name]

    def render_lines(self, min_severity=Severity.NOTE):
        return [f.render() for f in self.findings
                if f.severity >= min_severity]

    def to_json(self, indent=2):
        return json.dumps({
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "total": len(self.findings),
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "suppressed": self.suppressed,
                "rules": self.rules_hit(),
            },
        }, indent=indent)

    def __len__(self):
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)
