"""IR optimization passes (-O2 analog).

Profile metadata (``block.count`` / ``func.edge_counts``) is maintained
through the transformations, because the FDO builds attach the profile
*before* optimizing — mirroring real compilers, including the places
where counts degrade to approximations.
"""

from repro.ir.ir import IRInst, Imm, CMP_OPS

_MASK = (1 << 64) - 1


def _wrap(value):
    value &= _MASK
    return value - (1 << 64) if value >= 1 << 63 else value


def eval_binop(oper, a, b):
    """Constant-fold a binary operation with 64-bit wrapping semantics.

    Returns None when the result is not defined (division by zero) —
    the instruction must be kept so the trap happens at run time.
    """
    if oper == "+":
        return _wrap(a + b)
    if oper == "-":
        return _wrap(a - b)
    if oper == "*":
        return _wrap(a * b)
    if oper == "/":
        if b == 0:
            return None
        quotient = abs(a) // abs(b)
        return _wrap(-quotient if (a < 0) != (b < 0) else quotient)
    if oper == "%":
        if b == 0:
            return None
        quotient = abs(a) // abs(b)
        quotient = -quotient if (a < 0) != (b < 0) else quotient
        return _wrap(a - _wrap(quotient * b))
    if oper == "&":
        return _wrap(a & b)
    if oper == "|":
        return _wrap(a | b)
    if oper == "^":
        return _wrap(a ^ b)
    if oper == "<<":
        return _wrap(a << (b & 63))
    if oper == ">>":
        # BC's >> is an arithmetic (sign-preserving) shift.
        return _wrap(a >> (b & 63))
    if oper == "==":
        return 1 if a == b else 0
    if oper == "!=":
        return 1 if a != b else 0
    if oper == "<":
        return 1 if a < b else 0
    if oper == "<=":
        return 1 if a <= b else 0
    if oper == ">":
        return 1 if a > b else 0
    if oper == ">=":
        return 1 if a >= b else 0
    if oper == "u<":
        return 1 if (a & _MASK) < (b & _MASK) else 0
    if oper == "u<=":
        return 1 if (a & _MASK) <= (b & _MASK) else 0
    if oper == "u>":
        return 1 if (a & _MASK) > (b & _MASK) else 0
    if oper == "u>=":
        return 1 if (a & _MASK) >= (b & _MASK) else 0
    raise ValueError(f"unknown operator {oper}")


# -- local constant/copy propagation ------------------------------------------


def _propagate_block(block):
    """Forward const/copy propagation and folding within one block."""
    consts = {}   # vreg -> int
    copies = {}   # vreg -> vreg
    changed = False

    def resolve(operand):
        if operand is None or isinstance(operand, Imm):
            return operand
        seen = set()
        while operand in copies and operand not in seen:
            seen.add(operand)
            operand = copies[operand]
        if operand in consts:
            return Imm(consts[operand])
        return operand

    def kill(vreg):
        consts.pop(vreg, None)
        copies.pop(vreg, None)
        for key in [k for k, v in copies.items() if v == vreg]:
            del copies[key]

    new_insts = []
    for inst in block.insts:
        before = repr(inst)
        inst.a = resolve(inst.a)
        inst.b = resolve(inst.b)
        if inst.args:
            inst.args = [resolve(arg) for arg in inst.args]

        if inst.kind == "binop" and isinstance(inst.a, Imm) and isinstance(inst.b, Imm):
            folded = eval_binop(inst.oper, inst.a.value, inst.b.value)
            if folded is not None:
                inst = IRInst("const", dst=inst.dst, value=folded, loc=inst.loc)
        elif inst.kind == "binop":
            inst = _algebraic(inst)
        elif inst.kind == "unop" and isinstance(inst.a, Imm):
            value = -inst.a.value if inst.oper == "-" else (0 if inst.a.value else 1)
            inst = IRInst("const", dst=inst.dst, value=_wrap(value), loc=inst.loc)

        if inst.dst is not None:
            kill(inst.dst)
        if inst.kind == "const":
            consts[inst.dst] = inst.value
        elif inst.kind == "mov":
            if isinstance(inst.a, Imm):
                inst = IRInst("const", dst=inst.dst, value=inst.a.value, loc=inst.loc)
                consts[inst.dst] = inst.value
            elif inst.a == inst.dst:
                changed = True
                continue  # self-move
            else:
                copies[inst.dst] = inst.a
        if repr(inst) != before:
            changed = True
        new_insts.append(inst)

    block.insts = new_insts
    term = block.terminator
    if term is not None:
        term.a = resolve(term.a)
        term.b = resolve(term.b)
    return changed


def _algebraic(inst):
    """Strength-reduce trivial identities."""
    if isinstance(inst.b, Imm):
        b = inst.b.value
        if inst.oper in ("+", "-", "|", "^", "<<", ">>") and b == 0:
            return IRInst("mov", dst=inst.dst, a=inst.a, loc=inst.loc)
        if inst.oper == "*" and b == 1:
            return IRInst("mov", dst=inst.dst, a=inst.a, loc=inst.loc)
        if inst.oper == "*" and b == 0 and not isinstance(inst.a, Imm):
            return IRInst("const", dst=inst.dst, value=0, loc=inst.loc)
        if inst.oper == "/" and b == 1:
            return IRInst("mov", dst=inst.dst, a=inst.a, loc=inst.loc)
    return inst


# -- local common-subexpression elimination ---------------------------------------


def _local_cse(block):
    """Reuse previously computed pure values within one block.

    Expressions are keyed by (kind, oper, operands); available
    expressions are invalidated when an operand is redefined.  Loads
    from globals participate until a store or call clobbers memory.
    """
    available = {}   # key -> vreg holding the value
    by_operand = {}  # vreg -> set of keys mentioning it
    changed = False

    def invalidate_reg(vreg):
        for key in by_operand.pop(vreg, ()):
            available.pop(key, None)

    def invalidate_memory():
        for key in [k for k in available if k[0] in ("loadg", "loadidx")]:
            del available[key]

    def operand_key(operand):
        return ("i", operand.value) if isinstance(operand, Imm) else ("r", operand)

    new_insts = []
    for inst in block.insts:
        key = None
        if inst.kind == "binop" and inst.oper not in ("/", "%"):
            key = ("binop", inst.oper, operand_key(inst.a), operand_key(inst.b))
        elif inst.kind == "unop":
            key = ("unop", inst.oper, operand_key(inst.a))
        elif inst.kind == "loadg":
            key = ("loadg", inst.sym)
        elif inst.kind == "loadidx":
            key = ("loadidx", inst.sym, operand_key(inst.a))
        elif inst.kind == "funcaddr":
            key = ("funcaddr", inst.sym)

        if key is not None and key in available:
            source = available[key]
            if source != inst.dst:
                new_insts.append(IRInst("mov", dst=inst.dst, a=source,
                                        loc=inst.loc))
            changed = True
            if inst.dst is not None:
                invalidate_reg(inst.dst)
            continue

        if inst.kind in ("storeg", "storeidx") or inst.is_call:
            invalidate_memory()
        if inst.kind == "throw":
            invalidate_memory()
        if inst.dst is not None:
            invalidate_reg(inst.dst)
        if key is not None:
            available[key] = inst.dst
            for operand in (inst.a, inst.b):
                if operand is not None and not isinstance(operand, Imm):
                    by_operand.setdefault(operand, set()).add(key)
            # The destination holding the value is also a dependency.
            by_operand.setdefault(inst.dst, set()).add(key)
        new_insts.append(inst)
    block.insts = new_insts
    return changed


# -- control-flow simplification -------------------------------------------------


def _fold_const_branches(func):
    changed = False
    for block in func.blocks.values():
        term = block.terminator
        if term.kind == "cbr":
            if isinstance(term.a, Imm) and isinstance(term.b, Imm):
                taken = eval_binop(term.oper, term.a.value, term.b.value)
                target = term.targets[0] if taken else term.targets[1]
                block.terminator = IRInst("br", targets=(target,), loc=term.loc)
                changed = True
            elif term.targets[0] == term.targets[1]:
                block.terminator = IRInst("br", targets=(term.targets[0],),
                                          loc=term.loc)
                changed = True
        elif term.kind == "switch" and isinstance(term.a, Imm):
            target = term.cases.get(term.a.value, term.targets[0])
            block.terminator = IRInst("br", targets=(target,), loc=term.loc)
            changed = True
    return changed


def remove_unreachable_blocks(func):
    reachable = set()
    stack = [func.entry]
    while stack:
        name = stack.pop()
        if name in reachable:
            continue
        reachable.add(name)
        block = func.blocks[name]
        stack.extend(block.successors())
        for inst in block.insts:
            if inst.lp is not None:
                stack.append(inst.lp)
    removed = [name for name in func.blocks if name not in reachable]
    for name in removed:
        func.remove_block(name)
    func.edge_counts = {
        (a, b): c for (a, b), c in func.edge_counts.items()
        if a in reachable and b in reachable
    }
    return bool(removed)


def _thread_forwarders(func):
    """Redirect edges through empty blocks that just ``br`` elsewhere."""
    forwards = {}
    for name, block in func.blocks.items():
        if (not block.insts and block.terminator.kind == "br"
                and not block.is_landing_pad and name != func.entry):
            target = block.terminator.targets[0]
            if target != name:
                forwards[name] = target

    def final(name):
        seen = set()
        while name in forwards and name not in seen:
            seen.add(name)
            name = forwards[name]
        return name

    changed = False
    for block in func.blocks.values():
        term = block.terminator
        for succ in list(term.successor_blocks()):
            dest = final(succ)
            if dest != succ:
                term.replace_successor(succ, dest)
                count = func.edge_counts.pop((block.name, succ), None)
                if count is not None:
                    key = (block.name, dest)
                    func.edge_counts[key] = func.edge_counts.get(key, 0) + count
                changed = True
    return changed


def _merge_blocks(func):
    """Merge b into a when a->b is a's only edge and b's only entry."""
    changed = False
    while True:
        preds = func.predecessors()
        merged = False
        for name in list(func.blocks):
            block = func.blocks.get(name)
            if block is None or block.terminator.kind != "br":
                continue
            succ_name = block.terminator.targets[0]
            if succ_name == name:
                continue
            succ = func.blocks[succ_name]
            if len(preds[succ_name]) != 1 or succ_name == func.entry:
                continue
            if succ.is_landing_pad:
                continue
            block.insts.extend(succ.insts)
            block.terminator = succ.terminator
            func.edge_counts.pop((name, succ_name), None)
            for edge_succ in succ.successors():
                count = func.edge_counts.pop((succ_name, edge_succ), None)
                if count is not None:
                    func.edge_counts[(name, edge_succ)] = count
            # Landing-pad references to succ cannot exist (it would be a
            # landing pad); plain branch references were the single edge.
            func.remove_block(succ_name)
            changed = merged = True
            break
        if not merged:
            return changed


# -- dead code elimination -----------------------------------------------------------


def _dce(func):
    """Remove pure instructions whose destinations are never used."""
    changed = False
    while True:
        used = set()
        for block in func.blocks.values():
            for inst in block.insts:
                used.update(inst.uses())
            used.update(block.terminator.uses())
        removed = False
        for block in func.blocks.values():
            kept = []
            for inst in block.insts:
                if (inst.dst is not None and inst.dst not in used
                        and not inst.has_side_effects
                        and not (inst.kind == "binop" and inst.oper in ("/", "%"))):
                    removed = changed = True
                    continue
                if inst.is_call and inst.dst is not None and inst.dst not in used:
                    inst.dst = None  # call kept for side effects
                kept.append(inst)
            block.insts = kept
        if not removed:
            return changed


# -- driver ------------------------------------------------------------------------------


def optimize_function(func, level=2, max_iter=8):
    """Run the -O2 pipeline to a fixed point (bounded)."""
    if level <= 0:
        remove_unreachable_blocks(func)
        return func
    for _ in range(max_iter):
        changed = False
        for block in func.blocks.values():
            changed |= _propagate_block(block)
            changed |= _local_cse(block)
        changed |= _fold_const_branches(func)
        changed |= _thread_forwarders(func)
        changed |= remove_unreachable_blocks(func)
        changed |= _merge_blocks(func)
        changed |= _dce(func)
        if not changed:
            break
    return func


def optimize_module(module, level=2):
    for func in module.functions.values():
        optimize_function(func, level=level)
    return module


def split_critical_edges(func):
    """Split edges whose source has multiple successors and target has
    multiple predecessors.  Run before profile instrumentation/attachment
    so every edge count is derivable from block counts."""
    preds = func.predecessors()
    for name in list(func.blocks):
        block = func.blocks[name]
        succs = block.successors()
        if len(succs) < 2:
            continue
        for succ in set(succs):
            if len(preds[succ]) < 2:
                continue
            mid = func.new_block("crit")
            mid.terminator = IRInst("br", targets=(succ,))
            block.terminator.replace_successor(succ, mid.name)
    return func
