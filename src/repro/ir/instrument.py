"""Instrumentation-based profiling support (PGO -fprofile-generate analog).

Every basic block gets a ``profcount`` pseudo-instruction which codegen
lowers to a load/add/store triple on a slot of the ``__profc`` counter
array — the "significant CPU and memory overheads" of instrumentation
the paper cites as the reason data centers prefer sampling (section
2.1) are thus physically present in instrumented builds.

Critical edges are split *deterministically* before numbering, and the
release build performs the same split before attaching counts, so every
edge count is derivable from block counts by flow arithmetic.
"""

from repro.ir.ir import IRInst
from repro.ir.passes import split_critical_edges

#: Link name of the counter array the instrumented build appends to .data.
COUNTERS_SYMBOL = "__profc"


def instrument_function(func, start_index):
    """Add profcount instructions; returns list of (link_name, block) keys."""
    split_critical_edges(func)
    keys = []
    for block in func.blocks.values():
        index = start_index + len(keys)
        keys.append((func.link_name(), block.name))
        counter = IRInst("profcount", value=index)
        # Landing pads must begin with their landingpad instruction.
        pos = 1 if block.insts and block.insts[0].kind == "landingpad" else 0
        block.insts.insert(pos, counter)
    return keys


def instrument_module(module, start_index=0):
    """Instrument all functions; returns the counter key list."""
    keys = []
    for func in module.functions.values():
        keys.extend(instrument_function(func, start_index + len(keys)))
    return keys


def counter_key_list(modules):
    """The deterministic counter key order for a list of modules
    (must match what instrument_module produced, in the same order)."""
    keys = []
    for module in modules:
        for func in module.functions.values():
            for block in func.blocks.values():
                keys.append((func.link_name(), block.name))
    return keys


def derive_edge_counts(func, block_counts):
    """Recover exact edge counts from block counts.

    ``block_counts`` maps block name -> count.  Works when critical
    edges were split (each edge then has a single-pred or single-succ
    endpoint).
    """
    preds = func.predecessors()
    edges = {}
    for name, block in func.blocks.items():
        succs = block.successors()
        for succ in set(succs):
            if len(preds[succ]) == 1:
                edges[(name, succ)] = block_counts.get(succ, 0)
            elif len(set(succs)) == 1:
                edges[(name, succ)] = block_counts.get(name, 0)
            else:
                # Unsplit critical edge (should not happen): unknown.
                edges[(name, succ)] = 0
    return edges
