"""AST -> IR lowering."""

from repro.ir.ir import IRInst, IRFunction, IRModule, Imm, CMP_OPS
from repro.lang import astnodes as ast
from repro.lang.sema import check_module


class BuildError(Exception):
    pass


_CMP_SWAP = {"==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class _FuncBuilder:
    def __init__(self, module_ir, info, func_ast):
        self.module = module_ir
        self.info = info
        self.func = IRFunction(
            func_ast.name,
            params=[],
            static=func_ast.static,
            module=module_ir.name,
            loc=func_ast.loc,
        )
        self.func.param_names = list(func_ast.params)
        self.scopes = [{}]
        self.current = self.func.new_block("entry")
        self.loop_stack = []       # (continue_target, break_target)
        self.lp_stack = []         # landing-pad block names
        for param in func_ast.params:
            vreg = self.func.new_vreg()
            self.func.params.append(vreg)
            self.scopes[0][param] = vreg

    # -- plumbing -----------------------------------------------------------

    def emit(self, inst):
        if self.current.terminator is not None:
            raise BuildError(f"emitting into terminated block {self.current.name}")
        self.current.insts.append(inst)
        return inst

    def terminate(self, inst):
        if self.current.terminator is None:
            self.current.terminator = inst

    def start_block(self, block):
        self.current = block

    def lookup(self, name):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def current_lp(self):
        return self.lp_stack[-1] if self.lp_stack else None

    def materialize(self, operand, loc):
        """Force an operand into a vreg (Imm -> const)."""
        if isinstance(operand, Imm):
            vreg = self.func.new_vreg()
            self.emit(IRInst("const", dst=vreg, value=operand.value, loc=loc))
            return vreg
        return operand

    # -- statements -----------------------------------------------------------

    def stmt(self, node):
        getattr(self, "_stmt_" + type(node).__name__)(node)

    def _stmt_Block(self, node):
        self.scopes.append({})
        for stmt in node.stmts:
            self.stmt(stmt)
        self.scopes.pop()

    def _stmt_VarDecl(self, node):
        vreg = self.func.new_vreg()
        self.scopes[-1][node.name] = vreg
        if node.init is not None:
            value = self.expr(node.init)
            if isinstance(value, Imm):
                self.emit(IRInst("const", dst=vreg, value=value.value, loc=node.loc))
            else:
                self.emit(IRInst("mov", dst=vreg, a=value, loc=node.loc))
        else:
            self.emit(IRInst("const", dst=vreg, value=0, loc=node.loc))

    def _stmt_Assign(self, node):
        value = self.expr(node.value)
        target = node.target
        if isinstance(target, ast.Name):
            vreg = self.lookup(target.name)
            if vreg is not None:
                if isinstance(value, Imm):
                    self.emit(IRInst("const", dst=vreg, value=value.value, loc=node.loc))
                else:
                    self.emit(IRInst("mov", dst=vreg, a=value, loc=node.loc))
            else:
                sym = self.module_sym(target.name)
                self.emit(IRInst("storeg", sym=sym, a=self.materialize(value, node.loc),
                                 loc=node.loc))
        else:
            index = self.expr(target.index)
            sym = self.module_sym(target.name)
            inst = IRInst(
                "storeidx", sym=sym, a=index,
                b=self.materialize(value, node.loc), loc=node.loc)
            inst.value = self.info.global_arrays[target.name].size
            self.emit(inst)

    def _stmt_If(self, node):
        then_block = self.func.new_block("then")
        join = self.func.new_block("join")
        if node.otherwise is not None:
            else_block = self.func.new_block("else")
        else:
            else_block = join
        self.cond_branch(node.cond, then_block.name, else_block.name, node.loc)
        self.start_block(then_block)
        self.stmt(node.then)
        self.terminate(IRInst("br", targets=(join.name,), loc=node.loc))
        if node.otherwise is not None:
            self.start_block(else_block)
            self.stmt(node.otherwise)
            self.terminate(IRInst("br", targets=(join.name,), loc=node.loc))
        self.start_block(join)

    def _stmt_While(self, node):
        header = self.func.new_block("loop")
        body = self.func.new_block("body")
        exit_block = self.func.new_block("exit")
        self.terminate(IRInst("br", targets=(header.name,), loc=node.loc))
        self.start_block(header)
        self.cond_branch(node.cond, body.name, exit_block.name, node.loc)
        self.loop_stack.append((header.name, exit_block.name))
        self.start_block(body)
        self.stmt(node.body)
        self.terminate(IRInst("br", targets=(header.name,), loc=node.loc))
        self.loop_stack.pop()
        self.start_block(exit_block)

    def _stmt_For(self, node):
        self.scopes.append({})
        if node.init is not None:
            self.stmt(node.init)
        header = self.func.new_block("loop")
        body = self.func.new_block("body")
        step_block = self.func.new_block("step")
        exit_block = self.func.new_block("exit")
        self.terminate(IRInst("br", targets=(header.name,), loc=node.loc))
        self.start_block(header)
        if node.cond is not None:
            self.cond_branch(node.cond, body.name, exit_block.name, node.loc)
        else:
            self.terminate(IRInst("br", targets=(body.name,), loc=node.loc))
        # `continue` targets the step block, not the header.
        self.loop_stack.append((step_block.name, exit_block.name))
        self.start_block(body)
        self.stmt(node.body)
        self.terminate(IRInst("br", targets=(step_block.name,), loc=node.loc))
        self.loop_stack.pop()
        self.start_block(step_block)
        if node.step is not None:
            self.stmt(node.step)
        self.terminate(IRInst("br", targets=(header.name,), loc=node.loc))
        self.start_block(exit_block)
        self.scopes.pop()

    def _stmt_Switch(self, node):
        value = self.materialize(self.expr(node.value), node.loc)
        end = self.func.new_block("swend")
        cases = {}
        case_blocks = []
        for case_value, body in node.cases:
            block = self.func.new_block("case")
            cases[case_value] = block.name
            case_blocks.append((block, body))
        if node.default is not None:
            default_block = self.func.new_block("swdef")
        else:
            default_block = end
        self.terminate(IRInst("switch", a=value, cases=cases,
                              targets=(default_block.name,), loc=node.loc))
        for block, body in case_blocks:
            self.start_block(block)
            self.stmt(body)
            self.terminate(IRInst("br", targets=(end.name,), loc=node.loc))
        if node.default is not None:
            self.start_block(default_block)
            self.stmt(node.default)
            self.terminate(IRInst("br", targets=(end.name,), loc=node.loc))
        self.start_block(end)

    def _stmt_Return(self, node):
        value = None
        if node.value is not None:
            value = self.expr(node.value)
            if isinstance(value, Imm):
                value = self.materialize(value, node.loc)
        self.terminate(IRInst("ret", a=value, loc=node.loc))
        self.start_block(self.func.new_block("dead"))

    def _stmt_Out(self, node):
        value = self.materialize(self.expr(node.value), node.loc)
        self.emit(IRInst("out", a=value, loc=node.loc))

    def _stmt_ExprStmt(self, node):
        self.expr(node.expr, want_result=False)

    def _stmt_Break(self, node):
        self.terminate(IRInst("br", targets=(self.loop_stack[-1][1],), loc=node.loc))
        self.start_block(self.func.new_block("dead"))

    def _stmt_Continue(self, node):
        self.terminate(IRInst("br", targets=(self.loop_stack[-1][0],), loc=node.loc))
        self.start_block(self.func.new_block("dead"))

    def _stmt_Throw(self, node):
        value = self.materialize(self.expr(node.value), node.loc)
        self.emit(IRInst("throw", a=value, lp=self.current_lp(), loc=node.loc))
        self.terminate(IRInst("unreachable", loc=node.loc))
        self.start_block(self.func.new_block("dead"))

    def _stmt_Try(self, node):
        lp_block = self.func.new_block("lpad")
        lp_block.is_landing_pad = True
        join = self.func.new_block("cont")
        self.lp_stack.append(lp_block.name)
        self.stmt(node.body)
        self.lp_stack.pop()
        self.terminate(IRInst("br", targets=(join.name,), loc=node.loc))
        # Handler: the landing pad receives the exception value.
        self.start_block(lp_block)
        vreg = self.func.new_vreg()
        self.emit(IRInst("landingpad", dst=vreg, loc=node.loc))
        self.scopes.append({node.catch_var: vreg})
        self.stmt(node.handler)
        self.scopes.pop()
        self.terminate(IRInst("br", targets=(join.name,), loc=node.loc))
        self.start_block(join)

    # -- conditions -------------------------------------------------------------

    def cond_branch(self, node, then_name, else_name, loc):
        """Lower a boolean condition with short-circuiting."""
        if isinstance(node, ast.Binary) and node.op == "&&":
            mid = self.func.new_block("and")
            self.cond_branch(node.left, mid.name, else_name, node.loc)
            self.start_block(mid)
            self.cond_branch(node.right, then_name, else_name, node.loc)
            return
        if isinstance(node, ast.Binary) and node.op == "||":
            mid = self.func.new_block("or")
            self.cond_branch(node.left, then_name, mid.name, node.loc)
            self.start_block(mid)
            self.cond_branch(node.right, then_name, else_name, node.loc)
            return
        if isinstance(node, ast.Unary) and node.op == "!":
            self.cond_branch(node.operand, else_name, then_name, node.loc)
            return
        if isinstance(node, ast.Binary) and node.op in CMP_OPS:
            a = self.expr(node.left)
            b = self.expr(node.right)
            oper = node.op
            if isinstance(a, Imm) and not isinstance(b, Imm):
                a, b = b, a
                oper = _CMP_SWAP[oper]
            a = self.materialize(a, loc)
            self.terminate(IRInst("cbr", oper=oper, a=a, b=b,
                                  targets=(then_name, else_name), loc=node.loc))
            return
        value = self.materialize(self.expr(node), loc)
        self.terminate(IRInst("cbr", oper="!=", a=value, b=Imm(0),
                              targets=(then_name, else_name), loc=loc))

    # -- expressions --------------------------------------------------------------

    def expr(self, node, want_result=True):
        """Lower an expression; returns a vreg or an Imm."""
        if isinstance(node, ast.Num):
            return Imm(node.value)
        if isinstance(node, ast.Name):
            vreg = self.lookup(node.name)
            if vreg is not None:
                return vreg
            sym = self.module_sym(node.name)
            decl = self.info.global_vars[node.name]
            dst = self.func.new_vreg()
            kind = "loadg"
            self.emit(IRInst(kind, dst=dst, sym=sym, loc=node.loc))
            if decl.const:
                # Mark const loads so simplify-ro-loads-style compiler
                # folding *could* happen; we leave them for BOLT.
                self.current.insts[-1].value = "const"
            return dst
        if isinstance(node, ast.Index):
            index = self.expr(node.index)
            dst = self.func.new_vreg()
            inst = IRInst("loadidx", dst=dst, sym=self.module_sym(node.name),
                          a=self.materialize(index, node.loc), loc=node.loc)
            inst.value = self.info.global_arrays[node.name].size
            self.emit(inst)
            return dst
        if isinstance(node, ast.FuncRef):
            dst = self.func.new_vreg()
            self.emit(IRInst("funcaddr", dst=dst, sym=self.link_name(node.name),
                             loc=node.loc))
            return dst
        if isinstance(node, ast.Call):
            return self._call(node, want_result)
        if isinstance(node, ast.Unary):
            operand = self.expr(node.operand)
            if isinstance(operand, Imm):
                if node.op == "-":
                    return Imm(-operand.value)
                return Imm(0 if operand.value else 1)
            dst = self.func.new_vreg()
            self.emit(IRInst("unop", oper=node.op, dst=dst, a=operand, loc=node.loc))
            return dst
        if isinstance(node, ast.Binary):
            if node.op in ("&&", "||"):
                return self._short_circuit_value(node)
            a = self.expr(node.left)
            b = self.expr(node.right)
            oper = node.op
            if isinstance(a, Imm) and not isinstance(b, Imm):
                if oper in ("+", "*", "&", "|", "^"):
                    a, b = b, a
                elif oper in _CMP_SWAP:
                    a, b = b, a
                    oper = _CMP_SWAP[oper]
            dst = self.func.new_vreg()
            self.emit(IRInst("binop", oper=oper, dst=dst,
                             a=self.materialize(a, node.loc), b=b, loc=node.loc))
            return dst
        raise BuildError(f"cannot lower expression {type(node).__name__}")

    def _short_circuit_value(self, node):
        """Lower ``a && b`` / ``a || b`` used as a value (0/1)."""
        dst = self.func.new_vreg()
        true_block = self.func.new_block("sctrue")
        false_block = self.func.new_block("scfalse")
        join = self.func.new_block("scjoin")
        self.cond_branch(node, true_block.name, false_block.name, node.loc)
        self.start_block(true_block)
        self.emit(IRInst("const", dst=dst, value=1, loc=node.loc))
        self.terminate(IRInst("br", targets=(join.name,), loc=node.loc))
        self.start_block(false_block)
        self.emit(IRInst("const", dst=dst, value=0, loc=node.loc))
        self.terminate(IRInst("br", targets=(join.name,), loc=node.loc))
        self.start_block(join)
        return dst

    def _call(self, node, want_result):
        args = [self.expr(arg) for arg in node.args]
        args = [a if isinstance(a, Imm) else a for a in args]
        dst = self.func.new_vreg() if want_result or True else None
        lp = self.current_lp()
        if node.indirect:
            callee = self.materialize(self.expr(node.callee), node.loc)
            self.emit(IRInst("icall", dst=dst, a=callee, args=args, lp=lp,
                             loc=node.loc))
        else:
            # A name that is a variable holding a function pointer is an
            # indirect call; a known/extern function name is direct.
            vreg = self.lookup(node.callee)
            if vreg is None and node.callee in self.info.global_vars:
                vreg = None
                gdst = self.func.new_vreg()
                self.emit(IRInst("loadg", dst=gdst,
                                 sym=self.module_sym(node.callee), loc=node.loc))
                self.emit(IRInst("icall", dst=dst, a=gdst, args=args, lp=lp,
                                 loc=node.loc))
                return dst
            if vreg is not None:
                self.emit(IRInst("icall", dst=dst, a=vreg, args=args, lp=lp,
                                 loc=node.loc))
            else:
                self.emit(IRInst("call", dst=dst, sym=self.link_name(node.callee),
                                 args=args, lp=lp, loc=node.loc))
        return dst

    # -- names ------------------------------------------------------------------

    def module_sym(self, name):
        """Link name for a module-level data symbol (always module-local)."""
        return f"{self.module.name}::{name}"

    def link_name(self, name):
        """Link name for a function reference."""
        func = self.info.functions.get(name)
        if func is not None and func.static:
            return f"{self.module.name}::{name}"
        return name


def build_function(module_ir, info, func_ast):
    builder = _FuncBuilder(module_ir, info, func_ast)
    builder.stmt(func_ast.body)
    builder.terminate(IRInst("ret", loc=func_ast.loc))
    func = builder.func
    # Give any dangling dead blocks a terminator so cleanup can run.
    for block in func.blocks.values():
        if block.terminator is None:
            block.terminator = IRInst("ret")
    _remove_unreachable(func)
    return func


def _remove_unreachable(func):
    reachable = set()
    stack = [func.entry]
    while stack:
        name = stack.pop()
        if name in reachable:
            continue
        reachable.add(name)
        block = func.blocks[name]
        stack.extend(block.successors())
        for inst in block.insts:
            if inst.lp is not None:
                stack.append(inst.lp)
    for name in list(func.blocks):
        if name not in reachable:
            func.remove_block(name)


def build_module(module_ast, info=None):
    """Lower a checked AST module to IR."""
    if info is None:
        info = check_module(module_ast)
    module_ir = IRModule(module_ast.name)
    for decl in module_ast.globals:
        if isinstance(decl, ast.GlobalVar):
            module_ir.global_vars[decl.name] = (decl.init, decl.const)
        else:
            module_ir.global_arrays[decl.name] = (decl.size, list(decl.init), decl.const)
    for func_ast in module_ast.functions:
        module_ir.add_function(build_function(module_ir, info, func_ast))
    return module_ir
