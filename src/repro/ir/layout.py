"""Compiler-level basic block layout.

Without a profile the source order is kept (the front end already
places `then` before `else` and loop bodies contiguously).  With a
profile the compiler chains blocks greedily along the hottest edges —
Pettis & Hansen's bottom-up positioning, the classic compiler/FDO
algorithm the paper's baselines (GCC/Clang PGO) use.

The crucial point for the reproduction: the *counts* this layout sees
are the context-merged, IR-mapped ones, so it is systematically less
informed than BOLT's binary-level layout (paper sections 2.2 and 6.3).
"""


def layout_blocks(func):
    """Reorder ``func``'s blocks by profile; no-op without counts."""
    if not func.edge_counts or all(b.count is None for b in func.blocks.values()):
        return func

    order = _pettis_hansen_order(func)
    func.reorder(order)
    return func


def _pettis_hansen_order(func):
    chains = {name: [name] for name in func.blocks}
    chain_of = {name: name for name in func.blocks}

    def head(chain_id):
        return chains[chain_id][0]

    def tail(chain_id):
        return chains[chain_id][-1]

    edges = sorted(func.edge_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    for (src, dst), count in edges:
        if count <= 0:
            continue
        if src not in chain_of or dst not in chain_of:
            continue
        if dst == func.entry:
            continue  # entry must stay a chain head
        a, b = chain_of[src], chain_of[dst]
        if a == b:
            continue
        if tail(a) != src or head(b) != dst:
            continue
        chains[a].extend(chains[b])
        for name in chains[b]:
            chain_of[name] = a
        del chains[b]

    def chain_weight(chain_id):
        counts = [func.blocks[n].count or 0 for n in chains[chain_id]]
        return max(counts) if counts else 0

    entry_chain = chain_of[func.entry]
    rest = [cid for cid in chains if cid != entry_chain]
    # Hot chains right after the entry chain; never-executed chains last.
    rest.sort(key=lambda cid: (-chain_weight(cid), chains[cid][0]))
    order = list(chains[entry_chain])
    for chain_id in rest:
        order.extend(chains[chain_id])
    return order
