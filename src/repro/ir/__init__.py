"""Compiler intermediate representation.

A non-SSA three-address IR over virtual registers with an explicit CFG.
Profile data (instrumented PGO or sampled AutoFDO) attaches to IR blocks
and edges *per function* — context-insensitively — which is precisely
the accuracy limitation of compiler-level FDO the paper's Figure 2
describes and BOLT sidesteps by working on the binary.
"""

from repro.ir.ir import Imm, IRInst, IRBlock, IRFunction, IRModule, CMP_OPS
from repro.ir.builder import build_module, BuildError
from repro.ir.passes import optimize_function, optimize_module
from repro.ir.inline import inline_module, InlinePolicy
from repro.ir.instrument import instrument_module, counter_key_list
from repro.ir.layout import layout_blocks

__all__ = [
    "Imm",
    "IRInst",
    "IRBlock",
    "IRFunction",
    "IRModule",
    "CMP_OPS",
    "build_module",
    "BuildError",
    "optimize_function",
    "optimize_module",
    "inline_module",
    "InlinePolicy",
    "instrument_module",
    "counter_key_list",
    "layout_blocks",
]
