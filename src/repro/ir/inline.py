"""Function inlining (compile-time and LTO).

Without LTO only same-module callees can be inlined — the limitation
that motivates the paper's Figure 2 discussion ("inlining cannot happen
until link time" for cross-module calls).  With ``lto=True`` the inliner
sees every module.

When profile data is attached, cloned block counts are scaled by the
*callsite's* share of the callee's total entry count — but the branch
*ratios* inside the callee remain the merged, context-insensitive ones.
This is exactly the accuracy loss of compiler-level FDO that BOLT
avoids (paper section 2.2): after inlining, both copies of Figure 2's
``foo`` get the same 50/50 layout even though each callsite is biased.
"""

from repro.ir.ir import IRInst, Imm


class InlinePolicy:
    """Inlining thresholds."""

    def __init__(self, max_size=14, hot_max_size=48, hot_min_count=64,
                 growth_factor=3.0):
        self.max_size = max_size
        self.hot_max_size = hot_max_size
        self.hot_min_count = hot_min_count
        self.growth_factor = growth_factor


def _func_size(func):
    return sum(len(b.insts) + 1 for b in func.blocks.values())


def _has_landingpad(func):
    return any(b.is_landing_pad for b in func.blocks.values())


def _clone_into(caller, callee, call_inst, call_block_name, cont_name, scale):
    """Clone ``callee``'s CFG into ``caller``; returns cloned entry name."""
    vreg_base = caller.next_vreg
    caller.next_vreg += callee.next_vreg
    suffix = f"_inl{caller.next_block}"
    caller.next_block += 1
    name_map = {name: f"{name}{suffix}" for name in callee.blocks}

    def remap(operand):
        if operand is None or isinstance(operand, Imm):
            return operand
        return operand + vreg_base

    for old_name, old_block in callee.blocks.items():
        new_block = caller.blocks.setdefault(name_map[old_name], type(old_block)(name_map[old_name]))
        new_block.is_landing_pad = old_block.is_landing_pad
        if scale is not None and old_block.count is not None:
            new_block.count = int(old_block.count * scale)
        for inst in old_block.insts:
            clone = inst.copy()
            clone.dst = remap(clone.dst)
            clone.a = remap(clone.a)
            clone.b = remap(clone.b)
            if clone.args is not None:
                clone.args = [remap(arg) for arg in clone.args]
            if clone.kind in ("call", "icall", "throw"):
                if clone.lp is not None:
                    clone.lp = name_map[clone.lp]
                else:
                    clone.lp = call_inst.lp
            new_block.insts.append(clone)
        term = old_block.terminator.copy()
        if term.kind == "ret":
            movs = []
            if call_inst.dst is not None:
                value = remap(term.a)
                if value is None:
                    movs.append(IRInst("const", dst=call_inst.dst, value=0,
                                       loc=call_inst.loc))
                elif isinstance(value, Imm):
                    movs.append(IRInst("const", dst=call_inst.dst,
                                       value=value.value, loc=call_inst.loc))
                else:
                    movs.append(IRInst("mov", dst=call_inst.dst, a=value,
                                       loc=call_inst.loc))
            new_block.insts.extend(movs)
            term = IRInst("br", targets=(cont_name,), loc=call_inst.loc)
        else:
            term.a = remap(term.a)
            term.b = remap(term.b)
            if term.targets:
                term.targets = tuple(name_map[t] for t in term.targets)
            if term.cases:
                term.cases = {k: name_map[v] for k, v in term.cases.items()}
        new_block.terminator = term

    if scale is not None:
        for (src, dst), count in callee.edge_counts.items():
            caller.edge_counts[(name_map[src], name_map[dst])] = int(count * scale)
    return name_map[callee.entry], vreg_base


def _inline_at(caller, block_name, inst_index, callee, use_profile):
    """Inline a direct call; returns True on success."""
    block = caller.blocks[block_name]
    call_inst = block.insts[inst_index]
    if len(call_inst.args) != len(callee.params):
        return False

    cont = caller.new_block("inlcont")
    cont.insts = block.insts[inst_index + 1 :]
    cont.terminator = block.terminator
    cont.count = block.count
    block.insts = block.insts[:inst_index]
    for succ in cont.successors():
        count = caller.edge_counts.pop((block_name, succ), None)
        if count is not None:
            caller.edge_counts[(cont.name, succ)] = count

    scale = None
    if use_profile and block.count is not None and callee.entry_count:
        scale = block.count / callee.entry_count
    entry_name, vreg_base = _clone_into(
        caller, callee, call_inst, block_name, cont.name, scale)

    # Bind parameters in the caller block, then branch into the clone.
    for param, arg in zip((p + vreg_base for p in callee.params), call_inst.args):
        if isinstance(arg, Imm):
            block.insts.append(IRInst("const", dst=param, value=arg.value,
                                      loc=call_inst.loc))
        else:
            block.insts.append(IRInst("mov", dst=param, a=arg, loc=call_inst.loc))
    block.terminator = IRInst("br", targets=(entry_name,), loc=call_inst.loc)
    if block.count is not None:
        caller.edge_counts[(block_name, entry_name)] = block.count
    return True


def inline_module(modules, policy=None, lto=False, use_profile=False):
    """Run the inliner over a list of IR modules (in place)."""
    policy = policy or InlinePolicy()
    table = {}
    for module in modules:
        for func in module.functions.values():
            table[func.link_name()] = (module, func)

    for module in modules:
        for func in module.functions.values():
            budget = max(64, int(_func_size(func) * policy.growth_factor))
            _inline_into(func, module, table, policy, lto, use_profile, budget)
    return modules


def _eligible(caller, caller_module, callee_module, callee, policy, lto,
              use_profile, callsite_count):
    if callee is caller:
        return False
    if not lto and callee_module is not caller_module:
        return False
    size = _func_size(callee)
    if size <= policy.max_size:
        return True
    if (use_profile and callsite_count is not None
            and callsite_count >= policy.hot_min_count
            and size <= policy.hot_max_size):
        return True
    return False


def _inline_into(func, module, table, policy, lto, use_profile, budget):
    progress = True
    while progress and _func_size(func) < budget:
        progress = False
        for block_name in list(func.blocks):
            block = func.blocks.get(block_name)
            if block is None:
                continue
            for index, inst in enumerate(block.insts):
                if inst.kind != "call":
                    continue
                entry = table.get(inst.sym)
                if entry is None:
                    continue
                callee_module, callee = entry
                if not _eligible(func, module, callee_module, callee, policy,
                                 lto, use_profile, block.count):
                    continue
                if _inline_at(func, block_name, index, callee, use_profile):
                    progress = True
                    break
            if progress:
                break
