"""IR data structures."""

CMP_OPS = frozenset({"==", "!=", "<", "<=", ">", ">=", "u<", "u<=", "u>", "u>="})

ARITH_OPS = frozenset({"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"})


class Imm:
    """An immediate operand (folded constant)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"${self.value}"

    def __eq__(self, other):
        return isinstance(other, Imm) and self.value == other.value

    def __hash__(self):
        return hash(("imm", self.value))


def _fmt(operand):
    if operand is None:
        return "_"
    if isinstance(operand, Imm):
        return str(operand)
    return f"%{operand}"


class IRInst:
    """One IR instruction (including block terminators).

    ``kind`` is one of:

    straight-line: ``const mov binop unop loadg storeg loadidx storeidx
    call icall funcaddr out throw landingpad profcount``

    terminators: ``br cbr switch ret unreachable``

    Field usage varies by kind; unused fields are None.  ``lp`` on
    call/icall/throw names the landing-pad block covering the site.
    """

    __slots__ = ("kind", "dst", "a", "b", "oper", "sym", "args", "lp",
                 "targets", "cases", "value", "loc")

    def __init__(self, kind, dst=None, a=None, b=None, oper=None, sym=None,
                 args=None, lp=None, targets=None, cases=None, value=None,
                 loc=None):
        self.kind = kind
        self.dst = dst
        self.a = a
        self.b = b
        self.oper = oper
        self.sym = sym
        self.args = args
        self.lp = lp
        self.targets = targets      # (then, else) for cbr; (target,) for br
        self.cases = cases          # {int: block} for switch (default in targets[0])
        self.value = value
        self.loc = loc

    # -- dataflow helpers -------------------------------------------------

    def uses(self):
        """Virtual registers read by this instruction."""
        out = []
        for operand in (self.a, self.b):
            if operand is not None and not isinstance(operand, Imm):
                out.append(operand)
        if self.args:
            out.extend(arg for arg in self.args if not isinstance(arg, Imm))
        return out

    def defs(self):
        """The virtual register written, or None."""
        return self.dst

    @property
    def is_terminator(self):
        return self.kind in ("br", "cbr", "switch", "ret", "unreachable")

    @property
    def is_call(self):
        return self.kind in ("call", "icall")

    @property
    def has_side_effects(self):
        return self.kind in (
            "storeg", "storeidx", "call", "icall", "out", "throw",
            "profcount", "landingpad",
        )

    def successor_blocks(self):
        """Names of CFG successors (for terminators)."""
        if self.kind == "br":
            return [self.targets[0]]
        if self.kind == "cbr":
            return list(self.targets)
        if self.kind == "switch":
            seen = []
            for block in list(self.cases.values()) + [self.targets[0]]:
                if block not in seen:
                    seen.append(block)
            return seen
        return []

    def replace_successor(self, old, new):
        """Rewrite a successor block name (used by CFG transforms)."""
        if self.targets:
            self.targets = tuple(new if t == old else t for t in self.targets)
        if self.cases:
            self.cases = {k: (new if v == old else v) for k, v in self.cases.items()}

    def copy(self):
        return IRInst(
            self.kind, dst=self.dst, a=self.a, b=self.b, oper=self.oper,
            sym=self.sym, args=list(self.args) if self.args is not None else None,
            lp=self.lp, targets=tuple(self.targets) if self.targets else None,
            cases=dict(self.cases) if self.cases else None, value=self.value,
            loc=self.loc,
        )

    def __repr__(self):
        k = self.kind
        if k == "const":
            return f"{_fmt(self.dst)} = const {self.value}"
        if k == "mov":
            return f"{_fmt(self.dst)} = {_fmt(self.a)}"
        if k == "binop":
            return f"{_fmt(self.dst)} = {_fmt(self.a)} {self.oper} {_fmt(self.b)}"
        if k == "unop":
            return f"{_fmt(self.dst)} = {self.oper}{_fmt(self.a)}"
        if k == "loadg":
            return f"{_fmt(self.dst)} = loadg @{self.sym}"
        if k == "storeg":
            return f"storeg @{self.sym} = {_fmt(self.a)}"
        if k == "loadidx":
            return f"{_fmt(self.dst)} = @{self.sym}[{_fmt(self.a)}]"
        if k == "storeidx":
            return f"@{self.sym}[{_fmt(self.a)}] = {_fmt(self.b)}"
        if k == "call":
            args = ", ".join(_fmt(a) for a in self.args)
            lp = f" lp={self.lp}" if self.lp else ""
            head = f"{_fmt(self.dst)} = " if self.dst is not None else ""
            return f"{head}call @{self.sym}({args}){lp}"
        if k == "icall":
            args = ", ".join(_fmt(a) for a in self.args)
            lp = f" lp={self.lp}" if self.lp else ""
            head = f"{_fmt(self.dst)} = " if self.dst is not None else ""
            return f"{head}icall {_fmt(self.a)}({args}){lp}"
        if k == "funcaddr":
            return f"{_fmt(self.dst)} = &@{self.sym}"
        if k == "out":
            return f"out {_fmt(self.a)}"
        if k == "throw":
            lp = f" lp={self.lp}" if self.lp else ""
            return f"throw {_fmt(self.a)}{lp}"
        if k == "landingpad":
            return f"{_fmt(self.dst)} = landingpad"
        if k == "profcount":
            return f"profcount #{self.value}"
        if k == "br":
            return f"br {self.targets[0]}"
        if k == "cbr":
            return (f"cbr {_fmt(self.a)} {self.oper} {_fmt(self.b)}, "
                    f"{self.targets[0]}, {self.targets[1]}")
        if k == "switch":
            cases = ", ".join(f"{v}->{b}" for v, b in sorted(self.cases.items()))
            return f"switch {_fmt(self.a)} [{cases}] default {self.targets[0]}"
        if k == "ret":
            return f"ret {_fmt(self.a)}" if self.a is not None else "ret"
        if k == "unreachable":
            return "unreachable"
        return f"<{k}>"


class IRBlock:
    """A basic block: straight-line instructions plus one terminator."""

    __slots__ = ("name", "insts", "terminator", "count", "is_landing_pad")

    def __init__(self, name):
        self.name = name
        self.insts = []
        self.terminator = None
        self.count = None           # profile execution count (or None)
        self.is_landing_pad = False

    def successors(self):
        if self.terminator is None:
            return []
        return self.terminator.successor_blocks()

    def __repr__(self):
        return f"<IRBlock {self.name} ({len(self.insts)} insts)>"


class IRFunction:
    """A function: ordered blocks, entry first."""

    def __init__(self, name, params, static=False, module=None, loc=None):
        self.name = name
        self.params = params          # list of param vregs
        self.param_names = []
        self.static = static
        self.module = module
        self.loc = loc
        self.blocks = {}              # name -> IRBlock, insertion-ordered
        self.entry = None
        self.next_vreg = 0
        self.next_block = 0
        self.edge_counts = {}         # (from, to) -> count (profile)
        self.entry_count = None       # profile entry count

    def new_vreg(self):
        vreg = self.next_vreg
        self.next_vreg += 1
        return vreg

    def new_block(self, hint="bb"):
        name = f"{hint}{self.next_block}"
        self.next_block += 1
        block = IRBlock(name)
        self.blocks[name] = block
        if self.entry is None:
            self.entry = name
        return block

    def remove_block(self, name):
        del self.blocks[name]

    def predecessors(self):
        """Map block name -> list of predecessor block names."""
        preds = {name: [] for name in self.blocks}
        for name, block in self.blocks.items():
            for succ in block.successors():
                preds[succ].append(name)
        return preds

    def block_order(self):
        return list(self.blocks)

    def reorder(self, order):
        """Set a new block order; must be a permutation with entry first."""
        assert set(order) == set(self.blocks), "order must cover all blocks"
        assert order[0] == self.entry, "entry must stay first"
        self.blocks = {name: self.blocks[name] for name in order}

    def link_name(self):
        if self.static and self.module is not None:
            return f"{self.module}::{self.name}"
        return self.name

    def dump(self):
        lines = [f"func {self.name}({', '.join('%' + str(p) for p in self.params)}):"]
        for block in self.blocks.values():
            suffix = " [lp]" if block.is_landing_pad else ""
            count = f" !count={block.count}" if block.count is not None else ""
            lines.append(f"  {block.name}:{suffix}{count}")
            for inst in block.insts:
                lines.append(f"    {inst!r}")
            lines.append(f"    {block.terminator!r}")
        return "\n".join(lines)

    def __repr__(self):
        return f"<IRFunction {self.name} blocks={len(self.blocks)}>"


class IRModule:
    """One compilation unit's IR plus its global data."""

    def __init__(self, name):
        self.name = name
        self.functions = {}       # name -> IRFunction
        self.global_vars = {}     # name -> (init, const)
        self.global_arrays = {}   # name -> (size, init_list, const)
        self.source_files = []

    def add_function(self, func):
        self.functions[func.name] = func
        return func

    def __repr__(self):
        return f"<IRModule {self.name} funcs={list(self.functions)}>"
