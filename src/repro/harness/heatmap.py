"""Instruction-address-space heat maps (paper Figure 9).

The CPU's ``fetch_heat`` option records bytes fetched per instruction
address; these helpers fold that into the paper's 64x64 log-scale
matrix and compute the hot-footprint statistic behind the Figure 9
discussion (hot code packed from 148.2 MB of text into ~4 MB).
"""


import numpy as np


def _text_span(binary):
    lo, hi = None, 0
    for section in binary.sections.values():
        if section.is_exec:
            lo = section.addr if lo is None else min(lo, section.addr)
            hi = max(hi, section.end)
    return lo or 0, hi


def fetch_heatmap(cpu, grid=64, span=None):
    """A (grid x grid) matrix of log-scaled average fetches per byte.

    ``span`` defaults to the binary's executable address range; pass an
    explicit (lo, hi) to compare before/after on the same axis.
    """
    if cpu.fetch_heat is None:
        raise ValueError("run the CPU with fetch_heat=True")
    lo, hi = span or _text_span(cpu.machine.binary)
    total_bytes = max(1, hi - lo)
    cells = grid * grid
    block = max(1, (total_bytes + cells - 1) // cells)
    flat = np.zeros(cells)
    for addr, count in cpu.fetch_heat.items():
        if lo <= addr < hi:
            flat[(addr - lo) // block] += count
    flat /= block  # average fetches per byte
    with np.errstate(divide="ignore"):
        flat = np.where(flat > 0, np.log10(flat * 10 + 1), 0.0)
    return flat.reshape((grid, grid))


def hot_footprint(cpu, coverage=0.99, block=64):
    """Bytes of address space covering ``coverage`` of all fetches.

    The Figure 9 statistic: how much address space the hot code spans.
    """
    if cpu.fetch_heat is None:
        raise ValueError("run the CPU with fetch_heat=True")
    blocks = {}
    for addr, count in cpu.fetch_heat.items():
        blocks[addr // block] = blocks.get(addr // block, 0) + count
    total = sum(blocks.values())
    if total == 0:
        return 0
    covered = 0
    used = 0
    for count in sorted(blocks.values(), reverse=True):
        covered += count
        used += block
        if covered >= coverage * total:
            break
    return used


def hot_span(cpu, coverage=0.99, block=64):
    """Address-range spread (max-min) of the blocks holding the hot
    ``coverage`` of fetches — how far apart hot code sits."""
    if cpu.fetch_heat is None:
        raise ValueError("run the CPU with fetch_heat=True")
    blocks = {}
    for addr, count in cpu.fetch_heat.items():
        blocks[addr // block] = blocks.get(addr // block, 0) + count
    total = sum(blocks.values())
    if total == 0:
        return 0
    chosen = []
    covered = 0
    for index, count in sorted(blocks.items(), key=lambda kv: -kv[1]):
        chosen.append(index)
        covered += count
        if covered >= coverage * total:
            break
    return (max(chosen) - min(chosen) + 1) * block


def render_heatmap(matrix, levels=" .:-=+*#%@"):
    """ASCII rendering of a heat matrix (for reports/tests)."""
    hi = matrix.max() or 1.0
    rows = []
    for row in matrix:
        rows.append("".join(
            levels[min(len(levels) - 1, int(v / hi * (len(levels) - 1)))]
            for v in row))
    return "\n".join(rows)
