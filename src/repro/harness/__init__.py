"""End-to-end experiment harness.

Composes the whole reproduction: generate a workload, build it in any
of the paper's configurations (O2 / PGO / AutoFDO / LTO / link-time
HFSort), collect a sampled profile, run BOLT, and measure with the
microarchitecture model.  Every benchmark under ``benchmarks/`` is a
thin wrapper over these flows.
"""

from repro.harness.pipeline import (
    BuiltBinary,
    build_workload,
    measure,
    sample_profile,
    run_bolt,
    speedup,
    hfsort_link_order,
    collect_fleet_shards,
    bolt_with_fleet_profile,
)
from repro.harness.metrics import (
    miss_reduction,
    counter_reductions,
    summarize_counters,
)
from repro.harness.heatmap import (
    fetch_heatmap,
    hot_footprint,
    hot_span,
    render_heatmap,
)

__all__ = [
    "BuiltBinary",
    "build_workload",
    "measure",
    "sample_profile",
    "run_bolt",
    "speedup",
    "hfsort_link_order",
    "collect_fleet_shards",
    "bolt_with_fleet_profile",
    "miss_reduction",
    "counter_reductions",
    "summarize_counters",
    "fetch_heatmap",
    "hot_footprint",
    "hot_span",
    "render_heatmap",
]
