"""Programmatic experiment runners.

Each function reproduces one of the paper's tables/figures and returns
a plain data structure; the pytest benchmarks and the
``python -m repro.experiments`` entry point are thin wrappers.  Useful
when you want the numbers without pytest in the loop::

    from repro.harness.experiments import figure5
    for row in figure5()["rows"]:
        print(row)
"""

import math

from repro.core import BoltOptions
from repro.harness.metrics import FIGURE6_METRICS, counter_reductions
from repro.harness.pipeline import (
    build_workload,
    measure,
    run_bolt,
    sample_profile,
    speedup,
)
from repro.profiling import SamplingConfig
from repro.workloads import FACEBOOK_NAMES, make_workload


def _experiment(workload, built, bolt_options=None, engine=None):
    baseline = measure(built, fetch_heat=True, engine=engine)
    profile, _ = sample_profile(built, engine=engine)
    result = run_bolt(built, profile, bolt_options or BoltOptions())
    optimized = measure(result.binary, inputs=workload.inputs,
                        fetch_heat=True, engine=engine)
    assert optimized.output == baseline.output
    return baseline, optimized, result, profile


def figure5(names=FACEBOOK_NAMES, iterations=None, engine=None):
    """BOLT speedups over the HFSort(+LTO for hhvm) baselines."""
    rows = []
    gains = []
    details = {}
    for name in names:
        overrides = {"iterations": iterations} if iterations else {}
        workload = make_workload(name, **overrides)
        built = build_workload(workload, lto=(name == "hhvm"),
                               hfsort_link="hfsort")
        baseline, optimized, result, _ = _experiment(workload, built,
                                                     engine=engine)
        gain = speedup(baseline.counters.cycles, optimized.counters.cycles)
        gains.append(gain)
        rows.append((name, baseline.counters.cycles,
                     optimized.counters.cycles, gain))
        details[name] = (baseline, optimized, result)
    geomean = math.prod(1 + g for g in gains) ** (1 / len(gains)) - 1
    return {"rows": rows, "geomean": geomean, "details": details}


def figure6(detail=None):
    """Micro-architecture miss reductions for the HHVM analog."""
    if detail is None:
        workload = make_workload("hhvm")
        built = build_workload(workload, lto=True, hfsort_link="hfsort")
        baseline, optimized, _, _ = _experiment(workload, built)
    else:
        baseline, optimized, _ = detail
    return counter_reductions(baseline.counters, optimized.counters,
                              FIGURE6_METRICS)


def figures7and8(iterations=None):
    """The Clang/GCC build-configuration matrix."""
    overrides = {"iterations": iterations} if iterations else {}
    workload = make_workload("compiler", **overrides)

    def bolted(built):
        profile, _ = sample_profile(built)
        return run_bolt(built, profile).binary

    base = build_workload(workload)
    pgo = build_workload(workload, pgo=True)
    pgo_lto = build_workload(workload, pgo=True, lto=True)
    binaries = {
        "BOLT": bolted(base),
        "PGO": pgo.exe,
        "PGO+BOLT": bolted(pgo),
        "PGO+LTO": pgo_lto.exe,
        "PGO+LTO+BOLT": bolted(pgo_lto),
    }
    input_mixes = {"input1": workload.inputs, **workload.alt_inputs}
    table = {}
    for label, inputs in input_mixes.items():
        base_cycles = measure(base.exe, inputs=inputs).counters.cycles
        table[label] = {
            key: speedup(base_cycles,
                         measure(binary, inputs=inputs).counters.cycles)
            for key, binary in binaries.items()
        }
    return table


def figure11(iterations=None):
    """LBR vs non-LBR across optimization scopes, on the HHVM analog."""
    overrides = {"iterations": iterations} if iterations else {}
    workload = make_workload("hhvm", **overrides)
    built = build_workload(workload, lto=True, hfsort_link="hfsort")
    base = measure(built)
    lbr_profile, _ = sample_profile(built)
    nolbr_profile, _ = sample_profile(
        built, sampling=SamplingConfig(period=251, use_lbr=False))

    scopes = {
        "Functions": BoltOptions(reorder_blocks="none", split_functions=0,
                                 icp=False, inline_small=False, sctc=False,
                                 frame_opts=False, shrink_wrapping=False),
        "BBs": BoltOptions(reorder_functions="none"),
        "Both": BoltOptions(),
    }
    out = {}
    for scope, options in scopes.items():
        with_lbr = measure(run_bolt(built, lbr_profile, options).binary,
                           inputs=workload.inputs)
        without = measure(run_bolt(built, nolbr_profile, options).binary,
                          inputs=workload.inputs)
        out[scope] = (
            speedup(base.counters.cycles, with_lbr.counters.cycles),
            speedup(base.counters.cycles, without.counters.cycles),
        )
    return out


def table2(iterations=None):
    """Dyno-stats deltas over the baseline and over PGO+LTO."""
    overrides = {"iterations": iterations} if iterations else {}
    workload = make_workload("compiler", **overrides)

    def deltas(built):
        profile, _ = sample_profile(built)
        result = run_bolt(built, profile)
        return result.dyno_after.delta_vs(result.dyno_before)

    return {
        "over_baseline": deltas(build_workload(workload)),
        "over_pgo_lto": deltas(build_workload(workload, pgo=True, lto=True)),
    }
