"""Counter comparison helpers (Figures 6 and 11)."""


def miss_reduction(before, after, miss_field):
    """Relative miss reduction (positive = improvement)."""
    b = getattr(before, miss_field)
    a = getattr(after, miss_field)
    if b == 0:
        return 0.0
    return (b - a) / b


#: The metric set of the paper's Figure 6.
FIGURE6_METRICS = (
    ("Branch", "branch_misses"),
    ("D-Cache", "l1d_misses"),
    ("I-Cache", "l1i_misses"),
    ("I-TLB", "itlb_misses"),
    ("D-TLB", "dtlb_misses"),
    ("LLC", "llc_misses"),
)

#: The metric set of the paper's Figure 11.
FIGURE11_METRICS = (
    ("Instructions", "instructions"),
    ("Branch-miss", "branch_misses"),
    ("I-cache-miss", "l1i_misses"),
    ("LLC-miss", "llc_misses"),
    ("iTLB-miss", "itlb_misses"),
    ("CPU time", "cycles"),
)


def counter_reductions(before, after, metrics=FIGURE6_METRICS):
    """{label: relative reduction} for a metric table."""
    return {
        label: miss_reduction(before, after, field)
        for label, field in metrics
    }


def simulated_mips(counters, wall_seconds):
    """Simulated millions-of-instructions-per-second of host wall time.

    The throughput figure of merit for the execution engines
    (EXPERIMENTS.md "simulation throughput", ``BENCH_pr5.json``).
    """
    if wall_seconds <= 0:
        return 0.0
    return counters.instructions / wall_seconds / 1e6


def summarize_counters(counters):
    """Compact human-readable counter summary."""
    c = counters
    return (
        f"instructions={c.instructions} cycles={c.cycles} "
        f"ipc={c.instructions / max(1, c.cycles):.3f} "
        f"taken={c.taken_branches} br-miss={c.branch_misses} "
        f"l1i-miss={c.l1i_misses} itlb-miss={c.itlb_misses} "
        f"l1d-miss={c.l1d_misses} llc-miss={c.llc_misses}"
    )
