"""Build/measure/profile/BOLT flows."""

from repro.codegen import CodegenOptions
from repro.compiler import (
    BuildOptions,
    SourceProfile,
    collect_edge_profile,
    compile_program,
)
from repro.core import BoltOptions, optimize_binary
from repro.core.hfsort import CallGraph, hfsort, hfsort_plus
from repro.linker import link
from repro.profiling import (
    AddressMapper,
    Sampler,
    SamplingConfig,
    aggregate_samples,
    aggregate_shards,
    write_fdata,
)
from repro.uarch import run_binary

DEFAULT_MAX_INSTRUCTIONS = 80_000_000


class BuiltBinary:
    """An executable plus how it was built."""

    def __init__(self, exe, label, workload, compile_result=None):
        self.exe = exe
        self.label = label
        self.workload = workload
        self.compile_result = compile_result

    def __repr__(self):
        return f"<BuiltBinary {self.label} text={self.exe.text_size()}B>"


def _compile_all(workload, options):
    """Compile app + asm modules; returns (objects, lib_objects, result)."""
    result = compile_program(workload.sources, options)
    objects = list(result.objects)
    if workload.asm_sources:
        asm_options = options.copy(
            codegen=options.codegen.copy(frame_info=False),
            instrument=False, profile=None)
        asm_result = compile_program(workload.asm_sources, asm_options)
        objects.extend(asm_result.objects)
    lib_objects = []
    if workload.lib_sources:
        lib_result = compile_program(workload.lib_sources, BuildOptions())
        lib_objects = lib_result.objects
    return objects, lib_objects, result


def build_workload(
    workload,
    label=None,
    lto=False,
    pgo=False,
    autofdo=False,
    hfsort_link=None,        # None | "hfsort" | "hfsort+"
    emit_relocs=True,
    linker_icf=False,
    codegen=None,
    train_inputs=None,
    sampling=None,
    max_instructions=DEFAULT_MAX_INSTRUCTIONS,
):
    """Build a workload in one of the paper's configurations.

    PGO: builds an instrumented binary, trains it on ``train_inputs``
    (defaults to the workload's inputs), and rebuilds with the edge
    profile.  AutoFDO: trains a *baseline* build under the sampler and
    maps samples back to source lines through the debug info.
    HFSort at link time additionally samples the built binary and
    relinks with the function order (the paper's section 6.1 baseline).
    """
    train_inputs = train_inputs or workload.inputs
    codegen = codegen or CodegenOptions()
    base_options = BuildOptions(lto=lto, codegen=codegen)

    profile = None
    if pgo:
        instr_options = BuildOptions(codegen=codegen, instrument=True)
        objects, lib_objects, result = _compile_all(workload, instr_options)
        exe = link(objects, libs=lib_objects, name="train")
        cpu = run_binary(exe, inputs=train_inputs,
                         max_instructions=max_instructions)
        profile = collect_edge_profile(cpu.machine, result.counter_keys)
    elif autofdo:
        objects, lib_objects, _ = _compile_all(workload, base_options)
        exe = link(objects, libs=lib_objects, name="train")
        bin_profile, cpu = _sample(exe, train_inputs, sampling,
                                   max_instructions)
        profile = _map_to_source(exe, bin_profile)

    options = base_options.copy(profile=profile)
    objects, lib_objects, result = _compile_all(workload, options)
    order = None
    if hfsort_link:
        exe0 = link(objects, libs=lib_objects, name=workload.spec.name,
                    emit_relocs=emit_relocs, icf=linker_icf)
        bin_profile, _ = _sample(exe0, train_inputs, sampling,
                                 max_instructions)
        order = hfsort_link_order(exe0, bin_profile, flavor=hfsort_link)
    exe = link(objects, libs=lib_objects, name=workload.spec.name,
               emit_relocs=emit_relocs, function_order=order,
               icf=linker_icf)
    return BuiltBinary(exe, label or _label(lto, pgo, autofdo, hfsort_link),
                       workload, result)


def _label(lto, pgo, autofdo, hfsort_link):
    parts = []
    if pgo:
        parts.append("PGO")
    if autofdo:
        parts.append("AutoFDO")
    if lto:
        parts.append("LTO")
    if hfsort_link:
        parts.append("HFSort")
    return "+".join(parts) or "O2"


def measure(built_or_exe, inputs=None, config=None,
            max_instructions=DEFAULT_MAX_INSTRUCTIONS, fetch_heat=False,
            engine=None):
    """Run and return the CPU (counters, cycles, output)."""
    exe = built_or_exe.exe if isinstance(built_or_exe, BuiltBinary) else built_or_exe
    if inputs is None and isinstance(built_or_exe, BuiltBinary):
        inputs = built_or_exe.workload.inputs
    return run_binary(exe, inputs=inputs, config=config,
                      max_instructions=max_instructions,
                      fetch_heat=fetch_heat, engine=engine)


def _sample(exe, inputs, sampling, max_instructions, engine=None):
    sampling = sampling or SamplingConfig(period=251)
    sampler = Sampler(sampling)
    cpu = run_binary(exe, inputs=inputs, sampler=sampler,
                     max_instructions=max_instructions, engine=engine)
    mapper = AddressMapper(exe)
    profile = aggregate_samples(sampler.samples, mapper,
                                event=sampling.event, lbr=sampling.use_lbr,
                                build_id=exe.content_hash())
    return profile, cpu


def sample_profile(built_or_exe, inputs=None, sampling=None,
                   max_instructions=DEFAULT_MAX_INSTRUCTIONS, engine=None):
    """Collect a BinaryProfile (the perf + perf2bolt step)."""
    exe = built_or_exe.exe if isinstance(built_or_exe, BuiltBinary) else built_or_exe
    if inputs is None and isinstance(built_or_exe, BuiltBinary):
        inputs = built_or_exe.workload.inputs
    return _sample(exe, inputs, sampling, max_instructions, engine=engine)


def _map_to_source(exe, bin_profile):
    """AutoFDO: binary-level samples -> (file, line) counts via debug
    info — the lossy mapping of paper section 2.2."""
    line_counts = {}
    mapper = AddressMapper(exe)
    starts = {sym.link_name(): sym.value for sym in mapper.funcs}
    if exe.line_table is None:
        return SourceProfile({})

    def bump(func, offset, count):
        addr = starts.get(func)
        if addr is None:
            return
        loc = exe.line_table.lookup(addr + offset)
        if loc is not None:
            line_counts[loc] = line_counts.get(loc, 0) + count

    for (f, t), (count, _) in bin_profile.branches.items():
        bump(f[0], f[1], count)
        bump(t[0], t[1], count)
    for (func, offset), count in bin_profile.ip_samples.items():
        bump(func, offset, count)
    return SourceProfile(line_counts)


def hfsort_link_order(exe, bin_profile, flavor="hfsort"):
    """Function order for the linker from a sampled profile."""
    graph = CallGraph()
    for sym in exe.functions():
        graph.add_function(sym.link_name(), 0, max(1, sym.size))
    for (func, _), count in bin_profile.ip_samples.items():
        if func in graph.weights:
            graph.weights[func] += count
    for (caller, callee), weight in bin_profile.calls_between().items():
        if caller in graph.weights and callee in graph.weights:
            graph.add_arc(caller, callee, weight)
    if flavor in ("hfsort+", "hfsort_plus"):
        return hfsort_plus(graph)
    return hfsort(graph)


def run_bolt(built_or_exe, profile, options=None, smoke_inputs=None):
    """Apply BOLT; returns the RewriteResult.

    When ``smoke_inputs`` is given (or the workload's inputs are known)
    and the options request execution validation, the rewritten binary
    is smoke-tested for output equivalence before being returned.
    """
    exe = built_or_exe.exe if isinstance(built_or_exe, BuiltBinary) else built_or_exe
    options = options or BoltOptions()
    if options.validate_output == "execute" and options.validate_inputs is None:
        if smoke_inputs is None and isinstance(built_or_exe, BuiltBinary):
            smoke_inputs = built_or_exe.workload.inputs
        options = options.copy(validate_inputs=smoke_inputs)
    return optimize_binary(exe, profile, options)


def bolt_processing_time(built_or_exe, profile, options=None):
    """Apply BOLT with the timing layer on; returns (result, timing).

    The helper behind the processing-time benchmarks (EXPERIMENTS.md
    "processing time", ``BENCH_pr3.json``): the wall number comes from
    ``TimingReport.total_seconds`` so it matches what ``--time-rewrite``
    prints.  ``timing`` is None when every rewrite attempt degraded to
    passthrough.
    """
    options = (options or BoltOptions()).copy(
        time_opts=True, time_rewrite=True)
    result = run_bolt(built_or_exe, profile, options=options)
    return result, result.timing


#: Per-host sampling periods for the fleet simulation: coprime periods
#: make each host sample a different phase of the same workload, like
#: unsynchronized perf sessions across a tier.
_HOST_PERIODS = (251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313)


def collect_fleet_shards(built_or_exe, hosts=4, sampling=None,
                         vary_inputs=True,
                         max_instructions=DEFAULT_MAX_INSTRUCTIONS,
                         engine=None):
    """Simulate a fleet: N hosts each sample the same service.

    Every host runs the workload under its own sampling period (and,
    when the workload defines alternative input mixes, its own input
    mix) and writes its LBR collection out as an ``.fdata`` shard —
    the per-host half of the paper's data-center flow (section 2).

    Returns ``[(host name, fdata text)]``, ready for
    :func:`repro.profiling.aggregate_shards`.
    """
    exe = (built_or_exe.exe if isinstance(built_or_exe, BuiltBinary)
           else built_or_exe)
    base = sampling or SamplingConfig(period=251)
    input_pool = [None]
    if isinstance(built_or_exe, BuiltBinary):
        workload = built_or_exe.workload
        input_pool = [workload.inputs]
        if vary_inputs:
            input_pool += [mix for _, mix in sorted(workload.alt_inputs.items())]
    shards = []
    for host in range(hosts):
        config = SamplingConfig(
            event=base.event,
            period=_HOST_PERIODS[host % len(_HOST_PERIODS)],
            skid=base.skid, use_lbr=base.use_lbr)
        inputs = input_pool[host % len(input_pool)]
        profile, _ = _sample(exe, inputs, config, max_instructions,
                             engine=engine)
        shards.append((f"host{host:02d}", write_fdata(profile)))
    return shards


def bolt_with_fleet_profile(built_or_exe, hosts=4, options=None,
                            threads=1, cache_dir=None, sampling=None,
                            vary_inputs=True,
                            max_instructions=DEFAULT_MAX_INSTRUCTIONS):
    """The fleet flow end to end: sample N hosts, aggregate the shards
    (merge-fdata), and feed the merged profile into the rewrite.

    Returns ``(RewriteResult, AggregationResult)`` — the second carries
    the per-shard quality report the CLI renders with ``--json``.
    """
    exe = (built_or_exe.exe if isinstance(built_or_exe, BuiltBinary)
           else built_or_exe)
    shards = collect_fleet_shards(built_or_exe, hosts=hosts,
                                  sampling=sampling,
                                  vary_inputs=vary_inputs,
                                  max_instructions=max_instructions)
    aggregation = aggregate_shards(shards, binary=exe, threads=threads,
                                   cache_dir=cache_dir)
    result = run_bolt(built_or_exe, aggregation.profile, options=options)
    return result, aggregation


def speedup(baseline_cycles, optimized_cycles):
    """Relative speedup, as the paper reports it (e.g. 0.08 = 8%)."""
    return baseline_cycles / optimized_cycles - 1.0
