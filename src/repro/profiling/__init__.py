"""Sample-based profiling (the perf + perf2bolt analog).

Implements the profiling techniques of paper section 5: hardware-style
sampling with configurable events and PEBS-style skid, LBR capture,
aggregation of raw samples into a binary-level profile (perf2bolt), the
``.fdata``-like on-disk format, and — for the non-LBR ablations — edge
recovery via flow-equation repair and minimum-cost-flow inference.
"""

from repro.profiling.events import Sampler, SamplingConfig, EVENT_PRESETS
from repro.profiling.profile import BinaryProfile, write_fdata, parse_fdata
from repro.profiling.aggregate import (
    aggregate_samples,
    profile_binary,
    AddressMapper,
    AggregationResult,
    ShardCache,
    ShardReport,
    aggregate_shards,
    load_shard_files,
)
from repro.profiling.merge import (
    FDATA_RULES,
    ShardStats,
    merge_profiles,
    normalize_profile,
    parse_fdata_shard,
    remap_profile_names,
    scale_profile,
    shard_divergence,
)
from repro.profiling.mcf import min_cost_flow_edges
from repro.profiling.accuracy import (
    overlap_accuracy,
    ir_edge_truth,
    binary_block_truth,
    sampled_block_estimate,
)
from repro.profiling.yamlprofile import (
    write_yaml_profile,
    parse_yaml_profile,
    YamlProfileError,
)

__all__ = [
    "Sampler",
    "SamplingConfig",
    "EVENT_PRESETS",
    "BinaryProfile",
    "write_fdata",
    "parse_fdata",
    "aggregate_samples",
    "profile_binary",
    "AddressMapper",
    "AggregationResult",
    "ShardCache",
    "ShardReport",
    "aggregate_shards",
    "load_shard_files",
    "FDATA_RULES",
    "ShardStats",
    "merge_profiles",
    "normalize_profile",
    "parse_fdata_shard",
    "remap_profile_names",
    "scale_profile",
    "shard_divergence",
    "min_cost_flow_edges",
    "overlap_accuracy",
    "ir_edge_truth",
    "binary_block_truth",
    "sampled_block_estimate",
    "write_yaml_profile",
    "parse_yaml_profile",
    "YamlProfileError",
]
