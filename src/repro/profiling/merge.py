"""Fleet-profile merge algebra (the ``merge-fdata`` analog).

BOLT's data-center deployment (paper sections 2 and 5.1) samples
production hosts continuously; the per-host LBR collections become one
``.fdata`` via ``merge-fdata`` before the rewrite ever runs.  This
module is the algebra underneath that tool:

* a **tolerant shard parser** that turns malformed ``.fdata`` lines
  into stable-rule-ID diagnostics (``FD0xx``) instead of exceptions —
  a fleet always contains a truncated upload or a corrupt writer, and
  one bad host must never sink the aggregation (PR 1 containment
  spirit);
* a deterministic **normal form** for profiles (sorted records,
  zero-mass records dropped);
* a weighted **merge** that is commutative and associative *by
  construction*: record counts are integers summed exactly, and every
  metadata resolution rule (event, lbr, build-id) is an order-free
  function of the input multiset — so shard arrival order provably
  cannot change the merged output.

Weights are applied per shard *before* summation by integer rounding
(``round(count * weight)``), keeping the accumulator in exact integer
arithmetic; ``weight == 1`` is an exact identity.
"""

import hashlib

from repro.profiling.profile import BinaryProfile

#: Cap on per-rule, per-shard individual line diagnostics; the
#: remainder is folded into one summary line so a fuzzer-sized shard
#: cannot flood the collector.
MAX_LINE_DIAGS = 8


class ShardRule:
    """A stable diagnostic rule for the shard parser/aggregator."""

    __slots__ = ("id", "name", "severity", "summary")

    def __init__(self, rule_id, name, severity, summary):
        self.id = rule_id
        self.name = name
        self.severity = severity        # "warning" | "error"
        self.summary = summary

    def __repr__(self):
        return f"<ShardRule {self.id} {self.name} ({self.severity})>"


FDATA_RULES = {r.id: r for r in [
    ShardRule("FD001", "branch-line-malformed", "warning",
              "a branch record does not have the 8-field "
              "'1 from off 1 to off mispreds count' shape"),
    ShardRule("FD002", "sample-line-malformed", "warning",
              "a sample record does not have the 4-field "
              "'S func off count' shape"),
    ShardRule("FD003", "unknown-record", "warning",
              "a line starts with an unknown record discriminator"),
    ShardRule("FD004", "bad-integer-field", "warning",
              "an offset/count field is not a parseable integer"),
    ShardRule("FD005", "negative-count", "warning",
              "a record carries a negative count or mispredict total"),
    ShardRule("FD006", "header-conflict", "warning",
              "a shard repeats a header line with a conflicting value "
              "(e.g. two different build-ids); the first value wins"),
    ShardRule("FD007", "shard-event-mismatch", "warning",
              "shards disagree on sampling event or LBR mode; the "
              "merge proceeds but counts are not strictly comparable"),
    ShardRule("FD008", "stale-shard", "warning",
              "a shard's build-id does not match the target binary "
              "(or the fleet majority); it is reconciled/downweighted"),
    ShardRule("FD009", "flat-profile", "warning",
              "an LBR shard contains no usable branch records; it "
              "contributes nothing to edge counts"),
    ShardRule("FD010", "empty-shard", "warning",
              "a shard contains no records at all"),
    ShardRule("FD011", "bad-weight", "error",
              "a shard weight is not a positive finite number; the "
              "shard is excluded from the merge"),
    ShardRule("FD012", "shard-unreadable", "error",
              "a shard could not be read/decoded; it is excluded"),
    ShardRule("FD013", "low-match-quality", "warning",
              "a stale shard's fuzzy match quality is below the "
              "floor; the shard is excluded from the merge"),
]}


def _emit(diags, rule_id, message, shard=None):
    """Record one FD-rule diagnostic on a Diagnostics collector."""
    if diags is None:
        return
    rule = FDATA_RULES[rule_id]
    record = diags.error if rule.severity == "error" else diags.warning
    record("merge-fdata", f"{rule_id}: {message}", function=shard)


class ShardStats:
    """Per-shard parse accounting (feeds the quality report)."""

    def __init__(self):
        self.lines = 0              # non-empty, non-comment lines seen
        self.branch_lines = 0       # parsed branch records
        self.sample_lines = 0       # parsed sample records
        self.dropped = {}           # rule id -> dropped line count

    def drop(self, rule_id):
        self.dropped[rule_id] = self.dropped.get(rule_id, 0) + 1

    @property
    def dropped_total(self):
        return sum(self.dropped.values())

    def as_dict(self):
        return {
            "lines": self.lines,
            "branch_lines": self.branch_lines,
            "sample_lines": self.sample_lines,
            "dropped": dict(sorted(self.dropped.items())),
            "dropped_total": self.dropped_total,
        }

    @classmethod
    def from_dict(cls, data):
        stats = cls()
        stats.lines = data["lines"]
        stats.branch_lines = data["branch_lines"]
        stats.sample_lines = data["sample_lines"]
        stats.dropped = dict(data["dropped"])
        return stats


def _unesc(name):
    return name.replace("%20", " ").replace("%25", "%")


def parse_fdata_shard(text, diags=None, shard=None):
    """Tolerant ``.fdata`` parse: returns ``(BinaryProfile, ShardStats)``.

    Unlike :func:`repro.profiling.profile.parse_fdata`, malformed,
    truncated, or mixed-header lines never raise: each rejected line is
    dropped and surfaced as an ``FD0xx`` diagnostic (capped per rule at
    :data:`MAX_LINE_DIAGS` individual lines plus one summary).
    """
    profile = BinaryProfile()
    stats = ShardStats()
    seen_headers = {}
    pending = {}    # rule id -> [example messages...] beyond the cap

    def reject(rule_id, raw):
        stats.drop(rule_id)
        n = stats.dropped[rule_id]
        if n <= MAX_LINE_DIAGS:
            _emit(diags, rule_id, f"dropped line {raw!r}", shard)
        else:
            pending[rule_id] = pending.get(rule_id, 0) + 1

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            _parse_header(profile, line, seen_headers,
                          lambda rid, msg=line: reject(rid, msg))
            continue
        stats.lines += 1
        parts = line.split()
        if parts[0] == "1":
            if len(parts) != 8 or parts[3] != "1":
                reject("FD001", raw)
                continue
            try:
                from_loc = (_unesc(parts[1]), int(parts[2], 16))
                to_loc = (_unesc(parts[4]), int(parts[5], 16))
                mispred, count = int(parts[6]), int(parts[7])
            except ValueError:
                reject("FD004", raw)
                continue
            if count < 0 or mispred < 0:
                reject("FD005", raw)
                continue
            entry = profile.branches.setdefault((from_loc, to_loc), [0, 0])
            entry[0] += count
            entry[1] += mispred
            stats.branch_lines += 1
        elif parts[0] == "S":
            if len(parts) != 4:
                reject("FD002", raw)
                continue
            try:
                loc = (_unesc(parts[1]), int(parts[2], 16))
                count = int(parts[3])
            except ValueError:
                reject("FD004", raw)
                continue
            if count < 0:
                reject("FD005", raw)
                continue
            profile.add_sample(loc, count)
            stats.sample_lines += 1
        else:
            reject("FD003", raw)

    for rule_id, extra in sorted(pending.items()):
        _emit(diags, rule_id,
              f"{extra} more line(s) dropped "
              f"({stats.dropped[rule_id]} total)", shard)
    return profile, stats


def _parse_header(profile, line, seen, reject):
    """One '# key: value' header; conflicting repeats are FD006."""
    for key, attr, convert in (
            ("# event:", "event", str),
            ("# lbr:", "lbr", lambda v: v == "1"),
            ("# build-id:", "build_id", lambda v: v or None)):
        if not line.startswith(key):
            continue
        value = convert(line.split(":", 1)[1].strip())
        if key in seen:
            if seen[key] != value:
                reject("FD006")
            return
        seen[key] = value
        setattr(profile, attr, value)
        return
    # Unknown comment lines are plain comments, not records: ignored.


# ---------------------------------------------------------------------------
# Normal form, scaling, and the merge itself
# ---------------------------------------------------------------------------


def normalize_profile(profile):
    """Canonical form: sorted records, zero-mass records dropped.

    ``write_fdata(normalize_profile(p)) == write_fdata(p)`` whenever
    ``p`` carries no zero-mass records; the normal form exists so that
    merged profiles compare structurally (dict order included), not
    just textually.
    """
    out = BinaryProfile(event=profile.event, lbr=profile.lbr,
                        build_id=profile.build_id)
    for key in sorted(profile.branches):
        count, mispred = profile.branches[key]
        if count > 0 or mispred > 0:
            out.branches[key] = [count, mispred]
    for loc in sorted(profile.ip_samples):
        count = profile.ip_samples[loc]
        if count > 0:
            out.ip_samples[loc] = count
    return out


def scale_profile(profile, weight):
    """Per-shard weighting: integer rounding keeps the algebra exact."""
    if weight == 1:
        return profile
    out = BinaryProfile(event=profile.event, lbr=profile.lbr,
                        build_id=profile.build_id)
    for key, (count, mispred) in profile.branches.items():
        out.branches[key] = [int(round(count * weight)),
                             int(round(mispred * weight))]
    for loc, count in profile.ip_samples.items():
        out.ip_samples[loc] = int(round(count * weight))
    return out


def merge_profiles(profiles, weights=None, diags=None):
    """Weighted merge of N profiles into one normalized profile.

    Metadata resolution is order-free so the merge stays commutative
    and associative: ``event`` is the lexicographically-smallest event
    present (disagreements are an FD007 warning — counts from distinct
    events are not strictly comparable), ``lbr`` is the OR, and
    ``build_id`` survives only when every input agrees on one.
    """
    profiles = list(profiles)
    if weights is None:
        weights = [1] * len(profiles)
    if len(weights) != len(profiles):
        raise ValueError(
            f"got {len(weights)} weight(s) for {len(profiles)} profile(s)")

    events = {p.event for p in profiles}
    lbrs = {p.lbr for p in profiles}
    build_ids = {p.build_id for p in profiles}
    if len(events) > 1 or len(lbrs) > 1:
        _emit(diags, "FD007",
              f"shards disagree on sampling setup "
              f"(events {sorted(events)}, lbr {sorted(lbrs)})")

    merged = BinaryProfile(
        event=min(events) if events else "cycles",
        lbr=any(lbrs),
        build_id=(next(iter(build_ids))
                  if len(build_ids) == 1 and None not in build_ids else None))
    for profile, weight in zip(profiles, weights):
        scaled = scale_profile(profile, weight)
        for key, (count, mispred) in scaled.branches.items():
            entry = merged.branches.setdefault(key, [0, 0])
            entry[0] += count
            entry[1] += mispred
        for loc, count in scaled.ip_samples.items():
            merged.ip_samples[loc] = merged.ip_samples.get(loc, 0) + count
    return normalize_profile(merged)


def remap_profile_names(profile, remap):
    """Rename profile function names through a stale-match remap.

    ``remap`` is {profile name -> binary function name}, as produced by
    the PR 1 fuzzy matcher; untouched names pass through.  Collisions
    (two sources landing on one target) merge by addition.
    """
    if not remap:
        return profile
    out = BinaryProfile(event=profile.event, lbr=profile.lbr,
                        build_id=profile.build_id)
    for ((fn, fo), (tn, to)), (count, mispred) in profile.branches.items():
        key = ((remap.get(fn, fn), fo), (remap.get(tn, tn), to))
        entry = out.branches.setdefault(key, [0, 0])
        entry[0] += count
        entry[1] += mispred
    for (name, off), count in profile.ip_samples.items():
        loc = (remap.get(name, name), off)
        out.ip_samples[loc] = out.ip_samples.get(loc, 0) + count
    return out


# ---------------------------------------------------------------------------
# Shard-divergence and flatness measures for the quality report
# ---------------------------------------------------------------------------


def branch_distribution(profile):
    """The shard's weight distribution for divergence scoring: branch
    counts when present, IP samples otherwise (non-LBR shards)."""
    if profile.branches:
        return {key: count for key, (count, _) in profile.branches.items()}
    return dict(profile.ip_samples)


def shard_divergence(merged, shard_profile):
    """1 - overlap(merged, shard): 0 = shard agrees with the fleet
    consensus, 1 = the shard put all its weight somewhere else."""
    from repro.profiling.accuracy import overlap_accuracy

    truth = branch_distribution(merged)
    estimate = branch_distribution(shard_profile)
    if not truth or not estimate:
        return None
    return 1.0 - overlap_accuracy(truth, estimate)


def is_flat_profile(profile):
    """An LBR shard with no usable branch mass cannot steer layout."""
    return profile.lbr and profile.total_branch_count() == 0


def shard_content_hash(text):
    """Stable content hash of one shard (half of the cache key)."""
    return hashlib.sha256(text.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Profile <-> JSON-able dict (the shard-cache value encoding)
# ---------------------------------------------------------------------------


def profile_to_dict(profile):
    return {
        "event": profile.event,
        "lbr": profile.lbr,
        "build_id": profile.build_id,
        "branches": [[f[0], f[1], t[0], t[1], count, mispred]
                     for (f, t), (count, mispred)
                     in sorted(profile.branches.items())],
        "samples": [[loc[0], loc[1], count]
                    for loc, count in sorted(profile.ip_samples.items())],
    }


def profile_from_dict(data):
    profile = BinaryProfile(event=data["event"], lbr=data["lbr"],
                            build_id=data["build_id"])
    for fn, fo, tn, to, count, mispred in data["branches"]:
        profile.branches[((fn, fo), (tn, to))] = [count, mispred]
    for name, off, count in data["samples"]:
        profile.ip_samples[(name, off)] = count
    return profile
