"""Profile accuracy measurement (paper section 2.2).

The paper motivates post-link optimization with Chen et al.'s finding
that profiles retrofitted into compiler IR are only 84.1-92.9% accurate.
This module reproduces that measurement methodology: given a ground
truth weighting and an estimate over the same keys, compute the
*overlap* metric used in that literature:

    accuracy = sum_k min(truth_norm[k], estimate_norm[k])

where both distributions are normalized to sum to 1.  An estimate that
matches the truth exactly scores 1.0; one that puts all its weight on
the wrong keys scores 0.0.
"""


def overlap_accuracy(truth, estimate):
    """Distribution overlap between two weight dicts (same key space)."""
    total_truth = sum(max(0, v) for v in truth.values())
    total_est = sum(max(0, v) for v in estimate.values())
    if total_truth == 0 or total_est == 0:
        return 0.0
    accuracy = 0.0
    for key, true_weight in truth.items():
        est_weight = estimate.get(key, 0)
        accuracy += min(max(0, true_weight) / total_truth,
                        max(0, est_weight) / total_est)
    return accuracy


def ir_edge_truth(modules):
    """Ground-truth IR edge weights from attached (instrumented) counts.

    Call after :func:`repro.compiler.fdo.attach_edge_profile` on a fresh
    IR build: returns {(func link name, src, dst): count}.
    """
    truth = {}
    for module in modules:
        for func in module.functions.values():
            link = func.link_name()
            for (src, dst), count in func.edge_counts.items():
                truth[(link, src, dst)] = count
    return truth


def binary_block_truth(binary, inputs=None, max_instructions=80_000_000):
    """Exact per-address execution counts via a fully traced run.

    The instrumented ground truth at the *binary* level: every executed
    instruction is counted, then folded to (function, offset) keys.
    Slow (one counter bump per instruction) — use on small workloads.
    """
    from repro.profiling.aggregate import AddressMapper
    from repro.uarch.cpu import run_binary

    cpu = run_binary(binary, inputs=inputs, fetch_heat=True,
                     max_instructions=max_instructions)
    mapper = AddressMapper(binary)
    truth = {}
    for addr, nbytes in cpu.fetch_heat.items():
        loc = mapper.map(addr)
        if loc is not None:
            # fetch_heat counts bytes; normalize to executions by
            # leaving the weighting in bytes — overlap accuracy only
            # cares about relative weight.
            truth[loc] = truth.get(loc, 0) + nbytes
    return truth, cpu


def sampled_block_estimate(profile):
    """The sampled view over the same (function, offset) key space."""
    return dict(profile.ip_samples)
