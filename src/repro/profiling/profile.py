"""The binary-level profile and its .fdata-like serialization.

Locations are symbolized as (function link name, offset) pairs so the
profile survives re-linking at different addresses — the same reason
BOLT's .fdata format is symbolic.
"""


class BinaryProfile:
    """Aggregated sample profile against one binary.

    Attributes:
        branches: {(from_loc, to_loc): [count, mispreds]} where a loc is
            (func_link_name, offset); taken branches only (LBR mode).
        ip_samples: {loc: count} — plain instruction-pointer samples
            (the only signal available in non-LBR mode).
        event: the sampling event the profile came from.
        lbr: whether branch records are populated.
        build_id: content hash of the binary the samples were collected
            on (or None for hand-built profiles).  Lets the consumer
            detect stale, cross-build profiles.
    """

    def __init__(self, event="cycles", lbr=True, build_id=None):
        self.branches = {}
        self.ip_samples = {}
        self.event = event
        self.lbr = lbr
        self.build_id = build_id

    def add_branch(self, from_loc, to_loc, mispred=False, count=1):
        entry = self.branches.get((from_loc, to_loc))
        if entry is None:
            self.branches[(from_loc, to_loc)] = [count, 1 if mispred else 0]
        else:
            entry[0] += count
            if mispred:
                entry[1] += 1

    def add_sample(self, loc, count=1):
        self.ip_samples[loc] = self.ip_samples.get(loc, 0) + count

    # -- queries -----------------------------------------------------------

    def branches_within(self, func):
        """Branch records fully inside one function."""
        return {
            (f[1], t[1]): (count, mispred)
            for (f, t), (count, mispred) in self.branches.items()
            if f[0] == func and t[0] == func
        }

    def calls_between(self):
        """Weighted inter-function transfers: {(caller, callee): count}.

        Includes calls and returns (the LBR view of the call graph,
        paper section 5.3).
        """
        out = {}
        for (f, t), (count, _) in self.branches.items():
            if f[0] != t[0] and t[1] == 0:
                # A transfer landing at a function's entry: a call edge.
                key = (f[0], t[0])
                out[key] = out.get(key, 0) + count
        return out

    def samples_within(self, func):
        return {
            loc[1]: count for loc, count in self.ip_samples.items()
            if loc[0] == func
        }

    def functions(self):
        names = set()
        for (f, t) in self.branches:
            names.add(f[0])
            names.add(t[0])
        for loc in self.ip_samples:
            names.add(loc[0])
        return names

    def total_branch_count(self):
        return sum(count for count, _ in self.branches.values())

    def __len__(self):
        return len(self.branches) + len(self.ip_samples)


def write_fdata(profile):
    """Serialize to the .fdata-like text format.

    Branch lines:  ``1 <from_func> <from_off> 1 <to_func> <to_off>
    <mispreds> <count>``; sample lines: ``S <func> <off> <count>``.
    Function names are URL-style escaped for embedded spaces.
    """
    def esc(name):
        return name.replace("%", "%25").replace(" ", "%20")

    lines = [f"# event: {profile.event}", f"# lbr: {1 if profile.lbr else 0}"]
    if profile.build_id:
        lines.insert(1, f"# build-id: {profile.build_id}")
    for (f, t), (count, mispred) in sorted(profile.branches.items()):
        lines.append(
            f"1 {esc(f[0])} {f[1]:x} 1 {esc(t[0])} {t[1]:x} {mispred} {count}")
    for loc, count in sorted(profile.ip_samples.items()):
        lines.append(f"S {esc(loc[0])} {loc[1]:x} {count}")
    return "\n".join(lines) + "\n"


def parse_fdata(text):
    """Parse the .fdata-like format back into a BinaryProfile."""
    def unesc(name):
        return name.replace("%20", " ").replace("%25", "%")

    profile = BinaryProfile()
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# event:"):
                profile.event = line.split(":", 1)[1].strip()
            elif line.startswith("# lbr:"):
                profile.lbr = line.split(":", 1)[1].strip() == "1"
            elif line.startswith("# build-id:"):
                profile.build_id = line.split(":", 1)[1].strip() or None
            continue
        parts = line.split()
        if parts[0] == "1":
            if len(parts) != 8 or parts[3] != "1":
                raise ValueError(f"malformed fdata branch line: {raw!r}")
            from_loc = (unesc(parts[1]), int(parts[2], 16))
            to_loc = (unesc(parts[4]), int(parts[5], 16))
            mispred, count = int(parts[6]), int(parts[7])
            entry = profile.branches.setdefault((from_loc, to_loc), [0, 0])
            entry[0] += count
            entry[1] += mispred
        elif parts[0] == "S":
            if len(parts) != 4:
                raise ValueError(f"malformed fdata sample line: {raw!r}")
            profile.add_sample((unesc(parts[1]), int(parts[2], 16)),
                               int(parts[3]))
        else:
            raise ValueError(f"malformed fdata line: {raw!r}")
    return profile
