"""perf2bolt analog: raw samples -> symbolized BinaryProfile, plus the
fleet-scale shard aggregation pipeline (the ``merge-fdata`` analog).

The first half of the module turns one host's raw ``(pc, lbr)`` samples
into a symbolized :class:`BinaryProfile`.  The second half —
:func:`aggregate_shards` — is the data-center step the paper assumes
before the rewrite (sections 2, 5.1): many hosts' ``.fdata`` shards,
possibly collected on *different builds* of the binary, are parsed (in
parallel, PR 3's chunked thread-pool pattern), grouped by build-id,
reconciled through PR 1's fuzzy stale-profile matcher, merged with
explicit weighting and deterministic normalization, and summarized in
a per-shard quality report.  An on-disk cache keyed by
``Binary.content_hash`` + shard content hash lets repeated aggregation
runs skip re-parsing and re-reconciling unchanged shards.
"""

import bisect
import json
import os
import pathlib
import tempfile

from repro.belf import SymbolType
from repro.profiling.events import Sampler, SamplingConfig
from repro.profiling.merge import (
    ShardStats,
    _emit,
    is_flat_profile,
    merge_profiles,
    normalize_profile,
    parse_fdata_shard,
    profile_from_dict,
    profile_to_dict,
    remap_profile_names,
    shard_content_hash,
    shard_divergence,
)
from repro.profiling.profile import BinaryProfile


class AddressMapper:
    """Maps virtual addresses to (function link name, offset)."""

    def __init__(self, binary):
        funcs = sorted(
            (s for s in binary.symbols
             if s.type == SymbolType.FUNC and s.size > 0),
            key=lambda s: s.value,
        )
        self.starts = [s.value for s in funcs]
        self.funcs = funcs

    def map(self, addr):
        idx = bisect.bisect_right(self.starts, addr) - 1
        if idx < 0:
            return None
        sym = self.funcs[idx]
        if not sym.contains(addr):
            return None
        return (sym.link_name(), addr - sym.value)


def aggregate_samples(samples, mapper, event="cycles", lbr=True,
                      build_id=None):
    """Aggregate (pc, lbr_snapshot) samples into a BinaryProfile.

    Branch records with either endpoint outside known functions (PLT
    stubs, builtins) are dropped, as perf2bolt does for unmapped
    addresses.
    """
    profile = BinaryProfile(event=event, lbr=lbr, build_id=build_id)
    for pc, snapshot in samples:
        loc = mapper.map(pc)
        if loc is not None:
            profile.add_sample(loc)
        if not lbr or not snapshot:
            continue
        for from_pc, to_pc, mispred in snapshot:
            from_loc = mapper.map(from_pc)
            to_loc = mapper.map(to_pc)
            if from_loc is None or to_loc is None:
                continue
            profile.add_branch(from_loc, to_loc, mispred=mispred)
    return profile


def profile_binary(binary, inputs=None, config=None, sampling=None,
                   max_instructions=50_000_000, engine=None):
    """Run a binary under the sampler and aggregate the profile.

    Returns (BinaryProfile, cpu) — the cpu gives access to true
    counters for comparison with the sampled view.
    """
    from repro.uarch.cpu import run_binary

    sampling = sampling or SamplingConfig()
    sampler = Sampler(sampling)
    cpu = run_binary(binary, inputs=inputs, config=config, sampler=sampler,
                     max_instructions=max_instructions, engine=engine)
    mapper = AddressMapper(binary)
    profile = aggregate_samples(sampler.samples, mapper,
                                event=sampling.event, lbr=sampling.use_lbr,
                                build_id=binary.content_hash())
    return profile, cpu


# ---------------------------------------------------------------------------
# Fleet-scale shard aggregation (merge-fdata)
# ---------------------------------------------------------------------------

#: Shard-cache on-disk format version; bumping invalidates old entries.
CACHE_VERSION = 1


class ShardCache:
    """On-disk cache of parsed + reconciled shards.

    Keyed by ``sha256(version : shard content hash : binary build id)``
    so a shard re-parses only when its bytes change, the target binary
    changes, or the cache format changes.  Values are JSON (no pickle);
    a corrupt entry reads as a miss.
    """

    def __init__(self, root):
        self.root = pathlib.Path(root)

    def _path(self, shard_sha, binary_hash):
        import hashlib

        key = f"{CACHE_VERSION}:{shard_sha}:{binary_hash or '-'}"
        return self.root / (hashlib.sha256(key.encode()).hexdigest()
                            + ".shard.json")

    def load(self, shard_sha, binary_hash):
        path = self._path(shard_sha, binary_hash)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("version") != CACHE_VERSION:
            return None
        if not all(key in payload for key in
                   ("profile", "stats", "match", "stale", "remap", "diags")):
            return None
        return payload

    def store(self, shard_sha, binary_hash, payload):
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(shard_sha, binary_hash)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(payload))
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


class ShardReport:
    """Everything the quality report knows about one shard."""

    def __init__(self, name, sha):
        self.name = name
        self.sha = sha
        self.build_id = None
        self.weight = 1.0
        self.effective_weight = 1.0
        self.stale = False
        self.cache = "off"          # "off" | "miss" | "hit"
        self.stats = ShardStats()
        self.match = None           # measure_match_quality dict, or None
        self.flat = False
        self.empty = False
        self.divergence = None
        self.coverage = None        # fraction of merged functions covered
        self.profile = None         # reconciled BinaryProfile (not scaled)

    def as_dict(self):
        return {
            "name": self.name,
            "sha": self.sha[:12],
            "build_id": self.build_id,
            "weight": self.weight,
            "effective_weight": round(self.effective_weight, 6),
            "stale": self.stale,
            "cache": self.cache,
            "branch_records": len(self.profile.branches),
            "sample_records": len(self.profile.ip_samples),
            "branch_count": self.profile.total_branch_count(),
            "parse": self.stats.as_dict(),
            "match": self.match,
            "flat": self.flat,
            "empty": self.empty,
            "divergence": (round(self.divergence, 4)
                           if self.divergence is not None else None),
            "coverage": (round(self.coverage, 4)
                         if self.coverage is not None else None),
        }


class AggregationResult:
    """Merged profile + per-shard quality report + diagnostics."""

    def __init__(self, profile, shards, diagnostics):
        self.profile = profile
        self.shards = shards
        self.diagnostics = diagnostics

    def report(self):
        merged = self.profile
        merged_funcs = merged.functions()
        coverages = [s.coverage for s in self.shards
                     if s.coverage is not None]
        return {
            "shards": [s.as_dict() for s in self.shards],
            "merged": {
                "event": merged.event,
                "lbr": merged.lbr,
                "build_id": merged.build_id,
                "branch_records": len(merged.branches),
                "sample_records": len(merged.ip_samples),
                "branch_count": merged.total_branch_count(),
                "functions": len(merged_funcs),
            },
            "coverage": {
                "shard_count": len(self.shards),
                "functions_union": len(merged_funcs),
                "functions_common": self._common_functions(),
                "mean_shard_coverage": (round(sum(coverages)
                                              / len(coverages), 4)
                                        if coverages else None),
            },
            "stale_shards": sum(1 for s in self.shards if s.stale),
            "cache_hits": sum(1 for s in self.shards if s.cache == "hit"),
            "dropped_lines": sum(s.stats.dropped_total for s in self.shards),
            "diagnostics": {
                "warnings": len(self.diagnostics.warnings),
                "errors": len(self.diagnostics.errors),
            },
        }

    def _common_functions(self):
        common = None
        for shard in self.shards:
            funcs = shard.profile.functions()
            common = funcs if common is None else (common & funcs)
        return len(common) if common else 0

    def to_json(self):
        return json.dumps(self.report(), indent=2)


def load_shard_files(paths):
    """Read shard files into the [(name, text)] shape aggregate_shards
    expects.  Missing files raise FileNotFoundError (a fleet input list
    naming a nonexistent shard is an operator error, not a bad host)."""
    shards = []
    for path in paths:
        p = pathlib.Path(path)
        shards.append((p.name, p.read_text()))
    return shards


def _as_named_shards(shards):
    out = []
    for i, item in enumerate(shards):
        if isinstance(item, str):
            out.append((f"shard{i}", item))
        else:
            name, text = item
            out.append((str(name), text))
    return out


def _resolve_weights(shards, weights, diags):
    if weights is None:
        return [1.0] * len(shards)
    try:
        weights = [float(w) for w in weights]
    except (TypeError, ValueError):
        weights = [float(weights)]
    if len(weights) == 1 and len(shards) > 1:
        weights = weights * len(shards)
    if len(weights) != len(shards):
        raise ValueError(
            f"{len(weights)} weight(s) for {len(shards)} shard(s)")
    cleaned = []
    for (name, _), weight in zip(shards, weights):
        if not (weight > 0) or weight != weight or weight == float("inf"):
            _emit(diags, "FD011",
                  f"weight {weight!r} is not a positive finite number; "
                  f"shard excluded", shard=name)
            weight = 0.0
        cleaned.append(weight)
    return cleaned


def _build_attach_context(binary):
    """A CFG-bearing context for fuzzy reconciliation (lazy core import
    to keep the profiling package import-light)."""
    from repro.core import BinaryContext, BoltOptions
    from repro.core.cfg_builder import build_all_functions
    from repro.core.discovery import discover_functions

    context = BinaryContext(binary, BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    return context


def _parse_one_shard(name, text, sha, binary_hash, context, cache):
    """Parse + (if stale) reconcile one shard; pure per-shard work, safe
    to fan out over the thread pool.  Returns a ShardReport plus the
    local diagnostics to replay in shard order on the coordinator."""
    from repro.core.diagnostics import Diagnostics
    from repro.core.profile_attach import (
        detect_stale,
        measure_match_quality,
        reconcile_shard,
    )

    local = Diagnostics(strict=False)
    report = ShardReport(name, sha)
    payload = cache.load(sha, binary_hash) if cache else None
    if payload is not None:
        report.cache = "hit"
        report.profile = profile_from_dict(payload["profile"])
        report.stats = ShardStats.from_dict(payload["stats"])
        report.match = payload["match"]
        report.stale = payload["stale"]
        remap = {k: v for k, v in payload["remap"].items()}
        for severity, message in payload["diags"]:
            (local.error if severity == "error" else local.warning)(
                "merge-fdata", message, function=name)
    else:
        report.cache = "miss" if cache else "off"
        profile, stats = parse_fdata_shard(text, local, shard=name)
        report.profile = profile
        report.stats = stats
        remap = {}
        if context is not None:
            report.stale, _reason = detect_stale(context, profile)
            if report.stale:
                remap, report.match = reconcile_shard(context, profile)
            else:
                # The satellite fix: match-quality counters used to
                # exist only for the single-profile attach path; the
                # per-shard report carries them for fresh shards too.
                report.match = measure_match_quality(context, profile)
        if cache:
            cache.store(sha, binary_hash, {
                "version": CACHE_VERSION,
                "profile": profile_to_dict(profile),
                "stats": stats.as_dict(),
                "match": report.match,
                "stale": report.stale,
                "remap": remap,
                "diags": [["error" if d.severity.name == "ERROR"
                           else "warning", d.message] for d in local],
            })
    report.build_id = report.profile.build_id
    if remap:
        report.profile = remap_profile_names(report.profile, remap)
    report.empty = len(report.profile) == 0
    report.flat = (not report.empty) and is_flat_profile(report.profile)
    return report, list(local)


def aggregate_shards(shards, weights=None, binary=None, threads=1,
                     cache_dir=None, stale_downweight=0.5,
                     min_match_quality=0.0, diagnostics=None):
    """Aggregate many ``.fdata`` shards into one profile.

    Args:
        shards: list of fdata texts, or of ``(name, text)`` pairs.
        weights: per-shard weights (one value broadcasts); default 1.
        binary: the target Binary.  When given, shards whose build-id
            differs are reconciled through the PR 1 fuzzy stale-profile
            matcher and downweighted by their measured match quality.
            Without it, the fleet-majority build-id group is the
            reference and off-reference shards get
            ``stale_downweight``.
        threads: parse/reconcile fan-out.  Only engaged when the shard
            cache is active (the work is otherwise GIL-bound pure
            Python and threads would slow it down); output is
            byte-identical to a serial run either way.
        cache_dir: on-disk shard cache directory (None = no cache).
        min_match_quality: stale shards matching below this fraction
            are excluded entirely (FD013).

    Returns an :class:`AggregationResult`.
    """
    from repro.core.diagnostics import Diagnostics

    diags = diagnostics
    if diags is None:
        diags = Diagnostics(strict=False)
    shards = _as_named_shards(shards)
    weights = _resolve_weights(shards, weights, diags)
    binary_hash = binary.content_hash() if binary is not None else None
    context = _build_attach_context(binary) if binary is not None else None
    cache = ShardCache(cache_dir) if cache_dir else None

    jobs = [(name, text, shard_content_hash(text))
            for name, text in shards]

    def work(chunk):
        return [_parse_one_shard(name, text, sha, binary_hash, context,
                                 cache)
                for name, text, sha in chunk]

    # Shard parsing/reconciliation is pure Python, so under the GIL a
    # thread pool only adds scheduling overhead — unless the on-disk
    # shard cache is active, where the workers overlap file I/O.
    # Serial otherwise keeps `--threads N` no slower than `--threads 1`;
    # either way the merged output is byte-identical.
    threads = int(threads or 1)
    if threads > 1 and len(jobs) > 1 and cache is not None:
        from concurrent.futures import ThreadPoolExecutor

        chunk_size = max(1, -(-len(jobs) // threads))
        chunks = [jobs[i: i + chunk_size]
                  for i in range(0, len(jobs), chunk_size)]
        with ThreadPoolExecutor(max_workers=threads) as pool:
            per_chunk = list(pool.map(work, chunks))
        outcomes = [item for chunk in per_chunk for item in chunk]
    else:
        outcomes = work(jobs)

    # Replay worker diagnostics in shard order so parallel runs render
    # identically to serial ones (and --strict raises deterministically).
    reports = []
    for (report, local) in outcomes:
        diags.extend(local)
        reports.append(report)

    # Staleness + downweighting.  With a target binary the worker
    # already decided staleness per shard (build-id stamp + structural
    # heuristic); without one, the fleet-majority build-id group is
    # the reference and everything off-reference is stale.
    reference = binary_hash or _majority_build_id(reports)
    for report, weight in zip(reports, weights):
        report.weight = weight
        report.effective_weight = weight
        if report.empty:
            _emit(diags, "FD010", "shard contains no records",
                  shard=report.name)
            continue
        if report.flat:
            _emit(diags, "FD009",
                  "LBR shard has no branch records (flat profile)",
                  shard=report.name)
        if (binary_hash is None and reference is not None
                and report.build_id is not None
                and report.build_id != reference):
            report.stale = True
        if not report.stale:
            continue
        quality = (report.match or {}).get("quality")
        if quality is not None:
            if quality < min_match_quality:
                report.effective_weight = 0.0
                _emit(diags, "FD013",
                      f"match quality {quality:.1%} below floor "
                      f"{min_match_quality:.1%}; shard excluded",
                      shard=report.name)
                continue
            factor = quality
        else:
            factor = stale_downweight
        report.effective_weight = weight * factor
        _emit(diags, "FD008",
              f"build-id {report.build_id or '<unstamped>'} does not "
              f"match {'target binary' if binary_hash else 'fleet majority'}"
              f" {reference}; downweighted to "
              f"{report.effective_weight:.3g}", shard=report.name)

    merged = merge_profiles([r.profile for r in reports],
                            [r.effective_weight for r in reports],
                            diags=diags)
    merged.build_id = binary_hash or reference

    merged_funcs = merged.functions()
    for report in reports:
        report.divergence = shard_divergence(merged, report.profile)
        if merged_funcs:
            report.coverage = (len(report.profile.functions()
                                   & merged_funcs) / len(merged_funcs))
    return AggregationResult(merged, reports, diags)


def _majority_build_id(reports):
    """The fleet-reference build-id: most record mass wins, ties break
    lexicographically (permutation-safe)."""
    mass = {}
    for report in reports:
        if report.build_id is None:
            continue
        total = (report.profile.total_branch_count()
                 + sum(report.profile.ip_samples.values()))
        mass[report.build_id] = mass.get(report.build_id, 0) + total
    if not mass:
        return None
    return min(sorted(mass), key=lambda b: (-mass[b], b))
