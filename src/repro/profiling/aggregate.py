"""perf2bolt analog: raw samples -> symbolized BinaryProfile."""

import bisect

from repro.belf import SymbolType
from repro.profiling.events import Sampler, SamplingConfig
from repro.profiling.profile import BinaryProfile


class AddressMapper:
    """Maps virtual addresses to (function link name, offset)."""

    def __init__(self, binary):
        funcs = sorted(
            (s for s in binary.symbols
             if s.type == SymbolType.FUNC and s.size > 0),
            key=lambda s: s.value,
        )
        self.starts = [s.value for s in funcs]
        self.funcs = funcs

    def map(self, addr):
        idx = bisect.bisect_right(self.starts, addr) - 1
        if idx < 0:
            return None
        sym = self.funcs[idx]
        if not sym.contains(addr):
            return None
        return (sym.link_name(), addr - sym.value)


def aggregate_samples(samples, mapper, event="cycles", lbr=True,
                      build_id=None):
    """Aggregate (pc, lbr_snapshot) samples into a BinaryProfile.

    Branch records with either endpoint outside known functions (PLT
    stubs, builtins) are dropped, as perf2bolt does for unmapped
    addresses.
    """
    profile = BinaryProfile(event=event, lbr=lbr, build_id=build_id)
    for pc, snapshot in samples:
        loc = mapper.map(pc)
        if loc is not None:
            profile.add_sample(loc)
        if not lbr or not snapshot:
            continue
        for from_pc, to_pc, mispred in snapshot:
            from_loc = mapper.map(from_pc)
            to_loc = mapper.map(to_pc)
            if from_loc is None or to_loc is None:
                continue
            profile.add_branch(from_loc, to_loc, mispred=mispred)
    return profile


def profile_binary(binary, inputs=None, config=None, sampling=None,
                   max_instructions=50_000_000):
    """Run a binary under the sampler and aggregate the profile.

    Returns (BinaryProfile, cpu) — the cpu gives access to true
    counters for comparison with the sampled view.
    """
    from repro.uarch.cpu import run_binary

    sampling = sampling or SamplingConfig()
    sampler = Sampler(sampling)
    cpu = run_binary(binary, inputs=inputs, config=config, sampler=sampler,
                     max_instructions=max_instructions)
    mapper = AddressMapper(binary)
    profile = aggregate_samples(sampler.samples, mapper,
                                event=sampling.event, lbr=sampling.use_lbr,
                                build_id=binary.content_hash())
    return profile, cpu
