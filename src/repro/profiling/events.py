"""Sampling events, periods, skid models, and the Sampler itself.

Paper section 5.1 evaluates several hardware events (retired
instructions, taken branches, cycles) at different PEBS precision
levels and finds LBR-based profiles robust across all of them.  The
``EVENT_PRESETS`` table mirrors that setup: precise (PEBS) variants
have no skid, imprecise ones attribute the sample a few instructions
late — the bias non-LBR profiles are sensitive to.
"""


class SamplingConfig:
    def __init__(self, event="cycles", period=997, skid=0, use_lbr=True):
        if event not in ("cycles", "instructions", "taken-branches"):
            raise ValueError(f"unknown sampling event {event!r}")
        self.event = event
        self.period = period
        self.skid = skid
        self.use_lbr = use_lbr


#: Named presets used by the section 5.1 / 6.5 experiments.
EVENT_PRESETS = {
    "cycles:pebs": SamplingConfig("cycles", period=997, skid=0),
    "cycles": SamplingConfig("cycles", period=997, skid=6),
    "instructions:pebs": SamplingConfig("instructions", period=499, skid=0),
    "instructions": SamplingConfig("instructions", period=499, skid=6),
    "taken-branches:pebs": SamplingConfig("taken-branches", period=199, skid=0),
    "taken-branches": SamplingConfig("taken-branches", period=199, skid=4),
}


class Sampler:
    """Collects (pc, lbr_snapshot) samples during simulation.

    The CPU drives it: on every retired instruction the CPU updates the
    event accumulator and, when the period elapses (plus skid), calls
    :meth:`take_sample`.
    """

    def __init__(self, config=None):
        config = config or SamplingConfig()
        self.event = config.event
        self.period = config.period
        self.skid = config.skid
        self.use_lbr = config.use_lbr
        self.samples = []     # list of (pc, lbr list | None)

    def take_sample(self, pc, lbr_snapshot):
        self.samples.append((pc, lbr_snapshot))

    def state(self):
        """Comparable sample stream (for engine-equivalence pinning)."""
        return [(pc, None if lbr is None else tuple(lbr))
                for pc, lbr in self.samples]

    def __len__(self):
        return len(self.samples)
