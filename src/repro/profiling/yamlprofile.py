"""YAML profile serialization (the ``perf2bolt -w`` option of paper
section 6.2.1: "The profile from perf was converted using perf2bolt
utility into YAML format").

A dependency-free writer/parser for the small YAML subset the profile
needs: a header mapping plus a list of function entries with nested
branch lists.  The document round-trips through
:class:`repro.profiling.profile.BinaryProfile`.
"""

from repro.profiling.profile import BinaryProfile


def _quote(name):
    if all(c.isalnum() or c in "_.$:" for c in name) and name:
        return name
    escaped = name.replace("\\", "\\\\").replace("'", "\\'")
    return f"'{escaped}'"


def _unquote(token):
    token = token.strip()
    if token.startswith("'") and token.endswith("'"):
        return token[1:-1].replace("\\'", "'").replace("\\\\", "\\")
    return token


def write_yaml_profile(profile):
    """Serialize a BinaryProfile to the YAML-subset document."""
    lines = ["---",
             "header:",
             f"  event: {profile.event}",
             f"  lbr: {'true' if profile.lbr else 'false'}",
             "functions:"]
    functions = sorted(profile.functions())
    for func in functions:
        branches = [
            (f[1], t[0], t[1], count, mispred)
            for (f, t), (count, mispred) in profile.branches.items()
            if f[0] == func
        ]
        samples = [(off, count) for (name, off), count
                   in profile.ip_samples.items() if name == func]
        if not branches and not samples:
            continue
        lines.append(f"  - name: {_quote(func)}")
        if branches:
            lines.append("    branches:")
            for from_off, to_func, to_off, count, mispred in sorted(branches):
                lines.append(
                    f"      - {{ off: 0x{from_off:x}, "
                    f"to: {_quote(to_func)}, toff: 0x{to_off:x}, "
                    f"count: {count}, mispreds: {mispred} }}")
        if samples:
            lines.append("    samples:")
            for off, count in sorted(samples):
                lines.append(f"      - {{ off: 0x{off:x}, count: {count} }}")
    lines.append("...")
    return "\n".join(lines) + "\n"


class YamlProfileError(ValueError):
    pass


def _parse_inline_map(text, line_no):
    text = text.strip()
    if not (text.startswith("{") and text.endswith("}")):
        raise YamlProfileError(f"line {line_no}: expected inline mapping")
    out = {}
    body = text[1:-1]
    # Split on commas not inside quotes.
    parts = []
    depth = 0
    current = ""
    in_quote = False
    for ch in body:
        if ch == "'" and not current.endswith("\\"):
            in_quote = not in_quote
        if ch == "," and not in_quote:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current)
    for part in parts:
        if ":" not in part:
            raise YamlProfileError(f"line {line_no}: bad entry {part!r}")
        key, _, value = part.partition(":")
        out[key.strip()] = _unquote(value)
    return out


def _to_int(token, line_no):
    try:
        return int(token, 0)
    except ValueError:
        raise YamlProfileError(f"line {line_no}: bad integer {token!r}") from None


def parse_yaml_profile(text):
    """Parse the YAML-subset document back into a BinaryProfile."""
    profile = BinaryProfile()
    current_func = None
    section = None
    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        stripped = line.strip()
        if stripped in ("---", "...", "", "header:", "functions:"):
            continue
        if stripped.startswith("event:"):
            profile.event = stripped.split(":", 1)[1].strip()
        elif stripped.startswith("lbr:"):
            profile.lbr = stripped.split(":", 1)[1].strip() == "true"
        elif stripped.startswith("- name:"):
            current_func = _unquote(stripped.split(":", 1)[1])
            section = None
        elif stripped == "branches:":
            section = "branches"
        elif stripped == "samples:":
            section = "samples"
        elif stripped.startswith("- {"):
            if current_func is None or section is None:
                raise YamlProfileError(
                    f"line {line_no}: entry outside a function section")
            fields = _parse_inline_map(stripped[2:], line_no)
            if section == "branches":
                entry = profile.branches.setdefault(
                    ((current_func, _to_int(fields["off"], line_no)),
                     (fields["to"], _to_int(fields["toff"], line_no))),
                    [0, 0])
                entry[0] += _to_int(fields["count"], line_no)
                entry[1] += _to_int(fields.get("mispreds", "0"), line_no)
            else:
                profile.add_sample(
                    (current_func, _to_int(fields["off"], line_no)),
                    _to_int(fields["count"], line_no))
        else:
            raise YamlProfileError(f"line {line_no}: unrecognized {raw!r}")
    return profile
