"""Minimum-cost-flow edge-count recovery for non-LBR profiles.

Without LBRs, only per-block sample counts exist; recovering edge
counts that satisfy the flow equations is the classic MCF formulation
(Levin 2007, used in IBM FDPR — paper section 5.2).  We solve it with
networkx's capacity-scaling min-cost-flow over a flow-conservation
network derived from the CFG.

Formulation: each CFG node has a measured weight w(v).  We seek edge
flows f(e) >= 0 such that in-flow = out-flow = estimated count at every
node, minimizing the cost of deviating from the measurements.  Nodes
are split (v_in -> v_out) with a "measurement" arc of cost 0 up to
w(v) and increasing cost beyond, plus slack arcs from a supersource /
to a supersink so the program's entry/exits balance.
"""

import networkx as nx


def min_cost_flow_edges(blocks, edges, counts, entry, exits):
    """Recover edge flows from block counts.

    Args:
        blocks: iterable of block names.
        edges: iterable of (src, dst) CFG edges.
        counts: {block: sampled count}.
        entry: entry block name.
        exits: blocks whose flow leaves the function (returns/tail
            calls/throws).

    Returns {edge: flow}.
    """
    blocks = list(blocks)
    edges = list(edges)
    graph = nx.DiGraph()
    source, sink = "__source", "__sink"

    # Node split: measurement arc v_in -> v_out.
    # Piecewise cost: the first w(v) units are free (matching the
    # measurement), additional units cost 2 each (we would rather route
    # along measured-hot paths), and we allow deficits implicitly by
    # not forcing flow through.
    total = sum(max(0, counts.get(b, 0)) for b in blocks) or 1
    cap = max(total * 4, 16)
    for block in blocks:
        weight = max(0, counts.get(block, 0))
        v_in, v_out = ("in", block), ("out", block)
        if weight:
            # DiGraph cannot hold parallel arcs: route the free
            # (measured) capacity through an intermediate node.
            mid = ("m", block)
            graph.add_edge(v_in, mid, capacity=weight, weight=0)
            graph.add_edge(mid, v_out, capacity=weight, weight=0)
        graph.add_edge(v_in, v_out, capacity=cap, weight=2)

    # CFG arcs cost 1 per unit so flow prefers short explanations.
    for src, dst in edges:
        graph.add_edge(("out", src), ("in", dst), capacity=cap, weight=1)

    demand = max(counts.get(entry, 0), 1)
    # Entry receives all flow from the source; exit blocks drain to sink.
    graph.add_edge(source, ("in", entry), capacity=demand, weight=0)
    for block in exits:
        graph.add_edge(("out", block), sink, capacity=cap, weight=0)
    # Escape hatch so the problem is always feasible even with
    # inconsistent measurements (e.g. sampled noreturn paths).
    graph.add_edge(source, sink, capacity=cap, weight=50)

    graph.add_node(source, demand=-demand)
    graph.add_node(sink, demand=demand)
    flow = nx.max_flow_min_cost(graph, source, sink)

    out = {}
    for src, dst in edges:
        out[(src, dst)] = flow.get(("out", src), {}).get(("in", dst), 0)
    return out
