"""Lexer for the BC language."""

import enum


class LexError(Exception):
    """Raised on malformed source text."""

    def __init__(self, message, file, line):
        super().__init__(f"{file}:{line}: {message}")
        self.file = file
        self.line = line


class TokenType(enum.Enum):
    NUM = "num"
    IDENT = "ident"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "var",
        "array",
        "const",
        "func",
        "static",
        "if",
        "else",
        "while",
        "for",
        "switch",
        "case",
        "default",
        "return",
        "out",
        "try",
        "catch",
        "throw",
        "break",
        "continue",
    }
)

# Longest first so maximal-munch works.
_PUNCTUATION = (
    "<<=",
    ">>=",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ":",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "<",
    ">",
    "!",
)


class Token:
    __slots__ = ("type", "value", "file", "line")

    def __init__(self, type, value, file, line):
        self.type = type
        self.value = value
        self.file = file
        self.line = line

    def __repr__(self):
        return f"Token({self.type.value}, {self.value!r}, line {self.line})"


class Lexer:
    """Tokenizes one BC source file."""

    def __init__(self, source, file="<input>"):
        self.source = source
        self.file = file
        self.pos = 0
        self.line = 1

    def tokens(self):
        """Produce the full token list, ending with an EOF token."""
        out = []
        while True:
            token = self._next()
            out.append(token)
            if token.type == TokenType.EOF:
                return out

    def _error(self, message):
        raise LexError(message, self.file, self.line)

    def _next(self):
        src = self.source
        n = len(src)
        while self.pos < n:
            ch = src[self.pos]
            if ch == "\n":
                self.line += 1
                self.pos += 1
            elif ch in " \t\r":
                self.pos += 1
            elif ch == "/" and self.pos + 1 < n and src[self.pos + 1] == "/":
                while self.pos < n and src[self.pos] != "\n":
                    self.pos += 1
            else:
                break
        if self.pos >= n:
            return Token(TokenType.EOF, None, self.file, self.line)

        ch = src[self.pos]
        if ch.isdigit():
            start = self.pos
            if ch == "0" and self.pos + 1 < n and src[self.pos + 1] in "xX":
                self.pos += 2
                while self.pos < n and src[self.pos] in "0123456789abcdefABCDEF":
                    self.pos += 1
                if self.pos == start + 2:
                    self._error("malformed hex literal")
                value = int(src[start : self.pos], 16)
            else:
                while self.pos < n and src[self.pos].isdigit():
                    self.pos += 1
                value = int(src[start : self.pos])
            return Token(TokenType.NUM, value, self.file, self.line)

        if ch.isalpha() or ch == "_":
            start = self.pos
            while self.pos < n and (src[self.pos].isalnum() or src[self.pos] == "_"):
                self.pos += 1
            word = src[start : self.pos]
            kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            return Token(kind, word, self.file, self.line)

        for punct in _PUNCTUATION:
            if src.startswith(punct, self.pos):
                self.pos += len(punct)
                return Token(TokenType.PUNCT, punct, self.file, self.line)

        self._error(f"unexpected character {ch!r}")
