"""AST node definitions for BC.

Every node carries ``(file, line)`` so the compiler can emit line-table
debug info — the channel through which AutoFDO maps binary samples back
to source constructs (and loses context sensitivity, paper Figure 2).
"""


class Node:
    """Base class: source position tracking."""

    __slots__ = ("file", "line")

    def __init__(self, file, line):
        self.file = file
        self.line = line

    @property
    def loc(self):
        return (self.file, self.line)


# -- top level -------------------------------------------------------------


class Module(Node):
    """One compilation unit: globals + functions."""

    __slots__ = ("name", "globals", "functions")

    def __init__(self, name, globals, functions, file="", line=0):
        super().__init__(file, line)
        self.name = name
        self.globals = globals
        self.functions = functions


class GlobalVar(Node):
    """``var g = init;`` / ``const G = init;`` at module scope."""

    __slots__ = ("name", "init", "const")

    def __init__(self, name, init, const, file, line):
        super().__init__(file, line)
        self.name = name
        self.init = init
        self.const = const


class GlobalArray(Node):
    """``array a[N] = {..};`` / ``const array a[N] = {..};``"""

    __slots__ = ("name", "size", "init", "const")

    def __init__(self, name, size, init, const, file, line):
        super().__init__(file, line)
        self.name = name
        self.size = size
        self.init = init or []
        self.const = const


class FuncDecl(Node):
    """``func f(a, b) { ... }``; ``static`` gives LOCAL linkage."""

    __slots__ = ("name", "params", "body", "static")

    def __init__(self, name, params, body, static, file, line):
        super().__init__(file, line)
        self.name = name
        self.params = params
        self.body = body
        self.static = static


# -- statements --------------------------------------------------------------


class Block(Node):
    __slots__ = ("stmts",)

    def __init__(self, stmts, file, line):
        super().__init__(file, line)
        self.stmts = stmts


class VarDecl(Node):
    __slots__ = ("name", "init")

    def __init__(self, name, init, file, line):
        super().__init__(file, line)
        self.name = name
        self.init = init


class Assign(Node):
    """``name = expr;`` or ``name[idx] = expr;`` (target is Name/Index)."""

    __slots__ = ("target", "value")

    def __init__(self, target, value, file, line):
        super().__init__(file, line)
        self.target = target
        self.value = value


class If(Node):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond, then, otherwise, file, line):
        super().__init__(file, line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class While(Node):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, file, line):
        super().__init__(file, line)
        self.cond = cond
        self.body = body


class For(Node):
    """``for (init; cond; step) body`` — kept as a distinct node (not
    desugared to While) because ``continue`` must branch to ``step``."""

    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body, file, line):
        super().__init__(file, line)
        self.init = init       # VarDecl/Assign/ExprStmt or None
        self.cond = cond       # expression or None (infinite)
        self.step = step       # Assign/ExprStmt or None
        self.body = body


class Switch(Node):
    """``switch (expr) { case N: block ... default: block }``"""

    __slots__ = ("value", "cases", "default")

    def __init__(self, value, cases, default, file, line):
        super().__init__(file, line)
        self.value = value
        self.cases = cases  # list of (int, Block)
        self.default = default


class Return(Node):
    __slots__ = ("value",)

    def __init__(self, value, file, line):
        super().__init__(file, line)
        self.value = value


class Out(Node):
    __slots__ = ("value",)

    def __init__(self, value, file, line):
        super().__init__(file, line)
        self.value = value


class ExprStmt(Node):
    __slots__ = ("expr",)

    def __init__(self, expr, file, line):
        super().__init__(file, line)
        self.expr = expr


class Break(Node):
    __slots__ = ()


class Continue(Node):
    __slots__ = ()


class Try(Node):
    __slots__ = ("body", "catch_var", "handler")

    def __init__(self, body, catch_var, handler, file, line):
        super().__init__(file, line)
        self.body = body
        self.catch_var = catch_var
        self.handler = handler


class Throw(Node):
    __slots__ = ("value",)

    def __init__(self, value, file, line):
        super().__init__(file, line)
        self.value = value


# -- expressions -------------------------------------------------------------


class Num(Node):
    __slots__ = ("value",)

    def __init__(self, value, file, line):
        super().__init__(file, line)
        self.value = value


class Name(Node):
    __slots__ = ("name",)

    def __init__(self, name, file, line):
        super().__init__(file, line)
        self.name = name


class Index(Node):
    """``arr[expr]`` — arr must be a global array name."""

    __slots__ = ("name", "index")

    def __init__(self, name, index, file, line):
        super().__init__(file, line)
        self.name = name
        self.index = index


class Call(Node):
    """Direct call (``callee`` is a name string) or indirect (an expr)."""

    __slots__ = ("callee", "args", "indirect")

    def __init__(self, callee, args, indirect, file, line):
        super().__init__(file, line)
        self.callee = callee
        self.args = args
        self.indirect = indirect


class FuncRef(Node):
    """``&f`` — address of a function."""

    __slots__ = ("name",)

    def __init__(self, name, file, line):
        super().__init__(file, line)
        self.name = name


class Unary(Node):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand, file, line):
        super().__init__(file, line)
        self.op = op
        self.operand = operand


class Binary(Node):
    """Arithmetic, bitwise, comparison, and short-circuit ``&&``/``||``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right, file, line):
        super().__init__(file, line)
        self.op = op
        self.left = left
        self.right = right
