"""Reference interpreter for BC.

Evaluates the AST directly with the same 64-bit wrapping semantics the
compiled code has.  Used for differential testing: a program's ``out``
stream must be identical between this interpreter, the -O0/-O2 compiled
binary, and every BOLTed variant.
"""

from repro.lang import astnodes as ast
from repro.lang.sema import check_module

_MASK = (1 << 64) - 1


def _wrap(value):
    value &= _MASK
    return value - (1 << 64) if value >= 1 << 63 else value


class BCError(Exception):
    """Runtime error (division by zero, uncaught exception, ...)."""


class _Thrown(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _FuncValue:
    __slots__ = ("module", "decl")

    def __init__(self, module, decl):
        self.module = module
        self.decl = decl


class Interpreter:
    """Executes a multi-module BC program."""

    def __init__(self, modules, max_steps=10_000_000):
        """``modules``: list of checked ast.Module."""
        self.max_steps = max_steps
        self.steps = 0
        self.output = []
        self.module_info = {}
        self.globals = {}      # (module, name) -> value
        self.arrays = {}       # (module, name) -> list
        self.consts = {}       # (module, name) -> bool
        self.functions = {}    # global name -> (module, FuncDecl)
        self.static_functions = {}  # (module, name) -> FuncDecl

        for module in modules:
            info = check_module(module)
            self.module_info[module.name] = (module, info)
            for decl in module.globals:
                key = (module.name, decl.name)
                if isinstance(decl, ast.GlobalVar):
                    self.globals[key] = _wrap(decl.init)
                else:
                    values = [_wrap(v) for v in decl.init]
                    values += [0] * (decl.size - len(values))
                    self.arrays[key] = values
                self.consts[key] = decl.const
            for func in module.functions:
                if func.static:
                    self.static_functions[(module.name, func.name)] = func
                else:
                    if func.name in self.functions:
                        raise BCError(f"duplicate global function {func.name}")
                    self.functions[func.name] = (module.name, func)

    def set_array(self, module, name, values):
        """Poke an input array (mirrors Machine.poke_array)."""
        arr = self.arrays[(module, name)]
        for i, v in enumerate(values):
            arr[i] = _wrap(v)

    def run(self, entry="main", args=()):
        module, func = self.functions[entry]
        try:
            return self.call(module, func, list(args))
        except _Thrown as exc:
            raise BCError(f"uncaught exception (value={exc.value})") from None

    # -- function calls -----------------------------------------------------

    def resolve(self, module, name):
        if (module, name) in self.static_functions:
            return (module, self.static_functions[(module, name)])
        if name in self.functions:
            return self.functions[name]
        raise BCError(f"undefined function {name}")

    def call(self, module, func, args):
        if len(args) != len(func.params):
            raise BCError(f"arity mismatch calling {func.name}")
        env = [dict(zip(func.params, args))]
        try:
            self.exec_block(module, func.body, env)
        except _Return as ret:
            return ret.value
        return 0

    # -- statements -------------------------------------------------------------

    def exec_stmt(self, module, node, env):
        self.steps += 1
        if self.steps > self.max_steps:
            raise BCError("step budget exceeded")
        kind = type(node).__name__
        if kind == "Block":
            self.exec_block(module, node, env)
        elif kind == "VarDecl":
            value = self.eval(module, node.init, env) if node.init else 0
            env[-1][node.name] = value
        elif kind == "Assign":
            value = self.eval(module, node.value, env)
            target = node.target
            if isinstance(target, ast.Name):
                for scope in reversed(env):
                    if target.name in scope:
                        scope[target.name] = value
                        return
                self.globals[(module, target.name)] = value
            else:
                index = self.eval(module, target.index, env)
                arr = self.arrays[(module, target.name)]
                arr[index & (len(arr) - 1)] = value
        elif kind == "If":
            if self.eval(module, node.cond, env):
                self.exec_stmt(module, node.then, env)
            elif node.otherwise is not None:
                self.exec_stmt(module, node.otherwise, env)
        elif kind == "While":
            while self.eval(module, node.cond, env):
                try:
                    self.exec_stmt(module, node.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif kind == "For":
            env.append({})
            try:
                if node.init is not None:
                    self.exec_stmt(module, node.init, env)
                while (node.cond is None
                       or self.eval(module, node.cond, env)):
                    try:
                        self.exec_stmt(module, node.body, env)
                    except _Break:
                        break
                    except _Continue:
                        pass
                    if node.step is not None:
                        self.exec_stmt(module, node.step, env)
            finally:
                env.pop()
        elif kind == "Switch":
            value = self.eval(module, node.value, env)
            for case_value, body in node.cases:
                if value == case_value:
                    self.exec_stmt(module, body, env)
                    return
            if node.default is not None:
                self.exec_stmt(module, node.default, env)
        elif kind == "Return":
            value = self.eval(module, node.value, env) if node.value else 0
            raise _Return(value)
        elif kind == "Out":
            self.output.append(self.eval(module, node.value, env))
        elif kind == "ExprStmt":
            self.eval(module, node.expr, env)
        elif kind == "Break":
            raise _Break()
        elif kind == "Continue":
            raise _Continue()
        elif kind == "Throw":
            raise _Thrown(self.eval(module, node.value, env))
        elif kind == "Try":
            try:
                self.exec_stmt(module, node.body, env)
            except _Thrown as exc:
                env.append({node.catch_var: exc.value})
                try:
                    self.exec_stmt(module, node.handler, env)
                finally:
                    env.pop()
        else:  # pragma: no cover
            raise BCError(f"unknown statement {kind}")

    def exec_block(self, module, block, env):
        env.append({})
        try:
            for stmt in block.stmts:
                self.exec_stmt(module, stmt, env)
        finally:
            env.pop()

    # -- expressions ----------------------------------------------------------------

    def eval(self, module, node, env):
        self.steps += 1
        if self.steps > self.max_steps:
            raise BCError("step budget exceeded")
        if isinstance(node, ast.Num):
            return _wrap(node.value)
        if isinstance(node, ast.Name):
            for scope in reversed(env):
                if node.name in scope:
                    return scope[node.name]
            return self.globals[(module, node.name)]
        if isinstance(node, ast.Index):
            index = self.eval(module, node.index, env)
            arr = self.arrays[(module, node.name)]
            return arr[index & (len(arr) - 1)]
        if isinstance(node, ast.FuncRef):
            target_module, func = self.resolve(module, node.name)
            return _FuncValue(target_module, func)
        if isinstance(node, ast.Call):
            if node.indirect:
                target = self.eval(module, node.callee, env)
                if not isinstance(target, _FuncValue):
                    raise BCError("indirect call through non-function value")
                args = [self.eval(module, a, env) for a in node.args]
                return self.call(target.module, target.decl, args)
            # A direct name may still be a variable holding a fptr.
            holder = None
            for scope in reversed(env):
                if node.callee in scope:
                    holder = scope[node.callee]
                    break
            if holder is None and (module, node.callee) in self.globals:
                holder = self.globals[(module, node.callee)]
            if holder is not None:
                if not isinstance(holder, _FuncValue):
                    raise BCError("call through non-function value")
                args = [self.eval(module, a, env) for a in node.args]
                return self.call(holder.module, holder.decl, args)
            target_module, func = self.resolve(module, node.callee)
            args = [self.eval(module, a, env) for a in node.args]
            return self.call(target_module, func, args)
        if isinstance(node, ast.Unary):
            value = self.eval(module, node.operand, env)
            if node.op == "-":
                return _wrap(-value)
            return 0 if value else 1
        if isinstance(node, ast.Binary):
            if node.op == "&&":
                return 1 if (self.eval(module, node.left, env)
                             and self.eval(module, node.right, env)) else 0
            if node.op == "||":
                return 1 if (self.eval(module, node.left, env)
                             or self.eval(module, node.right, env)) else 0
            a = self.eval(module, node.left, env)
            b = self.eval(module, node.right, env)
            return self.binop(node.op, a, b)
        raise BCError(f"unknown expression {type(node).__name__}")

    @staticmethod
    def binop(op, a, b):
        from repro.ir.passes import eval_binop

        result = eval_binop(op, a, b)
        if result is None:
            raise BCError("division by zero")
        return result
