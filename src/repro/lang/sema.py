"""Semantic checks for BC modules.

BC is deliberately C-like in its linkage model: names that do not
resolve inside the module are assumed to be external and left for the
linker, and ``static`` functions are invisible outside their module —
which is what makes some cross-module references invisible to the
linker, one of the relocation gaps BOLT must recover by disassembling
(paper section 3.2).
"""

from repro.lang import astnodes as ast


class SemaError(Exception):
    def __init__(self, message, file, line):
        super().__init__(f"{file}:{line}: {message}")
        self.file = file
        self.line = line


class ModuleInfo:
    """Symbol information produced by :func:`check_module`."""

    def __init__(self):
        self.global_vars = {}     # name -> GlobalVar
        self.global_arrays = {}   # name -> GlobalArray
        self.functions = {}       # name -> FuncDecl
        self.extern_calls = set()  # names called but not defined here
        self.extern_refs = set()   # names referenced via &f but not defined here


def _error(node, message):
    raise SemaError(message, node.file, node.line)


class _FuncChecker:
    def __init__(self, info, func):
        self.info = info
        self.func = func
        self.scopes = [set(func.params)]
        self.loop_depth = 0
        if len(set(func.params)) != len(func.params):
            _error(func, f"duplicate parameter in {func.name}")

    def lookup_var(self, name):
        return any(name in scope for scope in self.scopes)

    def declare(self, node):
        if node.name in self.scopes[-1]:
            _error(node, f"redeclaration of {node.name}")
        self.scopes[-1].add(node.name)

    # -- statements -------------------------------------------------------

    def stmt(self, node):
        method = getattr(self, "_stmt_" + type(node).__name__, None)
        if method is None:  # pragma: no cover - parser restricts shapes
            _error(node, f"unsupported statement {type(node).__name__}")
        method(node)

    def _stmt_Block(self, node):
        self.scopes.append(set())
        for stmt in node.stmts:
            self.stmt(stmt)
        self.scopes.pop()

    def _stmt_VarDecl(self, node):
        if node.init is not None:
            self.expr(node.init)
        self.declare(node)

    def _stmt_Assign(self, node):
        target = node.target
        if isinstance(target, ast.Name):
            if not self.lookup_var(target.name):
                gvar = self.info.global_vars.get(target.name)
                if gvar is None:
                    _error(target, f"assignment to undeclared variable {target.name}")
                if gvar.const:
                    _error(target, f"assignment to const {target.name}")
        else:
            self._check_index(target)
            arr = self.info.global_arrays.get(target.name)
            if arr is not None and arr.const:
                _error(target, f"assignment to const array {target.name}")
        self.expr(node.value)

    def _stmt_If(self, node):
        self.expr(node.cond)
        self.stmt(node.then)
        if node.otherwise is not None:
            self.stmt(node.otherwise)

    def _stmt_While(self, node):
        self.expr(node.cond)
        self.loop_depth += 1
        self.stmt(node.body)
        self.loop_depth -= 1

    def _stmt_For(self, node):
        # The init's declarations live in their own scope around the loop.
        self.scopes.append(set())
        if node.init is not None:
            self.stmt(node.init)
        if node.cond is not None:
            self.expr(node.cond)
        self.loop_depth += 1
        self.stmt(node.body)
        if node.step is not None:
            self.stmt(node.step)
        self.loop_depth -= 1
        self.scopes.pop()

    def _stmt_Switch(self, node):
        self.expr(node.value)
        for _, body in node.cases:
            self.stmt(body)
        if node.default is not None:
            self.stmt(node.default)

    def _stmt_Return(self, node):
        if node.value is not None:
            self.expr(node.value)

    def _stmt_Out(self, node):
        self.expr(node.value)

    def _stmt_ExprStmt(self, node):
        self.expr(node.expr)

    def _stmt_Break(self, node):
        if self.loop_depth == 0:
            _error(node, "break outside loop")

    def _stmt_Continue(self, node):
        if self.loop_depth == 0:
            _error(node, "continue outside loop")

    def _stmt_Try(self, node):
        self.stmt(node.body)
        self.scopes.append({node.catch_var})
        self.stmt(node.handler)
        self.scopes.pop()

    def _stmt_Throw(self, node):
        self.expr(node.value)

    # -- expressions ----------------------------------------------------------

    def expr(self, node):
        if isinstance(node, ast.Num):
            return
        if isinstance(node, ast.Name):
            if self.lookup_var(node.name):
                return
            if node.name in self.info.global_vars:
                return
            if node.name in self.info.global_arrays:
                _error(node, f"array {node.name} used as a value")
            _error(node, f"use of undeclared variable {node.name}")
        elif isinstance(node, ast.Index):
            self._check_index(node)
        elif isinstance(node, ast.Call):
            if node.indirect:
                self.expr(node.callee)
            else:
                target = self.info.functions.get(node.callee)
                if target is not None:
                    if len(target.params) != len(node.args):
                        _error(
                            node,
                            f"call to {node.callee} with {len(node.args)} args, "
                            f"expected {len(target.params)}",
                        )
                elif self.lookup_var(node.callee) or node.callee in self.info.global_vars:
                    # Calling through a variable holding a function pointer.
                    pass
                else:
                    self.info.extern_calls.add(node.callee)
            for arg in node.args:
                self.expr(arg)
        elif isinstance(node, ast.FuncRef):
            if node.name not in self.info.functions:
                self.info.extern_refs.add(node.name)
        elif isinstance(node, ast.Unary):
            self.expr(node.operand)
        elif isinstance(node, ast.Binary):
            self.expr(node.left)
            self.expr(node.right)
        else:  # pragma: no cover
            _error(node, f"unsupported expression {type(node).__name__}")

    def _check_index(self, node):
        if node.name not in self.info.global_arrays:
            _error(node, f"indexing unknown array {node.name}")
        self.expr(node.index)


def check_module(module):
    """Validate a module; returns a :class:`ModuleInfo` on success."""
    info = ModuleInfo()
    for decl in module.globals:
        name = decl.name
        if name in info.global_vars or name in info.global_arrays:
            _error(decl, f"duplicate global {name}")
        if isinstance(decl, ast.GlobalVar):
            info.global_vars[name] = decl
        else:
            # BC arrays index modulo their length, so sizes must be
            # powers of two (indexing compiles to a mask).
            if decl.size <= 0 or decl.size & (decl.size - 1):
                _error(decl, f"array {name} size must be a power of two")
            info.global_arrays[name] = decl
    for func in module.functions:
        if func.name in info.functions:
            _error(func, f"duplicate function {func.name}")
        if func.name in info.global_vars or func.name in info.global_arrays:
            _error(func, f"{func.name} defined as both global and function")
        info.functions[func.name] = func
    for func in module.functions:
        checker = _FuncChecker(info, func)
        checker.stmt(func.body)
    # Calling a function defined in this module through a variable is
    # fine; but an extern call that is also an extern ref is still one
    # symbol — nothing to reconcile here.
    return info
