"""Recursive-descent parser for BC."""

from repro.lang import astnodes as ast
from repro.lang.lexer import Lexer, TokenType


class ParseError(Exception):
    def __init__(self, message, file, line):
        super().__init__(f"{file}:{line}: {message}")
        self.file = file
        self.line = line


# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


class _Parser:
    def __init__(self, tokens, file):
        self.tokens = tokens
        self.file = file
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    def peek(self):
        return self.tokens[self.pos]

    def advance(self):
        token = self.tokens[self.pos]
        if token.type != TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message, token=None):
        token = token or self.peek()
        raise ParseError(message, self.file, token.line)

    def check(self, value):
        token = self.peek()
        return token.type in (TokenType.PUNCT, TokenType.KEYWORD) and token.value == value

    def accept(self, value):
        if self.check(value):
            return self.advance()
        return None

    def expect(self, value):
        token = self.accept(value)
        if token is None:
            self.error(f"expected {value!r}, found {self.peek().value!r}")
        return token

    def expect_ident(self):
        token = self.peek()
        if token.type != TokenType.IDENT:
            self.error(f"expected identifier, found {token.value!r}")
        return self.advance()

    def expect_num(self):
        token = self.peek()
        if token.type != TokenType.NUM:
            self.error(f"expected number, found {token.value!r}")
        return self.advance()

    # -- top level ----------------------------------------------------------

    def module(self, name):
        globals_, functions = [], []
        while self.peek().type != TokenType.EOF:
            token = self.peek()
            if self.check("static") or self.check("func"):
                functions.append(self.func_decl())
            elif self.check("var") or self.check("array") or self.check("const"):
                globals_.append(self.global_decl())
            else:
                self.error(f"unexpected top-level token {token.value!r}")
        return ast.Module(name, globals_, functions, self.file, 1)

    def global_decl(self):
        const = bool(self.accept("const"))
        if self.accept("array") or (const and self.check("array") and self.advance()):
            return self._array_decl(const)
        if const:
            token = self.expect_ident()
            self.expect("=")
            init = self.expect_num().value
            self.expect(";")
            return ast.GlobalVar(token.value, init, True, self.file, token.line)
        self.expect("var")
        token = self.expect_ident()
        init = 0
        if self.accept("="):
            sign = -1 if self.accept("-") else 1
            init = sign * self.expect_num().value
        self.expect(";")
        return ast.GlobalVar(token.value, init, False, self.file, token.line)

    def _array_decl(self, const):
        token = self.expect_ident()
        self.expect("[")
        size = self.expect_num().value
        self.expect("]")
        init = []
        if self.accept("="):
            self.expect("{")
            if not self.check("}"):
                while True:
                    sign = -1 if self.accept("-") else 1
                    init.append(sign * self.expect_num().value)
                    if not self.accept(","):
                        break
            self.expect("}")
        self.expect(";")
        if len(init) > size:
            self.error(f"too many initializers for {token.value}", token)
        return ast.GlobalArray(token.value, size, init, const, self.file, token.line)

    def func_decl(self):
        static = bool(self.accept("static"))
        self.expect("func")
        token = self.expect_ident()
        self.expect("(")
        params = []
        if not self.check(")"):
            while True:
                params.append(self.expect_ident().value)
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.block()
        return ast.FuncDecl(token.value, params, body, static, self.file, token.line)

    # -- statements -----------------------------------------------------------

    def block(self):
        start = self.expect("{")
        stmts = []
        while not self.check("}"):
            if self.peek().type == TokenType.EOF:
                self.error("unterminated block", start)
            stmts.append(self.statement())
        self.expect("}")
        return ast.Block(stmts, self.file, start.line)

    def statement(self):
        token = self.peek()
        if self.check("{"):
            return self.block()
        if self.accept("var"):
            name = self.expect_ident()
            init = None
            if self.accept("="):
                init = self.expression()
            self.expect(";")
            return ast.VarDecl(name.value, init, self.file, name.line)
        if self.accept("if"):
            self.expect("(")
            cond = self.expression()
            self.expect(")")
            then = self.statement()
            otherwise = None
            if self.accept("else"):
                otherwise = self.statement()
            return ast.If(cond, then, otherwise, self.file, token.line)
        if self.accept("while"):
            self.expect("(")
            cond = self.expression()
            self.expect(")")
            body = self.statement()
            return ast.While(cond, body, self.file, token.line)
        if self.accept("for"):
            return self._for(token)
        if self.accept("switch"):
            return self._switch(token)
        if self.accept("return"):
            value = None
            if not self.check(";"):
                value = self.expression()
            self.expect(";")
            return ast.Return(value, self.file, token.line)
        if self.accept("out"):
            value = self.expression()
            self.expect(";")
            return ast.Out(value, self.file, token.line)
        if self.accept("break"):
            self.expect(";")
            return ast.Break(self.file, token.line)
        if self.accept("continue"):
            self.expect(";")
            return ast.Continue(self.file, token.line)
        if self.accept("throw"):
            value = self.expression()
            self.expect(";")
            return ast.Throw(value, self.file, token.line)
        if self.accept("try"):
            body = self.block()
            self.expect("catch")
            self.expect("(")
            var = self.expect_ident().value
            self.expect(")")
            handler = self.block()
            return ast.Try(body, var, handler, self.file, token.line)
        return self._expr_or_assign()

    def _switch(self, token):
        self.expect("(")
        value = self.expression()
        self.expect(")")
        self.expect("{")
        cases, default = [], None
        while not self.check("}"):
            if self.accept("case"):
                sign = -1 if self.accept("-") else 1
                case_value = sign * self.expect_num().value
                self.expect(":")
                cases.append((case_value, self.statement()))
            elif self.accept("default"):
                self.expect(":")
                if default is not None:
                    self.error("duplicate default", token)
                default = self.statement()
            else:
                self.error(f"expected case/default, found {self.peek().value!r}")
        self.expect("}")
        seen = set()
        for case_value, _ in cases:
            if case_value in seen:
                self.error(f"duplicate case {case_value}", token)
            seen.add(case_value)
        return ast.Switch(value, cases, default, self.file, token.line)

    def _for(self, token):
        self.expect("(")
        init = None
        if not self.check(";"):
            if self.accept("var"):
                name = self.expect_ident()
                self.expect("=")
                init_value = self.expression()
                init = ast.VarDecl(name.value, init_value, self.file,
                                   name.line)
            else:
                init = self._simple_assign(token)
        self.expect(";")
        cond = None if self.check(";") else self.expression()
        self.expect(";")
        step = None if self.check(")") else self._simple_assign(token)
        self.expect(")")
        body = self.statement()
        return ast.For(init, cond, step, body, self.file, token.line)

    _COMPOUND_OPS = ("+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                     "<<=", ">>=")

    def _simple_assign(self, token):
        """An assignment or expression without the trailing ';' (for
        use in for-headers)."""
        expr = self.expression()
        compound = next((op for op in self._COMPOUND_OPS if self.check(op)),
                        None)
        if compound is not None:
            self.advance()
            if not isinstance(expr, (ast.Name, ast.Index)):
                self.error("invalid assignment target", token)
            value = self.expression()
            # Desugar: `x op= v` => `x = x op v`.  For array targets the
            # index expression is evaluated twice (by specification).
            rhs = ast.Binary(compound[:-1], expr, value, self.file,
                             token.line)
            return ast.Assign(expr, rhs, self.file, token.line)
        if self.accept("="):
            if not isinstance(expr, (ast.Name, ast.Index)):
                self.error("invalid assignment target", token)
            value = self.expression()
            return ast.Assign(expr, value, self.file, token.line)
        return ast.ExprStmt(expr, self.file, token.line)

    def _expr_or_assign(self):
        token = self.peek()
        stmt = self._simple_assign(token)
        self.expect(";")
        return stmt

    # -- expressions ------------------------------------------------------------

    def expression(self):
        return self._binary(0)

    def _binary(self, min_prec):
        left = self._unary()
        while True:
            token = self.peek()
            if token.type != TokenType.PUNCT:
                return left
            prec = _PRECEDENCE.get(token.value, 0)
            if prec <= min_prec:
                return left
            self.advance()
            right = self._binary(prec)
            left = ast.Binary(token.value, left, right, self.file, token.line)

    def _unary(self):
        token = self.peek()
        if self.accept("-"):
            return ast.Unary("-", self._unary(), self.file, token.line)
        if self.accept("!"):
            return ast.Unary("!", self._unary(), self.file, token.line)
        if self.accept("&"):
            name = self.expect_ident()
            return ast.FuncRef(name.value, self.file, name.line)
        return self._postfix()

    def _postfix(self):
        expr = self._primary()
        while True:
            token = self.peek()
            if self.check("("):
                self.advance()
                args = []
                if not self.check(")"):
                    while True:
                        args.append(self.expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                if isinstance(expr, ast.Name):
                    expr = ast.Call(expr.name, args, False, self.file, token.line)
                else:
                    expr = ast.Call(expr, args, True, self.file, token.line)
            elif self.check("["):
                if not isinstance(expr, ast.Name):
                    self.error("only named arrays can be indexed", token)
                self.advance()
                index = self.expression()
                self.expect("]")
                expr = ast.Index(expr.name, index, self.file, token.line)
            else:
                return expr

    def _primary(self):
        token = self.peek()
        if token.type == TokenType.NUM:
            self.advance()
            return ast.Num(token.value, self.file, token.line)
        if token.type == TokenType.IDENT:
            self.advance()
            return ast.Name(token.value, self.file, token.line)
        if self.accept("("):
            expr = self.expression()
            self.expect(")")
            return expr
        self.error(f"unexpected token {token.value!r} in expression")


def parse_module(source, name, file=None):
    """Parse BC source text into an :class:`ast.Module`."""
    file = file or f"{name}.bc"
    tokens = Lexer(source, file).tokens()
    return _Parser(tokens, file).module(name)
