"""BC: the small C-like source language the workloads are written in.

BC exists so that the reproduction has a *real* compilation pipeline to
retrofit profile data into (paper Figure 1): integer-only, with
functions (global or ``static``), globals and arrays (mutable or
``const`` — the latter land in ``.rodata`` and feed
``simplify-ro-loads``), ``if``/``while``/``switch`` (dense switches
lower to jump tables), direct/indirect calls and function pointers,
``out`` for observable output, and a simplified ``try``/``throw``/
``catch`` that exercises landing pads and CFI updates (paper 3.4).
"""

from repro.lang.lexer import Lexer, Token, TokenType, LexError
from repro.lang.parser import parse_module, ParseError
from repro.lang.sema import check_module, SemaError
from repro.lang import astnodes as ast

__all__ = [
    "Lexer",
    "Token",
    "TokenType",
    "LexError",
    "parse_module",
    "ParseError",
    "check_module",
    "SemaError",
    "ast",
]
