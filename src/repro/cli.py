"""Command-line front end: a miniature bcc/perf/llvm-bolt toolbox.

    python -m repro.cli build  -o app.belf src1.bc src2.bc [--lto] [--pgo]
    python -m repro.cli run    app.belf
    python -m repro.cli profile app.belf -o app.fdata [--no-lbr]
    python -m repro.cli merge-fdata host*.fdata -o app.fdata [-b app.belf]
    python -m repro.cli bolt   app.belf -p app.fdata -o app.bolt.belf
    python -m repro.cli lint   app.belf          # static lint (BL rules)
    python -m repro.cli stat   app.belf          # perf-stat analog
    python -m repro.cli dump   app.belf -f main  # Figure 4-style dump

Every subcommand operates on real serialized BELF/fdata files, so the
whole pipeline can be driven file-by-file like the real toolchain.
"""

import argparse
import pathlib
import sys

from repro.belf import read_binary, write_binary
from repro.compiler import BuildOptions, build_executable
from repro.core import BinaryContext, BoltOptions, optimize_binary
from repro.core.diagnostics import Severity, StrictModeError
from repro.core.cfg_builder import build_all_functions
from repro.core.discovery import discover_functions
from repro.core.profile_attach import attach_profile
from repro.core.reports import dump_function
from repro.profiling import (
    SamplingConfig,
    parse_fdata,
    profile_binary,
    write_fdata,
)
from repro.uarch import run_binary


def _load_sources(paths):
    sources = []
    for path in paths:
        p = pathlib.Path(path)
        sources.append((p.stem, p.read_text()))
    return sources


def cmd_build(args):
    options = BuildOptions(opt_level=args.opt_level, lto=args.lto)
    sources = _load_sources(args.sources)
    if args.pgo:
        from repro.compiler import collect_edge_profile, compile_program
        from repro.linker import link

        result = compile_program(sources, BuildOptions(instrument=True))
        train = link(result.objects, name="train")
        cpu = run_binary(train)
        profile = collect_edge_profile(cpu.machine, result.counter_keys)
        options = options.copy(profile=profile)
    exe, _ = build_executable(sources, options,
                              emit_relocs=args.emit_relocs)
    pathlib.Path(args.output).write_bytes(write_binary(exe))
    print(f"wrote {args.output} ({exe.text_size()} bytes of text, "
          f"{len(exe.functions())} functions)")


def cmd_run(args):
    exe = read_binary(pathlib.Path(args.binary).read_bytes())
    cpu = run_binary(exe, max_instructions=args.max_instructions,
                     engine=args.engine)
    for value in cpu.output:
        print(value)
    print(f"exit code: {cpu.exit_code}", file=sys.stderr)
    return cpu.exit_code


def cmd_profile(args):
    exe = read_binary(pathlib.Path(args.binary).read_bytes())
    sampling = SamplingConfig(event=args.event, period=args.period,
                              use_lbr=not args.no_lbr)
    profile, cpu = profile_binary(exe, sampling=sampling,
                                  max_instructions=args.max_instructions,
                                  engine=args.engine)
    pathlib.Path(args.output).write_text(write_fdata(profile))
    print(f"wrote {args.output}: {len(profile.branches)} branch records, "
          f"{len(profile.ip_samples)} sample sites "
          f"({cpu.counters.instructions} instructions executed)")


def cmd_bolt(args):
    exe = read_binary(pathlib.Path(args.binary).read_bytes())
    profile = None
    if args.profile:
        profile = parse_fdata(pathlib.Path(args.profile).read_text())
    options = BoltOptions(
        reorder_blocks=args.reorder_blocks,
        reorder_functions=args.reorder_functions,
        split_functions=args.split_functions,
        strict=args.strict,
        verify_cfg=args.verify_cfg,
        validate_output=args.validate,
        lint="none" if args.no_lint else "post",
        lint_suppress=tuple(args.suppress or ()),
        time_opts=args.time_opts,
        time_rewrite=args.time_rewrite,
        threads=args.threads,
    )
    result = optimize_binary(exe, profile, options)
    pathlib.Path(args.output).write_bytes(write_binary(result.binary))
    print(f"wrote {args.output}: hot text {result.hot_text_size}B "
          f"(+{result.cold_text_size}B cold), was {exe.text_size()}B")
    if result.timing:
        from repro.core.reports import format_timing_table
        print(format_timing_table(result.timing))
        if args.time_report:
            pathlib.Path(args.time_report).write_text(
                result.timing.to_json() + "\n")
            print(f"wrote {args.time_report}")
    for line in result.diagnostics.render(Severity.WARNING):
        print(line, file=sys.stderr)
    if result.degraded:
        print(f"BOLT-WARNING: output degraded to {result.degraded} mode",
              file=sys.stderr)
    if args.verbose:
        print(result.summary())
    if args.dyno_stats and result.dyno_before is not None:
        print("dyno-stats (vs input):")
        deltas = result.dyno_after.delta_vs(result.dyno_before)
        for field, delta in deltas.items():
            if delta is not None:
                print(f"  {field:34s} {delta * 100:+7.1f}%")
    if not args.verbose:  # -v already includes per-pass lines
        for name, stats in result.pass_stats.items():
            interesting = {k: v for k, v in stats.items() if v}
            if interesting:
                print(f"  pass {name}: {interesting}")


def cmd_merge_fdata(args):
    """Aggregate fleet profile shards into one .fdata (merge-fdata)."""
    from repro.profiling import aggregate_shards, load_shard_files
    from repro.core.reports import format_aggregation_report

    shards = load_shard_files(args.inputs)
    binary = None
    if args.binary:
        binary = read_binary(pathlib.Path(args.binary).read_bytes())
    aggregation = aggregate_shards(
        shards,
        weights=args.weight or None,
        binary=binary,
        threads=args.threads,
        cache_dir=args.cache_dir,
        stale_downweight=args.stale_downweight,
        min_match_quality=args.min_match_quality,
    )
    pathlib.Path(args.output).write_text(write_fdata(aggregation.profile))
    if args.json:
        print(aggregation.to_json())
    else:
        print(format_aggregation_report(aggregation.report()))
        print(f"wrote {args.output}")
    for line in aggregation.diagnostics.render(Severity.WARNING):
        print(line, file=sys.stderr)
    return 1 if aggregation.diagnostics.errors else 0


def cmd_lint(args):
    """Static lint of a binary; exits non-zero on any BOLT-ERROR finding."""
    from repro.analysis import lint_binary

    exe = read_binary(pathlib.Path(args.binary).read_bytes())
    report = lint_binary(exe, suppress=args.suppress or ())
    if args.json:
        print(report.to_json())
    else:
        for line in report.render_lines():
            print(line)
        suppressed = (f", {report.suppressed} suppressed"
                      if report.suppressed else "")
        print(f"BOLT-INFO: lint: {len(exe.functions())} function "
              f"symbol(s), {len(report.errors)} error(s), "
              f"{len(report.warnings)} warning(s){suppressed}")
    return 1 if report.errors else 0


def cmd_stat(args):
    exe = read_binary(pathlib.Path(args.binary).read_bytes())
    cpu = run_binary(exe, max_instructions=args.max_instructions,
                     engine=args.engine)
    c = cpu.counters
    print(f"{'instructions':24s} {c.instructions:>14,}")
    print(f"{'cycles':24s} {c.cycles:>14,}")
    print(f"{'IPC':24s} {c.instructions / max(1, c.cycles):>14.3f}")
    for field in ("taken_branches", "branch_misses", "l1i_misses",
                  "itlb_misses", "l1d_misses", "dtlb_misses", "llc_misses"):
        print(f"{field:24s} {getattr(c, field):>14,}")


def cmd_objdump(args):
    """Linear disassembly listing (objdump -d analog)."""
    from repro.isa import decode_stream

    exe = read_binary(pathlib.Path(args.binary).read_bytes())
    for section in exe.sections.values():
        if not section.is_exec:
            continue
        print(f"\nDisassembly of section {section.name}:")
        funcs = sorted((s for s in exe.functions()
                        if s.section == section.name and s.size > 0),
                       key=lambda s: s.value)
        for sym in funcs:
            print(f"\n{sym.value:08x} <{sym.link_name()}>:")
            start = sym.value - section.addr
            try:
                insns = decode_stream(section.data, start, start + sym.size,
                                      base_address=sym.value)
            except Exception as exc:  # undecodable bytes: show and move on
                print(f"  ...undecodable: {exc}")
                continue
            for insn in insns:
                print(f"  {insn.address:08x}:\t{insn}")


def cmd_dump(args):
    exe = read_binary(pathlib.Path(args.binary).read_bytes())
    context = BinaryContext(exe, BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    if args.profile:
        profile = parse_fdata(pathlib.Path(args.profile).read_text())
        attach_profile(context, profile)
    names = [args.function] if args.function else sorted(context.functions)
    for name in names:
        func = context.functions.get(name)
        if func is None:
            print(f"no function named {name!r}", file=sys.stderr)
            return 1
        print(dump_function(func))
        print()


def make_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="BOLT-reproduction toolchain")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", help="compile BC sources to an executable")
    p.add_argument("sources", nargs="+")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("-O", "--opt-level", type=int, default=2)
    p.add_argument("--lto", action="store_true")
    p.add_argument("--pgo", action="store_true",
                   help="instrumented train-then-rebuild")
    p.add_argument("--no-emit-relocs", dest="emit_relocs",
                   action="store_false")
    p.set_defaults(func=cmd_build)

    p = sub.add_parser("run", help="execute a BELF binary")
    p.add_argument("binary")
    p.add_argument("--max-instructions", type=int, default=100_000_000)
    p.add_argument("--engine", choices=["block", "ref"], default=None,
                   help="execution engine: block (trace-cached, default) "
                        "or ref (per-instruction oracle)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("profile", help="sample a run; write .fdata")
    p.add_argument("binary")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--event", default="cycles",
                   choices=["cycles", "instructions", "taken-branches"])
    p.add_argument("--period", type=int, default=251)
    p.add_argument("--no-lbr", action="store_true")
    p.add_argument("--max-instructions", type=int, default=100_000_000)
    p.add_argument("--engine", choices=["block", "ref"], default=None,
                   help="execution engine: block (trace-cached, default) "
                        "or ref (per-instruction oracle)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("bolt", help="post-link optimize a binary")
    p.add_argument("binary")
    p.add_argument("-p", "--profile")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--reorder-blocks", default="cache+",
                   choices=["none", "reverse", "cache", "cache+"])
    p.add_argument("--reorder-functions", default="hfsort+",
                   choices=["none", "hfsort", "hfsort+"])
    p.add_argument("--split-functions", type=int, default=3)
    p.add_argument("--dyno-stats", action="store_true")
    mode = p.add_mutually_exclusive_group()
    mode.add_argument("--strict", action="store_true",
                      help="turn contained warnings into hard failures")
    mode.add_argument("--tolerant", dest="strict", action="store_false",
                      help="contain per-function failures and degrade "
                           "gracefully (default)")
    p.add_argument("--verify-cfg", action="store_true",
                   help="validate CFG invariants between passes")
    p.add_argument("--validate", default="structural",
                   choices=["none", "structural", "static", "execute"],
                   help="post-rewrite validation gate level (static adds "
                        "whole-binary lint + translation validation)")
    p.add_argument("--no-lint", action="store_true",
                   help="disable the post-pass lint gate")
    p.add_argument("--suppress", action="append", default=[],
                   metavar="RULE",
                   help="suppress a lint rule (BL003 or func:BL001); "
                        "repeatable")
    p.add_argument("--time-opts", action="store_true",
                   help="print per-pass wall time (llvm-bolt -time-opts)")
    p.add_argument("--time-rewrite", action="store_true",
                   help="print per-phase rewrite wall time "
                        "(llvm-bolt -time-rewrite)")
    p.add_argument("--time-report", metavar="FILE",
                   help="also write the timing report as JSON to FILE")
    p.add_argument("--threads", type=int, default=1, metavar="N",
                   help="run per-function passes on N threads "
                        "(output is byte-identical to serial)")
    p.set_defaults(func=cmd_bolt, strict=False)
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print a BOLT-INFO summary of the rewrite")

    p = sub.add_parser("merge-fdata",
                       help="aggregate fleet .fdata shards into one profile")
    p.add_argument("inputs", nargs="+", metavar="SHARD",
                   help=".fdata shard files (one per host)")
    p.add_argument("-o", "--output", required=True,
                   help="merged .fdata output path")
    p.add_argument("-b", "--binary",
                   help="target BELF binary: stale shards are fuzzy-"
                        "reconciled against it and downweighted by "
                        "match quality")
    p.add_argument("--weight", action="append", type=float, default=[],
                   metavar="W",
                   help="per-shard weight (repeat per shard, or give "
                        "once to apply to all; default 1.0)")
    p.add_argument("--threads", type=int, default=1, metavar="N",
                   help="parse shards on N threads (output is "
                        "byte-identical to serial)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="on-disk shard cache; unchanged shards skip "
                        "re-parsing and re-reconciliation")
    p.add_argument("--stale-downweight", type=float, default=0.5,
                   help="weight factor for stale shards whose match "
                        "quality cannot be measured (default 0.5)")
    p.add_argument("--min-match-quality", type=float, default=0.0,
                   help="exclude stale shards matching below this "
                        "fraction (FD013)")
    p.add_argument("--json", action="store_true",
                   help="print the shard quality report as JSON")
    p.set_defaults(func=cmd_merge_fdata)

    p = sub.add_parser("lint", help="static binary lint (BL rule IDs)")
    p.add_argument("binary")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON report")
    p.add_argument("--suppress", action="append", default=[],
                   metavar="RULE",
                   help="suppress a lint rule (BL003 or func:BL001); "
                        "repeatable")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("stat", help="perf-stat analog")
    p.add_argument("binary")
    p.add_argument("--max-instructions", type=int, default=100_000_000)
    p.add_argument("--engine", choices=["block", "ref"], default=None,
                   help="execution engine: block (trace-cached, default) "
                        "or ref (per-instruction oracle)")
    p.set_defaults(func=cmd_stat)

    p = sub.add_parser("objdump", help="linear disassembly listing")
    p.add_argument("binary")
    p.set_defaults(func=cmd_objdump)

    p = sub.add_parser("dump", help="Figure 4-style CFG dump")
    p.add_argument("binary")
    p.add_argument("-f", "--function")
    p.add_argument("-p", "--profile")
    p.set_defaults(func=cmd_dump)

    return parser


def main(argv=None):
    from repro.belf import BelfFormatError
    from repro.core.rewriter import RewriteError
    from repro.lang import LexError, ParseError, SemaError
    from repro.linker import LinkError
    from repro.profiling import YamlProfileError
    from repro.uarch import MachineFault

    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args) or 0
    except FileNotFoundError as exc:
        print(f"BOLT-ERROR: no such file: {exc.filename}", file=sys.stderr)
    except (LexError, ParseError, SemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
    except (BelfFormatError, YamlProfileError, ValueError) as exc:
        # Malformed binary / profile inputs: one diagnostic line, no
        # Python traceback.
        print(f"BOLT-ERROR: malformed input: {exc}", file=sys.stderr)
    except StrictModeError as exc:
        print(f"BOLT-ERROR: strict mode: {exc}", file=sys.stderr)
    except RewriteError as exc:
        print(f"BOLT-ERROR: {exc}", file=sys.stderr)
    except LinkError as exc:
        print(f"link error: {exc}", file=sys.stderr)
    except MachineFault as exc:
        print(f"machine fault: {exc}", file=sys.stderr)
    except BrokenPipeError:
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
