"""Static linker: objects -> executable.

Feature set mirrors what the BOLT paper assumes of BFD/Gold:

* per-function input sections (``-ffunction-sections`` analog) so a
  profile-guided *function order* can be applied at link time — the
  HFSort baseline of the paper's Facebook evaluation (section 6.1);
* ``--emit-relocs``: retain (rebased) relocations in the executable,
  which is what enables BOLT's relocations mode (section 3.2).  Note
  that, exactly as the paper describes, some references are *not*
  represented: intra-function jump-table dispatch and short/near
  branches have no relocations, so a rewriter must disassemble;
* linker-level identical code folding (ICF), which BOLT's binary-level
  ICF complements (section 4);
* PLT/GOT creation for builtins and for "PIC library" objects, giving
  BOLT's ``plt`` pass its material.
"""

from repro.belf import (
    Binary,
    LineTable,
    RelocType,
    Section,
    SectionFlag,
    SectionType,
    Symbol,
    SymbolBind,
    SymbolType,
    TEXT_BASE,
    BUILTIN_BASE,
    PAGE_SIZE,
)
from repro.isa import Instruction, Op, encode

#: Simulator-native functions and their fixed addresses.
BUILTINS = {
    "__throw": BUILTIN_BASE + 0x0,
}


class LinkError(Exception):
    pass


def _align(value, alignment):
    return (value + alignment - 1) & ~(alignment - 1)


class _InputFunc:
    def __init__(self, obj, symbol, section):
        self.obj = obj
        self.symbol = symbol
        self.section = section
        self.link_name = symbol.link_name()
        self.relocs = [r for r in obj.relocations if r.section == section.name]
        self.address = None
        self.folded_into = None

    @property
    def code(self):
        return bytes(self.section.data)

    def icf_key(self):
        return (
            self.code,
            tuple((r.offset, int(r.type), r.symbol, r.addend) for r in self.relocs),
        )


def link(
    objects,
    libs=(),
    name="a.out",
    entry="main",
    emit_relocs=False,
    function_order=None,
    icf=False,
    text_base=TEXT_BASE,
):
    """Link relocatable objects into an executable Binary.

    ``libs`` are objects whose exported functions are called through the
    PLT (PIC-archive analog).  ``function_order`` is an optional list of
    function link names defining the .text layout (HFSort at link time).
    """
    all_objects = list(objects) + list(libs)
    lib_names = set()
    for lib in libs:
        for sym in lib.symbols:
            if sym.type == SymbolType.FUNC and sym.bind == SymbolBind.GLOBAL:
                lib_names.add(sym.link_name())

    funcs, data_inputs = _collect_inputs(all_objects)
    if icf:
        _fold_identical(funcs)

    order = _layout_order(funcs, function_order)

    out = Binary(kind="exec", name=name)
    out.emit_relocs = emit_relocs

    text = Section(".text", flags=SectionFlag.ALLOC | SectionFlag.EXEC,
                   addr=text_base, align=PAGE_SIZE)
    out.add_section(text)
    func_addr = {}
    out_relocs = []
    for func in order:
        text.pad_to(16)
        offset = len(text.data)
        func.address = text.addr + offset
        func_addr[func.link_name] = func.address
        text.data += func.section.data
        for reloc in func.relocs:
            out_relocs.append((text, offset + reloc.offset, reloc))
    for func in funcs.values():
        if func.folded_into is not None:
            survivor = func.folded_into
            while survivor.folded_into is not None:
                survivor = survivor.folded_into
            func.address = survivor.address
            func_addr[func.link_name] = func.address

    # PLT-routed symbols: builtins plus PIC-library exports.
    plt_targets = {}
    for link_name in sorted(lib_names):
        if link_name in funcs and funcs[link_name].address is not None:
            plt_targets[link_name] = funcs[link_name].address
    for builtin, address in BUILTINS.items():
        plt_targets[builtin] = address

    plt, got, plt_stub_addr, got_entry_addr = _build_plt(
        out, text, plt_targets, emit_relocs=emit_relocs)

    data_base = _place_data_sections(out, data_inputs, got)

    symtab = _build_symbol_table(out, funcs, data_inputs, func_addr)

    resolver = _Resolver(symtab, plt_stub_addr, BUILTINS)
    _apply_relocations(out, out_relocs, data_inputs, resolver,
                       keep=emit_relocs)

    _merge_metadata(out, all_objects, funcs, func_addr)

    entry_addr = resolver.resolve(entry)
    if entry_addr is None:
        raise LinkError(f"undefined entry symbol {entry!r}")
    out.entry = entry_addr
    del out._data_placement
    return out


def _collect_inputs(all_objects):
    funcs = {}
    data_inputs = []   # (obj, section)
    for obj in all_objects:
        for sym in obj.symbols:
            if sym.type != SymbolType.FUNC or sym.section is None:
                continue
            section = obj.get_section(sym.section)
            if not section.name.startswith(".text."):
                raise LinkError(
                    f"function {sym.name} not in a per-function section")
            func = _InputFunc(obj, sym, section)
            if func.link_name in funcs:
                raise LinkError(f"duplicate definition of {func.link_name}")
            funcs[func.link_name] = func
        for section in obj.sections.values():
            if not section.is_exec:
                data_inputs.append((obj, section))
    return funcs, data_inputs


def _fold_identical(funcs):
    """Linker ICF: deduplicate functions with identical bodies+relocs."""
    by_key = {}
    changed = True
    while changed:
        changed = False
        by_key.clear()
        for func in funcs.values():
            if func.folded_into is not None:
                continue
            key = func.icf_key()
            survivor = by_key.get(key)
            if survivor is None:
                by_key[key] = func
            else:
                func.folded_into = survivor
                changed = True


def _layout_order(funcs, function_order):
    live = [f for f in funcs.values() if f.folded_into is None]
    if not function_order:
        return live
    rank = {name: i for i, name in enumerate(function_order)}
    fallback = len(rank)
    # Stable sort: functions absent from the order keep their input order.
    return sorted(live, key=lambda f: rank.get(f.link_name, fallback))


def _build_plt(out, text, plt_targets, emit_relocs=False):
    """Create .plt stubs and .got entries; returns maps by link name."""
    from repro.belf import Relocation

    plt = Section(".plt", flags=SectionFlag.ALLOC | SectionFlag.EXEC,
                  addr=_align(text.end, 16), align=16)
    got = Section(".got", flags=SectionFlag.ALLOC | SectionFlag.WRITE, align=8)
    plt_stub_addr = {}
    got_entry_addr = {}
    # .got is placed immediately after .plt so all addresses are known
    # in a single pass.
    got.addr = _align(plt.addr + 6 * len(plt_targets), 8)
    for i, (link_name, target) in enumerate(sorted(plt_targets.items())):
        stub_offset = len(plt.data)
        stub_addr = plt.addr + stub_offset
        got_addr = got.addr + 8 * i
        insn = Instruction(Op.JMP_MEM, addr=got_addr)
        plt.data += encode(insn, stub_addr)
        got.data += target.to_bytes(8, "little")
        plt_stub_addr[link_name] = stub_addr
        got_entry_addr[link_name] = got_addr
        if emit_relocs:
            # A post-link rewriter moving this function must be able to
            # retarget the GOT entry.
            out.relocations.append(
                Relocation(".got", 8 * i, RelocType.ABS64, link_name, 0))
    out.add_section(plt)
    out.add_section(got)
    return plt, got, plt_stub_addr, got_entry_addr


def _place_data_sections(out, data_inputs, got):
    """Merge input data sections into .rodata/.data/.bss after .got."""
    base = _align(got.end, PAGE_SIZE)
    merged = {}
    for kind, flags, stype in (
        (".rodata", SectionFlag.ALLOC, SectionType.PROGBITS),
        (".data", SectionFlag.ALLOC | SectionFlag.WRITE, SectionType.PROGBITS),
        (".bss", SectionFlag.ALLOC | SectionFlag.WRITE, SectionType.NOBITS),
    ):
        section = Section(kind, type=stype, flags=flags, align=8,
                          mem_size=0 if stype == SectionType.NOBITS else None)
        merged[kind] = section
        out.add_section(section)

    #: (obj id, input section name) -> (output section, offset)
    placement = {}
    for obj, section in data_inputs:
        if section.name == ".bss" or section.type == SectionType.NOBITS:
            target = merged[".bss"]
            offset = _align(target.size, section.align)
            target.size = offset + section.size
        elif section.name.startswith(".rodata"):
            target = merged[".rodata"]
            target.pad_to(section.align)
            offset = target.append(bytes(section.data))
        else:
            target = merged[".data"]
            target.pad_to(section.align)
            offset = target.append(bytes(section.data))
        placement[(id(obj), section.name)] = (target, offset)

    addr = base
    for kind in (".rodata", ".data", ".bss"):
        section = merged[kind]
        section.addr = addr
        addr = _align(addr + section.size, PAGE_SIZE)
    out._data_placement = placement
    return base


def _build_symbol_table(out, funcs, data_inputs, func_addr):
    symtab = {}
    placement = out._data_placement
    for func in funcs.values():
        address = func.address
        out.add_symbol(Symbol(
            func.symbol.name, value=address, size=func.symbol.size,
            type=SymbolType.FUNC, bind=func.symbol.bind,
            section=".text", module=func.symbol.module))
        symtab[func.link_name] = address
    for obj, section in data_inputs:
        target, base_offset = placement[(id(obj), section.name)]
        for sym in obj.symbols:
            if sym.type != SymbolType.OBJECT or sym.section != section.name:
                continue
            address = target.addr + base_offset + sym.value
            out.add_symbol(Symbol(
                sym.name, value=address, size=sym.size, type=SymbolType.OBJECT,
                bind=sym.bind, section=target.name, module=sym.module))
            symtab[sym.link_name()] = address
    return symtab


class _Resolver:
    def __init__(self, symtab, plt_stub_addr, builtins):
        self.symtab = symtab
        self.plt_stub_addr = plt_stub_addr
        self.builtins = builtins

    def resolve(self, link_name, for_call=False):
        """Address of a symbol; calls to PLT-routed names get the stub."""
        if for_call and link_name in self.plt_stub_addr:
            # Calls to builtins/PIC libraries go through the PLT.
            return self.plt_stub_addr[link_name]
        if link_name in self.symtab:
            return self.symtab[link_name]
        if link_name in self.builtins:
            return self.builtins[link_name]
        if link_name in self.plt_stub_addr:
            return self.plt_stub_addr[link_name]
        return None


def _apply_relocations(out, text_relocs, data_inputs, resolver, keep):
    from repro.belf import Relocation

    def apply_one(section, offset, reloc):
        target = resolver.resolve(
            reloc.symbol, for_call=(reloc.type == RelocType.PC32))
        if target is None:
            raise LinkError(f"undefined symbol {reloc.symbol!r}")
        value = target + reloc.addend
        place = section.addr + offset
        if reloc.type == RelocType.ABS64:
            section.data[offset:offset + 8] = value.to_bytes(8, "little")
        elif reloc.type == RelocType.ABS32:
            if not 0 <= value < 1 << 32:
                raise LinkError(f"ABS32 overflow for {reloc.symbol}")
            section.data[offset:offset + 4] = value.to_bytes(4, "little")
        else:  # PC32
            rel = value - (place + 4)
            if not -(1 << 31) <= rel < 1 << 31:
                raise LinkError(f"PC32 overflow for {reloc.symbol}")
            section.data[offset:offset + 4] = rel.to_bytes(4, "little", signed=True)
        if keep:
            out.relocations.append(
                Relocation(section.name, offset, reloc.type, reloc.symbol,
                           reloc.addend))

    for section, offset, reloc in text_relocs:
        apply_one(section, offset, reloc)
    placement = out._data_placement
    for obj, section in data_inputs:
        if section.type == SectionType.NOBITS:
            continue
        target, base_offset = placement[(id(obj), section.name)]
        for reloc in obj.relocations:
            if reloc.section != section.name:
                continue
            apply_one(target, base_offset + reloc.offset, reloc)


def _merge_metadata(out, all_objects, funcs, func_addr):
    table = LineTable()
    for obj in all_objects:
        for link_name, rows in obj.func_line_tables.items():
            func = funcs.get(link_name)
            if func is None or func.folded_into is not None:
                continue
            base = func.address
            for offset, file, line in rows:
                table.add(base + offset, file, line)
        for link_name, record in obj.frame_records.items():
            func = funcs.get(link_name)
            if func is None:
                continue
            if func.folded_into is not None:
                # ICF alias: the symbol covers the survivor's bytes, and
                # the unwinder may resolve addresses to either name.  The
                # survivor's record is byte-identical by construction.
                survivor = func.folded_into
                while survivor.folded_into is not None:
                    survivor = survivor.folded_into
                alias = (survivor.obj.frame_records.get(survivor.link_name)
                         or record)
                clone = alias.copy()
                clone.func = link_name
                out.frame_records[link_name] = clone
                continue
            out.frame_records[link_name] = record.copy()
    out.line_table = table
