"""The static linker."""

from repro.linker.linker import link, LinkError, BUILTINS

__all__ = ["link", "LinkError", "BUILTINS"]
