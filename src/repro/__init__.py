"""Reproduction of *BOLT: A Practical Binary Optimizer for Data Centers
and Beyond* (Panchenko, Auler, Nell, Ottoni - CGO 2019).

The top-level package re-exports the high-level API; see README.md for
a tour and DESIGN.md for the architecture.

    from repro import (build_executable, profile_binary, optimize_binary,
                       run_binary, BoltOptions)

Subpackages:

* ``repro.isa``        - the BX86 instruction set (encode/decode)
* ``repro.belf``       - the ELF-like object/executable format
* ``repro.lang``       - the BC language front end (+ reference interpreter)
* ``repro.ir``         - compiler IR and optimization passes
* ``repro.codegen``    - instruction selection and object emission
* ``repro.compiler``   - the build driver (-O2 / PGO / AutoFDO / LTO)
* ``repro.linker``     - the static linker (--emit-relocs, ICF, PLT)
* ``repro.uarch``      - the machine + performance model (caches, TLBs,
  branch predictors, LBR)
* ``repro.profiling``  - sampling profiler, perf2bolt, .fdata/YAML formats
* ``repro.core``       - **BOLT itself** (the paper's contribution)
* ``repro.workloads``  - synthetic data-center/compiler workload generators
* ``repro.harness``    - end-to-end experiment flows
"""

__version__ = "1.0.0"

from repro.compiler import BuildOptions, build_executable
from repro.core import BoltOptions, optimize_binary
from repro.profiling import SamplingConfig, profile_binary
from repro.uarch import run_binary

__all__ = [
    "__version__",
    "BuildOptions",
    "build_executable",
    "BoltOptions",
    "optimize_binary",
    "SamplingConfig",
    "profile_binary",
    "run_binary",
]
