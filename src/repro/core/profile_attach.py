"""Attaching a sampled BinaryProfile to reconstructed CFGs.

Implements the paper's section 5.2 semantics:

* **LBR mode** — taken-branch records map directly onto CFG edges;
  fall-through counts are *inferred* by attributing each block's surplus
  out-flow to its not-taken successor ("BOLT satisfies the flow
  equation by attributing all surplus flow to the non-taken path ...
  trusting the original layout done by the static compiler").
* **non-LBR mode** — only per-address sample counts exist; block counts
  are summed samples and edge counts are recovered with min-cost flow
  (Levin/FDPR) or a proportional heuristic.

Each function is stamped with a profile-match score (the "Profile Acc"
of the paper's Figure 4 dump): the fraction of branch records that
landed on recognizable (branch-site, target) pairs.

**Stale profiles** (Ayupov/Panchenko/Pupyrev, arXiv:2401.17168): real
deployments routinely feed BOLT a profile collected on a *different*
build.  A build-id stamp (``Binary.content_hash``) detects the
mismatch; instead of mis-attributing counts or crashing, attachment
switches to fuzzy matching — profile-only functions are re-matched by
name and CFG similarity, out-of-range samples are dropped, and the
counts of exactly-matched records are rescaled so hot paths keep
their sampled magnitude.  Intra-function records that no longer land
on real (branch site, block entry) pairs are *not* guessed at: a
wrong edge bias is worse than none, so they only lower the reported
match-quality percentage while function-level hotness (cross-function
call records, which match by name) still guides function reordering.
"""

import bisect

from repro.profiling.mcf import min_cost_flow_edges

#: Cap on stale-profile count rescaling: a function whose records
#: mostly failed to match should not have the few survivors blown up
#: into fake certainty.
MAX_RESCALE = 8.0


def attach_profile(context, profile):
    """Annotate every simple function; returns per-function match rates."""
    diags = context.diagnostics
    dropped = _sanitize(profile, diags)
    stale, reason = _detect_stale(context, profile)
    remap = {}
    if stale:
        context.stale_profile = True
        if context.options.stale_matching:
            remap = _match_stale_functions(context, profile)
    source_of = {fname: pname for pname, fname in remap.items()}

    entry_counts = _function_entry_counts(profile, remap)
    rates = {}
    totals = _MatchTotals()
    for func in context.functions.values():
        func.exec_count = max(0, entry_counts.get(func.name, 0))
        if not func.is_simple:
            continue
        source = source_of.get(func.name, func.name)
        if profile.lbr:
            rates[func.name] = _attach_lbr(context, func, profile,
                                           source=source, fuzzy=stale,
                                           totals=totals)
        else:
            rates[func.name] = _attach_nolbr(context, func, profile,
                                             source=source, totals=totals)
        func.has_profile = any(
            b.exec_count for b in func.blocks.values()) or func.exec_count > 0

    quality = totals.quality()
    if stale:
        context.profile_quality = quality
        recovered = (f"fuzzy matching recovered {quality:.1%} of branch "
                     f"records" if quality is not None
                     else "no branch records to match")
        remapped = f", {len(remap)} function(s) re-matched" if remap else ""
        out_of_range = (f", {totals.dropped} out-of-range record(s) dropped"
                        if totals.dropped else "")
        diags.warning("profile",
                      f"stale profile detected ({reason}); {recovered}"
                      f"{remapped}{out_of_range}")
        if (quality is not None
                and quality < context.options.stale_min_quality):
            diags.warning(
                "profile",
                f"match quality {quality:.1%} below threshold "
                f"{context.options.stale_min_quality:.1%}; profile ignored")
            _strip_profile(context)
            return {}
    elif quality is not None:
        context.profile_quality = quality
    if dropped:
        diags.warning("profile",
                      f"dropped {dropped} malformed profile record(s) "
                      f"(negative counts)")
    return rates


def _sanitize(profile, diags):
    """Drop structurally-invalid records (fault-injected or corrupt
    producers): negative counts never attach."""
    bad_branches = [key for key, (count, mispreds) in profile.branches.items()
                    if count < 0 or mispreds < 0]
    for key in bad_branches:
        del profile.branches[key]
    bad_samples = [loc for loc, count in profile.ip_samples.items()
                   if count < 0]
    for loc in bad_samples:
        del profile.ip_samples[loc]
    return len(bad_branches) + len(bad_samples)


class _MatchTotals:
    """Aggregate match accounting across all functions."""

    def __init__(self):
        self.matched = 0
        self.total = 0
        self.dropped = 0

    def quality(self):
        return (self.matched / self.total) if self.total else None


# ---------------------------------------------------------------------------
# Stale-profile detection and function re-matching
# ---------------------------------------------------------------------------


def _detect_stale(context, profile):
    """Is this profile from a different build of the binary?"""
    actual = context.binary.content_hash()
    if profile.build_id:
        if profile.build_id != actual:
            return True, (f"build id mismatch: profile {profile.build_id}, "
                          f"binary {actual}")
        return False, None
    # Unstamped profile: structural heuristic.  Count intra-function
    # branch records whose endpoints miss instruction boundaries.
    total = bad = 0
    for func in context.functions.values():
        if not func.blocks:
            continue
        boundaries = {insn.address - func.address
                      for block in func.blocks.values()
                      for insn in block.insns}
        for (f_off, t_off) in profile.branches_within(func.name):
            total += 1
            if (not 0 <= f_off < func.size or not 0 <= t_off < func.size
                    or f_off not in boundaries or t_off not in boundaries):
                bad += 1
    if total >= 8 and bad > total // 4:
        return True, (f"{bad}/{total} branch records off instruction "
                      f"boundaries (unstamped profile)")
    return False, None


def _name_stem(name):
    """Normalized identity for cross-build name matching: module
    qualifiers, duplicate suffixes, and trailing digits stripped."""
    stem = name.rsplit("::", 1)[-1].lower()
    return stem.rstrip("0123456789._")


def _match_stale_functions(context, profile):
    """Re-match profile-only function names to unprofiled binary
    functions by name stem + CFG-shape similarity.

    Returns {profile name -> binary function name}.
    """
    profiled_names = profile.functions()
    orphans = sorted(n for n in profiled_names if n not in context.functions)
    if not orphans:
        return {}
    candidates = [func for name, func in context.functions.items()
                  if name not in profiled_names and func.is_simple]
    remap = {}
    taken = set()
    for orphan in orphans:
        sig = _profile_signature(profile, orphan)
        best, best_score = None, 0.0
        for func in candidates:
            if func.name in taken:
                continue
            score = _similarity(func, orphan, sig)
            if score > best_score:
                best, best_score = func, score
        if best is not None and best_score >= 0.5:
            remap[orphan] = best.name
            taken.add(best.name)
    return remap


def _profile_signature(profile, name):
    """(distinct branch sites, max offset seen) for a profile function."""
    sites = set()
    max_off = 0
    for (f, t) in profile.branches:
        if f[0] == name:
            sites.add(f[1])
            max_off = max(max_off, f[1])
        if t[0] == name:
            max_off = max(max_off, t[1])
    for loc in profile.ip_samples:
        if loc[0] == name:
            max_off = max(max_off, loc[1])
    return len(sites), max_off


def _similarity(func, orphan_name, signature):
    """0..1 score: name-stem equality plus CFG-shape agreement."""
    sites, max_off = signature
    score = 0.0
    if _name_stem(func.name) == _name_stem(orphan_name):
        score += 0.6
    branch_sites = sum(
        1 for block in func.blocks.values() for insn in block.insns
        if insn.is_branch or insn.is_call)
    denom = max(sites, branch_sites, 1)
    score += 0.25 * (min(sites, branch_sites) / denom)
    if func.size > 0:
        score += 0.15 * (1.0 if max_off < func.size else
                         max(0.0, 1.0 - (max_off - func.size) / func.size))
    return score


def detect_stale(context, profile):
    """Public wrapper for shard-level staleness detection.

    Returns ``(stale, reason)`` using the same build-id stamp and
    structural heuristic :func:`attach_profile` applies — the fleet
    aggregator calls this per shard before deciding whether to
    reconcile it.
    """
    return _detect_stale(context, profile)


def match_stale_functions(context, profile):
    """Public wrapper for the fuzzy function re-matcher (PR 1)."""
    return _match_stale_functions(context, profile)


def reconcile_shard(context, profile):
    """Fuzzy-match one stale shard against a binary's CFGs.

    Returns ``(remap, match_stats)`` where ``remap`` is {profile name
    -> binary function name} and ``match_stats`` is the per-shard
    match-quality accounting previously only computed (and reported)
    for the single-profile attach path.
    """
    remap = _match_stale_functions(context, profile)
    return remap, measure_match_quality(context, profile, remap)


def measure_match_quality(context, profile, remap=None):
    """Non-mutating per-shard match-quality measurement.

    Walks every intra-function branch record through the same
    exact-match rule :func:`_attach_lbr` enforces (real branch site,
    real successor block entry) without annotating any CFG, so the
    aggregation pipeline can report match quality per shard.

    Returns ``{"matched", "total", "out_of_range", "quality",
    "remapped"}`` with counts in record-count mass (quality is None
    when the shard has no intra-function records).
    """
    remap = remap or {}
    source_of = {}
    for pname, fname in remap.items():
        source_of.setdefault(fname, pname)

    total = sum(count for (f, t), (count, _) in profile.branches.items()
                if f[0] == t[0])
    matched = out_of_range = 0
    for func in context.functions.values():
        if not func.is_simple:
            continue
        source = source_of.get(func.name, func.name)
        records = profile.branches_within(source)
        if not records:
            continue
        index = _OffsetIndex(func)
        for (from_off, to_off), (count, _) in records.items():
            if not (0 <= from_off < func.size and 0 <= to_off < func.size):
                out_of_range += count
                continue
            from_block = index.containing(from_off)
            to_block = index.at(to_off)
            if from_block is None or to_block is None:
                continue
            if _branch_at(from_block, func.address + from_off) is None:
                continue
            if to_block.label not in from_block.successors:
                continue
            matched += count
    return {
        "matched": matched,
        "total": total,
        "out_of_range": out_of_range,
        "quality": (matched / total) if total else None,
        "remapped": len(remap),
    }


def _strip_profile(context):
    """Unusable profile: leave every function unannotated."""
    for func in context.functions.values():
        func.exec_count = 0
        func.has_profile = False
        func.profile_match = None
        for block in func.blocks.values():
            block.exec_count = 0
            block.edge_counts = {}
            block.edge_mispreds = {}


# ---------------------------------------------------------------------------


def _function_entry_counts(profile, remap=None):
    remap = remap or {}

    def resolve(name):
        return remap.get(name, name)

    counts = {}
    for (f, t), (count, _) in profile.branches.items():
        if t[1] == 0 and f[0] != t[0]:
            name = resolve(t[0])
            counts[name] = counts.get(name, 0) + count
    if not counts:
        # non-LBR: approximate via samples at function entry blocks is
        # meaningless; use total samples as a hotness proxy instead.
        for (name, _), count in profile.ip_samples.items():
            name = resolve(name)
            counts[name] = counts.get(name, 0) + count
    return counts


class _OffsetIndex:
    """offset -> block containing it (blocks sorted by original offset)."""

    def __init__(self, func):
        blocks = sorted(func.blocks.values(), key=lambda b: b.offset)
        self.starts = [b.offset for b in blocks]
        self.blocks = blocks
        self.by_offset = {b.offset: b for b in blocks}

    def containing(self, offset):
        idx = bisect.bisect_right(self.starts, offset) - 1
        if idx < 0:
            return None
        return self.blocks[idx]

    def at(self, offset):
        return self.by_offset.get(offset)


def _attach_lbr(context, func, profile, source=None, fuzzy=False,
                totals=None):
    index = _OffsetIndex(func)
    records = profile.branches_within(source or func.name)
    matched = total = dropped = 0

    # Reset profile annotations.
    for block in func.blocks.values():
        block.exec_count = 0
        for succ in block.successors:
            block.edge_counts[succ] = 0
            block.edge_mispreds[succ] = 0

    taken_in = {label: 0 for label in func.blocks}
    taken_out = {label: 0 for label in func.blocks}

    for (from_off, to_off), (count, mispreds) in records.items():
        total += count
        # Out-of-range sample dropping: corrupted or cross-build
        # offsets beyond the function body never attach.
        if not (0 <= from_off < func.size and 0 <= to_off < func.size):
            dropped += count
            continue
        from_block = index.containing(from_off)
        to_block = index.at(to_off)
        if from_block is None or to_block is None:
            continue
        # Both endpoints must land *exactly* — a real branch site and a
        # real block entry.  Snapping shifted offsets to the nearest
        # plausible branch assigns counts to essentially arbitrary
        # successors, which can invert branch biases and make the
        # layout worse than no profile at all; a record that does not
        # match exactly stays unmatched and is absorbed into the
        # match-quality figure instead.
        branch = _branch_at(from_block, func.address + from_off)
        if branch is None:
            continue
        if to_block.label not in from_block.successors:
            continue
        from_block.edge_counts[to_block.label] = (
            from_block.edge_counts.get(to_block.label, 0) + count)
        from_block.edge_mispreds[to_block.label] = (
            from_block.edge_mispreds.get(to_block.label, 0) + mispreds)
        taken_in[to_block.label] += count
        taken_out[from_block.label] += count
        matched += count

    # Stale-profile count rescaling: the matched subset keeps the
    # sampled aggregate magnitude (arXiv:2401.17168 section 4).
    if fuzzy and matched and matched < total:
        factor = min(total / matched, MAX_RESCALE)
        if factor > 1.0:
            for block in func.blocks.values():
                for succ, count in block.edge_counts.items():
                    if count:
                        block.edge_counts[succ] = max(1, round(count * factor))
            for label in taken_in:
                taken_in[label] = round(taken_in[label] * factor)
                taken_out[label] = round(taken_out[label] * factor)

    # Indirect call targets (ICP fodder, section 5.3), with the LBR
    # mispredict bits so ICP can target BTB-hostile call sites.
    for (f, t), (count, mispreds) in profile.branches.items():
        if f[0] != (source or func.name) or t[0] == f[0] or t[1] != 0:
            continue
        if not 0 <= f[1] < func.size:
            continue
        block = index.containing(f[1])
        if block is None:
            continue
        insn = _insn_at(block, func.address + f[1])
        if insn is not None and insn.is_call and insn.is_indirect:
            targets = insn.get_annotation("call-targets") or {}
            targets[t[0]] = targets.get(t[0], 0) + count
            insn.set_annotation("call-targets", targets)
            insn.set_annotation(
                "call-mispreds",
                (insn.get_annotation("call-mispreds") or 0) + mispreds)

    # Block counts via the trust-the-fall-through flow repair.
    trust = context.options.trust_fall_through
    layout = func.layout()
    for i, block in enumerate(layout):
        count = taken_in[block.label]
        if block.label == func.entry_label:
            count += func.exec_count
        if i > 0:
            prev = layout[i - 1]
            if prev.fallthrough_label == block.label:
                if trust:
                    surplus = max(0, prev.exec_count - taken_out[prev.label])
                else:
                    surplus = 0
                prev.edge_counts[block.label] = (
                    prev.edge_counts.get(block.label, 0) + surplus)
                count += surplus
        block.exec_count = count

    if totals is not None:
        totals.matched += matched
        totals.total += total
        totals.dropped += dropped
    func.profile_match = (matched / total) if total else None
    return func.profile_match


def _attach_nolbr(context, func, profile, source=None, totals=None):
    samples = profile.samples_within(source or func.name)
    index = _OffsetIndex(func)
    for block in func.blocks.values():
        block.exec_count = 0
    for offset, count in samples.items():
        if not 0 <= offset < func.size:
            if totals is not None:
                totals.dropped += count
            continue
        block = index.containing(offset)
        if block is not None:
            block.exec_count += count

    counts = {label: block.exec_count for label, block in func.blocks.items()}
    edges = []
    exits = []
    for label, block in func.blocks.items():
        for succ in block.successors:
            edges.append((label, succ))
        term = block.terminator()
        if (term is None and block.fallthrough_label is None) or (
                term is not None and (term.is_return or term.op.name in
                                      ("HALT", "TRAP", "JMP_MEM")
                                      or term.get_annotation("tailcall", "x") != "x")):
            exits.append(label)
    if not exits:
        exits = [label for label, b in func.blocks.items() if not b.successors]

    if context.options.use_mcf and edges:
        flows = min_cost_flow_edges(list(func.blocks), edges, counts,
                                    func.entry_label, exits or [func.entry_label])
    else:
        flows = _proportional_edges(func, counts)
    for (src, dst), flow in flows.items():
        func.blocks[src].edge_counts[dst] = flow
    func.profile_match = None
    return None


def _proportional_edges(func, counts):
    flows = {}
    for label, block in func.blocks.items():
        succs = block.successors
        if not succs:
            continue
        weights = [counts.get(s, 0) for s in succs]
        total = sum(weights)
        src = counts.get(label, 0)
        for succ, weight in zip(succs, weights):
            flows[(label, succ)] = (src * weight // total) if total else 0
    return flows


def _branch_at(block, address):
    for insn in block.insns:
        if insn.address == address and (insn.is_branch or insn.is_call
                                        or insn.is_return or
                                        insn.is_indirect_branch):
            return insn
    return None


def _insn_at(block, address):
    for insn in block.insns:
        if insn.address == address:
            return insn
    return None
