"""Attaching a sampled BinaryProfile to reconstructed CFGs.

Implements the paper's section 5.2 semantics:

* **LBR mode** — taken-branch records map directly onto CFG edges;
  fall-through counts are *inferred* by attributing each block's surplus
  out-flow to its not-taken successor ("BOLT satisfies the flow
  equation by attributing all surplus flow to the non-taken path ...
  trusting the original layout done by the static compiler").
* **non-LBR mode** — only per-address sample counts exist; block counts
  are summed samples and edge counts are recovered with min-cost flow
  (Levin/FDPR) or a proportional heuristic.

Each function is stamped with a profile-match score (the "Profile Acc"
of the paper's Figure 4 dump): the fraction of branch records that
landed on recognizable (branch-site, target) pairs.
"""

import bisect

from repro.profiling.mcf import min_cost_flow_edges


def attach_profile(context, profile):
    """Annotate every simple function; returns per-function match rates."""
    entry_counts = _function_entry_counts(profile)
    rates = {}
    for func in context.functions.values():
        func.exec_count = entry_counts.get(func.name, 0)
        if not func.is_simple:
            continue
        if profile.lbr:
            rates[func.name] = _attach_lbr(context, func, profile)
        else:
            rates[func.name] = _attach_nolbr(context, func, profile)
        func.has_profile = any(
            b.exec_count for b in func.blocks.values()) or func.exec_count > 0
    return rates


def _function_entry_counts(profile):
    counts = {}
    for (f, t), (count, _) in profile.branches.items():
        if t[1] == 0 and f[0] != t[0]:
            counts[t[0]] = counts.get(t[0], 0) + count
    if not counts:
        # non-LBR: approximate via samples at function entry blocks is
        # meaningless; use total samples as a hotness proxy instead.
        for (name, _), count in profile.ip_samples.items():
            counts[name] = counts.get(name, 0) + count
    return counts


class _OffsetIndex:
    """offset -> block containing it (blocks sorted by original offset)."""

    def __init__(self, func):
        blocks = sorted(func.blocks.values(), key=lambda b: b.offset)
        self.starts = [b.offset for b in blocks]
        self.blocks = blocks
        self.by_offset = {b.offset: b for b in blocks}

    def containing(self, offset):
        idx = bisect.bisect_right(self.starts, offset) - 1
        if idx < 0:
            return None
        return self.blocks[idx]

    def at(self, offset):
        return self.by_offset.get(offset)


def _attach_lbr(context, func, profile):
    index = _OffsetIndex(func)
    records = profile.branches_within(func.name)
    matched = total = 0

    # Reset profile annotations.
    for block in func.blocks.values():
        block.exec_count = 0
        for succ in block.successors:
            block.edge_counts[succ] = 0
            block.edge_mispreds[succ] = 0

    taken_in = {label: 0 for label in func.blocks}
    taken_out = {label: 0 for label in func.blocks}
    indirect_targets = {}

    for (from_off, to_off), (count, mispreds) in records.items():
        total += count
        from_block = index.containing(from_off)
        to_block = index.at(to_off)
        if from_block is None or to_block is None:
            continue
        branch = _branch_at(from_block, func.address + from_off)
        if branch is None:
            continue
        if to_block.label not in from_block.successors:
            continue
        from_block.edge_counts[to_block.label] = (
            from_block.edge_counts.get(to_block.label, 0) + count)
        from_block.edge_mispreds[to_block.label] = (
            from_block.edge_mispreds.get(to_block.label, 0) + mispreds)
        taken_in[to_block.label] += count
        taken_out[from_block.label] += count
        matched += count

    # Indirect call targets (ICP fodder, section 5.3), with the LBR
    # mispredict bits so ICP can target BTB-hostile call sites.
    for (f, t), (count, mispreds) in profile.branches.items():
        if f[0] != func.name or t[0] == func.name or t[1] != 0:
            continue
        block = index.containing(f[1])
        if block is None:
            continue
        insn = _insn_at(block, func.address + f[1])
        if insn is not None and insn.is_call and insn.is_indirect:
            targets = insn.get_annotation("call-targets") or {}
            targets[t[0]] = targets.get(t[0], 0) + count
            insn.set_annotation("call-targets", targets)
            insn.set_annotation(
                "call-mispreds",
                (insn.get_annotation("call-mispreds") or 0) + mispreds)

    # Block counts via the trust-the-fall-through flow repair.
    trust = context.options.trust_fall_through
    layout = func.layout()
    for i, block in enumerate(layout):
        count = taken_in[block.label]
        if block.label == func.entry_label:
            count += func.exec_count
        if i > 0:
            prev = layout[i - 1]
            if prev.fallthrough_label == block.label:
                if trust:
                    surplus = max(0, prev.exec_count - taken_out[prev.label])
                else:
                    surplus = 0
                prev.edge_counts[block.label] = (
                    prev.edge_counts.get(block.label, 0) + surplus)
                count += surplus
        block.exec_count = count

    func.profile_match = (matched / total) if total else None
    return func.profile_match


def _attach_nolbr(context, func, profile):
    samples = profile.samples_within(func.name)
    index = _OffsetIndex(func)
    for block in func.blocks.values():
        block.exec_count = 0
    for offset, count in samples.items():
        block = index.containing(offset)
        if block is not None:
            block.exec_count += count

    counts = {label: block.exec_count for label, block in func.blocks.items()}
    edges = []
    exits = []
    for label, block in func.blocks.items():
        for succ in block.successors:
            edges.append((label, succ))
        term = block.terminator()
        if (term is None and block.fallthrough_label is None) or (
                term is not None and (term.is_return or term.op.name in
                                      ("HALT", "TRAP", "JMP_MEM")
                                      or term.get_annotation("tailcall", "x") != "x")):
            exits.append(label)
    if not exits:
        exits = [label for label, b in func.blocks.items() if not b.successors]

    if context.options.use_mcf and edges:
        flows = min_cost_flow_edges(list(func.blocks), edges, counts,
                                    func.entry_label, exits or [func.entry_label])
    else:
        flows = _proportional_edges(func, counts)
    for (src, dst), flow in flows.items():
        func.blocks[src].edge_counts[dst] = flow
    func.profile_match = None
    return None


def _proportional_edges(func, counts):
    flows = {}
    for label, block in func.blocks.items():
        succs = block.successors
        if not succs:
            continue
        weights = [counts.get(s, 0) for s in succs]
        total = sum(weights)
        src = counts.get(label, 0)
        for succ, weight in zip(succs, weights):
            flows[(label, succ)] = (src * weight // total) if total else 0
    return flows


def _branch_at(block, address):
    for insn in block.insns:
        if insn.address == address and (insn.is_branch or insn.is_call
                                        or insn.is_return or
                                        insn.is_indirect_branch):
            return insn
    return None


def _insn_at(block, address):
    for insn in block.insns:
        if insn.address == address:
            return insn
    return None
