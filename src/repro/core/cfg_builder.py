"""Disassembly and CFG construction (paper Figure 3, middle stages).

Implements the conservative coverage strategy of section 3.1: any
function whose control flow cannot be reconstructed with full
confidence is marked *non-simple* and carried through byte-identical
(moved but never rewritten).  The chief sources of non-simplicity are
the same as the paper reports in section 6.4: indirect jumps that are
not recognizable jump-table dispatches — i.e. indirect tail calls.
"""

from repro.isa import Op, SymRef, decode_stream, DecodeError
from repro.core.binary_function import BinaryBasicBlock, JumpTable

#: Pseudo-symbol whose resolved address is 0 — used to keep absolute
#: branch targets (e.g. calls to PLT stubs) through re-emission.
ABS_SYMBOL = "__abs__"


def build_all_functions(context):
    """Disassemble + build CFGs for every discovered function."""
    # Address -> OBJECT symbol index (jump-table discovery).
    context._object_by_addr = {
        sym.value: sym for sym in context.object_symbols.values()
    }
    for func in context.functions.values():
        build_function_cfg(context, func)


def build_function_cfg(context, func):
    try:
        insns = decode_stream(func.raw_bytes, base_address=func.address)
    except DecodeError as exc:
        func.mark_non_simple(f"decode-error: {exc}")
        return func

    # Debug info annotation (read-debug-info stage).
    if context.binary.line_table is not None:
        for insn in insns:
            loc = context.line_for(insn.address)
            if loc is not None:
                insn.set_annotation("loc", loc)

    start, end = func.address, func.address + func.size

    # Symbolize function-pointer materializations via relocations first:
    # even functions that end up non-simple are *moved* in relocations
    # mode, so their ABS64 references must be re-targetable.
    if context.use_relocations:
        _symbolize_abs64(context, func, insns)

    # -- jump-table discovery ------------------------------------------------
    jump_tables = {}
    for index, insn in enumerate(insns):
        if insn.op != Op.JMP_REG:
            continue
        table = _match_jump_table(context, func, insns, index)
        if table is None:
            func.mark_non_simple("unresolved indirect jump (tail call?)")
            _build_syntactic_blocks(func, insns)
            return func
        jump_tables[index] = table

    # -- classify control transfers, collect leaders ---------------------------
    leaders = {start}
    for index, insn in enumerate(insns):
        if insn.is_branch and insn.target is not None:
            if start <= insn.target < end:
                leaders.add(insn.target)
                leaders.add(insn.address + insn.size)
            else:
                ok = _symbolize_external(context, func, insn, tail=True)
                if not ok:
                    _build_syntactic_blocks(func, insns)
                    return func
                leaders.add(insn.address + insn.size)
        elif insn.op == Op.CALL:
            if insn.target == func.address or not (start <= insn.target < end):
                ok = _symbolize_external(context, func, insn, tail=False)
                if not ok:
                    _build_syntactic_blocks(func, insns)
                    return func
            else:
                func.mark_non_simple("call into function body")
                _build_syntactic_blocks(func, insns)
                return func
        elif insn.is_terminator:
            leaders.add(insn.address + insn.size)
        if index in jump_tables:
            for target in jump_tables[index].entries:  # absolute targets
                leaders.add(target)

    # Landing pads are leaders.
    record = func.frame_record
    if record is not None:
        for cs in record.callsites:
            leaders.add(func.address + cs.landing_pad)

    leaders.discard(end)
    bad = [l for l in leaders if not start <= l < end]
    if bad:
        func.mark_non_simple(f"branch target outside body: {bad[0]:#x}")
        _build_syntactic_blocks(func, insns)
        return func

    # -- label assignment --------------------------------------------------------
    lp_offsets = set()
    if record is not None:
        lp_offsets = {cs.landing_pad for cs in record.callsites}
    branch_targets = set()
    for index, insn in enumerate(insns):
        if insn.is_branch and insn.target is not None and start <= insn.target < end:
            branch_targets.add(insn.target)
        if index in jump_tables:
            branch_targets.update(jump_tables[index].entries)

    labels = {}
    tmp = ft = lp = 0
    for addr in sorted(leaders):
        offset = addr - start
        if addr == start:
            labels[addr] = ".LBB0"
        elif offset in lp_offsets:
            labels[addr] = f".LLP{lp}"
            lp += 1
        elif addr in branch_targets:
            labels[addr] = f".Ltmp{tmp}"
            tmp += 1
        else:
            labels[addr] = f".LFT{ft}"
            ft += 1

    # -- block construction ----------------------------------------------------------
    func.blocks = {}
    func.entry_label = None
    current = None
    sorted_leaders = sorted(leaders)
    strip_nops = context.options.strip_nops
    for index, insn in enumerate(insns):
        if insn.address in labels:
            current = BinaryBasicBlock(labels[insn.address],
                                       offset=insn.address - start)
            current.is_landing_pad = (insn.address - start) in lp_offsets
            func.add_block(current)
        if strip_nops and insn.is_nop:
            continue
        if index in jump_tables:
            table = jump_tables[index]
            table.entries = [labels[t] for t in table.entries]
            insn.set_annotation("jump-table", table)
            func.jump_tables.append(table)
        current.insns.append(insn)

    # -- successor edges ----------------------------------------------------------------
    order = list(func.blocks.values())
    for i, block in enumerate(order):
        next_label = order[i + 1].label if i + 1 < len(order) else None
        _connect_block(func, block, labels, start, end, next_label)

    # -- landing-pad edges ----------------------------------------------------------------
    if record is not None:
        for block in func.blocks.values():
            for insn in block.insns:
                if insn.is_call:
                    lp_off = record.landing_pad_for(insn.address - start)
                    if lp_off is not None:
                        lp_label = labels[start + lp_off]
                        insn.set_annotation("lp", lp_label)
                        if lp_label not in block.landing_pads:
                            block.landing_pads.append(lp_label)
    return func


def demote_to_raw(context, func, reason):
    """Reset a function to the conservative byte-identical state.

    Used by per-function error containment: when an optimization pass
    blows up on (or corrupts) a function mid-pipeline, the function is
    demoted exactly as if CFG reconstruction had never trusted it —
    original bytes emitted verbatim, external transfers re-symbolized
    so the body stays correct even if relocations mode moves it.
    """
    func.mark_non_simple(reason)
    func.jump_tables = []
    func.is_cold_fragment = False
    func.analysis_facts = {}
    record = context.binary.frame_records.get(func.name)
    func.frame_record = record.copy() if record is not None else None
    func.blocks = {}
    func.entry_label = None
    try:
        insns = decode_stream(func.raw_bytes, base_address=func.address)
    except DecodeError:
        _build_syntactic_blocks(func, [])
        func.simple_violation = reason
        return func
    if context.use_relocations:
        _symbolize_abs64(context, func, insns)
    start, end = func.address, func.address + func.size
    for insn in insns:
        if insn.target is None:
            continue
        if insn.is_branch and not start <= insn.target < end:
            _symbolize_external(context, func, insn, tail=True)
        elif insn.op == Op.CALL and (insn.target == func.address
                                     or not start <= insn.target < end):
            _symbolize_external(context, func, insn, tail=False)
    _build_syntactic_blocks(func, insns)
    # _symbolize_external may have overwritten the reason; the
    # containment reason is the one worth reporting.
    func.simple_violation = reason
    return func


def _match_jump_table(context, func, insns, index):
    """Recognize MOV_RI32 base, table; LOADIDX r, base, idx; JMP_REG r."""
    if index < 2:
        return None
    jmp = insns[index]
    loadidx = insns[index - 1]
    mov = insns[index - 2]
    if loadidx.op != Op.LOADIDX or loadidx.regs[0] != jmp.regs[0]:
        return None
    if mov.op != Op.MOV_RI32 or mov.regs[0] != loadidx.regs[1]:
        return None
    table_addr = mov.imm
    sym = context._object_by_addr.get(table_addr)
    section = context.section_at(table_addr) if sym is None else None
    if sym is not None:
        count = sym.size // 8
    else:
        # Heuristic fallback: read entries while they land in the body.
        if section is None or section.is_exec:
            return None
        count = 0
        while section.contains(table_addr + 8 * count + 7):
            word = context.read_word(table_addr + 8 * count)
            if not func.address <= word < func.address + func.size:
                break
            count += 1
            if count > 4096:
                return None
        if count == 0:
            return None
    entries = []
    for i in range(count):
        word = context.read_word(table_addr + 8 * i)
        if not func.address <= word < func.address + func.size:
            return None
        entries.append(word)
    section = context.section_at(table_addr)
    return JumpTable(table_addr, 8 * count, entries,
                     section.name if section else ".rodata")


def _symbolize_external(context, func, insn, tail):
    """Convert an out-of-function branch/call target to a symbol."""
    target = insn.target
    entry = context.function_entry_at(target)
    if entry is not None:
        insn.sym = SymRef(entry.link_name(), "branch")
        insn.target = None
        if tail:
            insn.set_annotation("tailcall", entry.link_name())
        return True
    if context.is_plt_stub(target):
        got_addr, final = context.plt_map[target]
        insn.sym = SymRef(ABS_SYMBOL, "branch", addend=target)
        insn.target = None
        insn.set_annotation("plt", (got_addr, final))
        if tail:
            insn.set_annotation("tailcall", None)
        return True
    func.mark_non_simple(f"transfer to unknown target {target:#x}")
    return False


def _symbolize_abs64(context, func, insns):
    """Use --emit-relocs info to symbolize MOV_RI64 function pointers."""
    section = context.binary.get_section(func.section)
    for insn in insns:
        if insn.op != Op.MOV_RI64:
            continue
        offset = insn.address - section.addr + 2
        reloc = context.reloc_at.get((func.section, offset))
        if reloc is not None:
            insn.sym = SymRef(reloc.symbol, "abs64", addend=reloc.addend)


def _connect_block(func, block, labels, start, end, next_label):
    # A block may end [jcc, jmp]: the conditional's taken edge plus the
    # unconditional's target are both successors, and there is no
    # physical fall-through.
    if (len(block.insns) >= 2 and block.insns[-2].is_cond_branch
            and block.insns[-2].target is not None):
        jcc = block.insns[-2]
        jcc.label = labels[jcc.target]
        jcc.target = None
        block.set_edge(jcc.label)

    term = block.terminator()
    if term is None:
        if next_label is not None:
            block.fallthrough_label = next_label
            block.set_edge(next_label)
        return
    op = term.op
    if term.is_cond_branch:
        if term.target is not None:
            term.label = labels[term.target]
            term.target = None
            block.set_edge(term.label)
        if next_label is not None:
            block.fallthrough_label = next_label
            block.set_edge(next_label)
    elif op in (Op.JMP_SHORT, Op.JMP_NEAR):
        if term.sym is not None:
            return  # tail call: no intra successors
        if term.label is None:
            term.label = labels[term.target]
            term.target = None
        block.set_edge(term.label)
    elif op == Op.JMP_REG:
        table = term.get_annotation("jump-table")
        for label in table.entries:
            if label not in block.successors:
                block.set_edge(label)
    elif term.is_return or op in (Op.HALT, Op.TRAP, Op.JMP_MEM):
        return
    elif term.is_call:
        # A call is not a terminator; it only ends the block when it is
        # the last instruction before a leader — fall through.
        if next_label is not None:
            block.fallthrough_label = next_label
            block.set_edge(next_label)


def _build_syntactic_blocks(func, insns):
    """Layout for non-simple functions: byte-identical single block."""
    func.blocks = {}
    func.entry_label = None
    block = BinaryBasicBlock(".LBB0", offset=0)
    block.insns = insns
    func.add_block(block)
