"""Basic-block layout algorithms for reorder-bbs (paper Table 1 pass 9).

Two profile-guided algorithms, matching BOLT's ``-reorder-blocks``
modes used in the paper's evaluation:

* ``cache`` — Pettis & Hansen bottom-up chaining (the classic).
* ``cache+`` — an ext-TSP-style score maximizer (the improved layout
  credited to Sergey Pupyrev in the paper's acknowledgments): chains
  are merged greedily by the gain in a locality score that rewards
  fall-throughs fully and short jumps partially.

Both operate on the hot sub-CFG; cold blocks keep their relative order
and are appended at the end (to be split off by ``split-functions``).
"""

# ext-TSP-style distance weights.
_FALLTHROUGH_WEIGHT = 1.0
_FORWARD_WEIGHT = 0.1
_BACKWARD_WEIGHT = 0.1
_FORWARD_DISTANCE = 1024
_BACKWARD_DISTANCE = 640


def order_blocks(func, algorithm, hot_threshold=1):
    """Compute a new layout (list of labels) for a simple function."""
    labels = list(func.blocks)
    if algorithm == "none" or len(labels) <= 2:
        return labels
    if algorithm == "reverse":
        return [labels[0]] + list(reversed(labels[1:]))

    hot = [l for l in labels
           if func.blocks[l].exec_count >= hot_threshold or l == func.entry_label]
    cold = [l for l in labels if l not in set(hot)]
    if algorithm == "cache":
        ordered_hot = _pettis_hansen(func, hot)
    elif algorithm == "cache+":
        ordered_hot = _ext_tsp(func, hot)
    else:
        raise ValueError(f"unknown block layout algorithm {algorithm!r}")
    return ordered_hot + cold


def _edges_between(func, labels):
    allowed = set(labels)
    edges = []
    for label in labels:
        block = func.blocks[label]
        for succ, count in block.edge_counts.items():
            if succ in allowed and count > 0 and succ != func.entry_label:
                edges.append(((label, succ), count))
    edges.sort(key=lambda e: (-e[1], e[0]))
    return edges


def _pettis_hansen(func, labels):
    """Bottom-up chaining along the heaviest edges."""
    chains = {label: [label] for label in labels}
    chain_of = {label: label for label in labels}
    for (src, dst), count in _edges_between(func, labels):
        a, b = chain_of[src], chain_of[dst]
        if a == b:
            continue
        if chains[a][-1] != src or chains[b][0] != dst:
            continue
        chains[a].extend(chains[b])
        for label in chains[b]:
            chain_of[label] = a
        del chains[b]

    entry_chain = chain_of[func.entry_label]

    def weight(chain_id):
        return max(func.blocks[l].exec_count for l in chains[chain_id])

    rest = sorted((cid for cid in chains if cid != entry_chain),
                  key=lambda cid: (-weight(cid), chains[cid][0]))
    order = list(chains[entry_chain])
    for cid in rest:
        order.extend(chains[cid])
    return order


def _ext_tsp(func, labels):
    """Greedy chain merging maximizing the ext-TSP locality score."""
    allowed = set(labels)
    sizes = {l: max(1, func.blocks[l].size) for l in labels}
    edges = {}
    for label in labels:
        block = func.blocks[label]
        for succ, count in block.edge_counts.items():
            if succ in allowed and count > 0:
                edges[(label, succ)] = edges.get((label, succ), 0) + count

    chains = {i: [l] for i, l in enumerate(labels)}
    chain_of = {l: i for i, l in enumerate(labels)}
    entry_chain = chain_of[func.entry_label]

    def chain_score(seq):
        """Score of intra-chain edges given a concrete order."""
        pos = {}
        offset = 0
        for label in seq:
            pos[label] = offset
            offset += sizes[label]
        score = 0.0
        for (src, dst), count in edges.items():
            if src not in pos or dst not in pos:
                continue
            src_end = pos[src] + sizes[src]
            dist = pos[dst] - src_end
            if dist == 0:
                score += count * _FALLTHROUGH_WEIGHT
            elif 0 < dist <= _FORWARD_DISTANCE:
                score += count * _FORWARD_WEIGHT * (1 - dist / _FORWARD_DISTANCE)
            elif -_BACKWARD_DISTANCE <= dist < 0:
                score += count * _BACKWARD_WEIGHT * (1 + dist / _BACKWARD_DISTANCE)
        return score

    current_scores = {cid: chain_score(seq) for cid, seq in chains.items()}

    def cross_weight(a, b):
        """Total edge weight between two chains (any direction)."""
        total = 0
        for (src, dst), count in edges.items():
            if (chain_of[src] == a and chain_of[dst] == b) or (
                    chain_of[src] == b and chain_of[dst] == a):
                total += count
        return total

    while len(chains) > 1:
        best = None
        chain_ids = list(chains)
        for i, a in enumerate(chain_ids):
            for b in chain_ids[i + 1 :]:
                if cross_weight(a, b) == 0:
                    continue
                candidates = [chains[a] + chains[b], chains[b] + chains[a]]
                for seq in candidates:
                    # The entry block can never move off the front.
                    if entry_chain in (a, b) and seq[0] != func.entry_label:
                        continue
                    gain = chain_score(seq) - current_scores[a] - current_scores[b]
                    if best is None or gain > best[0]:
                        best = (gain, a, b, seq)
        if best is None or best[0] <= 0:
            break
        _, a, b, seq = best
        chains[a] = seq
        current_scores[a] = chain_score(seq)
        for label in chains[b]:
            chain_of[label] = a
        if b == entry_chain:
            entry_chain = a
        del chains[b]
        del current_scores[b]

    def weight(cid):
        return max(func.blocks[l].exec_count for l in chains[cid])

    rest = sorted((cid for cid in chains if cid != entry_chain),
                  key=lambda cid: (-weight(cid), chains[cid][0]))
    order = list(chains[entry_chain])
    for cid in rest:
        order.extend(chains[cid])
    return order
