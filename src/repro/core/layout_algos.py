"""Basic-block layout algorithms for reorder-bbs (paper Table 1 pass 9).

Two profile-guided algorithms, matching BOLT's ``-reorder-blocks``
modes used in the paper's evaluation:

* ``cache`` — Pettis & Hansen bottom-up chaining (the classic).
* ``cache+`` — an ext-TSP-style score maximizer (the improved layout
  credited to Sergey Pupyrev in the paper's acknowledgments): chains
  are merged greedily by the gain in a locality score that rewards
  fall-throughs fully and short jumps partially.

Both operate on the hot sub-CFG; cold blocks keep their relative order
and are appended at the end (to be split off by ``split-functions``).

The ext-TSP merge loop keeps per-chain edge lists and an incrementally
maintained inter-chain weight map, so candidate scoring touches only
the two chains' own edges instead of rescanning the whole function's
edge set per chain pair (the pre-PR kernels did the latter; they are
preserved in :mod:`repro.core._reference_kernels` and the fast path is
tested to produce identical layouts).  Per-chain edge lists are kept in
global edge-insertion order and merged like sorted runs, so the
floating-point score accumulates in exactly the reference's order.
"""

# ext-TSP-style distance weights.
_FALLTHROUGH_WEIGHT = 1.0
_FORWARD_WEIGHT = 0.1
_BACKWARD_WEIGHT = 0.1
_FORWARD_DISTANCE = 1024
_BACKWARD_DISTANCE = 640


def order_blocks(func, algorithm, hot_threshold=1):
    """Compute a new layout (list of labels) for a simple function."""
    labels = list(func.blocks)
    if algorithm == "none" or len(labels) <= 2:
        return labels
    if algorithm == "reverse":
        return [labels[0]] + list(reversed(labels[1:]))

    hot = [l for l in labels
           if func.blocks[l].exec_count >= hot_threshold or l == func.entry_label]
    hot_set = set(hot)
    cold = [l for l in labels if l not in hot_set]
    if algorithm == "cache":
        ordered_hot = _pettis_hansen(func, hot)
    elif algorithm == "cache+":
        ordered_hot = _ext_tsp(func, hot)
    else:
        raise ValueError(f"unknown block layout algorithm {algorithm!r}")
    return ordered_hot + cold


def _edges_between(func, labels):
    allowed = set(labels)
    edges = []
    for label in labels:
        block = func.blocks[label]
        for succ, count in block.edge_counts.items():
            if succ in allowed and count > 0 and succ != func.entry_label:
                edges.append(((label, succ), count))
    edges.sort(key=lambda e: (-e[1], e[0]))
    return edges


def _pettis_hansen(func, labels):
    """Bottom-up chaining along the heaviest edges."""
    chains = {label: [label] for label in labels}
    chain_of = {label: label for label in labels}
    for (src, dst), count in _edges_between(func, labels):
        a, b = chain_of[src], chain_of[dst]
        if a == b:
            continue
        if chains[a][-1] != src or chains[b][0] != dst:
            continue
        chains[a].extend(chains[b])
        for label in chains[b]:
            chain_of[label] = a
        del chains[b]

    entry_chain = chain_of[func.entry_label]

    def weight(chain_id):
        return max(func.blocks[l].exec_count for l in chains[chain_id])

    rest = sorted((cid for cid in chains if cid != entry_chain),
                  key=lambda cid: (-weight(cid), chains[cid][0]))
    order = list(chains[entry_chain])
    for cid in rest:
        order.extend(chains[cid])
    return order


def _merge_runs(left, right):
    """Merge two ascending edge-index runs, preserving global order."""
    out = []
    i = j = 0
    nl, nr = len(left), len(right)
    while i < nl and j < nr:
        if left[i] < right[j]:
            out.append(left[i])
            i += 1
        else:
            out.append(right[j])
            j += 1
    out.extend(left[i:])
    out.extend(right[j:])
    return out


def _ext_tsp(func, labels):
    """Greedy chain merging maximizing the ext-TSP locality score."""
    allowed = set(labels)
    sizes = {l: max(1, func.blocks[l].size) for l in labels}
    edges = {}
    for label in labels:
        block = func.blocks[label]
        for succ, count in block.edge_counts.items():
            if succ in allowed and count > 0:
                edges[(label, succ)] = edges.get((label, succ), 0) + count
    # Frozen edge list in dict-insertion order; per-chain lists hold
    # indices into it so merged chains still sum scores in this order.
    edge_list = [(src, dst, count) for (src, dst), count in edges.items()]

    chains = {i: [l] for i, l in enumerate(labels)}
    chain_of = {l: i for i, l in enumerate(labels)}
    entry_chain = chain_of[func.entry_label]

    src_edges = {cid: [] for cid in chains}
    for idx, (src, dst, count) in enumerate(edge_list):
        src_edges[chain_of[src]].append(idx)

    def chain_score(seq, edge_indices):
        """Score of intra-chain edges given a concrete order.

        ``edge_indices`` lists (in global insertion order) every edge
        whose source lies in ``seq``; edges leaving the chain score 0.
        """
        pos = {}
        offset = 0
        for label in seq:
            pos[label] = offset
            offset += sizes[label]
        score = 0.0
        for idx in edge_indices:
            src, dst, count = edge_list[idx]
            if dst not in pos:
                continue
            src_end = pos[src] + sizes[src]
            dist = pos[dst] - src_end
            if dist == 0:
                score += count * _FALLTHROUGH_WEIGHT
            elif 0 < dist <= _FORWARD_DISTANCE:
                score += count * _FORWARD_WEIGHT * (1 - dist / _FORWARD_DISTANCE)
            elif -_BACKWARD_DISTANCE <= dist < 0:
                score += count * _BACKWARD_WEIGHT * (1 + dist / _BACKWARD_DISTANCE)
        return score

    current_scores = {cid: chain_score(seq, src_edges[cid])
                      for cid, seq in chains.items()}

    # Inter-chain weight map (both directions folded) and neighbor sets,
    # maintained incrementally across merges.  Pair keys are (lo, hi).
    cross = {}
    neighbors = {cid: set() for cid in chains}
    for src, dst, count in edge_list:
        a, b = chain_of[src], chain_of[dst]
        if a == b:
            continue
        pair = (a, b) if a < b else (b, a)
        cross[pair] = cross.get(pair, 0) + count
        neighbors[a].add(b)
        neighbors[b].add(a)

    # Best (gain, seq) per connected pair, dropped when either side
    # changes.  Values are identical to recomputation, so caching does
    # not disturb the reference's first-strict-max tie-breaking.
    gain_cache = {}

    def pair_best(a, b):
        merged_edges = None
        best = None
        for seq in (chains[a] + chains[b], chains[b] + chains[a]):
            # The entry block can never move off the front.
            if entry_chain in (a, b) and seq[0] != func.entry_label:
                continue
            if merged_edges is None:
                merged_edges = _merge_runs(src_edges[a], src_edges[b])
            gain = (chain_score(seq, merged_edges)
                    - current_scores[a] - current_scores[b])
            if best is None or gain > best[0]:
                best = (gain, seq)
        return best

    while len(chains) > 1:
        best = None
        chain_ids = list(chains)
        for i, a in enumerate(chain_ids):
            for b in chain_ids[i + 1 :]:
                if (a, b) not in cross:
                    continue
                cached = gain_cache.get((a, b), False)
                if cached is False:
                    cached = gain_cache[(a, b)] = pair_best(a, b)
                if cached is None:
                    continue
                gain, seq = cached
                if best is None or gain > best[0]:
                    best = (gain, a, b, seq)
        if best is None or best[0] <= 0:
            break
        _, a, b, seq = best
        chains[a] = seq
        src_edges[a] = _merge_runs(src_edges[a], src_edges[b])
        current_scores[a] = chain_score(seq, src_edges[a])
        for label in chains[b]:
            chain_of[label] = a
        if b == entry_chain:
            entry_chain = a
        del chains[b]
        del current_scores[b]
        del src_edges[b]
        # Fold b's cross weights into a's; drop stale cached gains.
        cross.pop((a, b) if a < b else (b, a), None)
        neighbors[a].discard(b)
        for n in neighbors.pop(b):
            if n == a:
                continue
            old = cross.pop((b, n) if b < n else (n, b))
            pair = (a, n) if a < n else (n, a)
            cross[pair] = cross.get(pair, 0) + old
            neighbors[n].discard(b)
            neighbors[n].add(a)
            neighbors[a].add(n)
        for key in [k for k in gain_cache if a in k or b in k]:
            del gain_cache[key]

    def weight(cid):
        return max(func.blocks[l].exec_count for l in chains[cid])

    rest = sorted((cid for cid in chains if cid != entry_chain),
                  key=lambda cid: (-weight(cid), chains[cid][0]))
    order = list(chains[entry_chain])
    for cid in rest:
        order.extend(chains[cid])
    return order
