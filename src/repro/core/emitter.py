"""Emit-and-link-functions stage (paper Figure 3): turn optimized CFGs
back into machine code fragments with relocations.

Reuses the backend assembler (branch relaxation, alignment) and plays
the role of LLVM's runtime dynamic linker in real BOLT: cross-fragment
references (hot part <-> split cold part) are kept symbolic and
resolved once every fragment has an address.
"""

from repro.codegen.emitter import assemble_function
from repro.codegen.machine import MachineBlock, MachineFunction
from repro.isa import Op, SymRef

COLD_SUFFIX = ".cold.0"


class Fragment:
    """One assembled piece of a function (hot part, cold part, or a
    byte-identical non-simple body)."""

    def __init__(self, name, func, image, is_cold=False, raw=False):
        self.name = name
        self.func = func          # owning BinaryFunction
        self.image = image        # codegen FunctionImage
        self.is_cold = is_cold
        self.raw = raw
        self.address = None

    @property
    def size(self):
        return len(self.image.code)


class _RawImage:
    """FunctionImage-alike for non-simple functions kept byte-identical."""

    def __init__(self, code):
        self.code = code
        self.relocations = []
        self.labels = {}
        self.line_rows = []
        self.callsites = []


def emit_function(func, options):
    """Assemble a function into one or two fragments."""
    if not func.is_simple:
        return [_emit_raw(func)]

    hot_blocks = [b for b in func.layout() if not b.is_cold]
    cold_blocks = [b for b in func.layout() if b.is_cold]
    if not cold_blocks:
        return [_emit_fragment(func, func.name, hot_blocks, options,
                               is_cold=False)]
    return [
        _emit_fragment(func, func.name, hot_blocks, options, is_cold=False,
                       other=(func.name + COLD_SUFFIX, cold_blocks)),
        _emit_fragment(func, func.name + COLD_SUFFIX, cold_blocks, options,
                       is_cold=True, other=(func.name, hot_blocks)),
    ]


def _emit_raw(func):
    """Byte-identical emission for non-simple functions.

    External control transfers were symbolized at disassembly; they are
    re-emitted as relocations against the new addresses.  Everything
    else keeps its original bytes (so intra-function offsets — which
    unresolved indirect jumps may depend on — are preserved).
    """
    image = _RawImage(func.raw_bytes)
    block = next(iter(func.blocks.values()), None)
    insns = block.insns if block is not None else []
    for insn in insns:
        if insn.sym is None:
            continue
        offset = insn.address - func.address
        if insn.op in (Op.CALL, Op.JMP_NEAR):
            image.relocations.append(
                (offset + 1, "pc32", insn.sym.name, insn.sym.addend))
        elif insn.op == Op.JCC_LONG:
            image.relocations.append(
                (offset + 2, "pc32", insn.sym.name, insn.sym.addend))
        elif insn.op == Op.MOV_RI64:
            image.relocations.append(
                (offset + 2, "abs64", insn.sym.name, insn.sym.addend))
    fragment = Fragment(func.name, func, image, raw=True)
    return fragment


def _emit_fragment(func, name, blocks, options, is_cold, other=None):
    """Assemble a subset of a function's blocks as one fragment."""
    other_name = other[0] if other else None
    other_labels = {b.label for b in other[1]} if other else set()

    mf = MachineFunction(func.name, name)
    for block in blocks:
        mblock = MachineBlock(block.label)
        mblock.align = block.alignment
        mblock.is_landing_pad = block.is_landing_pad
        mblock.count = block.exec_count
        for insn in block.insns:
            # Cross-fragment branches become symbolic with a
            # label-addend placeholder, resolved after placement.
            if insn.label is not None and insn.label in other_labels:
                insn = insn.copy()
                insn.sym = SymRef(other_name, "branch", addend=("label", insn.label))
                insn.label = None
                if insn.op == Op.JMP_SHORT:
                    insn.op = Op.JMP_NEAR
                    insn.size = 5
                elif insn.op == Op.JCC_SHORT:
                    insn.op = Op.JCC_LONG
                    insn.size = 6
            lp = insn.get_annotation("lp")
            if lp is not None and lp in other_labels:
                insn = insn.copy() if insn.label is not None else insn
                insn.set_annotation("lp", None)
                insn.set_annotation("lp-extern", (other_name, lp))
            mblock.insns.append(insn)
        mf.blocks.append(mblock)

    # fixup-branches already normalized terminators; keep them verbatim.
    image = assemble_function(mf, normalize=False)

    # Cross-fragment landing pads: collect for post-placement fixup.
    extern_callsites = []
    for offset, insn in image.insn_offsets:
        ext = insn.get_annotation("lp-extern")
        if ext is not None:
            extern_callsites.append((offset, offset + insn.size) + ext)
    fragment = Fragment(name, func, image, is_cold=is_cold)
    fragment.extern_callsites = extern_callsites
    return fragment
