"""Pre-PR reference implementations of the hot ordering kernels.

These are byte-for-byte the algorithms the pipeline shipped with before
the performance layer landed: the quadratic ``callers_of`` arc scan
behind HFSort, the cubic ``arc_weight`` rescans of HFSort+, the
full-edge-set ``cross_weight``/``chain_score`` recomputation inside
ext-TSP's O(chains^2) merge loop, the ``copy.deepcopy``-based
per-function snapshot, and the rebuild-the-key-list-per-query line
table lookup.

They are kept for two reasons:

* **Equivalence oracle** — the rewritten fast kernels must produce
  *identical* orders; ``tests/test_hfsort.py`` checks them against
  these on randomized graphs (hypothesis).
* **Benchmark baseline** — ``benchmarks/test_processing_time.py``
  measures the fast kernels (and the end-to-end pipeline) against
  these to produce the ``BENCH_pr3.json`` trajectory, reproducing the
  paper's processing-time claims (section 6.6).

Nothing in the pipeline itself may import this module.
"""

import copy

from repro.core.hfsort import _Cluster

# ext-TSP distance weights (must mirror layout_algos).
_FALLTHROUGH_WEIGHT = 1.0
_FORWARD_WEIGHT = 0.1
_BACKWARD_WEIGHT = 0.1
_FORWARD_DISTANCE = 1024
_BACKWARD_DISTANCE = 640


# ---------------------------------------------------------------------------
# HFSort / HFSort+ (pre-PR: per-query arc scans)
# ---------------------------------------------------------------------------


def callers_of_reference(graph, callee):
    """O(arcs) scan per query — made ``hfsort`` quadratic overall."""
    return {a: w for (a, b), w in graph.arcs.items() if b == callee}


def hfsort_reference(graph, merge_cap=4096 * 8):
    hot = [f for f, w in graph.weights.items() if w > 0]
    cold = [f for f, w in graph.weights.items() if w <= 0]
    clusters = {f: _Cluster(f, graph.sizes[f], graph.weights[f]) for f in hot}
    cluster_of = {f: f for f in hot}

    for func in sorted(hot, key=lambda f: (-graph.weights[f], f)):
        callers = {
            caller: weight
            for caller, weight in callers_of_reference(graph, func).items()
            if caller in cluster_of
        }
        if not callers:
            continue
        best_caller = max(sorted(callers), key=lambda c: callers[c])
        src = cluster_of[func]
        dst = cluster_of[best_caller]
        if src == dst:
            continue
        if clusters[src].funcs[0] != func:
            continue
        if clusters[dst].size + clusters[src].size > merge_cap:
            continue
        clusters[dst].merge(clusters[src])
        for moved in clusters[src].funcs:
            cluster_of[moved] = dst
        del clusters[src]

    ordered = sorted(clusters.values(), key=lambda c: (-c.density, c.funcs[0]))
    out = []
    for cluster in ordered:
        out.extend(cluster.funcs)
    out.extend(cold)
    return out


def hfsort_plus_reference(graph, merge_cap=4096 * 8, page_size=4096):
    base_order = hfsort_reference(graph, merge_cap)
    hot = {f for f, w in graph.weights.items() if w > 0}
    clusters = []
    for func in base_order:
        if func not in hot:
            continue
        clusters.append(_Cluster(func, graph.sizes[func], graph.weights[func]))

    def arc_weight(c1, c2):
        # O(arcs) per cluster pair per merge iteration: cubic overall.
        s1, s2 = set(c1.funcs), set(c2.funcs)
        total = 0
        for (a, b), w in graph.arcs.items():
            if (a in s1 and b in s2) or (a in s2 and b in s1):
                total += w
        return total

    improved = True
    while improved and len(clusters) > 1:
        improved = False
        best = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                weight = arc_weight(clusters[i], clusters[j])
                if weight == 0:
                    continue
                merged_size = clusters[i].size + clusters[j].size
                if merged_size > merge_cap * 2:
                    continue
                pages = max(1, (merged_size + page_size - 1) // page_size)
                gain = weight / pages
                if best is None or gain > best[0]:
                    best = (gain, i, j)
        if best is not None:
            _, i, j = best
            clusters[i].merge(clusters[j])
            del clusters[j]
            improved = True

    clusters.sort(key=lambda c: (-c.density, c.funcs[0]))
    out = []
    for cluster in clusters:
        out.extend(cluster.funcs)
    out.extend(f for f in base_order if f not in hot)
    return out


# ---------------------------------------------------------------------------
# ext-TSP block layout (pre-PR: full edge-set rescans per candidate)
# ---------------------------------------------------------------------------


def order_blocks_reference(func, algorithm, hot_threshold=1):
    """Pre-PR ``order_blocks`` for the scoring algorithms (cache/cache+)."""
    from repro.core.layout_algos import _pettis_hansen

    labels = list(func.blocks)
    if algorithm == "none" or len(labels) <= 2:
        return labels
    if algorithm == "reverse":
        return [labels[0]] + list(reversed(labels[1:]))

    hot = [l for l in labels
           if func.blocks[l].exec_count >= hot_threshold
           or l == func.entry_label]
    cold = [l for l in labels if l not in set(hot)]
    if algorithm == "cache":
        ordered_hot = _pettis_hansen(func, hot)
    elif algorithm == "cache+":
        ordered_hot = ext_tsp_reference(func, hot)
    else:
        raise ValueError(f"unknown block layout algorithm {algorithm!r}")
    return ordered_hot + cold


def ext_tsp_reference(func, labels):
    allowed = set(labels)
    sizes = {l: max(1, func.blocks[l].size) for l in labels}
    edges = {}
    for label in labels:
        block = func.blocks[label]
        for succ, count in block.edge_counts.items():
            if succ in allowed and count > 0:
                edges[(label, succ)] = edges.get((label, succ), 0) + count

    chains = {i: [l] for i, l in enumerate(labels)}
    chain_of = {l: i for i, l in enumerate(labels)}
    entry_chain = chain_of[func.entry_label]

    def chain_score(seq):
        # Scans every edge of the function per call.
        pos = {}
        offset = 0
        for label in seq:
            pos[label] = offset
            offset += sizes[label]
        score = 0.0
        for (src, dst), count in edges.items():
            if src not in pos or dst not in pos:
                continue
            src_end = pos[src] + sizes[src]
            dist = pos[dst] - src_end
            if dist == 0:
                score += count * _FALLTHROUGH_WEIGHT
            elif 0 < dist <= _FORWARD_DISTANCE:
                score += count * _FORWARD_WEIGHT * (1 - dist / _FORWARD_DISTANCE)
            elif -_BACKWARD_DISTANCE <= dist < 0:
                score += count * _BACKWARD_WEIGHT * (1 + dist / _BACKWARD_DISTANCE)
        return score

    current_scores = {cid: chain_score(seq) for cid, seq in chains.items()}

    def cross_weight(a, b):
        # Scans every edge of the function per chain pair.
        total = 0
        for (src, dst), count in edges.items():
            if (chain_of[src] == a and chain_of[dst] == b) or (
                    chain_of[src] == b and chain_of[dst] == a):
                total += count
        return total

    while len(chains) > 1:
        best = None
        chain_ids = list(chains)
        for i, a in enumerate(chain_ids):
            for b in chain_ids[i + 1 :]:
                if cross_weight(a, b) == 0:
                    continue
                candidates = [chains[a] + chains[b], chains[b] + chains[a]]
                for seq in candidates:
                    if entry_chain in (a, b) and seq[0] != func.entry_label:
                        continue
                    gain = chain_score(seq) - current_scores[a] - current_scores[b]
                    if best is None or gain > best[0]:
                        best = (gain, a, b, seq)
        if best is None or best[0] <= 0:
            break
        _, a, b, seq = best
        chains[a] = seq
        current_scores[a] = chain_score(seq)
        for label in chains[b]:
            chain_of[label] = a
        if b == entry_chain:
            entry_chain = a
        del chains[b]
        del current_scores[b]

    def weight(cid):
        return max(func.blocks[l].exec_count for l in chains[cid])

    rest = sorted((cid for cid in chains if cid != entry_chain),
                  key=lambda cid: (-weight(cid), chains[cid][0]))
    order = list(chains[entry_chain])
    for cid in rest:
        order.extend(chains[cid])
    return order


# ---------------------------------------------------------------------------
# Pass-manager snapshot + line-table lookup (pre-PR)
# ---------------------------------------------------------------------------


def snapshot_function_deepcopy(func):
    """Generic ``copy.deepcopy`` snapshot — dominated rewrite wall time."""
    return copy.deepcopy(func)


def linetable_lookup_reference(table, addr):
    """Rebuilds the bisect key list on every query."""
    import bisect

    table._ensure_sorted()
    if not table.entries:
        return None
    keys = [e.addr for e in table.entries]
    idx = bisect.bisect_right(keys, addr) - 1
    if idx < 0:
        return None
    entry = table.entries[idx]
    return (entry.file, entry.line)
