"""BinaryContext: everything BOLT knows about the input binary."""

import bisect

from repro.belf import RelocType, SymbolType
from repro.core.diagnostics import Diagnostics
from repro.linker import BUILTINS


class BinaryContext:
    """Shared state for a rewriting session.

    Indexes the input executable's symbols, relocations (if the binary
    was linked with ``--emit-relocs``), frame records and line table for
    fast lookup during disassembly and CFG construction.
    """

    def __init__(self, binary, options):
        self.binary = binary
        self.options = options
        self.diagnostics = Diagnostics(strict=getattr(options, "strict", False))
        self.stale_profile = False
        self.profile_quality = None
        self.has_relocations = bool(binary.relocations)
        if options.use_relocations is None:
            self.use_relocations = self.has_relocations
        else:
            self.use_relocations = options.use_relocations and self.has_relocations

        # function symbol index (sorted by address)
        funcs = sorted(
            (s for s in binary.symbols
             if s.type == SymbolType.FUNC and s.size > 0),
            key=lambda s: s.value,
        )
        self._func_starts = [s.value for s in funcs]
        self._func_syms = funcs
        self.func_by_name = {s.link_name(): s for s in funcs}

        # relocation index: (section name, offset) -> Relocation
        self.reloc_at = {}
        for reloc in binary.relocations:
            self.reloc_at[(reloc.section, reloc.offset)] = reloc

        # data symbol index for jump-table discovery
        self.object_symbols = {
            s.link_name(): s for s in binary.symbols
            if s.type == SymbolType.OBJECT
        }

        # PLT map: stub address -> (symbol name, final target address)
        self.plt_map = self._index_plt()

        # builtin entry points (frozen once; ``is_builtin`` used to
        # rebuild this set on every query)
        self._builtin_addrs = frozenset(BUILTINS.values())

        self.functions = {}    # link name -> BinaryFunction (filled by discovery)

    # -- address queries ------------------------------------------------------

    def function_symbol_at(self, address):
        idx = bisect.bisect_right(self._func_starts, address) - 1
        if idx < 0:
            return None
        sym = self._func_syms[idx]
        return sym if sym.contains(address) else None

    def function_entry_at(self, address):
        """The function whose entry point is exactly ``address``."""
        sym = self.function_symbol_at(address)
        if sym is not None and sym.value == address:
            return sym
        return None

    def section_at(self, address):
        return self.binary.section_at(address)

    def read_word(self, address):
        return self.binary.read_word(address)

    def line_for(self, address):
        if self.binary.line_table is None:
            return None
        return self.binary.line_table.lookup(address)

    # -- PLT ----------------------------------------------------------------------

    def _index_plt(self):
        """Decode .plt stubs: stub address -> (got address, target)."""
        from repro.isa import decode, DecodeError, Op

        plt = self.binary.get_section(".plt")
        if plt is None:
            return {}
        out = {}
        offset = 0
        data = bytes(plt.data)
        while offset < len(data):
            try:
                insn = decode(data, offset, plt.addr + offset)
            except DecodeError:
                break
            if insn.op == Op.JMP_MEM:
                got_addr = insn.addr
                target = self.binary.read_word(got_addr)
                out[plt.addr + offset] = (got_addr, target)
            offset += insn.size
        return out

    def is_plt_stub(self, address):
        return address in self.plt_map

    def plt_target(self, address):
        """Final target address behind a PLT stub."""
        return self.plt_map[address][1]

    def is_builtin(self, address):
        return address in self._builtin_addrs

    # -- function registry ------------------------------------------------------------

    def add_function(self, func):
        self.functions[func.name] = func
        return func

    def simple_functions(self):
        return [f for f in self.functions.values()
                if f.is_simple and not f.is_folded]

    def get_function_containing(self, address):
        sym = self.function_symbol_at(address)
        if sym is None:
            return None
        return self.functions.get(sym.link_name())
