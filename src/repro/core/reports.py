"""Diagnostic reports: the Figure 4-style CFG dump, and the
``-report-bad-layout`` analysis used in paper section 6.3 to show that
compiler PGO still leaves cold blocks interleaved with hot ones
(Figure 10) because of context-merged inlining profiles.
"""


def dump_function(func, max_blocks=None):
    """Figure 4-style textual dump of a BinaryFunction."""
    lines = [
        f'Binary Function "{func.name}" {{',
        f"  State       : {'CFG constructed' if func.is_simple else 'disassembled'}",
        f"  Address     : 0x{func.address:x}",
        f"  Size        : 0x{func.size:x}",
        f"  Section     : {func.section}",
        f"  IsSimple    : {int(func.is_simple)}",
        f"  BB Count    : {len(func.blocks)}",
        f"  BB Layout   : {', '.join(func.blocks)}",
        f"  Exec Count  : {func.exec_count}",
    ]
    if func.profile_match is not None:
        lines.append(f"  Profile Acc : {func.profile_match * 100:.1f}%")
    if not func.is_simple:
        lines.append(f"  Violation   : {func.simple_violation}")
    lines.append("}")
    for i, (label, block) in enumerate(func.blocks.items()):
        if max_blocks is not None and i >= max_blocks:
            lines.append("....")
            break
        lines.append("")
        flags = " (landing pad)" if block.is_landing_pad else ""
        flags += " (cold)" if block.is_cold else ""
        lines.append(f"{label} ({len(block.insns)} instructions){flags}")
        lines.append(f"  Exec Count : {block.exec_count}")
        for insn in block.insns:
            loc = insn.get_annotation("loc")
            comment = f"    # {loc[0]}:{loc[1]}" if loc else ""
            lp = insn.get_annotation("lp")
            if lp:
                comment += f"    # handler: {lp}; action: 1"
            offset = (f"{insn.address - func.address:08x}: "
                      if insn.address is not None else "          ")
            lines.append(f"  {offset}{insn}{comment}")
        if block.successors:
            succs = ", ".join(
                f"{s} (mispreds: {block.edge_mispreds.get(s, 0)}, "
                f"count: {block.edge_counts.get(s, 0)})"
                for s in block.successors)
            lines.append(f"  Successors: {succs}")
        if block.landing_pads:
            lines.append(f"  Landing Pads: {', '.join(block.landing_pads)}")
    return "\n".join(lines)


def format_timing_table(timing):
    """The llvm-bolt ``-time-opts``/``-time-rewrite`` style table.

    Renders per-pass rows (wall seconds, percent of timed pass total,
    functions visited, and the pass's own dyno-stat movement when
    available) and per-phase rows for the whole rewrite.
    """
    lines = []
    if timing.passes:
        total = sum(p.seconds for p in timing.passes) or 1e-12
        lines.append("BOLT-INFO: pass timing "
                     f"(total {total:.4f}s across {len(timing.passes)} "
                     f"passes):")
        width = max(len(p.name) for p in timing.passes)
        for p in timing.passes:
            row = (f"  {p.seconds:9.4f}s  {100 * p.seconds / total:5.1f}%  "
                   f"{p.name:<{width}}")
            if p.functions is not None:
                row += f"  {p.functions:6d} funcs"
            if p.dyno_delta:
                moved = {k: v for k, v in p.dyno_delta.items()
                         if v is not None and abs(v) >= 5e-4}
                if moved:
                    row += "  " + ", ".join(
                        f"{k} {v:+.1%}" for k, v in sorted(moved.items()))
            lines.append(row)
    if timing.phases:
        lines.append("BOLT-INFO: rewrite phase timing:")
        width = max(len(p.name) for p in timing.phases)
        for p in timing.phases:
            lines.append(f"  {p.seconds:9.4f}s  {p.name:<{width}}")
    if timing.total_seconds is not None:
        lines.append(f"BOLT-INFO: rewrite wall time: "
                     f"{timing.total_seconds:.4f}s")
    return "\n".join(lines)


def format_aggregation_report(report):
    """Human-readable rendering of the merge-fdata quality report.

    Takes the dict from :meth:`AggregationResult.report` and renders
    per-shard rows (records, dropped lines, staleness, match quality,
    divergence from the fleet consensus, cache state) plus the merged
    totals — the ``--json`` report's textual twin.
    """
    lines = []
    shards = report["shards"]
    width = max((len(s["name"]) for s in shards), default=5)
    lines.append(f"BOLT-INFO: merge-fdata: {len(shards)} shard(s), "
                 f"{report['stale_shards']} stale, "
                 f"{report['cache_hits']} cache hit(s), "
                 f"{report['dropped_lines']} dropped line(s)")
    header = (f"  {'shard':<{width}}  {'branches':>8}  {'samples':>7}  "
              f"{'dropped':>7}  {'weight':>7}  {'match':>6}  {'diverg':>6}  "
              f"stale  cache")
    lines.append(header)
    for s in shards:
        match = s["match"]
        quality = (f"{match['quality'] * 100:5.1f}%"
                   if match and match.get("quality") is not None else "     -")
        diverg = (f"{s['divergence']:6.3f}"
                  if s["divergence"] is not None else "     -")
        lines.append(
            f"  {s['name']:<{width}}  {s['branch_records']:>8}  "
            f"{s['sample_records']:>7}  {s['parse']['dropped_total']:>7}  "
            f"{s['effective_weight']:>7.3g}  {quality}  {diverg}  "
            f"{'yes' if s['stale'] else ' no'}   {s['cache']}")
    merged = report["merged"]
    coverage = report["coverage"]
    lines.append(
        f"BOLT-INFO: merged profile: {merged['branch_records']} branch "
        f"record(s), {merged['sample_records']} sample site(s), "
        f"{merged['functions']} function(s) "
        f"({coverage['functions_common']} covered by every shard)")
    return "\n".join(lines)


def report_bad_layout(context, min_count=1, max_reports=None):
    """Find hot functions with cold blocks interleaved between hot ones.

    Returns a list of findings: (function, cold block label, the source
    location the cold code came from) — the analysis behind Figure 10.
    """
    findings = []
    if max_reports is not None and max_reports <= 0:
        return findings
    for func in context.functions.values():
        if not func.is_simple or not func.has_profile:
            continue
        layout = func.layout()
        for i in range(1, len(layout) - 1):
            block = layout[i]
            if block.exec_count >= min_count:
                continue
            before = layout[i - 1]
            after = layout[i + 1]
            if (before.exec_count >= min_count
                    and after.exec_count >= min_count):
                loc = None
                for insn in block.insns:
                    loc = insn.get_annotation("loc")
                    if loc is not None:
                        break
                findings.append({
                    "function": func.name,
                    "block": block.label,
                    "exec_count": block.exec_count,
                    "between": (before.label, after.label),
                    "hot_counts": (before.exec_count, after.exec_count),
                    "source": loc,
                })
                if max_reports is not None and len(findings) >= max_reports:
                    return findings
    return findings


def format_bad_layout_report(findings):
    lines = [f"{len(findings)} suboptimal layout occurrence(s):"]
    for f in findings:
        src = f"{f['source'][0]}:{f['source'][1]}" if f["source"] else "?"
        lines.append(
            f"  {f['function']}: cold block {f['block']} "
            f"(count {f['exec_count']}) between {f['between'][0]} "
            f"(count {f['hot_counts'][0]}) and {f['between'][1]} "
            f"(count {f['hot_counts'][1]}), from {src}")
    return "\n".join(lines)
