"""Function discovery (paper Figure 3, first stage).

Binds names to address ranges using the hybrid strategy of section 3.3:
the symbol table is the primary source; frame information supplies EH
metadata, and symbol sizes missing from the table (hand-written
assembly often omits them) are recovered from the next symbol's start.
"""

from repro.belf import SymbolType
from repro.core.binary_function import BinaryFunction


def discover_functions(context):
    """Populate ``context.functions`` with undisassembled shells."""
    binary = context.binary
    text_sections = [s for s in binary.sections.values()
                     if s.is_exec and s.name != ".plt"]
    func_syms = sorted(
        (s for s in binary.symbols if s.type == SymbolType.FUNC),
        key=lambda s: s.value,
    )
    for index, sym in enumerate(func_syms):
        size = sym.size
        if size == 0:
            # Hybrid recovery: extend to the next function or section end.
            if index + 1 < len(func_syms):
                size = func_syms[index + 1].value - sym.value
            else:
                section = binary.section_at(sym.value)
                if section is not None:
                    size = section.end - sym.value
        section = binary.section_at(sym.value)
        if section is None or not section.is_exec:
            continue
        func = BinaryFunction(sym.link_name(), sym.value, size,
                              section=section.name)
        func.raw_bytes = bytes(
            section.data[sym.value - section.addr : sym.value - section.addr + size])
        record = binary.frame_records.get(sym.link_name())
        # Copy: passes may rewrite the record (shrink-wrapping, split-eh)
        # and the input binary must stay untouched for re-runs.
        func.frame_record = record.copy() if record is not None else None
        context.add_function(func)
    return context.functions
