"""Per-pass and per-phase timing for the rewrite pipeline.

The paper sells BOLT as *practical* partly on processing time (section
6.6: the HHVM binary is rewritten in minutes, single-threaded).
llvm-bolt exposes ``-time-opts`` (per-pass wall time) and
``-time-rewrite`` (per-phase wall time of the whole rewrite); this
module is the analog.  A :class:`TimingReport` hangs off the
``BinaryContext`` while the pipeline runs, collects wall time,
functions processed, and per-pass dyno-stat deltas, and renders both a
human table (``BOLT-INFO`` style, via :func:`repro.core.reports.
format_timing_table`) and a machine-readable JSON document consumed by
the ``BENCH_pr3.json`` trajectory harness.
"""

import json
import time


class PassTiming:
    """One timed unit: an optimization pass or a rewrite phase."""

    __slots__ = ("name", "seconds", "functions", "dyno_delta")

    def __init__(self, name, seconds, functions=None, dyno_delta=None):
        self.name = name
        self.seconds = seconds
        self.functions = functions      # simple functions seen, or None
        self.dyno_delta = dyno_delta    # {field: fraction} vs previous pass

    def as_dict(self):
        out = {"name": self.name, "seconds": round(self.seconds, 6)}
        if self.functions is not None:
            out["functions"] = self.functions
        if self.dyno_delta:
            out["dyno_delta"] = {k: round(v, 6)
                                 for k, v in self.dyno_delta.items()
                                 if v is not None}
        return out


class TimingReport:
    """Collected timings for one ``optimize_binary`` invocation."""

    def __init__(self, time_passes=False, time_phases=False):
        self.time_passes = time_passes      # --time-opts
        self.time_phases = time_phases      # --time-rewrite
        self.passes = []                    # [PassTiming]
        self.phases = []                    # [PassTiming]
        self.total_seconds = None

    # -- recording ---------------------------------------------------------

    def record_pass(self, name, seconds, functions=None, dyno_delta=None):
        self.passes.append(PassTiming(name, seconds, functions, dyno_delta))

    def record_phase(self, name, seconds):
        self.phases.append(PassTiming(name, seconds))

    def phase(self, name):
        """Context manager timing one rewrite phase (when enabled)."""
        return _PhaseTimer(self, name)

    # -- output ------------------------------------------------------------

    def as_dict(self):
        out = {}
        if self.total_seconds is not None:
            out["total_seconds"] = round(self.total_seconds, 6)
        if self.passes:
            out["passes"] = [p.as_dict() for p in self.passes]
        if self.phases:
            out["phases"] = [p.as_dict() for p in self.phases]
        return out

    def to_json(self, indent=2):
        return json.dumps(self.as_dict(), indent=indent)

    def __bool__(self):
        return bool(self.passes or self.phases)


class _PhaseTimer:
    __slots__ = ("report", "name", "_start")

    def __init__(self, report, name):
        self.report = report
        self.name = name
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        if self.report.time_phases:
            self.report.record_phase(
                self.name, time.perf_counter() - self._start)
        return False


def timing_report_for(options):
    """A TimingReport when any timing option is on, else None."""
    time_passes = getattr(options, "time_opts", False)
    time_phases = getattr(options, "time_rewrite", False)
    if not (time_passes or time_phases):
        return None
    return TimingReport(time_passes=time_passes, time_phases=time_phases)
