"""BOLT's optimization passes (paper Table 1)."""

from repro.core.passes.base import BinaryPass, PassManager, build_pipeline
from repro.core.passes.strip_rep_ret import StripRepRet
from repro.core.passes.icf import IdenticalCodeFolding
from repro.core.passes.icp import IndirectCallPromotion
from repro.core.passes.peepholes import Peepholes
from repro.core.passes.inline_small import InlineSmall
from repro.core.passes.simplify_ro_loads import SimplifyRoLoads
from repro.core.passes.plt import PLTCalls
from repro.core.passes.reorder_bbs import ReorderBasicBlocks
from repro.core.passes.uce import EliminateUnreachable
from repro.core.passes.fixup_branches import FixupBranches
from repro.core.passes.reorder_functions import ReorderFunctions
from repro.core.passes.sctc import SimplifyConditionalTailCalls
from repro.core.passes.frame_opts import FrameOptimization
from repro.core.passes.shrink_wrapping import ShrinkWrapping

__all__ = [
    "BinaryPass",
    "PassManager",
    "build_pipeline",
    "StripRepRet",
    "IdenticalCodeFolding",
    "IndirectCallPromotion",
    "Peepholes",
    "InlineSmall",
    "SimplifyRoLoads",
    "PLTCalls",
    "ReorderBasicBlocks",
    "EliminateUnreachable",
    "FixupBranches",
    "ReorderFunctions",
    "SimplifyConditionalTailCalls",
    "FrameOptimization",
    "ShrinkWrapping",
]
