"""Pass 9: reorder basic blocks + hot/cold splitting.

The layout optimization at the heart of BOLT (paper section 4):
blocks are reordered so the hottest successor falls through, and
never-executed blocks are marked cold so the rewriter can split them
into a separate section (``-split-functions`` / ``-split-all-cold`` /
``-split-eh``), tightly packing hot code (Figure 9).
"""

from repro.core.passes.base import BinaryPass
from repro.core.layout_algos import order_blocks


class ReorderBasicBlocks(BinaryPass):
    name = "reorder-bbs"

    def run_on_function(self, context, func):
        options = context.options
        if options.reorder_blocks == "none":
            return {}
        if not func.has_profile and options.reorder_blocks != "reverse":
            return {"skipped-no-profile": 1}

        before = list(func.blocks)
        # Sampled profiles are noisy: the flow-repair surplus (section
        # 5.2) can leak a fraction of a percent of flow into paths that
        # never ran.  Treat anything below 0.5% of the hottest block as
        # cold, with the configured floor.
        max_count = max((b.exec_count for b in func.blocks.values()),
                        default=0)
        threshold = max(options.hot_threshold, int(max_count * 0.005))
        order = order_blocks(func, options.reorder_blocks,
                             hot_threshold=threshold)
        func.reorder(order)
        changed = int(order != before)

        split = 0
        if options.split_functions > 0 and func.has_profile:
            for label, block in func.blocks.items():
                if label == func.entry_label:
                    continue
                cold = block.exec_count < threshold
                if block.is_landing_pad and not options.split_eh:
                    cold = False
                if not options.split_all_cold and options.split_functions < 3:
                    # Conservative splitting: only split blocks with no
                    # profile activity at all *and* large bodies.
                    cold = cold and block.size >= 16
                if cold:
                    block.is_cold = True
                    split += 1
        return {"reordered": changed, "cold-blocks": split}
