"""Pass 8: remove indirection from PLT calls.

Calls routed through PLT stubs (``call stub; stub: jmp *GOT``) cost an
extra jump plus a data-cache access to the GOT on every call.  At
post-link time the GOT values are known, so BOLT redirects the call to
the final target — unless the target is out of direct-call range
(our simulator builtins live at 0xF0000000, beyond rel32 reach, exactly
like functions in real external DSOs).
"""

from repro.belf import BUILTIN_BASE
from repro.isa import SymRef
from repro.core.passes.base import BinaryPass

#: Farthest a rel32 call can reach.
_REL32_RANGE = (1 << 31) - 1


class PLTCalls(BinaryPass):
    name = "plt"

    def run_on_function(self, context, func):
        optimized = skipped = 0
        for block in func.blocks.values():
            for insn in block.insns:
                plt = insn.get_annotation("plt")
                if plt is None:
                    continue
                got_addr, final_target = plt
                if final_target >= BUILTIN_BASE or final_target > _REL32_RANGE:
                    skipped += 1
                    continue
                entry = context.function_entry_at(final_target)
                if entry is None:
                    skipped += 1
                    continue
                insn.sym = SymRef(entry.link_name(), "branch")
                insn.set_annotation("plt", None)
                insn.set_annotation("plt-optimized", True)
                optimized += 1
        return {"optimized": optimized, "skipped": skipped}
