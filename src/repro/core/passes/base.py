"""Pass framework + the Table 1 pipeline order.

Error containment (paper section 3.1 spirit): a pass crashing on one
function must never take down the whole rewrite.  ``BinaryPass.run``
snapshots each function's CFG before transforming it; if the pass
raises, the snapshot is restored and the function is demoted to
non-simple — original bytes emitted verbatim, exactly like functions
BOLT conservatively skips at CFG-construction time — and a structured
diagnostic is recorded.  Whole-context passes (ICF, inlining, function
reordering) are contained at pass granularity instead.

With ``BoltOptions.verify_cfg`` the manager additionally re-checks CFG
structural invariants after every pass and demotes any function a pass
corrupted without raising.
"""

import copy


def snapshot_function(func):
    """A restorable deep snapshot of a function's mutable CFG state."""
    return copy.deepcopy(func)


def restore_function(func, snapshot):
    """Restore a function to a previously-taken snapshot, in place."""
    func.__dict__.update(copy.deepcopy(snapshot.__dict__))
    return func


def contain_function_failure(context, func, component, exc):
    """Demote a function a pass failed on; record a diagnostic."""
    from repro.core.cfg_builder import demote_to_raw

    context.diagnostics.warning(
        component,
        f"contained {type(exc).__name__}: {exc}; function demoted to "
        f"non-simple (original bytes kept)",
        function=func.name)
    demote_to_raw(context, func, f"contained failure in {component}")


class BinaryPass:
    """Base class: a transformation over the whole BinaryContext."""

    name = "pass"

    def run(self, context):
        """Run over every optimizable function; returns a stats dict."""
        stats = {}
        for func in context.simple_functions():
            snapshot = snapshot_function(func)
            try:
                result = self.run_on_function(context, func)
            except Exception as exc:
                restore_function(func, snapshot)
                contain_function_failure(
                    context, func, f"pass:{self.name}", exc)
                continue
            if result:
                for key, value in result.items():
                    stats[key] = stats.get(key, 0) + value
        return stats

    def run_on_function(self, context, func):  # pragma: no cover - abstract
        raise NotImplementedError


class PassManager:
    def __init__(self, passes):
        self.passes = passes
        self.stats = {}

    def run(self, context):
        verify = getattr(context.options, "verify_cfg", False)
        for pass_ in self.passes:
            try:
                self.stats[pass_.name] = pass_.run(context) or {}
            except Exception as exc:
                # Whole-context passes (ICF, inline, reorder-functions)
                # are contained at pass granularity: skip the pass, keep
                # the pipeline alive.
                from repro.core.diagnostics import StrictModeError
                if isinstance(exc, StrictModeError):
                    raise
                context.diagnostics.error(
                    f"pass:{pass_.name}",
                    f"pass failed ({type(exc).__name__}: {exc}); skipped")
                self.stats[pass_.name] = {}
            if verify:
                self._verify(context, pass_)
        return self.stats

    def _verify(self, context, pass_):
        from repro.core.cfg_builder import demote_to_raw
        from repro.core.validate import ValidationError, validate_function

        for func in context.simple_functions():
            try:
                validate_function(func)
            except ValidationError as exc:
                context.diagnostics.warning(
                    f"verify-cfg:{pass_.name}",
                    f"CFG invariants violated after pass: {exc}; "
                    f"function demoted", function=func.name)
                demote_to_raw(
                    context, func,
                    f"CFG corrupted by {pass_.name}")


def build_pipeline(options):
    """The exact Table 1 sequence, honoring option toggles."""
    from repro.core.passes.strip_rep_ret import StripRepRet
    from repro.core.passes.icf import IdenticalCodeFolding
    from repro.core.passes.icp import IndirectCallPromotion
    from repro.core.passes.peepholes import Peepholes
    from repro.core.passes.inline_small import InlineSmall
    from repro.core.passes.simplify_ro_loads import SimplifyRoLoads
    from repro.core.passes.plt import PLTCalls
    from repro.core.passes.reorder_bbs import ReorderBasicBlocks
    from repro.core.passes.uce import EliminateUnreachable
    from repro.core.passes.fixup_branches import FixupBranches
    from repro.core.passes.reorder_functions import ReorderFunctions
    from repro.core.passes.sctc import SimplifyConditionalTailCalls
    from repro.core.passes.frame_opts import FrameOptimization
    from repro.core.passes.shrink_wrapping import ShrinkWrapping

    passes = []
    if options.strip_rep_ret:
        passes.append(StripRepRet())                    # 1
    if options.icf:
        passes.append(IdenticalCodeFolding(round=1))    # 2
    if options.icp:
        passes.append(IndirectCallPromotion())          # 3
    if options.peepholes:
        passes.append(Peepholes(round=1))               # 4
    if options.inline_small:
        passes.append(InlineSmall())                    # 5
    if options.simplify_ro_loads:
        passes.append(SimplifyRoLoads())                # 6
    if options.icf:
        passes.append(IdenticalCodeFolding(round=2))    # 7
    if options.plt:
        passes.append(PLTCalls())                       # 8
    passes.append(ReorderBasicBlocks())                 # 9 (honors options)
    if options.peepholes:
        passes.append(Peepholes(round=2))               # 10
    if options.uce:
        passes.append(EliminateUnreachable())           # 11
    passes.append(FixupBranches())                      # 12
    passes.append(ReorderFunctions())                   # 13 (honors options)
    if options.sctc:
        passes.append(SimplifyConditionalTailCalls())   # 14
        if options.uce:
            passes.append(EliminateUnreachable(name="uce-2"))
        passes.append(FixupBranches(name="fixup-branches-2"))
    if options.frame_opts:
        passes.append(FrameOptimization())              # 15
    if options.shrink_wrapping:
        passes.append(ShrinkWrapping())                 # 16
    return PassManager(passes)
