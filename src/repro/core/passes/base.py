"""Pass framework + the Table 1 pipeline order."""


class BinaryPass:
    """Base class: a transformation over the whole BinaryContext."""

    name = "pass"

    def run(self, context):
        """Run over every optimizable function; returns a stats dict."""
        stats = {}
        for func in context.simple_functions():
            result = self.run_on_function(context, func)
            if result:
                for key, value in result.items():
                    stats[key] = stats.get(key, 0) + value
        return stats

    def run_on_function(self, context, func):  # pragma: no cover - abstract
        raise NotImplementedError


class PassManager:
    def __init__(self, passes):
        self.passes = passes
        self.stats = {}

    def run(self, context):
        for pass_ in self.passes:
            self.stats[pass_.name] = pass_.run(context) or {}
        return self.stats


def build_pipeline(options):
    """The exact Table 1 sequence, honoring option toggles."""
    from repro.core.passes.strip_rep_ret import StripRepRet
    from repro.core.passes.icf import IdenticalCodeFolding
    from repro.core.passes.icp import IndirectCallPromotion
    from repro.core.passes.peepholes import Peepholes
    from repro.core.passes.inline_small import InlineSmall
    from repro.core.passes.simplify_ro_loads import SimplifyRoLoads
    from repro.core.passes.plt import PLTCalls
    from repro.core.passes.reorder_bbs import ReorderBasicBlocks
    from repro.core.passes.uce import EliminateUnreachable
    from repro.core.passes.fixup_branches import FixupBranches
    from repro.core.passes.reorder_functions import ReorderFunctions
    from repro.core.passes.sctc import SimplifyConditionalTailCalls
    from repro.core.passes.frame_opts import FrameOptimization
    from repro.core.passes.shrink_wrapping import ShrinkWrapping

    passes = []
    if options.strip_rep_ret:
        passes.append(StripRepRet())                    # 1
    if options.icf:
        passes.append(IdenticalCodeFolding(round=1))    # 2
    if options.icp:
        passes.append(IndirectCallPromotion())          # 3
    if options.peepholes:
        passes.append(Peepholes(round=1))               # 4
    if options.inline_small:
        passes.append(InlineSmall())                    # 5
    if options.simplify_ro_loads:
        passes.append(SimplifyRoLoads())                # 6
    if options.icf:
        passes.append(IdenticalCodeFolding(round=2))    # 7
    if options.plt:
        passes.append(PLTCalls())                       # 8
    passes.append(ReorderBasicBlocks())                 # 9 (honors options)
    if options.peepholes:
        passes.append(Peepholes(round=2))               # 10
    if options.uce:
        passes.append(EliminateUnreachable())           # 11
    passes.append(FixupBranches())                      # 12
    passes.append(ReorderFunctions())                   # 13 (honors options)
    if options.sctc:
        passes.append(SimplifyConditionalTailCalls())   # 14
        if options.uce:
            passes.append(EliminateUnreachable(name="uce-2"))
        passes.append(FixupBranches(name="fixup-branches-2"))
    if options.frame_opts:
        passes.append(FrameOptimization())              # 15
    if options.shrink_wrapping:
        passes.append(ShrinkWrapping())                 # 16
    return PassManager(passes)
