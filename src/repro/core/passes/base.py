"""Pass framework + the Table 1 pipeline order.

Error containment (paper section 3.1 spirit): a pass crashing on one
function must never take down the whole rewrite.  ``BinaryPass.run``
snapshots each function's CFG before transforming it; if the pass
raises, the snapshot is restored and the function is demoted to
non-simple — original bytes emitted verbatim, exactly like functions
BOLT conservatively skips at CFG-construction time — and a structured
diagnostic is recorded.  Whole-context passes (ICF, inlining, function
reordering) are contained at pass granularity instead.

Snapshots are taken with :meth:`BinaryFunction.clone` — a hand-rolled
deep copy of exactly the mutable CFG state — rather than generic
``copy.deepcopy``, which dominated rewrite wall time (the pre-PR
snapshot is preserved in :mod:`repro.core._reference_kernels` for the
processing-time benchmarks).

With ``BoltOptions.threads > 1`` per-function passes fan their
function loop out over a chunked thread-pool work queue.  Workers only
ever touch their own function (pass-wide read-only state is computed
once in :meth:`BinaryPass.prepare`); failures are collected and
contained on the coordinating thread in the function's original order,
so diagnostics, stats, and the output binary are byte-identical to a
serial run.

With ``BoltOptions.verify_cfg`` the manager additionally re-checks CFG
structural invariants after every pass and demotes any function a pass
corrupted without raising.
"""

import time


def snapshot_function(func):
    """A restorable deep snapshot of a function's mutable CFG state."""
    return func.clone()


def restore_function(func, snapshot):
    """Restore a function to a previously-taken snapshot, in place."""
    func.__dict__.update(snapshot.clone().__dict__)
    return func


def contain_function_failure(context, func, component, exc):
    """Demote a function a pass failed on; record a diagnostic."""
    from repro.core.cfg_builder import demote_to_raw

    context.diagnostics.warning(
        component,
        f"contained {type(exc).__name__}: {exc}; function demoted to "
        f"non-simple (original bytes kept)",
        function=func.name)
    demote_to_raw(context, func, f"contained failure in {component}")


class BinaryPass:
    """Base class: a transformation over the whole BinaryContext."""

    name = "pass"

    #: Per-function passes whose ``run_on_function`` touches only its
    #: own function (after ``prepare``) may run under ``--threads N``.
    #: Whole-context passes override ``run`` and are never parallelized.
    parallel_safe = True

    def prepare(self, context):
        """Compute pass-wide state once, before the function loop.

        Runs on the coordinating thread; anything cached on ``self``
        must be treated as read-only by ``run_on_function`` so the
        parallel mode stays deterministic.
        """

    def run(self, context):
        """Run over every optimizable function; returns a stats dict."""
        stats = {}
        funcs = context.simple_functions()
        if not funcs:
            return stats
        self.prepare(context)
        threads = int(getattr(context.options, "threads", 1) or 1)
        if threads > 1 and self.parallel_safe and len(funcs) > 1:
            outcomes = self._attempt_parallel(context, funcs, threads)
        else:
            # Lazy: containment for function k happens before k+1 runs,
            # exactly like the historical serial loop.
            outcomes = ((func, self._attempt(context, func))
                        for func in funcs)
        for func, (result, exc) in outcomes:
            if exc is not None:
                contain_function_failure(
                    context, func, f"pass:{self.name}", exc)
                continue
            if result:
                for key, value in result.items():
                    stats[key] = stats.get(key, 0) + value
        return stats

    def _attempt(self, context, func):
        """Run on one function with snapshot/restore containment."""
        snapshot = snapshot_function(func)
        try:
            return self.run_on_function(context, func), None
        except Exception as exc:
            restore_function(func, snapshot)
            return None, exc

    def _attempt_parallel(self, context, funcs, threads):
        """Chunked work queue; results in original function order."""
        from concurrent.futures import ThreadPoolExecutor

        chunk_size = max(1, -(-len(funcs) // (threads * 4)))
        chunks = [funcs[i : i + chunk_size]
                  for i in range(0, len(funcs), chunk_size)]

        def work(chunk):
            return [self._attempt(context, func) for func in chunk]

        with ThreadPoolExecutor(max_workers=threads) as pool:
            per_chunk = list(pool.map(work, chunks))
        return [(func, outcome)
                for chunk, outcomes in zip(chunks, per_chunk)
                for func, outcome in zip(chunk, outcomes)]

    def run_on_function(self, context, func):  # pragma: no cover - abstract
        raise NotImplementedError


class PassManager:
    def __init__(self, passes):
        self.passes = passes
        self.stats = {}

    def run(self, context):
        verify = getattr(context.options, "verify_cfg", False)
        timing = getattr(context, "timing", None)
        time_passes = timing is not None and timing.time_passes
        dyno_prev = None
        if time_passes and getattr(context.options, "dyno_stats", False):
            from repro.core.dyno_stats import compute_dyno_stats
            dyno_prev = compute_dyno_stats(context)
        for pass_ in self.passes:
            started = time.perf_counter() if time_passes else None
            functions = len(context.simple_functions()) if time_passes else None
            try:
                self.stats[pass_.name] = pass_.run(context) or {}
            except Exception as exc:
                # Whole-context passes (ICF, inline, reorder-functions)
                # are contained at pass granularity: skip the pass, keep
                # the pipeline alive.
                from repro.core.diagnostics import StrictModeError
                if isinstance(exc, StrictModeError):
                    raise
                context.diagnostics.error(
                    f"pass:{pass_.name}",
                    f"pass failed ({type(exc).__name__}: {exc}); skipped")
                self.stats[pass_.name] = {}
            if time_passes:
                elapsed = time.perf_counter() - started
                delta = None
                if dyno_prev is not None:
                    from repro.core.dyno_stats import compute_dyno_stats
                    dyno_now = compute_dyno_stats(context)
                    delta = dyno_now.delta_vs(dyno_prev)
                    dyno_prev = dyno_now
                timing.record_pass(pass_.name, elapsed,
                                   functions=functions, dyno_delta=delta)
            if verify:
                self._verify(context, pass_)
        return self.stats

    def _verify(self, context, pass_):
        from repro.core.cfg_builder import demote_to_raw
        from repro.core.validate import ValidationError, validate_function

        for func in context.simple_functions():
            try:
                validate_function(func)
            except ValidationError as exc:
                context.diagnostics.warning(
                    f"verify-cfg:{pass_.name}",
                    f"CFG invariants violated after pass: {exc}; "
                    f"function demoted", function=func.name)
                demote_to_raw(
                    context, func,
                    f"CFG corrupted by {pass_.name}")


def build_pipeline(options):
    """The exact Table 1 sequence, honoring option toggles."""
    from repro.core.passes.strip_rep_ret import StripRepRet
    from repro.core.passes.icf import IdenticalCodeFolding
    from repro.core.passes.icp import IndirectCallPromotion
    from repro.core.passes.peepholes import Peepholes
    from repro.core.passes.inline_small import InlineSmall
    from repro.core.passes.simplify_ro_loads import SimplifyRoLoads
    from repro.core.passes.plt import PLTCalls
    from repro.core.passes.reorder_bbs import ReorderBasicBlocks
    from repro.core.passes.uce import EliminateUnreachable
    from repro.core.passes.fixup_branches import FixupBranches
    from repro.core.passes.reorder_functions import ReorderFunctions
    from repro.core.passes.sctc import SimplifyConditionalTailCalls
    from repro.core.passes.frame_opts import FrameOptimization
    from repro.core.passes.shrink_wrapping import ShrinkWrapping

    passes = []
    if options.strip_rep_ret:
        passes.append(StripRepRet())                    # 1
    if options.icf:
        passes.append(IdenticalCodeFolding(round=1))    # 2
    if options.icp:
        passes.append(IndirectCallPromotion())          # 3
    if options.peepholes:
        passes.append(Peepholes(round=1))               # 4
    if options.inline_small:
        passes.append(InlineSmall())                    # 5
    if options.simplify_ro_loads:
        passes.append(SimplifyRoLoads())                # 6
    if options.icf:
        passes.append(IdenticalCodeFolding(round=2))    # 7
    if options.plt:
        passes.append(PLTCalls())                       # 8
    passes.append(ReorderBasicBlocks())                 # 9 (honors options)
    if options.peepholes:
        passes.append(Peepholes(round=2))               # 10
    if options.uce:
        passes.append(EliminateUnreachable())           # 11
    passes.append(FixupBranches())                      # 12
    passes.append(ReorderFunctions())                   # 13 (honors options)
    if options.sctc:
        passes.append(SimplifyConditionalTailCalls())   # 14
        if options.uce:
            passes.append(EliminateUnreachable(name="uce-2"))
        passes.append(FixupBranches(name="fixup-branches-2"))
    if options.frame_opts:
        passes.append(FrameOptimization())              # 15
    if options.shrink_wrapping:
        passes.append(ShrinkWrapping())                 # 16
    return PassManager(passes)
