"""Pass 6: simplify-ro-loads.

Loads from statically-known read-only data become immediate moves,
trading D-cache pressure for I-cache bytes.  Per the paper's policy the
promotion is *aborted* whenever the new encoding would be larger than
the original load: on BX86 a ``LOAD_ABS`` is 6 bytes and a ``MOV_RI32``
is 6 bytes (fine), but values needing ``MOV_RI64`` (10 bytes) are
rejected.
"""

from repro.isa import Op
from repro.isa.opcodes import format_size
from repro.core.passes.base import BinaryPass

_I32_MIN, _I32_MAX = -(1 << 31), (1 << 31) - 1


class SimplifyRoLoads(BinaryPass):
    name = "simplify-ro-loads"

    def prepare(self, context):
        # Jump-table slots are collected once per pass run (they used to
        # be rescanned across every function, per function) and treated
        # as read-only by the per-function loop, so the pass stays
        # deterministic under --threads.
        table_addrs = set()
        for other in context.functions.values():
            for table in other.jump_tables:
                table_addrs.update(range(table.address,
                                         table.address + table.size, 8))
        self._table_addrs = table_addrs

    def run_on_function(self, context, func):
        converted = aborted = 0
        table_addrs = self._table_addrs
        for block in func.blocks.values():
            for insn in block.insns:
                if insn.op != Op.LOAD_ABS or insn.sym is not None:
                    continue
                section = context.section_at(insn.addr)
                if (section is None or section.is_writable
                        or section.is_exec
                        or not section.name.startswith(".rodata")):
                    continue
                if insn.addr in table_addrs:
                    continue  # jump tables get rewritten; never fold them
                value = context.read_word(insn.addr)
                if value >= 1 << 63:
                    value -= 1 << 64
                if not _I32_MIN <= value <= _I32_MAX:
                    aborted += 1  # would need a 10-byte MOV_RI64
                    continue
                insn.op = Op.MOV_RI32
                insn.imm = value
                insn.addr = None
                insn.size = format_size(Op.MOV_RI32)
                converted += 1
        return {"converted": converted, "aborted": aborted}
