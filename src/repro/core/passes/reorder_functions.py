"""Pass 13: reorder functions with HFSort / HFSort+ (paper Table 1).

Builds a weighted call graph from the profile (LBR records when
available; static direct calls weighted by block counts otherwise —
section 5.3) and stores the computed order on the context for the
rewriter to apply.  This is the I-TLB-oriented layout optimization
(section 4: "mainly improves I-TLB performance, but also helps with
I-cache to a smaller extent").
"""

from repro.core.hfsort import CallGraph, hfsort, hfsort_plus
from repro.core.passes.base import BinaryPass


class ReorderFunctions(BinaryPass):
    name = "reorder-functions"

    def run(self, context):
        algorithm = context.options.reorder_functions
        if algorithm == "none":
            context.function_order = None
            return {}
        graph = CallGraph.from_profile(context, getattr(context, "profile", None))
        if algorithm == "hfsort":
            order = hfsort(graph)
        elif algorithm == "hfsort+":
            order = hfsort_plus(graph)
        else:
            raise ValueError(f"unknown function order algorithm {algorithm!r}")
        context.function_order = order
        hot = sum(1 for f in order if graph.weights.get(f, 0) > 0)
        return {"functions": len(order), "hot-functions": hot}
