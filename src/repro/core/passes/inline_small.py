"""Pass 5: inline small functions.

A deliberately limited binary-level inliner, as the paper describes:
"BOLT's function inlining is a limited version of what compilers
perform at higher levels ... the remaining opportunities are typically
exposed by more accurate profile data, BOLT's indirect-call promotion,
cross-module nature, or a combination".

Only *trivial leaves* are inlined: a single block of pure register
computation (no memory access, no calls, no branches, no frame),
reading nothing but argument registers and values it defines itself,
returning in rax.  The callee body simply replaces the ``call``.
"""

from repro.isa import Op, RAX
from repro.isa.registers import ARG_REGS, CALLER_SAVED
from repro.core.dataflow import insn_uses_defs, FLAGS
from repro.core.passes.base import BinaryPass

_FRAME_OPS = frozenset({Op.PUSH, Op.POP})


def _inlineable_body(func, max_size):
    """The callee's body sans return, or None if not inlineable."""
    if not func.is_simple or len(func.blocks) != 1:
        return None
    block = next(iter(func.blocks.values()))
    if not block.insns or not block.insns[-1].is_return:
        return None
    body = block.insns[:-1]
    size = 0
    defined = set(ARG_REGS)
    wrote_rax = False
    for insn in body:
        if (insn.is_call or insn.is_branch or insn.is_return
                or insn.is_indirect_branch or insn.reads_memory
                or insn.writes_memory or insn.op in _FRAME_OPS
                or insn.op in (Op.OUT, Op.HALT, Op.TRAP)):
            return None
        uses, defs = insn_uses_defs(insn)
        if not uses <= (defined | {FLAGS}):
            return None
        if not defs <= set(CALLER_SAVED) | {FLAGS}:
            return None  # writing callee-saved regs would break the caller
        defined |= defs
        if RAX in defs:
            wrote_rax = True
        size += insn.size
    if size > max_size or not wrote_rax:
        return None
    return body


class InlineSmall(BinaryPass):
    name = "inline-small"

    def run(self, context):
        candidates = {}
        for func in context.simple_functions():
            body = _inlineable_body(func, context.options.inline_max_size)
            if body is not None:
                candidates[func.name] = body

        inlined = 0
        for func in context.simple_functions():
            for block in func.blocks.values():
                out = []
                for insn in block.insns:
                    if (insn.op == Op.CALL and insn.sym is not None
                            and insn.sym.name in candidates
                            and insn.sym.name != func.name):
                        for body_insn in candidates[insn.sym.name]:
                            clone = body_insn.copy()
                            clone.address = None
                            out.append(clone)
                        inlined += 1
                        continue
                    out.append(insn)
                if len(out) != len(block.insns):
                    block.insns = out
                    # Inlined bodies cannot throw: recompute which
                    # landing pads this block's remaining calls use.
                    block.landing_pads = sorted({
                        i.get_annotation("lp") for i in out
                        if i.is_call and i.get_annotation("lp") is not None})
        return {"inlined": inlined}
