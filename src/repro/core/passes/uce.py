"""Pass 11: eliminate unreachable basic blocks."""

from repro.core.passes.base import BinaryPass
from repro.core.dataflow import reachable_from


class EliminateUnreachable(BinaryPass):
    def __init__(self, name="uce"):
        self.name = name

    def run_on_function(self, context, func):
        reachable = reachable_from(func, func.entry_label)
        removed = 0
        for label in list(func.blocks):
            if label in reachable:
                continue
            block = func.blocks[label]
            del func.blocks[label]
            removed += 1
            # Drop dangling edge bookkeeping elsewhere.
            for other in func.blocks.values():
                other.remove_successor(label)
                if label in other.landing_pads:
                    other.landing_pads.remove(label)
        if removed:
            # Keep only jump tables whose dispatch is still alive.
            live_tables = set()
            for block in func.blocks.values():
                for insn in block.insns:
                    table = insn.get_annotation("jump-table")
                    if table is not None:
                        live_tables.add(id(table))
            func.jump_tables = [t for t in func.jump_tables
                                if id(t) in live_tables]
        return {"removed-blocks": removed}
