"""Pass 14: simplify conditional tail calls.

Pattern (frameless dispatchers produce it — there is no epilogue to
tear down):

    jcc .L            jcc target      # conditional tail call
    ...          =>   ...
 .L: jmp target

The intermediate block usually becomes unreachable and is removed by a
follow-up UCE/fixup round.
"""

from repro.isa import Op
from repro.core.passes.base import BinaryPass


class SimplifyConditionalTailCalls(BinaryPass):
    name = "sctc"

    def run_on_function(self, context, func):
        # Tail-call-only blocks: a single unconditional jump to a symbol.
        tail_blocks = {}
        for label, block in func.blocks.items():
            if block.is_landing_pad or label == func.entry_label:
                continue
            if len(block.insns) != 1:
                continue
            insn = block.insns[0]
            if (insn.op in (Op.JMP_SHORT, Op.JMP_NEAR)
                    and insn.sym is not None):
                tail_blocks[label] = insn

        if not tail_blocks:
            return {}
        preds = func.predecessors()
        simplified = 0
        for block in func.blocks.values():
            for insn in block.insns:
                if not insn.is_cond_branch:
                    continue
                if insn.label in tail_blocks:
                    # jcc L; ... L: jmp target  =>  jcc target
                    target_jmp = tail_blocks[insn.label]
                    old_label = insn.label
                    insn.label = None
                    self._copy_tail_target(insn, target_jmp)
                    block.remove_successor(old_label)
                    func.analysis_facts.setdefault("sctc", []).append(
                        block.label)
                    simplified += 1
                elif (insn is block.insns[-1]
                      and block.fallthrough_label in tail_blocks
                      and len(preds[block.fallthrough_label]) == 1):
                    # jcc L with the tail call on the fall-through path:
                    # invert so the tail call is the taken side.
                    from repro.isa import negate_cc

                    ft = block.fallthrough_label
                    target_jmp = tail_blocks[ft]
                    old_label = insn.label
                    insn.cc = negate_cc(insn.cc)
                    insn.label = None
                    self._copy_tail_target(insn, target_jmp)
                    block.remove_successor(ft)
                    block.fallthrough_label = old_label
                    func.analysis_facts.setdefault("sctc", []).append(
                        block.label)
                    simplified += 1
        return {"simplified": simplified}

    @staticmethod
    def _copy_tail_target(insn, target_jmp):
        insn.sym = target_jmp.sym
        if insn.op == Op.JCC_SHORT:
            # A symbolic target needs the rel32 encoding.
            insn.op = Op.JCC_LONG
            insn.size = 6
        if target_jmp.get_annotation("tailcall", "!") != "!":
            insn.set_annotation("tailcall",
                                target_jmp.get_annotation("tailcall"))
        if target_jmp.get_annotation("plt") is not None:
            insn.set_annotation("plt", target_jmp.get_annotation("plt"))
