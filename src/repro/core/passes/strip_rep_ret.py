"""Pass 1: strip-rep-ret.

Replaces 2-byte ``repz retq`` returns (emitted for legacy AMD branch
predictors) with plain 1-byte ``retq``, trading optional instruction
padding for I-cache space (paper section 4's aggressive I-cache
occupation policy).
"""

from repro.isa import Op
from repro.core.passes.base import BinaryPass


class StripRepRet(BinaryPass):
    name = "strip-rep-ret"

    def run_on_function(self, context, func):
        stripped = 0
        for block in func.blocks.values():
            for insn in block.insns:
                if insn.op == Op.REPZ_RET:
                    insn.op = Op.RET
                    insn.size = 1
                    stripped += 1
        return {"stripped": stripped}
