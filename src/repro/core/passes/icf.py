"""Passes 2 & 7: identical code folding.

Complements linker ICF (paper section 4): because BOLT folds on the
*reconstructed CFG* with symbolized references, it can fold functions
the linker could not — e.g. functions with jump tables (whose table
bytes differ because they hold absolute addresses into each copy) and
functions the compiler did not place in comparable sections.
"""

from repro.core.passes.base import BinaryPass


def _function_key(func):
    """A structural key: code with labels/tables normalized to indices."""
    index = {label: i for i, label in enumerate(func.blocks)}
    table_ids = {id(t): i for i, t in enumerate(func.jump_tables)}
    # Table *addresses* appear as MOV_RI32 immediates (the dispatch base
    # materialization); normalize them so two copies of a switch-heavy
    # function compare equal even though their tables live at different
    # addresses — the folding linkers cannot do (paper section 4).
    table_addrs = {t.address: i for i, t in enumerate(func.jump_tables)}
    blocks = []
    for label, block in func.blocks.items():
        insn_keys = []
        for insn in block.insns:
            table = insn.get_annotation("jump-table")
            imm = insn.imm
            if imm in table_addrs:
                imm = ("jt", table_addrs[imm])
            insn_keys.append((
                int(insn.op),
                insn.regs,
                imm if table is None else None,
                insn.disp,
                insn.addr,
                int(insn.cc) if insn.cc is not None else None,
                index.get(insn.label, insn.label),
                (insn.sym.name, insn.sym.kind, insn.sym.addend)
                if insn.sym is not None else None,
                table_ids.get(id(table)),
            ))
        blocks.append((
            index[label],
            tuple(insn_keys),
            tuple(index.get(s, s) for s in block.successors),
            index.get(block.fallthrough_label),
            tuple(index.get(lp, lp) for lp in block.landing_pads),
            block.is_landing_pad,
        ))
    tables = tuple(
        tuple(index.get(e, e) for e in t.entries) for t in func.jump_tables)
    record = func.frame_record
    frame = None
    if record is not None:
        frame = (record.frame_size, tuple(map(tuple, record.saved_regs)),
                 tuple((c.start, c.end, c.landing_pad, c.action)
                       for c in record.callsites))
    return (tuple(blocks), tables, frame)


class IdenticalCodeFolding(BinaryPass):
    def __init__(self, round=1):
        self.round = round
        self.name = "icf" if round == 1 else "icf-2"

    def run(self, context):
        folded = 0
        saved_bytes = 0
        changed = True
        while changed:
            changed = False
            by_key = {}
            for func in context.simple_functions():
                # A function folding into itself via recursion-by-name
                # would change semantics; keys include self-references
                # symbolically, so fold only when safe: replace
                # self-referencing SymRefs by a marker first.
                key = _normalize_self(func)
                survivor = by_key.get(key)
                if survivor is None:
                    by_key[key] = func
                    continue
                func.is_folded = True
                func.folded_into = survivor
                survivor.exec_count += func.exec_count
                for label, block in func.blocks.items():
                    twin = survivor.blocks.get(label)
                    if twin is not None:
                        twin.exec_count += block.exec_count
                        for succ, count in block.edge_counts.items():
                            twin.edge_counts[succ] = (
                                twin.edge_counts.get(succ, 0) + count)
                folded += 1
                saved_bytes += func.size
                changed = True
        return {"folded": folded, "saved_bytes": saved_bytes}


def _normalize_self(func):
    key = _function_key(func)

    def swap(item):
        if isinstance(item, tuple):
            return tuple(swap(x) for x in item)
        if item == func.name:
            return "__self__"
        return item

    return swap(key)
