"""Pass 15: frame optimization — remove unnecessary spills.

Compilers home incoming arguments to shadow stack slots even when only
the register copy is ever read.  With whole-function dataflow over the
reconstructed CFG, BOLT deletes stores to rbp-relative slots that are
never loaded — provided rbp provably does not escape (no aliasing) and
the slot is not one of the callee-saved save slots the unwinder needs.
"""

from repro.isa import Op, RBP
from repro.core.dataflow import stack_slot_accesses
from repro.core.passes.base import BinaryPass


class FrameOptimization(BinaryPass):
    name = "frame-opts"

    def run_on_function(self, context, func):
        loads, stores, escapes = stack_slot_accesses(func)
        if escapes:
            return {"skipped-escape": 1}
        protected = set()
        if func.frame_record is not None:
            protected = {-offset for _, offset in func.frame_record.saved_regs}
        dead = {disp for disp in stores
                if disp not in loads and disp not in protected and disp < 0}
        if not dead:
            return {}
        # Fact for the lint checkers: BL002 verifies none of these is a
        # callee-saved save slot the unwinder still needs.
        func.analysis_facts.setdefault(
            "frame-opts-removed", []).extend(sorted(dead))
        removed = 0
        for block in func.blocks.values():
            kept = []
            for insn in block.insns:
                if (insn.op == Op.STORE and insn.regs[0] == RBP
                        and insn.disp in dead):
                    removed += 1
                    continue
                kept.append(insn)
            block.insns = kept
        return {"removed-stores": removed}
