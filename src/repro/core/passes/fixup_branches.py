"""Pass 12: fixup-branches.

After layout changes, block terminators must be made consistent with
the new physical order (the paper notes this is redone by reorder-bbs):

* a conditional branch whose taken target became the fall-through is
  inverted so the hot path falls through;
* unconditional jumps to the physically-next block are removed;
* blocks whose fall-through successor moved away get an explicit jump.

Cold (split) blocks never fall through into hot blocks and vice versa —
an explicit jump is always materialized across the split boundary.
"""

from repro.isa import Instruction, Op, negate_cc
from repro.core.passes.base import BinaryPass

_HARD_TERMINATORS = frozenset({
    Op.RET, Op.REPZ_RET, Op.JMP_REG, Op.JMP_MEM, Op.HALT, Op.TRAP,
})


class FixupBranches(BinaryPass):
    def __init__(self, name="fixup-branches"):
        self.name = name

    def run_on_function(self, context, func):
        inverted = added = removed = 0
        layout = func.layout()
        for i, block in enumerate(layout):
            next_block = layout[i + 1] if i + 1 < len(layout) else None
            next_label = None
            if next_block is not None and next_block.is_cold == block.is_cold:
                next_label = next_block.label

            # 1. Strip a trailing unconditional intra-function jump; it
            #    is re-synthesized below only if still needed.
            had_jump = False
            if (block.insns
                    and block.insns[-1].op in (Op.JMP_SHORT, Op.JMP_NEAR)
                    and block.insns[-1].label is not None):
                jump = block.insns.pop()
                had_jump = True
                if block.fallthrough_label is None:
                    # A jump-only successor is this block's sole exit;
                    # treat it as the logical fall-through from here on.
                    block.fallthrough_label = jump.label

            last = block.insns[-1] if block.insns else None

            if last is not None and last.is_cond_branch and last.label is not None:
                ft = block.fallthrough_label
                if (last.label == next_label and ft is not None
                        and ft != next_label):
                    last.cc = negate_cc(last.cc)
                    block.fallthrough_label = last.label
                    last.label = ft
                    inverted += 1
                    ft = block.fallthrough_label
                if ft is not None and ft != next_label:
                    block.insns.append(Instruction(Op.JMP_NEAR, label=ft))
                    added += 1
                elif had_jump:
                    removed += 1
            elif last is not None and (
                    last.op in _HARD_TERMINATORS
                    or (last.op in (Op.JMP_SHORT, Op.JMP_NEAR)
                        and last.sym is not None)):
                pass  # returns, indirect jumps, tail calls: nothing to fix
            else:
                # Pure fall-through block (possibly ending in a call).
                ft = block.fallthrough_label
                if ft is not None and ft != next_label:
                    block.insns.append(Instruction(Op.JMP_NEAR, label=ft))
                    added += 1
                elif had_jump:
                    removed += 1
        return {"inverted": inverted, "added-jumps": added,
                "removed-jumps": removed}
