"""Passes 4 & 10: simple peephole optimizations.

* drop identity moves (``mov %r, %r``);
* collapse adjacent ``push %rx; pop %ry`` into a move (or nothing when
  x == y) — our compiler's call protocol leaves these behind, exactly
  the kind of suboptimal-but-correct codegen residue peepholes target;
* thread jumps through empty forwarding blocks.

NOP discarding itself happens at disassembly time, per the paper's
policy of aggressively reclaiming I-cache space (section 4).
"""

from repro.isa import Instruction, Op
from repro.core.passes.base import BinaryPass


class Peepholes(BinaryPass):
    def __init__(self, round=1):
        self.round = round
        self.name = "peepholes" if round == 1 else "peepholes-2"

    def run_on_function(self, context, func):
        removed = push_pop = threaded = 0
        for block in func.blocks.values():
            out = []
            for insn in block.insns:
                if insn.op == Op.MOV_RR and insn.regs[0] == insn.regs[1]:
                    removed += 1
                    continue
                if (insn.op == Op.POP and out and out[-1].op == Op.PUSH):
                    pushed = out.pop()
                    push_pop += 1
                    if insn.regs[0] != pushed.regs[0]:
                        mov = Instruction(Op.MOV_RR,
                                          (insn.regs[0], pushed.regs[0]))
                        if insn.annotations:
                            mov.annotations = dict(insn.annotations)
                        out.append(mov)
                    continue
                out.append(insn)
            block.insns = out

        threaded += self._thread_jumps(func)
        return {"identity-moves": removed, "push-pop": push_pop,
                "threaded": threaded}

    def _thread_jumps(self, func):
        """Retarget branches whose destination block only jumps onward."""
        forward = {}
        for label, block in func.blocks.items():
            if block.is_landing_pad or label == func.entry_label:
                continue
            if len(block.insns) != 1:
                continue
            insn = block.insns[0]
            if insn.op in (Op.JMP_SHORT, Op.JMP_NEAR) and insn.label is not None:
                forward[label] = insn.label

        def final(label, seen=None):
            seen = seen or set()
            while label in forward and label not in seen:
                seen.add(label)
                label = forward[label]
            return label

        threaded = 0
        for block in func.blocks.values():
            for insn in block.insns:
                if insn.is_branch and insn.label in forward:
                    old = insn.label
                    new = final(old)
                    if new == old:
                        continue
                    insn.label = new
                    count = block.edge_counts.pop(old, 0)
                    mispred = block.edge_mispreds.pop(old, 0)
                    if old in block.successors:
                        block.successors.remove(old)
                    block.set_edge(new,
                                   block.edge_counts.get(new, 0) + count,
                                   block.edge_mispreds.get(new, 0) + mispred)
                    if block.fallthrough_label == old:
                        block.fallthrough_label = new
                    threaded += 1
        return threaded
