"""Pass 3: indirect call promotion.

Uses LBR-derived per-callsite target distributions (annotated during
profile attachment; unavailable in non-LBR mode, paper section 5.3) to
turn hot indirect calls into a compare-and-direct-call fast path:

    callq *%r10                cmpq $target, %r10
                               jne  .LICPf
                         =>    callq target        # direct, inlinable
                               jmp  .LICPj
                        .LICPf: callq *%r10
                        .LICPj: ...

The direct call also becomes visible to inline-small (paper section 4:
"remaining inlining opportunities ... exposed by BOLT's indirect-call
promotion").
"""

from repro.isa import Instruction, Op, CondCode, SymRef
from repro.core.binary_function import BinaryBasicBlock
from repro.core.passes.base import BinaryPass


class IndirectCallPromotion(BinaryPass):
    name = "icp"

    def run_on_function(self, context, func):
        if not func.has_profile:
            return {}
        promoted = 0
        top_n = context.options.icp_top_n
        for label in list(func.blocks):
            block = func.blocks[label]
            for index, insn in enumerate(block.insns):
                if insn.op != Op.CALL_REG:
                    continue
                targets = insn.get_annotation("call-targets")
                if not targets:
                    continue
                total = sum(targets.values())
                best = sorted(targets.items(), key=lambda kv: (-kv[1], kv[0]))
                best = [(name, count) for name, count in best[:top_n]
                        if count * 2 >= total]  # promote only if >= 50% hot
                if not best or total < context.options.hot_threshold:
                    continue
                # Promotion trades I-cache bytes for prediction: only
                # worth it when the BTB actually struggles at this site.
                mispreds = insn.get_annotation("call-mispreds") or 0
                if mispreds < context.options.icp_mispredict_threshold * total:
                    continue
                self._promote(context, func, block, index, insn, best)
                promoted += 1
                break  # block structure changed; revisit on next pass run
        return {"promoted": promoted}

    def _promote(self, context, func, block, index, insn, targets):
        reg = insn.regs[0]
        suffix = f"{len(func.blocks)}"
        join = BinaryBasicBlock(f".LICPj{suffix}")
        join.insns = block.insns[index + 1 :]
        join.exec_count = block.exec_count
        join.successors = block.successors
        join.edge_counts = block.edge_counts
        join.edge_mispreds = block.edge_mispreds
        join.fallthrough_label = block.fallthrough_label
        join.landing_pads = [
            lp for lp in block.landing_pads
            if any(i.get_annotation("lp") == lp for i in join.insns)]

        block.insns = block.insns[:index]
        block.successors = []
        block.edge_counts = {}
        block.edge_mispreds = {}

        lp = insn.get_annotation("lp")
        remaining = dict(insn.get_annotation("call-targets"))
        total = sum(remaining.values())
        current = block
        for i, (target, count) in enumerate(targets):
            fallback_label = f".LICPf{suffix}_{i}"
            direct_label = f".LICPd{suffix}_{i}"
            cmp = Instruction(Op.CMP_RI, (reg,), imm=0,
                              sym=SymRef(target, "imm32"))
            jcc = Instruction(Op.JCC_LONG, cc=CondCode.NE, label=fallback_label)
            current.insns.extend([cmp, jcc])
            current.set_edge(fallback_label, max(0, total - count))
            current.fallthrough_label = direct_label
            current.set_edge(direct_label, count)
            current.exec_count = total

            direct = BinaryBasicBlock(direct_label)
            call = Instruction(Op.CALL, sym=SymRef(target, "branch"))
            if insn.annotations:
                call.annotations = dict(insn.annotations)
                call.annotations.pop("call-targets", None)
                call.annotations.pop("call-mispreds", None)
            # The hot direct path falls through into the join; only the
            # fallback (placed out of line) needs a jump back.
            direct.insns = [call]
            direct.exec_count = count
            direct.fallthrough_label = join.label
            direct.set_edge(join.label, count)
            if lp is not None:
                direct.landing_pads.append(lp)
            func.blocks[direct_label] = direct

            fallback = BinaryBasicBlock(fallback_label)
            fallback.exec_count = max(0, total - count)
            func.blocks[fallback_label] = fallback
            remaining.pop(target, None)
            total = max(0, total - count)
            current = fallback

        # The final fallback keeps the original indirect call.
        indirect = insn
        if remaining:
            indirect.set_annotation("call-targets", remaining)
        else:
            indirect.set_annotation("call-targets", None)
        current.insns.append(indirect)
        current.fallthrough_label = join.label
        current.set_edge(join.label, current.exec_count)
        if lp is not None:
            current.landing_pads.append(lp)

        func.blocks[join.label] = join
        # Layout: hot direct path falls straight through to the join;
        # fallback blocks go out of line at the end of the function.
        order = []
        for existing in list(func.blocks):
            if existing == join.label or existing.startswith(
                    (f".LICPd{suffix}_", f".LICPf{suffix}_")):
                continue
            order.append(existing)
            if existing == block.label:
                order.append(f".LICPd{suffix}_0")
                order.append(join.label)
        for i in range(1, len(targets)):
            order.append(f".LICPd{suffix}_{i}")
        for i in range(len(targets)):
            order.append(f".LICPf{suffix}_{i}")
        func.blocks = {l: func.blocks[l] for l in order}
