"""Pass 16: shrink wrapping — move callee-saved spills toward uses.

"Moves callee-saved register spills closer to where they are needed, if
profiling data shows it is better to do so" (paper Table 1).

For each callee-saved register saved in the prologue (a store to its
fixed frame slot) we find the set of blocks that touch the register.
If a single block B dominates all of them, B is colder than the entry,
and the move is unwind-safe (B also dominates every call site, so any
unwinder reading the save slot sees a valid value), the save store
moves from the prologue to B and each restore load survives only in
exit blocks dominated by B (exits not reachable from B never modified
the register and must not reload it).
"""

from repro.isa import Op, RBP
from repro.core.dataflow import dominators, insn_uses_defs, reachable_from
from repro.core.passes.base import BinaryPass


class ShrinkWrapping(BinaryPass):
    name = "shrink-wrapping"

    def run_on_function(self, context, func):
        record = func.frame_record
        if record is None or not record.saved_regs or not func.has_profile:
            return {}
        entry = func.blocks.get(func.entry_label)
        if entry is None:
            return {}

        dom = dominators(func)
        call_blocks = set()
        reg_blocks = {reg: set() for reg, _ in record.saved_regs}
        save_insns = {}
        restore_insns = {reg: [] for reg, _ in record.saved_regs}
        offsets = {reg: offset for reg, offset in record.saved_regs}

        for label, block in func.blocks.items():
            for insn in block.insns:
                if insn.is_call:
                    call_blocks.add(label)
                for reg in reg_blocks:
                    offset = offsets[reg]
                    if (insn.op == Op.STORE and insn.regs == (RBP, reg)
                            and insn.disp == -offset and label == func.entry_label
                            and reg not in save_insns):
                        save_insns[reg] = insn
                        continue
                    if (insn.op == Op.LOAD and insn.regs == (reg, RBP)
                            and insn.disp == -offset):
                        restore_insns[reg].append((label, insn))
                        continue
                    uses, defs = insn_uses_defs(insn)
                    if reg in uses or reg in defs:
                        reg_blocks[reg].add(label)

        moved = 0
        removed = 0
        for reg, offset in list(record.saved_regs):
            if reg not in save_insns:
                continue
            touching = reg_blocks[reg] | call_blocks
            if not touching:
                # The register is never touched and nothing can unwind
                # through this frame: the save/restore pair is dead.
                entry.insns.remove(save_insns[reg])
                for label, insn in restore_insns[reg]:
                    func.blocks[label].insns.remove(insn)
                record.saved_regs = [sr for sr in record.saved_regs
                                     if sr[0] != reg]
                func.analysis_facts.setdefault(
                    "shrink-wrap-removed", []).append(reg)
                removed += 1
                continue
            candidates = [
                label for label in func.blocks
                if label != func.entry_label
                and all(label in dom[t] for t in touching)
                and func.blocks[label].exec_count < entry.exec_count
                and not func.blocks[label].is_landing_pad
            ]
            if not candidates:
                continue
            # Deepest dominator: the one dominated by all the others.
            best = max(candidates, key=lambda l: len(dom[l]))
            from_best = reachable_from(func, best)
            safe = True
            for label, _ in restore_insns[reg]:
                if best in dom[label]:
                    continue
                if label in from_best:
                    safe = False  # reachable both with and without the save
                    break
            if not safe:
                continue
            # Move the save.
            entry.insns.remove(save_insns[reg])
            target = func.blocks[best]
            target.insns.insert(0, save_insns[reg])
            # Drop restores on paths that never saved.
            for label, insn in restore_insns[reg]:
                if best not in dom[label]:
                    func.blocks[label].insns.remove(insn)
            # Fact for the lint checkers: the save now lives in `best`;
            # BL002 cross-checks the store is really there.
            func.analysis_facts.setdefault("shrink-wrap", {})[reg] = best
            moved += 1
        return {"moved-saves": moved, "removed-dead-saves": removed}
