"""HFSort and HFSort+ function ordering (Ottoni & Maher, CGO'17),
used by BOLT's reorder-functions pass (paper Table 1 pass 13) and by
the linker baseline in the paper's Facebook evaluation (section 6.1).

HFSort is the C3 ("Call-Chain Clustering") heuristic: process functions
from hottest to coldest, appending each to the cluster of its heaviest
caller unless the merged cluster would exceed the merge cap (in the
original, sized to huge pages; scaled down here to the simulator's
page size).  Final clusters are sorted by density (heat per byte).

HFSort+ refines the result with a gain-driven cluster merging phase
that models expected page-boundary crossings, improving I-TLB behavior
further.

Complexity: ``CallGraph`` maintains a reverse-adjacency index so
``callers_of`` is a dictionary lookup instead of an all-arcs scan, and
``hfsort_plus`` keeps an incrementally-updated inter-cluster weight map
instead of rescanning every arc per cluster pair per merge iteration.
Both orderings are asserted to be permutations of the input functions
(``tests/test_hfsort.py`` checks them against the pre-PR reference
implementations in :mod:`repro.core._reference_kernels`).
"""


class OrderingError(AssertionError):
    """An ordering kernel produced something other than a permutation."""


def _check_permutation(kernel, out, expected):
    if len(out) != len(expected) or set(out) != set(expected):
        missing = sorted(set(expected) - set(out))[:5]
        extra = sorted(set(out) - set(expected))[:5]
        raise OrderingError(
            f"{kernel} output is not a permutation of the input: "
            f"{len(out)}/{len(expected)} functions"
            + (f", missing {missing}" if missing else "")
            + (f", extra {extra}" if extra else ""))


class CallGraph:
    """A weighted dynamic call graph."""

    def __init__(self):
        self.weights = {}    # func -> sample weight (hotness)
        self.sizes = {}      # func -> code size in bytes
        self.arcs = {}       # (caller, callee) -> weight
        self._callers = {}   # callee -> {caller: weight} (reverse adjacency)

    def add_function(self, name, weight, size):
        self.weights[name] = self.weights.get(name, 0) + weight
        self.sizes[name] = max(1, size)

    def add_arc(self, caller, callee, weight):
        if weight <= 0:
            return
        key = (caller, callee)
        self.arcs[key] = self.arcs.get(key, 0) + weight
        callers = self._callers.setdefault(callee, {})
        callers[caller] = callers.get(caller, 0) + weight

    def callers_of(self, callee):
        """Callers of ``callee`` with arc weights — O(in-degree)."""
        return dict(self._callers.get(callee, ()))

    @classmethod
    def from_profile(cls, context, profile):
        """Build from LBR call records, or — without LBRs — from static
        direct calls weighted by containing-block counts (section 5.3:
        'BOLT is still able to build an incomplete call graph by looking
        at the direct calls in the binary', missing indirect calls)."""
        graph = cls()
        for func in context.functions.values():
            graph.add_function(func.name, func.exec_count, func.size)
        if profile is not None and profile.lbr:
            for (caller, callee), weight in profile.calls_between().items():
                if caller in graph.weights and callee in graph.weights:
                    graph.add_arc(caller, callee, weight)
        else:
            for func in context.functions.values():
                if not func.is_simple:
                    continue
                for block in func.blocks.values():
                    for insn in block.insns:
                        if (insn.is_call and not insn.is_indirect
                                and insn.sym is not None
                                and insn.sym.name in graph.weights):
                            graph.add_arc(func.name, insn.sym.name,
                                          block.exec_count)
        return graph


class _Cluster:
    __slots__ = ("funcs", "size", "samples")

    def __init__(self, func, size, samples):
        self.funcs = [func]
        self.size = size
        self.samples = samples

    @property
    def density(self):
        return self.samples / self.size

    def merge(self, other):
        self.funcs.extend(other.funcs)
        self.size += other.size
        self.samples += other.samples


def hfsort(graph, merge_cap=4096 * 8):
    """C3 clustering; returns the ordered list of function names.

    Functions without samples keep their natural (input) order at the
    end — BOLT likewise only reorders functions with profile heat.
    """
    hot = [f for f, w in graph.weights.items() if w > 0]
    cold = [f for f, w in graph.weights.items() if w <= 0]
    clusters = {f: _Cluster(f, graph.sizes[f], graph.weights[f]) for f in hot}
    cluster_of = {f: f for f in hot}

    for func in sorted(hot, key=lambda f: (-graph.weights[f], f)):
        callers = {
            caller: weight for caller, weight in graph.callers_of(func).items()
            if caller in cluster_of
        }
        if not callers:
            continue
        best_caller = max(sorted(callers), key=lambda c: callers[c])
        src = cluster_of[func]
        dst = cluster_of[best_caller]
        if src == dst:
            continue
        # C3 condition: only append when `func` heads its own cluster
        # (call-chain order preserved) and the merge stays under the cap.
        if clusters[src].funcs[0] != func:
            continue
        if clusters[dst].size + clusters[src].size > merge_cap:
            continue
        clusters[dst].merge(clusters[src])
        for moved in clusters[src].funcs:
            cluster_of[moved] = dst
        del clusters[src]

    ordered = sorted(clusters.values(), key=lambda c: (-c.density, c.funcs[0]))
    out = []
    for cluster in ordered:
        out.extend(cluster.funcs)
    out.extend(cold)
    _check_permutation("hfsort", out, graph.weights)
    return out


def hfsort_plus(graph, merge_cap=4096 * 8, page_size=4096):
    """HFSort+ : C3 clusters refined by expected-TLB-gain merging.

    After the C3 phase, clusters are greedily merged when doing so
    reduces the expected number of page crossings along hot arcs:
    gain = (arc weight between clusters) / (pages spanned by merge).

    The inter-cluster arc weights are computed once from the arc list
    and folded together as clusters merge, so each merge iteration
    costs O(live cluster pairs) dictionary lookups instead of
    O(pairs x arcs) rescans.
    """
    base_order = hfsort(graph, merge_cap)
    # Rebuild cluster list from the hfsort result (hot clusters only).
    hot = {f for f, w in graph.weights.items() if w > 0}
    clusters = {}       # stable id -> _Cluster
    cluster_of = {}     # func -> stable id
    order = []          # stable ids in list position order (= old list)
    for func in base_order:
        if func not in hot:
            continue
        cid = len(order)
        clusters[cid] = _Cluster(func, graph.sizes[func], graph.weights[func])
        cluster_of[func] = cid
        order.append(cid)

    # Inter-cluster weights, both directions folded: {a: {b: weight}}.
    inter = {cid: {} for cid in order}
    for (a, b), w in graph.arcs.items():
        ca, cb = cluster_of.get(a), cluster_of.get(b)
        if ca is None or cb is None or ca == cb:
            continue
        inter[ca][cb] = inter[ca].get(cb, 0) + w
        inter[cb][ca] = inter[cb].get(ca, 0) + w

    improved = True
    while improved and len(order) > 1:
        improved = False
        best = None
        # Pair enumeration in list-position order, exactly like the
        # reference's nested index loops — only the weight lookup is O(1).
        for i in range(len(order)):
            a = order[i]
            neighbors = inter[a]
            ca = clusters[a]
            for j in range(i + 1, len(order)):
                b = order[j]
                weight = neighbors.get(b, 0)
                if weight == 0:
                    continue
                merged_size = ca.size + clusters[b].size
                if merged_size > merge_cap * 2:
                    continue
                pages = max(1, (merged_size + page_size - 1) // page_size)
                gain = weight / pages
                if best is None or gain > best[0]:
                    best = (gain, i, j)
        if best is not None:
            _, i, j = best
            a, b = order[i], order[j]
            clusters[a].merge(clusters[b])
            del clusters[b]
            order.pop(j)
            # Fold b's adjacency into a's; the (a, b) pair goes away.
            for n, w in inter.pop(b).items():
                if n == a:
                    continue
                inter[a][n] = inter[a].get(n, 0) + w
                nbrs = inter[n]
                nbrs.pop(b, None)
                nbrs[a] = nbrs.get(a, 0) + w
            inter[a].pop(b, None)
            improved = True

    final = sorted(clusters.values(), key=lambda c: (-c.density, c.funcs[0]))
    out = []
    for cluster in final:
        out.extend(cluster.funcs)
    out.extend(f for f in base_order if f not in hot)
    _check_permutation("hfsort+", out, graph.weights)
    return out
