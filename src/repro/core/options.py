"""BOLT command-line-style options.

Defaults correspond to the configuration the paper's evaluation used
(section 6.2.1):

    -reorder-blocks=cache+ -reorder-functions=hfsort+
    -split-functions=3 -split-all-cold -split-eh -icf=1 -dyno-stats
"""


class BoltOptions:
    def __init__(
        self,
        reorder_blocks="cache+",        # none | reverse | cache | cache+
        reorder_functions="hfsort+",    # none | hfsort | hfsort+
        split_functions=3,              # 0=never .. 3=aggressive
        split_all_cold=True,
        split_eh=True,
        icf=True,
        icp=True,
        icp_top_n=1,
        icp_mispredict_threshold=0.05,
        inline_small=True,
        inline_max_size=32,
        simplify_ro_loads=True,
        plt=True,
        peepholes=True,
        strip_rep_ret=True,
        sctc=True,
        frame_opts=True,
        shrink_wrapping=True,
        uce=True,
        strip_nops=True,
        jump_tables="move",             # none | move (hot tables to .rodata.hot)
        update_debug_sections=True,
        use_relocations=None,           # None = auto (binary has relocs)
        trust_fall_through=True,        # section 5.2 flow repair policy
        use_mcf=True,                   # non-LBR edge inference via MCF
        hot_threshold=1,                # min count for a block to be hot
        dyno_stats=True,
        align_functions=16,
        cold_section_name=".text.cold",
        strict=False,                   # warnings become hard failures
        verify_cfg=False,               # inter-pass CFG validation
        validate_output="structural",   # none | structural | static | execute
        validate_inputs=None,           # smoke inputs for "execute"
        validate_max_instructions=5_000_000,
        lint="post",                    # none | post (post-pass lint gate)
        lint_suppress=(),               # ("BL003", "crc32:BL001", ...)
        stale_matching=True,            # fuzzy-match stale profiles
        stale_min_quality=0.0,          # below: drop the profile entirely
        time_opts=False,                # per-pass wall time (-time-opts)
        time_rewrite=False,             # per-phase wall time (-time-rewrite)
        threads=1,                      # parallel per-function passes
    ):
        self.reorder_blocks = reorder_blocks
        self.reorder_functions = reorder_functions
        self.split_functions = split_functions
        self.split_all_cold = split_all_cold
        self.split_eh = split_eh
        self.icf = icf
        self.icp = icp
        self.icp_top_n = icp_top_n
        self.icp_mispredict_threshold = icp_mispredict_threshold
        self.inline_small = inline_small
        self.inline_max_size = inline_max_size
        self.simplify_ro_loads = simplify_ro_loads
        self.plt = plt
        self.peepholes = peepholes
        self.strip_rep_ret = strip_rep_ret
        self.sctc = sctc
        self.frame_opts = frame_opts
        self.shrink_wrapping = shrink_wrapping
        self.uce = uce
        self.strip_nops = strip_nops
        self.jump_tables = jump_tables
        self.update_debug_sections = update_debug_sections
        self.use_relocations = use_relocations
        self.trust_fall_through = trust_fall_through
        self.use_mcf = use_mcf
        self.hot_threshold = hot_threshold
        self.dyno_stats = dyno_stats
        self.align_functions = align_functions
        self.cold_section_name = cold_section_name
        self.strict = strict
        self.verify_cfg = verify_cfg
        self.validate_output = validate_output
        self.validate_inputs = validate_inputs
        self.validate_max_instructions = validate_max_instructions
        self.lint = lint
        self.lint_suppress = lint_suppress
        self.stale_matching = stale_matching
        self.stale_min_quality = stale_min_quality
        self.time_opts = time_opts
        self.time_rewrite = time_rewrite
        self.threads = threads

    def copy(self, **overrides):
        out = BoltOptions()
        out.__dict__.update(self.__dict__)
        out.__dict__.update(overrides)
        return out
