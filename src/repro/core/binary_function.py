"""BOLT's in-memory representation of functions reconstructed from a
linked binary (the BinaryFunction/BinaryBasicBlock of real BOLT).
"""

import copy


class JumpTable:
    """A recovered jump table: its data symbol/address and the labels of
    the blocks its entries dispatch to."""

    def __init__(self, address, size, entries, section):
        self.address = address          # absolute address of the table
        self.size = size                # bytes
        self.entries = entries          # list of block labels
        self.section = section          # section name holding the table

    def clone(self):
        out = JumpTable(self.address, self.size, list(self.entries),
                        self.section)
        # Dynamic extras (e.g. ``moved_to`` stamped by the rewriter).
        for key, value in self.__dict__.items():
            if key != "entries":
                setattr(out, key, value)
        return out

    def __repr__(self):
        return f"<JumpTable @{self.address:#x} entries={len(self.entries)}>"


class BinaryBasicBlock:
    """A basic block recovered by disassembly.

    ``insns`` contains every instruction including the terminator(s) —
    a block may end with (jcc, jmp), a lone jmp, a return, an indirect
    jump, or nothing (pure fall-through).

    CFG edges are kept as an ordered list of successor labels with
    profile annotations; ``fallthrough_label`` names the successor
    reached by not taking the final conditional branch (or by falling
    off the end).
    """

    def __init__(self, label, offset=0):
        self.label = label
        self.offset = offset            # offset in the original function
        self.insns = []
        self.successors = []            # [label]
        self.edge_counts = {}           # label -> count
        self.edge_mispreds = {}         # label -> mispredicts
        self.fallthrough_label = None
        self.exec_count = 0
        self.is_landing_pad = False
        self.landing_pads = []          # labels this block's calls may unwind to
        self.is_cold = False            # set by reorder-bbs splitting
        self.alignment = 1

    @property
    def size(self):
        return sum(insn.size for insn in self.insns)

    def terminator(self):
        """The last control-flow instruction, or None (fall-through)."""
        if self.insns and self.insns[-1].is_control_flow:
            return self.insns[-1]
        return None

    def edge_count(self, label):
        return self.edge_counts.get(label, 0)

    def set_edge(self, label, count=0, mispreds=0):
        if label not in self.successors:
            self.successors.append(label)
        self.edge_counts[label] = count
        self.edge_mispreds[label] = mispreds

    def remove_successor(self, label):
        if label in self.successors:
            self.successors.remove(label)
        self.edge_counts.pop(label, None)
        self.edge_mispreds.pop(label, None)
        if self.fallthrough_label == label:
            self.fallthrough_label = None

    def clone(self, table_memo=None):
        """Deep copy of the block's mutable state.

        ``table_memo`` maps ``id(JumpTable) -> clone`` so jump-table
        annotations keep pointing at the owning function's (cloned)
        tables, mirroring what ``copy.deepcopy`` memoization did.
        """
        out = BinaryBasicBlock(self.label, self.offset)
        insns = out.insns
        for insn in self.insns:
            clone = insn.copy()
            ann = clone.annotations
            if ann and table_memo:
                table = ann.get("jump-table")
                if table is not None and id(table) in table_memo:
                    ann["jump-table"] = table_memo[id(table)]
            insns.append(clone)
        out.successors = list(self.successors)
        out.edge_counts = dict(self.edge_counts)
        out.edge_mispreds = dict(self.edge_mispreds)
        out.fallthrough_label = self.fallthrough_label
        out.exec_count = self.exec_count
        out.is_landing_pad = self.is_landing_pad
        out.landing_pads = list(self.landing_pads)
        out.is_cold = self.is_cold
        out.alignment = self.alignment
        return out

    def __repr__(self):
        return (f"<BB {self.label} @+{self.offset:#x} insns={len(self.insns)} "
                f"count={self.exec_count}>")


class BinaryFunction:
    """One function under rewriting.

    ``is_simple`` mirrors real BOLT: only simple functions (whose CFG
    was reconstructed with full confidence) are optimized; the rest are
    carried through unchanged (paper sections 3.1 and 6.4).
    """

    def __init__(self, name, address, size, section=".text"):
        self.name = name                # link name
        self.address = address
        self.size = size
        self.section = section
        self.is_simple = True
        self.simple_violation = None    # why the function is non-simple
        self.blocks = {}                # label -> BinaryBasicBlock (layout order)
        self.entry_label = None
        self.raw_bytes = b""            # original body (used when skipped)
        self.jump_tables = []           # [JumpTable]
        self.frame_record = None        # original FrameRecord (or None)
        self.exec_count = 0             # profile: times called
        self.profile_match = None       # fraction of branch records matched
        self.has_profile = False
        self.is_folded = False          # ICF: replaced by ``folded_into``
        self.folded_into = None
        self.is_cold_fragment = False
        self.parent = None              # for split fragments
        self.analysis_facts = {}        # pass name -> facts for lint checkers

    # -- CFG helpers --------------------------------------------------------

    def layout(self):
        """Blocks in current layout order."""
        return list(self.blocks.values())

    def block(self, label):
        return self.blocks[label]

    def add_block(self, block):
        self.blocks[block.label] = block
        if self.entry_label is None:
            self.entry_label = block.label
        return block

    def reorder(self, labels):
        assert set(labels) == set(self.blocks), "layout must be a permutation"
        assert labels[0] == self.entry_label, "entry block must stay first"
        self.blocks = {label: self.blocks[label] for label in labels}

    def predecessors(self):
        preds = {label: [] for label in self.blocks}
        for label, block in self.blocks.items():
            for succ in block.successors:
                if succ in preds:
                    preds[succ].append(label)
            for lp in block.landing_pads:
                if lp in preds:
                    preds[lp].append(label)
        return preds

    def mark_non_simple(self, reason):
        self.is_simple = False
        self.simple_violation = reason

    def clone(self):
        """Deep copy of the mutable CFG state — the pass-containment
        snapshot (much faster than generic ``copy.deepcopy``).

        Blocks, instructions, jump tables, the frame record, and the
        analysis facts are copied; immutable payloads (``raw_bytes``,
        ``SymRef`` operands) and cross-function references (``parent``,
        ``folded_into``) are shared.
        """
        out = BinaryFunction(self.name, self.address, self.size, self.section)
        out.is_simple = self.is_simple
        out.simple_violation = self.simple_violation
        table_memo = {id(t): t.clone() for t in self.jump_tables}
        out.jump_tables = [table_memo[id(t)] for t in self.jump_tables]
        out.blocks = {label: block.clone(table_memo)
                      for label, block in self.blocks.items()}
        out.entry_label = self.entry_label
        out.raw_bytes = self.raw_bytes
        out.frame_record = (self.frame_record.copy()
                            if self.frame_record is not None else None)
        out.exec_count = self.exec_count
        out.profile_match = self.profile_match
        out.has_profile = self.has_profile
        out.is_folded = self.is_folded
        out.folded_into = self.folded_into
        out.is_cold_fragment = self.is_cold_fragment
        out.parent = self.parent
        # Facts are small per-pass structures mutated in place by their
        # emitting passes; generic deepcopy is still right for them.
        out.analysis_facts = copy.deepcopy(self.analysis_facts)
        return out

    def total_size(self):
        """Current code size across all blocks (post-transform)."""
        return sum(block.size for block in self.blocks.values())

    def num_instructions(self):
        return sum(len(block.insns) for block in self.blocks.values())

    def hot_blocks(self, threshold=1):
        return [b for b in self.blocks.values() if b.exec_count >= threshold]

    def cold_blocks(self, threshold=1):
        return [b for b in self.blocks.values() if b.exec_count < threshold]

    def __repr__(self):
        state = "simple" if self.is_simple else f"non-simple({self.simple_violation})"
        return (f"<BinaryFunction {self.name} @{self.address:#x} size={self.size} "
                f"{state} blocks={len(self.blocks)}>")
