"""Dataflow analysis framework for binary functions (paper section 4:
"BOLT is also equipped with a dataflow-analysis framework to feed
information to passes that need it ... to check register liveness at a
given program point, a technique also used by Ispike").

Provides register use/def tables for BX86, backward liveness over
reconstructed CFGs, dominator computation, and stack-slot access
summaries used by frame-opts and shrink-wrapping.
"""

from repro.isa import RBP, RSP, RAX
from repro.isa.opcodes import Op
from repro.isa.registers import ARG_REGS, CALLER_SAVED

#: Pseudo-register index representing the flags.
FLAGS = 16


class UnmodeledOpcodeError(Exception):
    """An opcode has no entry in the use/def table.

    Raised instead of silently returning empty sets: a dataflow client
    treating an unmodeled instruction as a no-op would corrupt
    liveness/preservation results without a trace.  Every :class:`Op`
    is audited below; this fires only for opcodes added to the ISA but
    not to this table (or non-``Op`` garbage).
    """

    def __init__(self, op):
        name = getattr(op, "name", None) or repr(op)
        super().__init__(
            f"no use/def model for opcode {name}; add it to "
            f"insn_uses_defs before running dataflow analyses over it")
        self.op = op


#: Opcodes with no register effects at the dataflow level.  Direct
#: jumps and ``jmp`` through an absolute memory slot transfer control
#: without reading or writing general registers; nops/halt/trap do
#: nothing.  (``PREFIX_0F`` is an encoding artifact, never an opcode a
#: decoded instruction carries — it is deliberately *not* modeled.)
_NO_REG_EFFECT = frozenset({
    Op.NOP, Op.NOPN, Op.HALT, Op.TRAP,
    Op.JMP_SHORT, Op.JMP_NEAR, Op.JMP_MEM,
})


def insn_uses_defs(insn):
    """(uses, defs) register sets for one instruction.

    Covers every :class:`Op`; raises :class:`UnmodeledOpcodeError` for
    anything else rather than silently under-approximating.
    """
    op = insn.op
    r = insn.regs
    if op == Op.MOV_RR:
        return {r[1]}, {r[0]}
    if op in (Op.MOV_RI32, Op.MOV_RI64):
        return set(), {r[0]}
    if op in (Op.LOAD, Op.LEA):
        return {r[1]}, {r[0]}
    if op == Op.STORE:
        return {r[0], r[1]}, set()
    if op == Op.LOAD_ABS:
        return set(), {r[0]}
    if op == Op.STORE_ABS:
        return {r[0]}, set()
    if op == Op.LOADIDX:
        return {r[1], r[2]}, {r[0]}
    if op == Op.STOREIDX:
        return {r[0], r[1], r[2]}, set()
    if op in (Op.ADD_RR, Op.SUB_RR, Op.IMUL_RR, Op.AND_RR, Op.OR_RR,
              Op.XOR_RR, Op.IDIV_RR, Op.IMOD_RR, Op.SHL_RR, Op.SHR_RR,
              Op.SAR_RR):
        return {r[0], r[1]}, {r[0]}
    if op in (Op.ADD_RI, Op.SUB_RI, Op.IMUL_RI, Op.AND_RI, Op.OR_RI,
              Op.XOR_RI, Op.SHL_RI, Op.SHR_RI, Op.SAR_RI, Op.NEG):
        return {r[0]}, {r[0]}
    if op in (Op.CMP_RR, Op.TEST_RR):
        return {r[0], r[1]}, {FLAGS}
    if op in (Op.CMP_RI, Op.TEST_RI):
        return {r[0]}, {FLAGS}
    if op == Op.SETCC:
        return {FLAGS}, {r[0]}
    if op == Op.PUSH:
        return {r[0], RSP}, {RSP}
    if op == Op.POP:
        return {RSP}, {r[0], RSP}
    if op == Op.OUT:
        return {r[0]}, set()
    if op in (Op.CALL, Op.CALL_MEM):
        # Conservative: a call may read every argument register and
        # clobbers all caller-saved registers; it returns in rax.
        return set(ARG_REGS) | {RSP}, set(CALLER_SAVED) | {RSP, FLAGS}
    if op == Op.CALL_REG:
        return set(ARG_REGS) | {RSP, r[0]}, set(CALLER_SAVED) | {RSP, FLAGS}
    if op in (Op.JCC_SHORT, Op.JCC_LONG):
        return {FLAGS}, set()
    if op in (Op.JMP_REG,):
        return {r[0]}, set()
    if op in (Op.RET, Op.REPZ_RET):
        return {RAX, RSP}, {RSP}
    if op in _NO_REG_EFFECT:
        return set(), set()
    raise UnmodeledOpcodeError(op)


def block_uses_defs(block):
    """Upward-exposed uses and defs for a whole block."""
    uses, defs = set(), set()
    for insn in block.insns:
        u, d = insn_uses_defs(insn)
        uses |= (u - defs)
        defs |= d
    return uses, defs


def liveness(func):
    """Backward liveness; returns (live_in, live_out) per block label.

    Exit blocks (returns, tail calls) are assumed to have rax + the
    callee-saved registers live out (conservative ABI boundary).
    """
    from repro.isa.registers import CALLEE_SAVED

    exit_live = set(CALLEE_SAVED) | {RAX, RSP, RBP}
    gen = {}
    kill = {}
    succs = {}
    for label, block in func.blocks.items():
        gen[label], kill[label] = block_uses_defs(block)
        succs[label] = list(block.successors) + list(block.landing_pads)

    live_in = {label: set() for label in func.blocks}
    live_out = {label: set() for label in func.blocks}
    changed = True
    while changed:
        changed = False
        for label in reversed(list(func.blocks)):
            out = set()
            if not succs[label]:
                out = set(exit_live)
            for succ in succs[label]:
                out |= live_in.get(succ, set())
            term = func.blocks[label].terminator()
            if term is not None and (term.is_return
                                     or term.get_annotation("tailcall", "!") != "!"):
                out |= exit_live
            new_in = gen[label] | (out - kill[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return live_in, live_out


def dominators(func):
    """Iterative dominator sets: label -> set of dominating labels."""
    labels = list(func.blocks)
    preds = func.predecessors()
    entry = func.entry_label
    dom = {label: set(labels) for label in labels}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for label in labels:
            if label == entry:
                continue
            plist = preds[label]
            if plist:
                new = set.intersection(*(dom[p] for p in plist)) | {label}
            else:
                # Unreachable block: keep the full set so it never
                # constrains the intersection at blocks it branches to.
                new = dom[label]
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


def reachable_from(func, start):
    """Labels reachable from ``start`` (following CFG + landing pads)."""
    seen = set()
    stack = [start]
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        block = func.blocks[label]
        stack.extend(block.successors)
        stack.extend(block.landing_pads)
    return seen


def stack_slot_accesses(func):
    """Summarize rbp-relative slot accesses.

    Returns (loads, stores, rbp_escapes): sets of disp values read and
    written through rbp, and whether rbp's value flows anywhere we
    cannot track (copied to another register) — in which case slot
    analysis must be abandoned.
    """
    loads, stores = set(), set()
    escapes = False
    for block in func.blocks.values():
        for insn in block.insns:
            op = insn.op
            if op == Op.LOAD and insn.regs[1] == RBP:
                loads.add(insn.disp)
            elif op == Op.STORE and insn.regs[0] == RBP:
                stores.add(insn.disp)
            elif op == Op.LEA and insn.regs[1] == RBP:
                escapes = True
            elif op == Op.MOV_RR and insn.regs[1] == RBP and insn.regs[0] != RSP:
                escapes = True
            elif op in (Op.LOADIDX, Op.STOREIDX) and RBP in insn.regs[1:]:
                escapes = True
    return loads, stores, escapes
