"""The rewriting pipeline driver (paper Figure 3) and binary rewriting.

Two operating modes, mirroring the paper's evolution:

* **in-place mode** (section 3.1, the initial design): every optimized
  function is rewritten within its original extent; if the optimized
  hot code does not fit, the function reverts to its original bytes.
  Cold blocks split off into a new high-address section.  Functions
  never move, so no relocations are required.
* **relocations mode** (section 3.2): with ``--emit-relocs``
  information available, every function is repositioned — enabling
  whole-binary function reordering (HFSort) and aggressive splitting.
"""

import time
from contextlib import nullcontext

from repro.belf import (
    Binary,
    CallSiteRecord,
    FrameRecord,
    LineTable,
    RelocType,
    Section,
    SectionFlag,
    Symbol,
    SymbolBind,
    SymbolType,
    PAGE_SIZE,
)
from repro.linker import BUILTINS
from repro.core.binary_context import BinaryContext
from repro.core.cfg_builder import ABS_SYMBOL, build_all_functions
from repro.core.diagnostics import Severity
from repro.core.discovery import discover_functions
from repro.core.dyno_stats import compute_dyno_stats
from repro.core.emitter import COLD_SUFFIX, Fragment, emit_function, _emit_raw
from repro.core.options import BoltOptions
from repro.core.passes.base import build_pipeline
from repro.core.profile_attach import attach_profile
from repro.core.timing import timing_report_for
from repro.core.validate import validate_execution, validate_rewrite


class RewriteError(Exception):
    pass


class RewriteResult:
    def __init__(self, binary, context, pass_stats, dyno_before, dyno_after):
        self.binary = binary
        self.context = context
        self.pass_stats = pass_stats
        self.dyno_before = dyno_before
        self.dyno_after = dyno_after
        self.reverted = []
        self.hot_text_size = 0
        self.cold_text_size = 0
        self.degraded = None    # None | "in-place" | "passthrough"
        self.fragments = None   # name -> emitted Fragment (set by _rewrite)
        self.timing = None      # TimingReport (set when timing options on)

    @property
    def diagnostics(self):
        return self.context.diagnostics

    def summary(self):
        """A BOLT-INFO style textual report of what the run did."""
        functions = list(self.context.functions.values())
        simple = [f for f in functions if f.is_simple]
        profiled = [f for f in simple if f.has_profile]
        folded = [f for f in functions if f.is_folded]
        lines = [
            f"BOLT-INFO: {len(functions)} functions discovered, "
            f"{len(simple)} simple ({len(functions) - len(simple)} "
            f"conservatively skipped)",
            f"BOLT-INFO: {len(profiled)} functions with profile "
            f"({len(folded)} folded by ICF)",
            f"BOLT-INFO: {self.context.binary.text_size():,}B text in -> "
            f"{self.hot_text_size:,}B hot + {self.cold_text_size:,}B cold out",
        ]
        if self.reverted:
            lines.append(
                f"BOLT-INFO: {len(self.reverted)} function(s) reverted "
                f"(optimized code did not fit in place)")
        matches = [f.profile_match for f in profiled
                   if f.profile_match is not None]
        if matches:
            lines.append(
                f"BOLT-INFO: profile match "
                f"{100 * sum(matches) / len(matches):.1f}% (average)")
        for name, stats in self.pass_stats.items():
            interesting = {k: v for k, v in stats.items() if v}
            if interesting:
                lines.append(f"BOLT-INFO: pass {name}: {interesting}")
        if self.dyno_before is not None and self.dyno_after is not None:
            delta = self.dyno_after.delta_vs(self.dyno_before)
            taken = delta.get("taken_branches")
            if taken is not None:
                lines.append(
                    f"BOLT-INFO: dyno-stats: taken branches {taken:+.1%}, "
                    f"executed instructions "
                    f"{delta['executed_instructions']:+.1%}")
        if self.context.stale_profile:
            quality = self.context.profile_quality
            lines.append(
                "BOLT-INFO: stale profile fuzzy-matched"
                + (f" (quality {quality:.1%})" if quality is not None else ""))
        if self.degraded:
            lines.append(f"BOLT-WARNING: output degraded to "
                         f"{self.degraded} mode")
        if self.timing:
            from repro.core.reports import format_timing_table
            lines.append(format_timing_table(self.timing))
        lines.extend(self.diagnostics.render(Severity.WARNING))
        return "\n".join(lines)


def optimize_binary(binary, profile=None, options=None):
    """Run the full BOLT pipeline; returns a RewriteResult whose
    ``.binary`` is the optimized executable.

    Fault tolerance: per-function failures are contained by the pass
    manager; a post-rewrite validation gate re-disassembles the output
    and, on failure, walks a graceful-degradation ladder — retry
    without relocations (in-place mode), then fall back to returning
    the original binary — instead of shipping a corrupt executable.
    In ``options.strict`` mode every contained event raises instead.
    """
    options = options or BoltOptions()

    # The static tier certifies the rewrite against the *input*'s
    # facts, so a corrupt input (garbage bodies, lying symbol sizes,
    # dangling relocations) is rejected before any rewrite attempt —
    # some corruptions would otherwise crash discovery mid-attempt and
    # lose the precise rule-ID diagnosis.
    if options.validate_output in ("static", "execute"):
        input_problems = _input_lint_problems(binary, options)
        if input_problems:
            if options.strict:
                raise RewriteError("input fails static lint: "
                                   + "; ".join(input_problems[:5]))
            result = _passthrough_result(binary, profile, options)
            for problem in input_problems[:10]:
                result.diagnostics.error(
                    "validate", f"input fails static lint: {problem}")
            result.diagnostics.warning(
                "validate", "input fails static lint; returning the "
                "original binary unchanged")
            return result

    if options.strict:
        result = _optimize_once(binary, profile, options)
        with _phase(result.timing, "validate gate"):
            problems = _gate_problems(binary, result, options)
        if problems:
            raise RewriteError(
                "post-rewrite validation failed: " + "; ".join(problems[:5]))
        return result

    attempts = [(None, options)]
    wants_relocs = (options.use_relocations
                    or (options.use_relocations is None
                        and bool(binary.relocations)))
    if wants_relocs:
        attempts.append(("in-place", options.copy(use_relocations=False)))

    carried = []
    for degraded, opts in attempts:
        try:
            result = _optimize_once(binary, profile, opts)
        except Exception as exc:
            carried.append(("rewrite" if degraded is None
                            else f"rewrite:{degraded}",
                            f"rewrite failed ({type(exc).__name__}: {exc})"))
            continue
        for component, message in carried:
            result.diagnostics.error(component, message)
        with _phase(result.timing, "validate gate"):
            problems = _gate_problems(binary, result, opts)
        if not problems:
            result.degraded = degraded
            if degraded:
                result.diagnostics.warning(
                    "validate", f"degraded to {degraded} mode after "
                    f"validation failure on the preferred mode")
            return result
        for problem in problems[:10]:
            carried.append(("validate" if degraded is None
                            else f"validate:{degraded}", problem))

    # Last rung: ship the original binary unmodified.
    result = _passthrough_result(binary, profile, options)
    for component, message in carried:
        result.diagnostics.error(component, message)
    result.diagnostics.warning(
        "validate", "all rewrite attempts failed validation; returning "
        "the original binary unchanged")
    return result


def _phase(timing, name):
    """A phase-timer context (no-op when timing is off)."""
    return timing.phase(name) if timing is not None else nullcontext()


def _optimize_once(binary, profile, options):
    timing = timing_report_for(options)
    started = time.perf_counter() if timing is not None else None
    context = BinaryContext(binary, options)
    context.timing = timing
    with _phase(timing, "discover functions"):
        discover_functions(context)
    with _phase(timing, "build CFGs"):
        build_all_functions(context)
    context.profile = profile
    context.function_order = None
    if profile is not None:
        with _phase(timing, "attach profile"):
            attach_profile(context, profile)
    with _phase(timing, "dyno-stats (input)"):
        dyno_before = (compute_dyno_stats(context)
                       if options.dyno_stats else None)
    manager = build_pipeline(options)
    with _phase(timing, "optimization passes"):
        pass_stats = manager.run(context)
    if getattr(options, "lint", "none") not in (None, "none", False):
        with _phase(timing, "lint gate"):
            _lint_gate(context)
    with _phase(timing, "dyno-stats (output)"):
        dyno_after = (compute_dyno_stats(context)
                      if options.dyno_stats else None)

    result = RewriteResult(None, context, pass_stats, dyno_before, dyno_after)
    with _phase(timing, "emit and link"):
        result.binary = _rewrite(context, result)
    if timing is not None:
        timing.total_seconds = time.perf_counter() - started
    result.timing = timing
    return result


def _lint_gate(context):
    """Post-pass lint: contain functions whose invariants a pass broke.

    Runs the :mod:`repro.analysis` IR checkers over every still-simple
    function after the pipeline; a function with an ERROR-severity
    finding is demoted to raw (original bytes emitted verbatim) via the
    same containment machinery per-function pass failures use.
    """
    from repro.analysis.binlint import lint_context
    from repro.core.cfg_builder import demote_to_raw

    by_function = lint_context(
        context, suppress=getattr(context.options, "lint_suppress", ()))
    for name, findings in by_function.items():
        errors = [f for f in findings if f.severity >= Severity.ERROR]
        for finding in findings:
            if finding not in errors:
                context.diagnostics.note(
                    f"lint:{finding.rule}", finding.message, function=name)
        if not errors:
            continue
        first = errors[0]
        context.diagnostics.warning(
            f"lint:{first.rule}",
            f"post-pass lint found {len(errors)} error(s) "
            f"({', '.join(sorted({f.rule for f in errors}))}): "
            f"{first.message}; function demoted to non-simple",
            function=name)
        demote_to_raw(context, context.functions[name],
                      f"lint {first.rule} after passes")


def _gate_problems(binary, result, options):
    """Run the post-rewrite validation gate; returns problem strings.

    Tiers (each level includes the previous ones):

    * ``structural`` — well-formedness of the emitted binary.
    * ``static`` — whole-binary lint of the input and output plus
      translation validation of every emitted function against its
      optimized IR (rule IDs ``BL1xx``/``BL2xx``/``BL0xx``).
    * ``execute`` — a smoke run comparing program output.
    """
    level = options.validate_output
    if level in (None, "none"):
        return []
    problems = validate_rewrite(result.context, result.binary)
    if not problems and level in ("static", "execute"):
        problems = _static_problems(binary, result, options)
    if not problems and level == "execute":
        problems = validate_execution(
            binary, result.binary, inputs=options.validate_inputs,
            max_instructions=options.validate_max_instructions,
            diagnostics=result.context.diagnostics)
    return problems


def _render_finding(finding):
    where = f" [{finding.function}]" if finding.function else ""
    return f"{finding.rule}{where}: {finding.message}"


def _input_lint_problems(binary, options):
    """Static lint of the input binary (the static tier's first leg)."""
    from repro.analysis import lint_binary

    report = lint_binary(binary, options=options,
                         suppress=getattr(options, "lint_suppress", ()))
    return [_render_finding(f) for f in report.errors]


def _static_problems(binary, result, options):
    """The static-equivalence tier of the validation gate.

    Input trustworthiness is checked once, up front, in
    :func:`optimize_binary`; here the emitted candidate is linted and
    matched against the optimized IR.
    """
    from repro.analysis import lint_binary, validate_translation

    suppress = getattr(options, "lint_suppress", ())
    render = _render_finding

    problems = [f"output fails static lint: {render(f)}"
                for f in lint_binary(result.binary, options=options,
                                     suppress=suppress).errors]
    problems += [
        f"translation validation: {render(f)}"
        for f in validate_translation(
            result.context, result.binary, result.fragments,
            skip=set(result.reverted))
    ]
    return problems


def _passthrough_result(binary, profile, options):
    """The ladder's last rung: the input binary, reported honestly."""
    context = BinaryContext(binary, options)
    try:
        discover_functions(context)
        build_all_functions(context)
    except Exception as exc:
        # Reporting-only state: the binary itself is returned untouched,
        # but say *why* the summary counts will be incomplete instead of
        # swallowing the failure.
        context.diagnostics.warning(
            "passthrough",
            f"could not rebuild reporting state from the input binary "
            f"({type(exc).__name__}: {exc}); summary counts will be "
            f"incomplete")
    context.profile = profile
    context.function_order = None
    result = RewriteResult(binary, context, {}, None, None)
    result.degraded = "passthrough"
    result.hot_text_size = binary.text_size()
    return result


# ---------------------------------------------------------------------------


def _rewrite(context, result):
    binary = context.binary
    options = context.options
    relocs_mode = context.use_relocations

    # 1. Emit fragments.
    frag_lists = {}
    for name, func in context.functions.items():
        if func.is_folded:
            continue
        frag_lists[name] = emit_function(func, options)

    # In-place mode: revert functions whose optimized hot part outgrew
    # the original extent (paper 3.1).
    if not relocs_mode:
        for name, frags in list(frag_lists.items()):
            func = frags[0].func
            if frags[0].raw:
                continue
            if frags[0].size > func.size:
                frag_lists[name] = [_emit_raw(func)]
                func.frame_record = (
                    binary.frame_records[name].copy()
                    if name in binary.frame_records else None)
                result.reverted.append(name)

    fragments = {}
    for frags in frag_lists.values():
        for frag in frags:
            fragments[frag.name] = frag

    # 2. Place fragments.
    old_text = binary.get_section(".text")
    cold_name = options.cold_section_name
    if relocs_mode:
        hot_addr_end = _place_relocations_mode(context, binary, fragments,
                                               frag_lists, options)
    else:
        hot_addr_end = _place_in_place_mode(context, binary, fragments,
                                            frag_lists)
    cold_base = _next_free_address(binary, extra_end=hot_addr_end)
    offset = 0
    for frag in fragments.values():
        if frag.is_cold:
            offset = _align(offset, options.align_functions)
            frag.address = cold_base + offset
            offset += frag.size
    cold_size = offset

    # 3. Build output sections.
    out = Binary(kind="exec", name=binary.name)
    hot_lo = min((f.address for f in fragments.values() if not f.is_cold),
                 default=old_text.addr)
    hot_hi = max((f.address + f.size for f in fragments.values()
                  if not f.is_cold), default=old_text.addr)
    if not relocs_mode:
        hot_lo, hot_hi = old_text.addr, old_text.end

    text = Section(".text", flags=SectionFlag.ALLOC | SectionFlag.EXEC,
                   addr=hot_lo, align=PAGE_SIZE)
    if relocs_mode:
        text.data = bytearray(b"\x01" * (hot_hi - hot_lo))
    else:
        text.data = bytearray(old_text.data)
    out.add_section(text)

    for section in binary.sections.values():
        if section.name == ".text":
            continue
        clone = Section(section.name, type=section.type, flags=section.flags,
                        addr=section.addr, data=bytes(section.data),
                        align=section.align,
                        mem_size=section.size if not section.data else None)
        out.add_section(clone)

    cold = None
    if cold_size:
        cold = Section(cold_name, flags=SectionFlag.ALLOC | SectionFlag.EXEC,
                       addr=cold_base, data=b"\x01" * cold_size,
                       align=PAGE_SIZE)
        out.add_section(cold)

    def section_for(frag):
        return cold if frag.is_cold else text

    # 4. Write fragment bytes (padding freed space with NOPs in place).
    for frag in fragments.values():
        section = section_for(frag)
        frag._out_section = section
        off = frag.address - section.addr
        section.data[off : off + frag.size] = frag.image.code
        if not relocs_mode and not frag.is_cold and not frag.raw:
            slack = frag.func.size - frag.size
            if slack > 0:
                section.data[off + frag.size : off + frag.func.size] = (
                    b"\x01" * slack)

    # 5. Resolve relocations in emitted code.
    resolver = _Resolver(context, fragments)
    for frag in fragments.values():
        section = section_for(frag)
        base = frag.address - section.addr
        for offset, rtype, symbol, addend in frag.image.relocations:
            if isinstance(addend, tuple) and addend and addend[0] == "label":
                addend = fragments[symbol].image.labels[addend[1]]
            value = resolver.resolve(symbol) + addend
            _patch(section, base + offset, rtype, value,
                   frag.address + offset)

    # 6. Patch discovered jump tables of simple functions.  With
    #    -jump-tables=move, hot functions' tables are relocated together
    #    into a fresh read-only section so the hot D-TLB/D-cache
    #    footprint shrinks (paper section 6.1: "reordering jump tables
    #    for locality").
    table_slots = set()
    moved_tables = []
    if options.jump_tables == "move":
        for name, func in context.functions.items():
            if (func.is_simple and not func.is_folded and func.jump_tables
                    and func.exec_count >= options.hot_threshold):
                moved_tables.extend(
                    (func, table) for table in func.jump_tables)
    hot_ro = None
    if moved_tables:
        # Re-BOLTing a binary that already has a hot-tables section:
        # pick a fresh name (the stale one keeps its mapping).
        ro_name = ".rodata.hot"
        suffix = 0
        while ro_name in out.sections:
            suffix += 1
            ro_name = f".rodata.hot.{suffix}"
        hot_ro = Section(ro_name, flags=SectionFlag.ALLOC, align=8,
                         addr=_next_free_address(
                             binary, extra_end=(cold.end if cold else hot_addr_end)))
        out.add_section(hot_ro)
        for func, table in moved_tables:
            new_addr = hot_ro.addr + len(hot_ro.data)
            hot_ro.data += b"\x00" * table.size
            _retarget_table_base(fragments, func, table, new_addr)
            table.moved_to = new_addr

    for name, func in context.functions.items():
        if not func.is_simple or func.is_folded:
            continue
        for table in func.jump_tables:
            original_section = context.binary.get_section(table.section)
            for i in range(table.size // 8):
                table_slots.add((table.section,
                                 table.address + 8 * i - original_section.addr))
            new_base = getattr(table, "moved_to", None)
            if new_base is not None:
                section, base = hot_ro, new_base
            else:
                section, base = out.get_section(table.section), table.address
            for i, label in enumerate(table.entries):
                address = _label_address(fragments, func, label)
                off = base + 8 * i - section.addr
                section.data[off : off + 8] = address.to_bytes(8, "little")

    # 7. Apply retained input relocations against moved code (reloc mode).
    if relocs_mode:
        for reloc in binary.relocations:
            in_section = binary.get_section(reloc.section)
            if in_section is None or in_section.is_exec:
                continue
            if (reloc.section, reloc.offset) in table_slots:
                continue
            target = resolver.resolve_or_none(reloc.symbol)
            if target is None:
                continue
            out_section = out.get_section(reloc.section)
            _patch(out_section, reloc.offset, reloc.type,
                   target + reloc.addend,
                   out_section.addr + reloc.offset)

    # 8. Symbols (with moved jump tables re-pointed at .rodata.hot).
    _emit_symbols(context, out, fragments)
    if moved_tables:
        relocated = {func_table[1].address: func_table[1].moved_to
                     for func_table in moved_tables}
        for sym in out.symbols:
            if (sym.type == SymbolType.OBJECT
                    and sym.value in relocated):
                sym.value = relocated[sym.value]
                sym.section = hot_ro.name
        out.invalidate_symbol_cache()

    # 9. Frame records.
    _emit_frame_records(context, out, fragments)

    # 10. Line table.
    _emit_line_table(context, out, fragments)

    # 11. Entry point.
    entry_sym = context.function_symbol_at(binary.entry)
    if entry_sym is None:
        raise RewriteError("entry point not inside any function")
    entry_func = context.functions[entry_sym.link_name()]
    while entry_func.is_folded:
        entry_func = entry_func.folded_into
    out.entry = fragments[entry_func.name].address

    result.hot_text_size = sum(
        f.size for f in fragments.values() if not f.is_cold)
    result.cold_text_size = cold_size
    result.fragments = fragments
    return out


def _align(value, alignment):
    return (value + alignment - 1) & ~(alignment - 1)


def _next_free_address(binary, extra_end=0):
    end = extra_end
    for section in binary.sections.values():
        if section.is_alloc:
            end = max(end, section.end)
    return _align(end, PAGE_SIZE)


def _place_relocations_mode(context, binary, fragments, frag_lists, options):
    """Sequential placement in (HFSort) order; returns the end address."""
    old_text = binary.get_section(".text")
    order = context.function_order
    names = [n for n in frag_lists]
    if order:
        rank = {name: i for i, name in enumerate(order)}
        names.sort(key=lambda n: rank.get(n, len(rank)))
    hot_total = sum(
        _align(f.size, options.align_functions)
        for frags in frag_lists.values() for f in frags if not f.is_cold)
    plt = binary.get_section(".plt")
    capacity = (plt.addr if plt is not None else 1 << 62) - old_text.addr
    if hot_total <= capacity:
        base = old_text.addr
    else:
        base = _next_free_address(binary)
    pinned = [f for frags in frag_lists.values() for f in frags
              if f.raw and not f.func.blocks]
    if pinned:
        raise RewriteError(
            f"cannot relocate undecodable function {pinned[0].name!r}; "
            "use in-place mode")
    offset = 0
    for name in names:
        for frag in frag_lists[name]:
            if frag.is_cold:
                continue
            offset = _align(offset, options.align_functions)
            frag.address = base + offset
            offset += frag.size
    return base + offset


def _place_in_place_mode(context, binary, fragments, frag_lists):
    end = binary.get_section(".text").end
    for frags in frag_lists.values():
        for frag in frags:
            if not frag.is_cold:
                frag.address = frag.func.address
    return end


class _Resolver:
    def __init__(self, context, fragments):
        self.context = context
        self.fragments = fragments
        self.data_symbols = {
            sym.link_name(): sym.value
            for sym in context.binary.symbols
            if sym.type != SymbolType.FUNC
        }

    def resolve_or_none(self, name):
        if name == ABS_SYMBOL:
            return 0
        frag = self.fragments.get(name)
        if frag is not None:
            return frag.address
        func = self.context.functions.get(name)
        if func is not None and func.is_folded:
            target = func.folded_into
            while target.is_folded:
                target = target.folded_into
            return self.fragments[target.name].address
        if name in self.data_symbols:
            return self.data_symbols[name]
        if name in BUILTINS:
            return BUILTINS[name]
        return None

    def resolve(self, name):
        value = self.resolve_or_none(name)
        if value is None:
            raise RewriteError(f"unresolved symbol {name!r} during rewrite")
        return value


def _patch(section, offset, rtype, value, place):
    if rtype in (RelocType.ABS64, "abs64"):
        section.data[offset : offset + 8] = (value & ((1 << 64) - 1)).to_bytes(
            8, "little")
    elif rtype in (RelocType.ABS32, "abs32"):
        if not 0 <= value < 1 << 32:
            raise RewriteError(f"ABS32 overflow patching at {place:#x}")
        section.data[offset : offset + 4] = value.to_bytes(4, "little")
    else:  # PC32
        rel = value - (place + 4)
        if not -(1 << 31) <= rel < 1 << 31:
            raise RewriteError(f"PC32 overflow patching at {place:#x}")
        section.data[offset : offset + 4] = rel.to_bytes(4, "little",
                                                         signed=True)


def _retarget_table_base(fragments, func, table, new_addr):
    """Patch the dispatch sequence's base materialization (MOV_RI32 with
    the table's old address) to the relocated table, in every fragment
    of the owning function — directly in the emitted bytes."""
    from repro.isa import Op
    from repro.core.emitter import COLD_SUFFIX

    for frag_name in (func.name, func.name + COLD_SUFFIX):
        frag = fragments.get(frag_name)
        if frag is None or frag.raw:
            continue
        section = frag._out_section
        base = frag.address - section.addr
        for offset, insn in frag.image.insn_offsets:
            if insn.op == Op.MOV_RI32 and insn.imm == table.address \
                    and insn.sym is None:
                slot = base + offset + 2
                section.data[slot : slot + 4] = new_addr.to_bytes(4, "little")


def _label_address(fragments, func, label):
    hot = fragments.get(func.name)
    cold = fragments.get(func.name + COLD_SUFFIX)
    for frag in (hot, cold):
        if frag is not None and label in frag.image.labels:
            return frag.address + frag.image.labels[label]
    raise RewriteError(f"label {label} of {func.name} not emitted")


def _emit_symbols(context, out, fragments):
    for sym in context.binary.symbols:
        if sym.type != SymbolType.FUNC:
            out.add_symbol(Symbol(sym.name, value=sym.value, size=sym.size,
                                  type=sym.type, bind=sym.bind,
                                  section=sym.section, module=sym.module))
            continue
        func = context.functions.get(sym.link_name())
        if func is None:
            out.add_symbol(Symbol(sym.name, value=sym.value, size=sym.size,
                                  type=sym.type, bind=sym.bind,
                                  section=sym.section, module=sym.module))
            continue
        target = func
        while target.is_folded:
            target = target.folded_into
        frag = fragments[target.name]
        out.add_symbol(Symbol(sym.name, value=frag.address, size=frag.size,
                              type=SymbolType.FUNC, bind=sym.bind,
                              section=".text", module=sym.module))
    for frag in fragments.values():
        if frag.is_cold:
            out.add_symbol(Symbol(frag.name, value=frag.address,
                                  size=frag.size, type=SymbolType.FUNC,
                                  bind=SymbolBind.LOCAL,
                                  section=context.options.cold_section_name))


def _emit_frame_records(context, out, fragments):
    aliases = []
    for name, func in context.functions.items():
        if func.is_folded:
            target = func.folded_into
            while target.is_folded:
                target = target.folded_into
            aliases.append((name, target.name))
            continue
        if func.frame_record is None:
            continue
        record = func.frame_record
        if not func.is_simple:
            out.frame_records[name] = record.copy()
            continue
        for frag_name in (name, name + COLD_SUFFIX):
            frag = fragments.get(frag_name)
            if frag is None:
                continue
            callsites = [
                CallSiteRecord(cs.start, cs.end, cs.landing_pad, cs.action)
                for cs in frag.image.callsites
            ]
            for start, end, other_name, lp_label in getattr(
                    frag, "extern_callsites", ()):
                other = fragments[other_name]
                lp_addr = other.address + other.image.labels[lp_label]
                callsites.append(
                    CallSiteRecord(start, end, lp_addr - frag.address))
            # Every fragment needs a record: the unwinder must be able to
            # unwind *through* calls in cold fragments too.
            out.frame_records[frag_name] = FrameRecord(
                frag_name, frame_size=record.frame_size,
                saved_regs=list(record.saved_regs), callsites=callsites)

    # Folded functions: their symbols alias the survivor's code, and the
    # unwinder may resolve an address to either name.
    for alias, survivor in aliases:
        record = out.frame_records.get(survivor)
        if record is not None:
            clone = record.copy()
            clone.func = alias
            out.frame_records[alias] = clone


def _emit_line_table(context, out, fragments):
    if context.binary.line_table is None:
        return
    if not context.options.update_debug_sections:
        out.line_table = None
        return
    table = LineTable()
    for frag in fragments.values():
        if frag.raw:
            delta = frag.address - frag.func.address
            lo, hi = frag.func.address, frag.func.address + frag.func.size
            for entry in context.binary.line_table:
                if lo <= entry.addr < hi:
                    table.add(entry.addr + delta, entry.file, entry.line)
            continue
        for offset, file, line in frag.image.line_rows:
            table.add(frag.address + offset, file, line)
    out.line_table = table
