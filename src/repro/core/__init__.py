"""BOLT: the post-link binary optimizer (the paper's contribution).

The rewriting pipeline follows Figure 3 of the paper:

    function discovery -> read debug info -> read profile data ->
    disassembly -> CFG construction -> optimization pipeline ->
    emit and link functions -> rewrite binary file

and the optimization pipeline implements all 16 passes of Table 1.
"""

from repro.core.options import BoltOptions
from repro.core.binary_function import BinaryBasicBlock, BinaryFunction, JumpTable
from repro.core.binary_context import BinaryContext
from repro.core.diagnostics import Diagnostic, Diagnostics, Severity, StrictModeError
from repro.core.rewriter import optimize_binary, RewriteError, RewriteResult
from repro.core.dyno_stats import DynoStats, compute_dyno_stats
from repro.core.hfsort import hfsort, hfsort_plus, CallGraph
from repro.core.reports import report_bad_layout, dump_function

__all__ = [
    "BoltOptions",
    "BinaryBasicBlock",
    "BinaryFunction",
    "JumpTable",
    "BinaryContext",
    "Diagnostic",
    "Diagnostics",
    "Severity",
    "StrictModeError",
    "optimize_binary",
    "RewriteError",
    "RewriteResult",
    "DynoStats",
    "compute_dyno_stats",
    "hfsort",
    "hfsort_plus",
    "CallGraph",
    "report_bad_layout",
    "dump_function",
]
