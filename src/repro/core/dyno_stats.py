"""Dyno-stats: profile-weighted dynamic execution statistics
(`-dyno-stats`), the source of the paper's Table 2.

Computed from the annotated CFG: every metric is the profile-weighted
count of what the *current* code layout would execute.  Comparing
before/after values reproduces Table 2's rows (e.g. "taken branches
-69.8%", "taken forward branches -83.9%").
"""

from repro.isa import Op


class DynoStats:
    FIELDS = (
        "executed_instructions",
        "executed_forward_branches",
        "taken_forward_branches",
        "executed_backward_branches",
        "taken_backward_branches",
        "executed_unconditional_branches",
        "total_branches",
        "taken_branches",
        "non_taken_conditional_branches",
        "taken_conditional_branches",
        "executed_calls",
        "indirect_calls",
    )

    def __init__(self):
        for field in self.FIELDS:
            setattr(self, field, 0)

    def __add__(self, other):
        out = DynoStats()
        for field in self.FIELDS:
            setattr(out, field, getattr(self, field) + getattr(other, field))
        return out

    def delta_vs(self, baseline):
        """Relative change per field vs a baseline (Table 2 style)."""
        out = {}
        for field in self.FIELDS:
            base = getattr(baseline, field)
            new = getattr(self, field)
            out[field] = (new - base) / base if base else None
        return out

    def as_dict(self):
        return {field: getattr(self, field) for field in self.FIELDS}

    def __repr__(self):
        return (f"<DynoStats instructions={self.executed_instructions} "
                f"taken={self.taken_branches}/{self.total_branches}>")


def compute_function_dyno_stats(func):
    """Stats for one function in its *current* layout."""
    stats = DynoStats()
    if not func.is_simple:
        return stats
    layout = func.layout()
    position = {block.label: i for i, block in enumerate(layout)}
    for i, block in enumerate(layout):
        count = block.exec_count
        if count <= 0:
            continue
        stats.executed_instructions += count * len(block.insns)
        for insn in block.insns:
            if insn.is_call:
                stats.executed_calls += count
                if insn.is_indirect:
                    stats.indirect_calls += count
            if insn.is_cond_branch:
                taken = block.edge_counts.get(insn.label, 0)
                taken = min(taken, count)
                not_taken = max(0, count - taken)
                forward = (insn.label is not None
                           and position.get(insn.label, i + 1) > i)
                stats.total_branches += count
                stats.taken_branches += taken
                stats.taken_conditional_branches += taken
                stats.non_taken_conditional_branches += not_taken
                if forward:
                    stats.executed_forward_branches += count
                    stats.taken_forward_branches += taken
                else:
                    stats.executed_backward_branches += count
                    stats.taken_backward_branches += taken
            elif insn.op in (Op.JMP_SHORT, Op.JMP_NEAR, Op.JMP_REG,
                             Op.JMP_MEM):
                stats.total_branches += count
                stats.taken_branches += count
                stats.executed_unconditional_branches += count
                forward = (insn.label is not None
                           and position.get(insn.label, i + 1) > i)
                if insn.label is not None:
                    if forward:
                        stats.executed_forward_branches += count
                        stats.taken_forward_branches += count
                    else:
                        stats.executed_backward_branches += count
                        stats.taken_backward_branches += count
    return stats


def compute_dyno_stats(context):
    """Aggregate dyno-stats over all simple functions."""
    total = DynoStats()
    for func in context.simple_functions():
        total = total + compute_function_dyno_stats(func)
    return total
