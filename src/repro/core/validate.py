"""CFG invariant checking for BinaryFunctions.

Used by the test-suite to validate the IR between optimization passes:
every structural property the emitter and profile code rely on is
checked, so a pass that corrupts the CFG fails fast with a precise
message instead of producing a subtly-wrong binary.
"""

from repro.isa import Op


class ValidationError(AssertionError):
    pass


def validate_function(func):
    """Check structural invariants of one simple function."""
    if not func.is_simple:
        return
    problems = []
    labels = set(func.blocks)

    if func.entry_label not in labels:
        problems.append(f"entry block {func.entry_label} missing")

    for label, block in func.blocks.items():
        if block.label != label:
            problems.append(f"{label}: key/label mismatch ({block.label})")
        for succ in block.successors:
            if succ not in labels:
                problems.append(f"{label}: successor {succ} does not exist")
        for lp in block.landing_pads:
            if lp not in labels:
                problems.append(f"{label}: landing pad {lp} does not exist")
            elif not func.blocks[lp].is_landing_pad:
                problems.append(f"{label}: {lp} is not a landing-pad block")
        if (block.fallthrough_label is not None
                and block.fallthrough_label not in block.successors):
            problems.append(
                f"{label}: fall-through {block.fallthrough_label} "
                f"not among successors {block.successors}")
        for succ in block.edge_counts:
            if succ not in block.successors:
                problems.append(
                    f"{label}: edge count for non-successor {succ}")

        for index, insn in enumerate(block.insns):
            last = index == len(block.insns) - 1
            if insn.is_branch and insn.label is not None:
                if insn.label not in labels:
                    problems.append(
                        f"{label}: branch to unknown label {insn.label}")
                elif insn.label not in block.successors:
                    problems.append(
                        f"{label}: branch target {insn.label} missing from "
                        f"successors")
            if insn.label is not None and insn.sym is not None:
                problems.append(f"{label}: insn has both label and sym")
            if not last and insn.is_terminator:
                # Terminators may only appear at block end.
                problems.append(
                    f"{label}: terminator {insn.mnemonic()} mid-block "
                    f"(index {index})")
            lp = insn.get_annotation("lp")
            if lp is not None and lp not in block.landing_pads:
                problems.append(
                    f"{label}: call's landing pad {lp} not registered on "
                    f"the block")

        term = block.terminator()
        if term is not None and term.is_terminator and not term.is_return \
                and term.op not in (Op.HALT, Op.TRAP):
            if (term.op in (Op.JMP_SHORT, Op.JMP_NEAR)
                    and term.label is None and term.sym is None):
                problems.append(f"{label}: jump with no target")

    if problems:
        raise ValidationError(
            f"{func.name}: " + "; ".join(problems[:10]))


def validate_context(context):
    """Validate every simple function in a BinaryContext."""
    for func in context.simple_functions():
        validate_function(func)
