"""CFG invariant checking and the post-rewrite validation gate.

Two layers:

* :func:`validate_function` / :func:`validate_context` check the
  in-memory IR between optimization passes (gated by
  ``BoltOptions.verify_cfg``), so a pass that corrupts the CFG fails
  fast with a precise message instead of producing a subtly-wrong
  binary.
* :func:`validate_rewrite` is a pipeline stage: it re-disassembles the
  *emitted* binary, rebuilds CFGs from the output bytes, and checks
  that everything the rewrite promised actually holds — before the
  binary is handed back.  :func:`validate_execution` optionally runs a
  smoke workload on the rewritten binary and compares program output
  against the input binary (execution equivalence).

On gate failure the driver walks a graceful-degradation ladder
(relocations mode -> in-place mode -> original binary) rather than
shipping a corrupt executable.
"""

from repro.isa import Op


class ValidationError(Exception):
    """A structural invariant does not hold.

    A real runtime error (not an assert): validation failures are
    expected, contained events in tolerant mode.
    """


def validate_function(func):
    """Check structural invariants of one simple function."""
    if not func.is_simple:
        return
    problems = []
    labels = set(func.blocks)

    if func.entry_label not in labels:
        problems.append(f"entry block {func.entry_label} missing")

    for label, block in func.blocks.items():
        if block.label != label:
            problems.append(f"{label}: key/label mismatch ({block.label})")
        for succ in block.successors:
            if succ not in labels:
                problems.append(f"{label}: successor {succ} does not exist")
        for lp in block.landing_pads:
            if lp not in labels:
                problems.append(f"{label}: landing pad {lp} does not exist")
            elif not func.blocks[lp].is_landing_pad:
                problems.append(f"{label}: {lp} is not a landing-pad block")
        if (block.fallthrough_label is not None
                and block.fallthrough_label not in block.successors):
            problems.append(
                f"{label}: fall-through {block.fallthrough_label} "
                f"not among successors {block.successors}")
        for succ, count in block.edge_counts.items():
            if succ not in block.successors:
                problems.append(
                    f"{label}: edge count for non-successor {succ}")
            if count < 0:
                problems.append(
                    f"{label}: negative edge count {count} -> {succ}")

        for index, insn in enumerate(block.insns):
            last = index == len(block.insns) - 1
            if insn.is_branch and insn.label is not None:
                if insn.label not in labels:
                    problems.append(
                        f"{label}: branch to unknown label {insn.label}")
                elif insn.label not in block.successors:
                    problems.append(
                        f"{label}: branch target {insn.label} missing from "
                        f"successors")
            if insn.label is not None and insn.sym is not None:
                problems.append(f"{label}: insn has both label and sym")
            if not last and insn.is_terminator:
                # Terminators may only appear at block end.
                problems.append(
                    f"{label}: terminator {insn.mnemonic()} mid-block "
                    f"(index {index})")
            lp = insn.get_annotation("lp")
            if lp is not None and lp not in block.landing_pads:
                problems.append(
                    f"{label}: call's landing pad {lp} not registered on "
                    f"the block")

        term = block.terminator()
        if term is not None and term.is_terminator and not term.is_return \
                and term.op not in (Op.HALT, Op.TRAP):
            if (term.op in (Op.JMP_SHORT, Op.JMP_NEAR)
                    and term.label is None and term.sym is None):
                problems.append(f"{label}: jump with no target")

    # Landing-pad blocks must be reachable: an unwind target nothing
    # can unwind to is dead weight at best and a splitting bug at worst.
    # Only checked once the graph is structurally sound (every edge
    # resolves), so the traversal cannot trip over a bogus successor.
    if not problems and func.entry_label in labels:
        from repro.core.dataflow import reachable_from

        reachable = reachable_from(func, func.entry_label)
        for label, block in func.blocks.items():
            if block.is_landing_pad and label not in reachable:
                problems.append(
                    f"{label}: landing-pad block unreachable (no call "
                    f"site registers it and no edge reaches it)")

    if problems:
        raise ValidationError(
            f"{func.name}: " + "; ".join(problems[:10]))


def validate_context(context):
    """Validate every simple function in a BinaryContext."""
    for func in context.simple_functions():
        validate_function(func)


# ---------------------------------------------------------------------------
# Post-rewrite validation gate
# ---------------------------------------------------------------------------


def validate_rewrite(context, out):
    """Structural checks on an emitted binary; returns problem strings.

    Re-disassembles the output and rebuilds CFGs from the actual bytes
    the rewrite produced.  Only properties that held for the *input*
    are demanded of the output (a function that was undecodable going
    in is allowed to stay undecodable coming out).
    """
    from repro.belf import SymbolType
    from repro.isa import decode_stream

    problems = []

    # 1. Entry point must land inside executable bytes.
    entry_section = out.section_at(out.entry) if out.entry else None
    if entry_section is None or not entry_section.is_exec:
        problems.append(f"entry point {out.entry:#x} not in executable "
                        f"section")

    # 2. Every function symbol must map into a section that covers it —
    #    unless it was already broken in the *input* (a corrupt input's
    #    damage is contained, not repaired).
    intact_in = set()
    for sym in context.binary.symbols:
        if sym.type != SymbolType.FUNC or sym.size == 0:
            continue
        section = context.binary.section_at(sym.value)
        if (section is not None and section.is_exec
                and sym.value + sym.size <= section.end):
            intact_in.add(sym.link_name())
    for sym in out.symbols:
        if sym.type != SymbolType.FUNC or sym.size == 0:
            continue
        name = sym.link_name()
        base = name[:-len(".cold.0")] if name.endswith(".cold.0") else name
        if base not in intact_in:
            continue
        section = out.get_section(sym.section) if sym.section else None
        if section is None:
            problems.append(f"{name}: symbol section "
                            f"{sym.section!r} missing from output")
            continue
        if not (section.contains(sym.value)
                and sym.value + sym.size <= section.end):
            problems.append(
                f"{name}: [{sym.value:#x}, "
                f"{sym.value + sym.size:#x}) outside section {section.name}")

    # 3. Functions that decoded in the input must decode in the output.
    decodable_in = {
        name for name, func in context.functions.items()
        if func.blocks and not (func.simple_violation or "").startswith(
            "decode-error")
    }
    for sym in out.symbols:
        if sym.type != SymbolType.FUNC or sym.size == 0:
            continue
        name = sym.link_name()
        base = name[:-len(".cold.0")] if name.endswith(".cold.0") else name
        if base not in decodable_in:
            continue
        section = out.get_section(sym.section) if sym.section else None
        if section is None or not section.contains(sym.value):
            continue  # already reported above
        start = sym.value - section.addr
        try:
            decode_stream(section.data, start, start + sym.size,
                          base_address=sym.value)
        except Exception as exc:
            problems.append(f"{name}: emitted code undecodable: {exc}")

    # 4. Rebuild CFGs from the output bytes and re-check IR invariants
    #    on everything that reconstructs as simple.
    if not problems:
        problems.extend(_revalidate_cfgs(context, out))
    return problems


def _revalidate_cfgs(context, out):
    from repro.core.binary_context import BinaryContext
    from repro.core.cfg_builder import build_all_functions
    from repro.core.discovery import discover_functions

    problems = []
    try:
        check = BinaryContext(out, context.options.copy(
            verify_cfg=False, validate_output="none", strict=False))
        discover_functions(check)
        build_all_functions(check)
    except Exception as exc:
        return [f"output CFG reconstruction failed: "
                f"{type(exc).__name__}: {exc}"]
    for func in check.simple_functions():
        try:
            validate_function(func)
        except ValidationError as exc:
            problems.append(f"output CFG invalid: {exc}")
    return problems


def validate_execution(reference, candidate, inputs=None,
                       max_instructions=5_000_000, diagnostics=None,
                       engine=None):
    """Execution equivalence on a smoke workload; returns problems.

    Runs both binaries on the uarch simulator with the same inputs and
    compares the program output stream and exit code.  The reference
    run's failures are *not* the rewrite's fault: if the input binary
    itself faults or exceeds the budget, equivalence is vacuously
    accepted for that failure mode — but the skip is recorded on
    ``diagnostics`` (when given) rather than silently swallowed.
    """
    from repro.uarch import run_binary

    try:
        ref = run_binary(reference, inputs=inputs,
                         max_instructions=max_instructions, engine=engine)
    except Exception as exc:
        # The input itself does not survive the smoke run, so there is
        # nothing to compare the candidate against.
        if diagnostics is not None:
            diagnostics.warning(
                "validate",
                f"execution gate skipped: reference binary failed the "
                f"smoke run ({type(exc).__name__}: {exc}); equivalence "
                f"vacuously accepted")
        return []
    try:
        cand = run_binary(candidate, inputs=inputs,
                          max_instructions=max_instructions, engine=engine)
    except Exception as exc:
        return [f"smoke run failed on rewritten binary: "
                f"{type(exc).__name__}: {exc}"]
    problems = []
    if cand.output != ref.output:
        problems.append(
            f"smoke output diverged: {len(ref.output)} values expected, "
            f"got {len(cand.output)}"
            + ("" if len(ref.output) != len(cand.output)
               else " (same length, different values)"))
    if cand.exit_code != ref.exit_code:
        problems.append(f"smoke exit code diverged: expected "
                        f"{ref.exit_code}, got {cand.exit_code}")
    return problems
