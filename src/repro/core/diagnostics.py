"""Structured BOLT-style diagnostics for the rewrite pipeline.

Real BOLT never silently swallows a problem: every function it cannot
optimize and every profile record it cannot attribute produces a
``BOLT-WARNING``/``BOLT-ERROR`` line, while the run itself keeps going
(paper section 3.1: unsafe functions are "conservatively skipped").
This module is the collecting side of that contract — pipeline stages
record what went wrong and why, and the final report surfaces it.

Severities:

* ``NOTE`` — informational; e.g. "profile is stale, fuzzy-matched".
* ``WARNING`` — something was contained: a function demoted, a profile
  record dropped, a degradation rung taken.  The output binary is
  still correct.
* ``ERROR`` — a stage failed outright and the pipeline degraded (or,
  under ``--strict``, aborted).
"""

import enum


class Severity(enum.IntEnum):
    NOTE = 0
    WARNING = 1
    ERROR = 2

    @property
    def tag(self):
        return {
            Severity.NOTE: "BOLT-INFO",
            Severity.WARNING: "BOLT-WARNING",
            Severity.ERROR: "BOLT-ERROR",
        }[self]


class Diagnostic:
    """One structured record: what happened, where, and how bad."""

    __slots__ = ("severity", "component", "message", "function")

    def __init__(self, severity, component, message, function=None):
        self.severity = severity
        self.component = component      # pipeline stage, e.g. "pass:icp"
        self.message = message
        self.function = function        # link name, or None for global

    def render(self):
        where = f" [{self.function}]" if self.function else ""
        return f"{self.severity.tag}: {self.component}{where}: {self.message}"

    def __repr__(self):
        return f"<Diagnostic {self.render()}>"


class StrictModeError(Exception):
    """Raised in --strict mode where tolerant mode would only warn."""


class Diagnostics:
    """Collector attached to a BinaryContext.

    In strict mode (``BoltOptions.strict``) recording a WARNING or
    ERROR raises :class:`StrictModeError` instead of containing it, so
    the CLI can fail hard on any anomaly.
    """

    def __init__(self, strict=False):
        self.records = []
        self.strict = strict

    # -- recording ---------------------------------------------------------

    def note(self, component, message, function=None):
        return self._record(Severity.NOTE, component, message, function)

    def warning(self, component, message, function=None):
        return self._record(Severity.WARNING, component, message, function)

    def error(self, component, message, function=None):
        return self._record(Severity.ERROR, component, message, function)

    def _record(self, severity, component, message, function):
        diag = Diagnostic(severity, component, message, function)
        self.records.append(diag)
        if self.strict and severity >= Severity.WARNING:
            raise StrictModeError(diag.render())
        return diag

    def extend(self, diagnostics):
        """Replay records collected elsewhere (e.g. by a worker-local
        collector during a parallel stage) into this one, re-applying
        this collector's strictness."""
        for diag in diagnostics:
            self._record(diag.severity, diag.component, diag.message,
                         diag.function)

    # -- queries -----------------------------------------------------------

    def by_severity(self, severity):
        return [d for d in self.records if d.severity == severity]

    @property
    def warnings(self):
        return self.by_severity(Severity.WARNING)

    @property
    def errors(self):
        return self.by_severity(Severity.ERROR)

    def worst(self):
        return max((d.severity for d in self.records), default=None)

    def for_function(self, name):
        return [d for d in self.records if d.function == name]

    def render(self, min_severity=Severity.NOTE):
        return [d.render() for d in self.records if d.severity >= min_severity]

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
