"""Table-driven disassembler for BX86 machine code."""

import struct

from repro.isa.opcodes import Op, CondCode, OPERAND_FORMATS, format_size
from repro.isa.instruction import Instruction


class DecodeError(Exception):
    """Raised on bytes that do not form a valid BX86 instruction."""


_VALID_PRIMARY = {int(op) for op in Op if op not in (Op.JCC_SHORT, Op.JCC_LONG, Op.PREFIX_0F)}
_NUM_CCS = len(CondCode)


def decode(data, offset=0, address=0):
    """Decode one instruction from ``data`` at ``offset``.

    ``address`` is the virtual address of the instruction; branch targets
    are resolved to absolute addresses.  Returns the decoded
    :class:`Instruction` (with ``.address`` and ``.size`` set).
    Raises :class:`DecodeError` on invalid encodings or truncation.
    """
    try:
        byte = data[offset]
    except IndexError:
        raise DecodeError(f"truncated instruction at 0x{address:x}") from None

    cc = None
    if byte == Op.PREFIX_0F:
        try:
            second = data[offset + 1]
        except IndexError:
            raise DecodeError(f"truncated 0x0F prefix at 0x{address:x}") from None
        if not 0x70 <= second < 0x70 + _NUM_CCS:
            raise DecodeError(f"invalid 0x0F opcode 0x{second:02x} at 0x{address:x}")
        op = Op.JCC_LONG
        cc = CondCode(second - 0x70)
        pos = offset + 2
    elif 0x60 <= byte < 0x60 + _NUM_CCS:
        op = Op.JCC_SHORT
        cc = CondCode(byte - 0x60)
        pos = offset + 1
    elif byte in _VALID_PRIMARY:
        op = Op(byte)
        pos = offset + 1
    else:
        raise DecodeError(f"invalid opcode byte 0x{byte:02x} at 0x{address:x}")

    regs = []
    imm = None
    disp = 0
    addr = None
    target = None
    if op == Op.NOPN:
        if pos >= len(data):
            raise DecodeError(f"truncated NOPN at 0x{address:x}")
        imm = data[pos]
        if imm < 2 or offset + imm > len(data):
            raise DecodeError(f"bad NOPN length {imm} at 0x{address:x}")
        insn = Instruction(op, imm=imm, address=address)
        return insn

    size = format_size(op)
    if offset + size > len(data):
        raise DecodeError(f"truncated {op.name} at 0x{address:x}")

    for atom in OPERAND_FORMATS[op]:
        if atom == "reg":
            reg = data[pos]
            if reg > 15:
                raise DecodeError(f"invalid register {reg} at 0x{address:x}")
            regs.append(reg)
            pos += 1
        elif atom == "imm8":
            imm = data[pos]
            pos += 1
        elif atom == "imm32":
            imm = struct.unpack_from("<i", data, pos)[0]
            pos += 4
        elif atom == "imm64":
            imm = struct.unpack_from("<q", data, pos)[0]
            pos += 8
        elif atom == "disp32":
            disp = struct.unpack_from("<i", data, pos)[0]
            pos += 4
        elif atom == "abs32":
            addr = struct.unpack_from("<I", data, pos)[0]
            pos += 4
        elif atom == "rel8":
            rel = struct.unpack_from("<b", data, pos)[0]
            pos += 1
            target = address + size + rel
        elif atom == "rel32":
            rel = struct.unpack_from("<i", data, pos)[0]
            pos += 4
            target = address + size + rel
        elif atom == "pad":
            pos += 1
        else:  # pragma: no cover
            raise DecodeError(f"unknown atom {atom}")

    insn = Instruction(
        op, regs, imm=imm, disp=disp, addr=addr, cc=cc, target=target, address=address
    )
    return insn


def decode_stream(data, start=0, end=None, base_address=0):
    """Decode a byte range into a list of instructions.

    ``base_address`` is the virtual address of ``data[start]``.  Stops at
    ``end`` (exclusive, defaults to ``len(data)``).  Raises
    :class:`DecodeError` if any byte range fails to decode or an
    instruction straddles ``end``.
    """
    if end is None:
        end = len(data)
    insns = []
    offset = start
    while offset < end:
        insn = decode(data, offset, base_address + (offset - start))
        if offset + insn.size > end:
            raise DecodeError(
                f"instruction at 0x{insn.address:x} straddles region end"
            )
        insns.append(insn)
        offset += insn.size
    return insns
