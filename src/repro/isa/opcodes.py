"""Opcode and condition-code definitions for BX86.

Every opcode has a fixed operand *format* (see ``OPERAND_FORMATS``) which
drives the table-driven encoder and decoder.  Encodings are byte-exact:
layout optimizations in this reproduction (hot/cold splitting, branch
relaxation, NOP stripping, ``simplify-ro-loads`` size policy) all depend
on real instruction sizes, mirroring the x86_64 properties the BOLT paper
calls out (2-byte short vs 6-byte long conditional branches, 2-byte
``repz ret``, multi-byte alignment NOPs).
"""

import enum


class Op(enum.IntEnum):
    """BX86 opcodes.  The integer value is the primary opcode byte."""

    HALT = 0x00
    NOP = 0x01          # one byte
    NOPN = 0x02         # multi-byte alignment nop: 0x02, len, padding
    OUT = 0x03          # write register to the machine's output stream
    RET = 0x04
    REPZ_RET = 0x05     # 2-byte AMD-friendly return (strip-rep-ret target)
    TRAP = 0x06         # ud2-style trap

    MOV_RR = 0x10
    MOV_RI32 = 0x11     # dst = sign-extended imm32
    MOV_RI64 = 0x12     # dst = imm64 (used for address materialization)
    LEA = 0x13          # dst = base + disp32
    LOAD = 0x14         # dst = mem64[base + disp32]
    STORE = 0x15        # mem64[base + disp32] = src
    LOAD_ABS = 0x16     # dst = mem64[abs32]
    STORE_ABS = 0x17    # mem64[abs32] = src
    LOADIDX = 0x18      # dst = mem64[base + idx*8 + disp32]
    STOREIDX = 0x19     # mem64[base + idx*8 + disp32] = src

    ADD_RR = 0x20
    ADD_RI = 0x21
    SUB_RR = 0x22
    SUB_RI = 0x23
    IMUL_RR = 0x24
    IMUL_RI = 0x25
    AND_RR = 0x26
    AND_RI = 0x27
    OR_RR = 0x28
    OR_RI = 0x29
    XOR_RR = 0x2A
    XOR_RI = 0x2B
    SHL_RI = 0x2C       # shift left by imm8
    SHR_RI = 0x2D       # logical shift right by imm8
    SAR_RI = 0x2E       # arithmetic shift right by imm8
    NEG = 0x2F
    CMP_RR = 0x30
    CMP_RI = 0x31
    TEST_RR = 0x32
    TEST_RI = 0x33
    IDIV_RR = 0x34      # dst = dst / src (truncating, traps on zero)
    IMOD_RR = 0x35      # dst = dst % src (C semantics, traps on zero)
    SHL_RR = 0x36       # dst = dst << (src & 63)
    SHR_RR = 0x37       # logical right shift by register
    SAR_RR = 0x38       # arithmetic right shift by register
    SETCC = 0x39        # dst = flags satisfy cc ? 1 : 0

    PUSH = 0x40
    POP = 0x41

    JMP_SHORT = 0x50    # 2 bytes, rel8
    JMP_NEAR = 0x51     # 5 bytes, rel32
    CALL = 0x52         # 5 bytes, rel32
    CALL_REG = 0x53     # 2 bytes, indirect call through register
    CALL_MEM = 0x54     # 6 bytes, indirect call through mem64[abs32] (GOT)
    JMP_REG = 0x55      # 2 bytes, indirect jump (jump tables / indirect tail calls)
    JMP_MEM = 0x56      # 6 bytes, indirect jump through mem64[abs32] (PLT stubs)

    JCC_SHORT = 0x60    # 2 bytes: opcode byte encodes 0x60 + cc, rel8
    JCC_LONG = 0x70     # 6 bytes: 0x0F prefix, 0x70 + cc, rel32

    #: Prefix byte introducing a two-byte opcode (JCC_LONG only).
    PREFIX_0F = 0x0F


class CondCode(enum.IntEnum):
    """Condition codes for conditional branches (signed and unsigned)."""

    EQ = 0
    NE = 1
    LT = 2
    LE = 3
    GT = 4
    GE = 5
    ULT = 6
    ULE = 7
    UGT = 8
    UGE = 9


_CC_NEGATE = {
    CondCode.EQ: CondCode.NE,
    CondCode.NE: CondCode.EQ,
    CondCode.LT: CondCode.GE,
    CondCode.LE: CondCode.GT,
    CondCode.GT: CondCode.LE,
    CondCode.GE: CondCode.LT,
    CondCode.ULT: CondCode.UGE,
    CondCode.ULE: CondCode.UGT,
    CondCode.UGT: CondCode.ULE,
    CondCode.UGE: CondCode.ULT,
}

_CC_NAMES = {
    CondCode.EQ: "e",
    CondCode.NE: "ne",
    CondCode.LT: "l",
    CondCode.LE: "le",
    CondCode.GT: "g",
    CondCode.GE: "ge",
    CondCode.ULT: "b",
    CondCode.ULE: "be",
    CondCode.UGT: "a",
    CondCode.UGE: "ae",
}


def negate_cc(cc):
    """Return the condition code testing the opposite condition."""
    return _CC_NEGATE[cc]


def cc_name(cc):
    """Return the x86-style suffix for a condition code (e.g. ``"ne"``)."""
    return _CC_NAMES[cc]


# Operand format atoms:
#   "reg"    one register byte
#   "imm8"   one-byte unsigned immediate (shift amounts, NOPN length)
#   "imm32"  4-byte signed immediate
#   "imm64"  8-byte signed immediate
#   "disp32" 4-byte signed displacement (memory operands)
#   "abs32"  4-byte unsigned absolute address
#   "rel8"   1-byte signed pc-relative branch offset (from insn end)
#   "rel32"  4-byte signed pc-relative branch offset (from insn end)
#   "pad"    zero padding byte (reserved encoding space)
OPERAND_FORMATS = {
    Op.HALT: (),
    Op.NOP: (),
    Op.NOPN: ("imm8",),            # total size = imm8 (>= 2)
    Op.OUT: ("reg",),
    Op.RET: (),
    Op.REPZ_RET: ("pad",),
    Op.TRAP: (),
    Op.MOV_RR: ("reg", "reg"),
    Op.MOV_RI32: ("reg", "imm32"),
    Op.MOV_RI64: ("reg", "imm64"),
    Op.LEA: ("reg", "reg", "disp32"),
    Op.LOAD: ("reg", "reg", "disp32"),
    Op.STORE: ("reg", "reg", "disp32"),   # regs = (base, src)
    Op.LOAD_ABS: ("reg", "abs32"),
    Op.STORE_ABS: ("reg", "abs32"),       # regs = (src,)
    Op.LOADIDX: ("reg", "reg", "reg", "disp32"),   # dst, base, idx
    Op.STOREIDX: ("reg", "reg", "reg", "disp32"),  # base, idx, src
    Op.ADD_RR: ("reg", "reg"),
    Op.ADD_RI: ("reg", "imm32"),
    Op.SUB_RR: ("reg", "reg"),
    Op.SUB_RI: ("reg", "imm32"),
    Op.IMUL_RR: ("reg", "reg"),
    Op.IMUL_RI: ("reg", "imm32"),
    Op.AND_RR: ("reg", "reg"),
    Op.AND_RI: ("reg", "imm32"),
    Op.OR_RR: ("reg", "reg"),
    Op.OR_RI: ("reg", "imm32"),
    Op.XOR_RR: ("reg", "reg"),
    Op.XOR_RI: ("reg", "imm32"),
    Op.SHL_RI: ("reg", "imm8"),
    Op.SHR_RI: ("reg", "imm8"),
    Op.SAR_RI: ("reg", "imm8"),
    Op.NEG: ("reg",),
    Op.CMP_RR: ("reg", "reg"),
    Op.CMP_RI: ("reg", "imm32"),
    Op.TEST_RR: ("reg", "reg"),
    Op.TEST_RI: ("reg", "imm32"),
    Op.IDIV_RR: ("reg", "reg"),
    Op.IMOD_RR: ("reg", "reg"),
    Op.SHL_RR: ("reg", "reg"),
    Op.SHR_RR: ("reg", "reg"),
    Op.SAR_RR: ("reg", "reg"),
    Op.SETCC: ("reg", "imm8"),
    Op.PUSH: ("reg",),
    Op.POP: ("reg",),
    Op.JMP_SHORT: ("rel8",),
    Op.JMP_NEAR: ("rel32",),
    Op.CALL: ("rel32",),
    Op.CALL_REG: ("reg",),
    Op.CALL_MEM: ("abs32", "pad"),
    Op.JMP_REG: ("reg",),
    Op.JMP_MEM: ("abs32", "pad"),
    Op.JCC_SHORT: ("rel8",),
    Op.JCC_LONG: ("rel32",),
}

_ATOM_SIZES = {
    "reg": 1,
    "imm8": 1,
    "imm32": 4,
    "imm64": 8,
    "disp32": 4,
    "abs32": 4,
    "rel8": 1,
    "rel32": 4,
    "pad": 1,
}


def format_size(op):
    """Fixed byte size of an opcode's encoding (NOPN is variable)."""
    base = 1
    if op == Op.JCC_LONG:
        base = 2  # 0x0F prefix + opcode byte
    return base + sum(_ATOM_SIZES[atom] for atom in OPERAND_FORMATS[op])


#: Opcodes that read memory (for the D-cache model).
MEM_READ_OPS = frozenset({Op.LOAD, Op.LOAD_ABS, Op.LOADIDX, Op.CALL_MEM, Op.JMP_MEM, Op.POP})

#: Opcodes that write memory.
MEM_WRITE_OPS = frozenset({Op.STORE, Op.STORE_ABS, Op.STOREIDX, Op.PUSH})
