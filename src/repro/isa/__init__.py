"""BX86: a synthetic x86_64-like ISA.

This package defines the instruction set that the whole reproduction is
built around: a byte-accurate, variable-length encoding with the
properties BOLT cares about (short 2-byte vs long 6-byte conditional
branches, ``repz ret``, multi-byte alignment NOPs, indirect calls and
jumps, PLT-style memory jumps).  See DESIGN.md section 2.
"""

from repro.isa.registers import (
    NUM_REGS,
    RAX,
    RBP,
    RBX,
    RCX,
    RDI,
    RDX,
    RSI,
    RSP,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    ARG_REGS,
    CALLEE_SAVED,
    CALLER_SAVED,
    ALLOCATABLE,
    REG_NAMES,
    reg_name,
)
from repro.isa.opcodes import Op, CondCode, OPERAND_FORMATS, negate_cc
from repro.isa.instruction import Instruction, SymRef
from repro.isa.encoding import encode, instruction_size
from repro.isa.decoding import decode, DecodeError, decode_stream

__all__ = [
    "NUM_REGS",
    "RAX",
    "RCX",
    "RDX",
    "RBX",
    "RSP",
    "RBP",
    "RSI",
    "RDI",
    "R8",
    "R9",
    "R10",
    "R11",
    "R12",
    "R13",
    "R14",
    "R15",
    "ARG_REGS",
    "CALLEE_SAVED",
    "CALLER_SAVED",
    "ALLOCATABLE",
    "REG_NAMES",
    "reg_name",
    "Op",
    "CondCode",
    "OPERAND_FORMATS",
    "negate_cc",
    "Instruction",
    "SymRef",
    "encode",
    "instruction_size",
    "decode",
    "decode_stream",
    "DecodeError",
]
