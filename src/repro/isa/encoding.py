"""Table-driven binary encoder for BX86 instructions."""

import struct

from repro.isa.opcodes import Op, OPERAND_FORMATS, format_size


class EncodeError(Exception):
    """Raised when an instruction cannot be encoded."""


def instruction_size(insn):
    """Encoded size in bytes of an instruction (no placement needed)."""
    if insn.op == Op.NOPN:
        return insn.imm
    return format_size(insn.op)


def _check_fits(value, bits, signed, insn):
    lo = -(1 << (bits - 1)) if signed else 0
    hi = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
    if not lo <= value <= hi:
        raise EncodeError(f"operand {value} does not fit in {bits} bits for {insn}")


def encode(insn, address=None):
    """Encode ``insn`` to bytes.

    ``address`` is the address at which the instruction will be placed;
    it is required for branches and calls with resolved absolute
    ``target`` values (the pc-relative offset is computed from the end of
    the instruction, like x86).  Symbolic operands (``label``/``sym``)
    must already be resolved to numeric ``target``/``addr``/``imm``
    values — the object emitter and BOLT's code emitter are responsible
    for that, leaving relocation slots zeroed when a relocation is
    emitted instead.
    """
    op = insn.op
    size = instruction_size(insn)
    if op == Op.NOPN:
        if insn.imm is None or insn.imm < 2 or insn.imm > 255:
            raise EncodeError(f"NOPN length must be in [2, 255]: {insn}")
        return bytes([int(Op.NOPN), insn.imm]) + b"\x00" * (insn.imm - 2)

    out = bytearray()
    if op == Op.JCC_LONG:
        out.append(Op.PREFIX_0F)
        out.append(0x70 + int(insn.cc))
    elif op == Op.JCC_SHORT:
        out.append(0x60 + int(insn.cc))
    else:
        out.append(int(op))

    regs = iter(insn.regs)
    for atom in OPERAND_FORMATS[op]:
        if atom == "reg":
            out.append(next(regs))
        elif atom == "imm8":
            _check_fits(insn.imm, 8, signed=False, insn=insn)
            out.append(insn.imm)
        elif atom == "imm32":
            value = insn.imm if insn.imm is not None else 0
            _check_fits(value, 32, signed=True, insn=insn)
            out += struct.pack("<i", value)
        elif atom == "imm64":
            value = insn.imm if insn.imm is not None else 0
            out += struct.pack("<q", _wrap64(value))
        elif atom == "disp32":
            _check_fits(insn.disp, 32, signed=True, insn=insn)
            out += struct.pack("<i", insn.disp)
        elif atom == "abs32":
            value = insn.addr if insn.addr is not None else 0
            _check_fits(value, 32, signed=False, insn=insn)
            out += struct.pack("<I", value)
        elif atom in ("rel8", "rel32"):
            if insn.target is None:
                rel = 0
            else:
                if address is None:
                    raise EncodeError(f"cannot encode branch without address: {insn}")
                rel = insn.target - (address + size)
            bits = 8 if atom == "rel8" else 32
            _check_fits(rel, bits, signed=True, insn=insn)
            out += struct.pack("<b" if atom == "rel8" else "<i", rel)
        elif atom == "pad":
            out.append(0)
        else:  # pragma: no cover - table is exhaustive
            raise EncodeError(f"unknown operand atom {atom}")
    assert len(out) == size, (insn, len(out), size)
    return bytes(out)


def _wrap64(value):
    """Wrap an arbitrary int into signed 64-bit two's complement."""
    value &= (1 << 64) - 1
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def branch_offset_fits_short(insn, address):
    """Whether a branch at ``address`` reaches ``insn.target`` via rel8.

    The short form is 2 bytes; the offset is measured from the end of the
    short encoding.
    """
    short_size = 2
    rel = insn.target - (address + short_size)
    return -128 <= rel <= 127
