"""The :class:`Instruction` object shared by the whole toolchain.

The compiler's code generator builds symbolic instructions (branches
target labels, calls/address materializations carry :class:`SymRef`
references that the object emitter turns into relocations).  The
disassembler produces concrete instructions with resolved absolute
branch targets.  BOLT annotates instructions with arbitrary key/value
pairs, mirroring the generic MCInst annotation mechanism described in
section 3.3 of the paper.
"""

from repro.isa.opcodes import (
    Op,
    CondCode,
    OPERAND_FORMATS,
    cc_name,
    format_size,
    MEM_READ_OPS,
    MEM_WRITE_OPS,
)
from repro.isa.registers import reg_name


class SymRef:
    """A symbolic reference from an instruction operand to a symbol.

    ``kind`` identifies which operand field holds the reference once
    encoded:

    * ``"abs64"`` — the 8-byte immediate of ``MOV_RI64``
    * ``"abs32"`` — the absolute address of ``*_ABS`` / ``CALL_MEM`` /
      ``JMP_MEM``
    * ``"branch"`` — the pc-relative target of ``CALL`` / ``JMP_NEAR``
      (cross-function control transfers)
    """

    __slots__ = ("name", "addend", "kind")

    def __init__(self, name, kind, addend=0):
        self.name = name
        self.kind = kind
        self.addend = addend

    def __repr__(self):
        add = f"+{self.addend}" if self.addend else ""
        return f"SymRef({self.name}{add}:{self.kind})"

    def __eq__(self, other):
        return (
            isinstance(other, SymRef)
            and self.name == other.name
            and self.kind == other.kind
            and self.addend == other.addend
        )

    def __hash__(self):
        return hash((self.name, self.kind, self.addend))


_UNCOND_BRANCHES = frozenset({Op.JMP_SHORT, Op.JMP_NEAR})
_COND_BRANCHES = frozenset({Op.JCC_SHORT, Op.JCC_LONG})
_CALLS = frozenset({Op.CALL, Op.CALL_REG, Op.CALL_MEM})
_RETURNS = frozenset({Op.RET, Op.REPZ_RET})
_INDIRECT = frozenset({Op.CALL_REG, Op.CALL_MEM, Op.JMP_REG, Op.JMP_MEM})
_NOPS = frozenset({Op.NOP, Op.NOPN})


class Instruction:
    """One BX86 instruction.

    Attributes:
        op: the :class:`Op` opcode.
        regs: tuple of register operands (meaning depends on ``op``).
        imm: integer immediate (``MOV_RI*``, ALU ``*_RI``, shifts, NOPN len).
        disp: signed displacement for register-relative memory operands.
        addr: absolute address for ``*_ABS`` / ``CALL_MEM`` / ``JMP_MEM``.
        cc: :class:`CondCode` for conditional branches.
        target: resolved absolute branch/call target (decode & emission).
        label: symbolic intra-function branch target (codegen & BOLT).
        sym: :class:`SymRef` for relocatable operands.
        address: the instruction's own address once placed.
        size: encoded size in bytes.
    """

    __slots__ = (
        "op",
        "regs",
        "imm",
        "disp",
        "addr",
        "cc",
        "target",
        "label",
        "sym",
        "address",
        "size",
        "annotations",
    )

    def __init__(
        self,
        op,
        regs=(),
        imm=None,
        disp=0,
        addr=None,
        cc=None,
        target=None,
        label=None,
        sym=None,
        address=None,
    ):
        self.op = op
        self.regs = tuple(regs)
        self.imm = imm
        self.disp = disp
        self.addr = addr
        self.cc = cc
        self.target = target
        self.label = label
        self.sym = sym
        self.address = address
        if op == Op.NOPN:
            self.size = imm
        else:
            self.size = format_size(op)
        self.annotations = None

    # -- annotations (MCInst-style, paper section 3.3) ------------------

    def set_annotation(self, key, value):
        """Attach an arbitrary annotation (lazily allocates the dict)."""
        if self.annotations is None:
            self.annotations = {}
        self.annotations[key] = value

    def get_annotation(self, key, default=None):
        """Read an annotation, returning ``default`` when absent."""
        if self.annotations is None:
            return default
        return self.annotations.get(key, default)

    # -- classification --------------------------------------------------

    @property
    def is_uncond_branch(self):
        return self.op in _UNCOND_BRANCHES

    @property
    def is_cond_branch(self):
        return self.op in _COND_BRANCHES

    @property
    def is_branch(self):
        return self.op in _UNCOND_BRANCHES or self.op in _COND_BRANCHES

    @property
    def is_call(self):
        return self.op in _CALLS

    @property
    def is_return(self):
        return self.op in _RETURNS

    @property
    def is_indirect(self):
        return self.op in _INDIRECT

    @property
    def is_indirect_branch(self):
        return self.op in (Op.JMP_REG, Op.JMP_MEM)

    @property
    def is_nop(self):
        return self.op in _NOPS

    @property
    def is_terminator(self):
        """True when control cannot fall through to the next instruction."""
        return (
            self.op in _UNCOND_BRANCHES
            or self.op in _RETURNS
            or self.op in (Op.JMP_REG, Op.JMP_MEM, Op.HALT, Op.TRAP)
        )

    @property
    def reads_memory(self):
        return self.op in MEM_READ_OPS

    @property
    def writes_memory(self):
        return self.op in MEM_WRITE_OPS

    @property
    def is_control_flow(self):
        return self.is_branch or self.is_call or self.is_return or self.is_terminator

    def copy(self):
        """Deep-enough copy (annotations dict is copied, SymRef shared)."""
        insn = Instruction(
            self.op,
            self.regs,
            imm=self.imm,
            disp=self.disp,
            addr=self.addr,
            cc=self.cc,
            target=self.target,
            label=self.label,
            sym=self.sym,
            address=self.address,
        )
        if self.annotations:
            insn.annotations = dict(self.annotations)
        return insn

    # -- rendering --------------------------------------------------------

    def mnemonic(self):
        """x86-flavoured mnemonic string (``jne``, ``repz retq``...)."""
        if self.op in _COND_BRANCHES:
            return "j" + cc_name(self.cc)
        return {
            Op.HALT: "hlt",
            Op.NOP: "nop",
            Op.NOPN: "nopw",
            Op.OUT: "out",
            Op.RET: "retq",
            Op.REPZ_RET: "repz retq",
            Op.TRAP: "ud2",
            Op.MOV_RR: "movq",
            Op.MOV_RI32: "movl",
            Op.MOV_RI64: "movabsq",
            Op.LEA: "leaq",
            Op.LOAD: "movq",
            Op.STORE: "movq",
            Op.LOAD_ABS: "movq",
            Op.STORE_ABS: "movq",
            Op.LOADIDX: "movq",
            Op.STOREIDX: "movq",
            Op.ADD_RR: "addq",
            Op.ADD_RI: "addq",
            Op.SUB_RR: "subq",
            Op.SUB_RI: "subq",
            Op.IMUL_RR: "imulq",
            Op.IMUL_RI: "imulq",
            Op.AND_RR: "andq",
            Op.AND_RI: "andq",
            Op.OR_RR: "orq",
            Op.OR_RI: "orq",
            Op.XOR_RR: "xorq",
            Op.XOR_RI: "xorq",
            Op.SHL_RI: "shlq",
            Op.SHR_RI: "shrq",
            Op.SAR_RI: "sarq",
            Op.NEG: "negq",
            Op.CMP_RR: "cmpq",
            Op.CMP_RI: "cmpq",
            Op.TEST_RR: "testq",
            Op.TEST_RI: "testq",
            Op.IDIV_RR: "idivq",
            Op.IMOD_RR: "imodq",
            Op.SHL_RR: "shlq",
            Op.SHR_RR: "shrq",
            Op.SAR_RR: "sarq",
            Op.SETCC: "setcc",
            Op.PUSH: "pushq",
            Op.POP: "popq",
            Op.JMP_SHORT: "jmp",
            Op.JMP_NEAR: "jmp",
            Op.CALL: "callq",
            Op.CALL_REG: "callq",
            Op.CALL_MEM: "callq",
            Op.JMP_REG: "jmp",
            Op.JMP_MEM: "jmp",
        }[self.op]

    def _target_str(self):
        if self.label is not None:
            return self.label
        if self.sym is not None:
            return self.sym.name
        if self.target is not None:
            return f"0x{self.target:x}"
        return "?"

    def __str__(self):
        op = self.op
        m = self.mnemonic()
        r = [f"%{reg_name(x)}" for x in self.regs]
        fmt = OPERAND_FORMATS[op]
        if self.is_branch or op == Op.CALL:
            return f"{m} {self._target_str()}"
        if op in (Op.CALL_REG, Op.JMP_REG):
            return f"{m} *{r[0]}"
        if op in (Op.CALL_MEM, Op.JMP_MEM):
            return f"{m} *{self._target_str() if self.sym else f'0x{self.addr:x}'}"
        if op in (Op.MOV_RI32, Op.MOV_RI64):
            if self.sym is not None:
                return f"{m} ${self.sym.name}, {r[0]}"
            return f"{m} ${self.imm}, {r[0]}"
        if op in (Op.LOAD, Op.LEA):
            return f"{m} {self.disp:#x}({r[1]}), {r[0]}"
        if op == Op.STORE:
            return f"{m} {r[1]}, {self.disp:#x}({r[0]})"
        if op == Op.LOAD_ABS:
            loc = self.sym.name if self.sym else f"0x{self.addr:x}"
            return f"{m} {loc}(%rip), {r[0]}"
        if op == Op.STORE_ABS:
            loc = self.sym.name if self.sym else f"0x{self.addr:x}"
            return f"{m} {r[0]}, {loc}(%rip)"
        if op == Op.LOADIDX:
            return f"{m} {self.disp:#x}({r[1]},{r[2]},8), {r[0]}"
        if op == Op.STOREIDX:
            return f"{m} {r[2]}, {self.disp:#x}({r[0]},{r[1]},8)"
        if fmt == ("reg", "imm32"):
            return f"{m} ${self.imm}, {r[0]}"
        if fmt == ("reg", "imm8"):
            return f"{m} ${self.imm}, {r[0]}"
        if fmt == ("reg", "reg"):
            return f"{m} {r[1]}, {r[0]}"
        if fmt == ("reg",):
            return f"{m} {r[0]}"
        return m

    def __repr__(self):
        where = f" @0x{self.address:x}" if self.address is not None else ""
        return f"<{self} {where}>"
