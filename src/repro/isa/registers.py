"""Register file definition for the BX86 ISA.

Sixteen 64-bit general purpose registers with x86_64-style names and an
x86_64-SysV-style calling convention:

* arguments: rdi, rsi, rdx, rcx, r8, r9
* return value: rax
* stack pointer: rsp, frame pointer: rbp
* callee-saved: rbx, rbp, r12-r15
* everything else caller-saved
"""

NUM_REGS = 16

RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI = range(8)
R8, R9, R10, R11, R12, R13, R14, R15 = range(8, 16)

REG_NAMES = (
    "rax",
    "rcx",
    "rdx",
    "rbx",
    "rsp",
    "rbp",
    "rsi",
    "rdi",
    "r8",
    "r9",
    "r10",
    "r11",
    "r12",
    "r13",
    "r14",
    "r15",
)

#: Order in which integer arguments are passed.
ARG_REGS = (RDI, RSI, RDX, RCX, R8, R9)

#: Registers a callee must preserve (rbp handled by the frame code).
CALLEE_SAVED = (RBX, R12, R13, R14, R15)

#: Registers a caller must assume are clobbered by a call.
CALLER_SAVED = (RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11)

#: Registers the register allocator may hand out (excludes rsp/rbp).
ALLOCATABLE = (RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11, RBX, R12, R13, R14, R15)

_NAME_TO_REG = {name: idx for idx, name in enumerate(REG_NAMES)}


def reg_name(reg):
    """Return the canonical name for a register index."""
    return REG_NAMES[reg]


def reg_from_name(name):
    """Return the register index for a canonical name.

    Raises ``KeyError`` for unknown names.
    """
    return _NAME_TO_REG[name]
