"""Function assembly (layout, branch relaxation, encoding) and object
file emission.

The assembler performs the layout-dependent work a compiler backend
does — and that BOLT's ``fixup-branches`` pass must redo after
reordering blocks (paper Table 1, pass 12):

* drop unconditional jumps to the fall-through block;
* invert a conditional branch whose taken target is the fall-through;
* relax branches between the 2-byte short and 5/6-byte long encodings
  (x86's size quirk the paper highlights in section 3.1);
* insert multi-byte alignment NOPs before loop headers.
"""

from repro.belf import (
    Binary,
    CallSiteRecord,
    FrameRecord,
    Relocation,
    RelocType,
    Section,
    SectionFlag,
    SectionType,
    Symbol,
    SymbolBind,
    SymbolType,
)
from repro.isa import Instruction, Op, encode, instruction_size, negate_cc
from repro.isa.encoding import branch_offset_fits_short

#: Byte offset of the relocatable operand field for each opcode.
_SYM_SLOT = {
    Op.CALL: (1, RelocType.PC32),
    Op.JMP_NEAR: (1, RelocType.PC32),
    Op.JCC_LONG: (2, RelocType.PC32),
    Op.MOV_RI64: (2, RelocType.ABS64),
    Op.MOV_RI32: (2, RelocType.ABS32),
    Op.CMP_RI: (2, RelocType.ABS32),    # ICP's compare-against-address

    Op.LOAD_ABS: (2, RelocType.ABS32),
    Op.STORE_ABS: (2, RelocType.ABS32),
    Op.CALL_MEM: (1, RelocType.ABS32),
    Op.JMP_MEM: (1, RelocType.ABS32),
}


class FunctionImage:
    """Result of assembling one function."""

    def __init__(self, link_name):
        self.link_name = link_name
        self.code = b""
        self.relocations = []      # (offset, RelocType, symbol, addend)
        self.labels = {}           # block label -> offset
        self.line_rows = []        # (offset, file, line)
        self.callsites = []        # CallSiteRecord (offsets func-relative)
        self.insn_offsets = []     # (offset, Instruction) for inspection


def _normalize_branches(blocks):
    """Remove jumps to fall-through; invert cond branches when useful."""
    for index, block in enumerate(blocks):
        next_label = blocks[index + 1].label if index + 1 < len(blocks) else None
        insns = block.insns
        # jcc A; jmp B with A == fallthrough  =>  j!cc B
        if (len(insns) >= 2 and insns[-1].op in (Op.JMP_NEAR, Op.JMP_SHORT)
                and insns[-1].label is not None
                and insns[-2].op in (Op.JCC_LONG, Op.JCC_SHORT)
                and insns[-2].label is not None   # not a cond. tail call
                and insns[-2].label == next_label):
            jcc = insns[-2]
            jcc.cc = negate_cc(jcc.cc)
            jcc.label = insns[-1].label
            insns.pop()
        # trailing jmp to fall-through => drop (never tail-call jumps,
        # which have a symbol instead of a label)
        if (insns and insns[-1].op in (Op.JMP_NEAR, Op.JMP_SHORT)
                and insns[-1].label is not None
                and insns[-1].label == next_label):
            insns.pop()


def assemble_function(mf, normalize=True):
    """Assemble a MachineFunction into a :class:`FunctionImage`."""
    blocks = mf.blocks
    if normalize:
        _normalize_branches(blocks)

    # Relaxation: every label-targeting branch starts short and grows.
    long_form = {}
    for block in blocks:
        for insn in block.insns:
            if insn.label is not None and insn.op in (
                    Op.JMP_SHORT, Op.JMP_NEAR, Op.JCC_SHORT, Op.JCC_LONG):
                long_form[id(insn)] = False

    def size_of(insn):
        if id(insn) in long_form:
            if insn.op in (Op.JCC_SHORT, Op.JCC_LONG):
                return 6 if long_form[id(insn)] else 2
            return 5 if long_form[id(insn)] else 2
        return instruction_size(insn)

    for _ in range(64):
        offsets = {}
        pads = {}
        pos = 0
        pending = []
        for block in blocks:
            pad = 0
            if block.align > 1:
                pad = (block.align - pos % block.align) % block.align
            pads[block.label] = pad
            pos += pad
            offsets[block.label] = pos
            for insn in block.insns:
                pending.append((pos, insn))
                pos += size_of(insn)
        changed = False
        for insn_pos, insn in pending:
            if id(insn) in long_form and not long_form[id(insn)]:
                target = offsets[insn.label]
                rel = target - (insn_pos + 2)
                if not -128 <= rel <= 127:
                    long_form[id(insn)] = True
                    changed = True
        if not changed:
            break

    image = FunctionImage(mf.link_name)
    image.labels = offsets
    code = bytearray()
    last_line = None
    for block in blocks:
        pad = pads[block.label]
        if pad == 1:
            code += encode(Instruction(Op.NOP))
        elif pad > 1:
            code += encode(Instruction(Op.NOPN, imm=pad))
        for insn in block.insns:
            offset = len(code)
            if id(insn) in long_form:
                if insn.op in (Op.JCC_SHORT, Op.JCC_LONG):
                    insn.op = Op.JCC_LONG if long_form[id(insn)] else Op.JCC_SHORT
                else:
                    insn.op = Op.JMP_NEAR if long_form[id(insn)] else Op.JMP_SHORT
                insn.size = size_of(insn)
                insn.target = offsets[insn.label]
            image.insn_offsets.append((offset, insn))

            loc = insn.get_annotation("loc")
            if loc is not None and loc != last_line:
                image.line_rows.append((offset, loc[0], loc[1]))
                last_line = loc

            lp = insn.get_annotation("lp")
            if lp is not None:
                image.callsites.append(
                    CallSiteRecord(offset, offset + insn.size, offsets[lp]))

            if insn.sym is not None:
                slot, rtype = _SYM_SLOT[insn.op]
                image.relocations.append(
                    (offset + slot, rtype, insn.sym.name, insn.sym.addend))
                code += encode(insn, offset)
            else:
                code += encode(insn, offset)
    image.code = bytes(code)
    # Merge adjacent call sites sharing a landing pad into ranges.
    image.callsites = _merge_callsites(image.callsites)
    return image


def _merge_callsites(callsites):
    merged = []
    for cs in sorted(callsites, key=lambda c: c.start):
        if (merged and merged[-1].landing_pad == cs.landing_pad
                and merged[-1].end == cs.start):
            merged[-1].end = cs.end
        else:
            merged.append(cs)
    return merged


def _data_bytes(values, total_words):
    data = bytearray()
    for value in values:
        data += (value & ((1 << 64) - 1)).to_bytes(8, "little")
    data += b"\x00" * (8 * (total_words - len(values)))
    return bytes(data)


def emit_object(ir_module, machine_funcs, options=None):
    """Build a relocatable BELF object from assembled functions + globals."""
    binary = Binary(kind="object", name=ir_module.name)
    module = ir_module.name

    for mf in machine_funcs:
        image = assemble_function(mf)
        section_name = f".text.{mf.link_name}"
        section = Section(section_name, flags=SectionFlag.ALLOC | SectionFlag.EXEC,
                          data=image.code, align=16)
        binary.add_section(section)
        binary.add_symbol(Symbol(
            mf.name, value=0, size=len(image.code), type=SymbolType.FUNC,
            bind=SymbolBind.LOCAL if mf.static else SymbolBind.GLOBAL,
            section=section_name, module=module if mf.static else None))
        for offset, rtype, symbol, addend in image.relocations:
            binary.relocations.append(
                Relocation(section_name, offset, rtype, symbol, addend))
        if mf.has_frame_info:
            binary.frame_records[mf.link_name] = FrameRecord(
                mf.link_name, frame_size=mf.frame_size,
                saved_regs=list(mf.saved_regs), callsites=image.callsites)
        if image.line_rows:
            binary.func_line_tables[mf.link_name] = image.line_rows

        if mf.jump_tables:
            ro_name = f".rodata.{mf.link_name}"
            ro = Section(ro_name, flags=SectionFlag.ALLOC, align=8)
            binary.add_section(ro)
            for table_sym, entries in mf.jump_tables:
                offset = len(ro.data)
                for i, label in enumerate(entries):
                    binary.relocations.append(Relocation(
                        ro_name, offset + 8 * i, RelocType.ABS64,
                        mf.link_name, addend=image.labels[label]))
                ro.data += b"\x00" * (8 * len(entries))
                binary.add_symbol(Symbol(
                    table_sym, value=offset, size=8 * len(entries),
                    type=SymbolType.OBJECT, bind=SymbolBind.LOCAL,
                    section=ro_name, module=None))

    _emit_globals(binary, ir_module)
    return binary


def _emit_globals(binary, ir_module):
    module = ir_module.name
    data = rodata = bss = None
    for name, (init, const) in ir_module.global_vars.items():
        if const:
            if rodata is None:
                rodata = binary.get_or_create_section(
                    ".rodata", flags=SectionFlag.ALLOC, align=8)
            section, payload = rodata, _data_bytes([init], 1)
        else:
            if data is None:
                data = binary.get_or_create_section(
                    ".data", flags=SectionFlag.ALLOC | SectionFlag.WRITE, align=8)
            section, payload = data, _data_bytes([init], 1)
        offset = section.append(payload)
        binary.add_symbol(Symbol(name, value=offset, size=8,
                                 type=SymbolType.OBJECT, bind=SymbolBind.LOCAL,
                                 section=section.name, module=module))
    for name, (size, init, const) in ir_module.global_arrays.items():
        if const:
            if rodata is None:
                rodata = binary.get_or_create_section(
                    ".rodata", flags=SectionFlag.ALLOC, align=8)
            section = rodata
            offset = section.append(_data_bytes(init, size))
        elif not init:
            if bss is None:
                bss = binary.get_or_create_section(
                    ".bss", type=SectionType.NOBITS,
                    flags=SectionFlag.ALLOC | SectionFlag.WRITE, align=8,
                    mem_size=0)
            section = bss
            offset = section.size
            section.size = offset + 8 * size
        else:
            if data is None:
                data = binary.get_or_create_section(
                    ".data", flags=SectionFlag.ALLOC | SectionFlag.WRITE, align=8)
            section = data
            offset = section.append(_data_bytes(init, size))
        binary.add_symbol(Symbol(name, value=offset, size=8 * size,
                                 type=SymbolType.OBJECT, bind=SymbolBind.LOCAL,
                                 section=section.name, module=module))
