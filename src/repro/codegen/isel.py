"""Instruction selection: IR -> BX86 machine code.

Register model:

* *variables* (virtual registers live across blocks, plus all
  parameters) are either promoted to callee-saved registers (the most
  used ones) or given rbp-relative stack slots;
* *temporaries* (single-block values) are allocated from a caller-saved
  scratch pool, spilled to overflow slots under pressure, and
  pushed/popped around calls.

The frame layout (push rbp; mov rbp,rsp; sub rsp,N; callee-saved saves
as *stores to fixed slots*) is what makes BOLT's shrink-wrapping sound
in the presence of exceptions: the unwinder restores callee-saved
registers from those fixed slots (see ``repro.belf.frameinfo``).
"""

from repro.codegen.machine import MachineBlock, MachineFunction
from repro.codegen.options import CodegenOptions
from repro.isa import (
    Instruction,
    Op,
    CondCode,
    SymRef,
    ARG_REGS,
    CALLEE_SAVED,
    RAX,
    RBP,
    RSP,
    RDI,
    R10,
)
from repro.ir.ir import Imm

THROW_FUNC = "__throw"

_SCRATCH_POOL = (10, 11, 1, 6, 7, 8, 9, 2)  # r10, r11, rcx, rsi, rdi, r8, r9, rdx

_CC_MAP = {
    "==": CondCode.EQ,
    "!=": CondCode.NE,
    "<": CondCode.LT,
    "<=": CondCode.LE,
    ">": CondCode.GT,
    ">=": CondCode.GE,
    "u<": CondCode.ULT,
    "u<=": CondCode.ULE,
    "u>": CondCode.UGT,
    "u>=": CondCode.UGE,
}

_RR_OPS = {"+": Op.ADD_RR, "-": Op.SUB_RR, "*": Op.IMUL_RR, "&": Op.AND_RR,
           "|": Op.OR_RR, "^": Op.XOR_RR}
_RI_OPS = {"+": Op.ADD_RI, "-": Op.SUB_RI, "*": Op.IMUL_RI, "&": Op.AND_RI,
           "|": Op.OR_RI, "^": Op.XOR_RI}

_I32_MIN, _I32_MAX = -(1 << 31), (1 << 31) - 1


def _fits_i32(value):
    return _I32_MIN <= value <= _I32_MAX


class CodegenError(Exception):
    pass


def _frameless_candidate(func_ir, options):
    """A leaf may drop its frame entirely: no live-across-call state, no
    unwinding through it (tail calls replace the frame, so they are
    allowed).  This is what produces the bare ``jmp callee`` blocks that
    BOLT's SCTC pass targets."""
    if not options.tail_calls:
        has_calls = any(
            inst.kind in ("call", "icall", "throw")
            for block in func_ir.blocks.values() for inst in block.insts)
        return not has_calls
    for block in func_ir.blocks.values():
        term = block.terminator
        for index, inst in enumerate(block.insts):
            if inst.kind == "throw":
                return False
            if inst.kind in ("call", "icall"):
                is_last = index == len(block.insts) - 1
                tail_ok = (
                    is_last and term.kind == "ret" and inst.lp is None
                    and (term.a == inst.dst
                         or (term.a is None and inst.dst is None)))
                if not tail_ok:
                    return False
    return True


class _FunctionSelector:
    def __init__(self, func_ir, options, force_frame=False):
        self.ir = func_ir
        self.options = options
        self.mf = MachineFunction(func_ir.name, func_ir.link_name(),
                                  static=func_ir.static)
        self.mf.has_frame_info = options.frame_info
        if func_ir.loc:
            self.mf.source_file = func_ir.loc[0]
        self.block = None
        self.loc = func_ir.loc

        self.frameless = (not force_frame
                          and _frameless_candidate(func_ir, options))
        self._classify_vregs()
        if self.frameless and self.vars:
            self.frameless = False
            self._classify_vregs()
        self._promote()
        self._assign_slots()

        # temp state (reset per block)
        self.temp_loc = {}
        self.free_regs = []
        self.use_counts = {}
        self._consumed = []
        self._transient = []
        self.overflow_free = []

    # -- analysis -----------------------------------------------------------

    def _classify_vregs(self):
        """Split vregs into cross-block variables and block-local temps."""
        seen_in = {}
        defs = {}
        uses_total = {}
        for name, block in self.ir.blocks.items():
            items = list(block.insts) + [block.terminator]
            for inst in items:
                for vreg in inst.uses():
                    seen_in.setdefault(vreg, set()).add(name)
                    uses_total[vreg] = uses_total.get(vreg, 0) + 1
                if inst.dst is not None:
                    seen_in.setdefault(inst.dst, set()).add(name)
                    defs[inst.dst] = defs.get(inst.dst, 0) + 1
        self.vars = set()
        entry = self.ir.entry
        for vreg, blocks in seen_in.items():
            if len(blocks) > 1 or defs.get(vreg, 0) > 1:
                self.vars.add(vreg)
        # A parameter stays a temp (pinned to its ABI register in the
        # entry block) only when it is never written and never escapes
        # the entry block; otherwise it is a variable.
        for vreg in self.ir.params:
            blocks = seen_in.get(vreg, set())
            if defs.get(vreg, 0) >= 1 or (blocks - {entry}):
                self.vars.add(vreg)
            elif not self.frameless:
                self.vars.add(vreg)
        self.use_weight = uses_total

    def _promote(self):
        """Give the most-used variables callee-saved registers."""
        if self.frameless:
            self.promoted = {}
            self.saved_order = []
            return
        candidates = sorted(
            self.vars,
            key=lambda v: (-(self.use_weight.get(v, 0)), v),
        )
        self.promoted = {}
        for vreg in candidates:
            if len(self.promoted) >= len(CALLEE_SAVED):
                break
            if self.use_weight.get(vreg, 0) >= 1:
                self.promoted[vreg] = CALLEE_SAVED[len(self.promoted)]
        self.saved_order = [self.promoted[v] for v in self.promoted]

    def _assign_slots(self):
        nsaved = len(self.saved_order)
        self.mf.saved_regs = [(reg, 8 * (i + 1)) for i, reg in
                              enumerate(self.saved_order)]
        self.slots = {}
        index = nsaved
        if self.frameless:
            self.next_slot_index = 0
            return
        # Parameters in variables always get a (homing) slot.
        for vreg in self.ir.params:
            if vreg in self.vars:
                index += 1
                self.slots[vreg] = 8 * index
        for vreg in sorted(self.vars):
            if vreg in self.slots or vreg in self.promoted:
                continue
            index += 1
            self.slots[vreg] = 8 * index
        self.next_slot_index = index

    def _new_overflow_slot(self):
        if self.frameless:
            raise CodegenError("frameless function needs a spill slot")
        if self.overflow_free:
            return self.overflow_free.pop()
        self.next_slot_index += 1
        return 8 * self.next_slot_index

    # -- emission helpers ------------------------------------------------------

    def emit(self, op, regs=(), **kwargs):
        loc = kwargs.pop("loc", self.loc)
        insn = Instruction(op, regs, **kwargs)
        if loc is not None:
            insn.set_annotation("loc", loc)
        self.block.insns.append(insn)
        return insn

    def alloc_reg(self, pinned=()):
        if self.free_regs:
            return self.free_regs.pop()
        # Spill a temp whose register is not pinned.
        for vreg, loc in self.temp_loc.items():
            if loc[0] == "reg" and loc[1] not in pinned:
                slot = self._new_overflow_slot()
                self.emit(Op.STORE, (RBP, loc[1]), disp=-slot)
                self.temp_loc[vreg] = ("stack", slot)
                return loc[1]
        raise CodegenError(f"register pressure too high in {self.ir.name}")

    def free_reg(self, reg):
        if reg not in self.free_regs:
            self.free_regs.append(reg)

    def _end_inst(self):
        for vreg in self._consumed:
            self.use_counts[vreg] -= 1
            if self.use_counts[vreg] == 0:
                loc = self.temp_loc.pop(vreg, None)
                if loc is not None:
                    if loc[0] == "reg":
                        self.free_reg(loc[1])
                    else:
                        self.overflow_free.append(loc[1])
        for reg in self._transient:
            self.free_reg(reg)
        self._consumed = []
        self._transient = []

    # -- operand access ------------------------------------------------------------

    def read(self, operand, pinned=(), loc=None):
        """Value of an operand into a register.

        Promoted variables return their callee-saved register
        (read-only!); everything else lands in a scratch register that
        is released at the end of the current IR instruction.
        """
        if isinstance(operand, Imm):
            reg = self.alloc_reg(pinned)
            self._transient.append(reg)
            self._mov_imm(reg, operand.value, loc)
            return reg
        if operand in self.promoted:
            return self.promoted[operand]
        if operand in self.slots:
            reg = self.alloc_reg(pinned)
            self._transient.append(reg)
            self.emit(Op.LOAD, (reg, RBP), disp=-self.slots[operand], loc=loc)
            return reg
        loc_entry = self.temp_loc.get(operand)
        if loc_entry is None or loc_entry[0] == "pushed":
            raise CodegenError(
                f"use of unavailable temp %{operand} in {self.ir.name}")
        if loc_entry[0] == "stack":
            reg = self.alloc_reg(pinned)
            self.emit(Op.LOAD, (reg, RBP), disp=-loc_entry[1], loc=loc)
            self.overflow_free.append(loc_entry[1])
            self.temp_loc[operand] = ("reg", reg)
            loc_entry = self.temp_loc[operand]
        self._consumed.append(operand)
        return loc_entry[1]

    def read_into_scratch(self, operand, pinned=(), loc=None):
        """Like read(), but guarantees a mutable scratch register.

        If the operand is a dying temp, its register is reused directly.
        """
        if (not isinstance(operand, Imm) and operand in self.temp_loc
                and self.temp_loc[operand][0] == "reg"
                and self.use_counts.get(operand, 0) == 1):
            reg = self.temp_loc.pop(operand)[1]
            self.use_counts[operand] = 0
            return reg
        source = self.read(operand, pinned, loc)
        if isinstance(operand, Imm) and source in self._transient:
            # Freshly materialized immediate: already mutable; claim it.
            self._transient.remove(source)
            return source
        reg = self.alloc_reg(pinned + (source,))
        self.emit(Op.MOV_RR, (reg, source), loc=loc)
        return reg

    def _mov_imm(self, reg, value, loc=None):
        if _fits_i32(value):
            self.emit(Op.MOV_RI32, (reg,), imm=value, loc=loc)
        else:
            self.emit(Op.MOV_RI64, (reg,), imm=value, loc=loc)

    def write_result(self, dst, reg, loc=None):
        """Store a computed scratch value into its destination."""
        if dst in self.promoted:
            self.emit(Op.MOV_RR, (self.promoted[dst], reg), loc=loc)
            self.free_reg(reg)
        elif dst in self.slots:
            self.emit(Op.STORE, (RBP, reg), disp=-self.slots[dst], loc=loc)
            self.free_reg(reg)
        else:
            if self.use_counts.get(dst, 0) == 0:
                self.free_reg(reg)  # result never used
                return
            old = self.temp_loc.pop(dst, None)
            if old is not None:
                if old[0] == "reg":
                    self.free_reg(old[1])
                else:
                    self.overflow_free.append(old[1])
            self.temp_loc[dst] = ("reg", reg)

    # -- function skeleton -------------------------------------------------------------

    def run(self):
        order = list(self.ir.blocks)
        back_targets = set()
        position = {name: i for i, name in enumerate(order)}
        for name, block in self.ir.blocks.items():
            for succ in block.successors():
                if position[succ] <= position[name]:
                    back_targets.add(succ)

        for index, name in enumerate(order):
            ir_block = self.ir.blocks[name]
            self.block = MachineBlock(name)
            self.block.is_landing_pad = ir_block.is_landing_pad
            self.block.count = ir_block.count
            if (self.options.align_loops and name in back_targets
                    and index > 0):
                self.block.is_loop_header = True
                self.block.align = self.options.align_to
            self.mf.blocks.append(self.block)

            self.temp_loc = {}
            self.free_regs = list(_SCRATCH_POOL)
            self._consumed = []
            self._transient = []
            self.use_counts = {}
            items = list(ir_block.insts) + [ir_block.terminator]
            for inst in items:
                for vreg in inst.uses():
                    if vreg not in self.vars:
                        self.use_counts[vreg] = self.use_counts.get(vreg, 0) + 1

            if index == 0:
                self._prologue()

            n_insts = len(ir_block.insts)
            for i, inst in enumerate(ir_block.insts):
                self.loc = inst.loc or self.loc
                is_last = i == n_insts - 1
                self._select(inst, ir_block.terminator if is_last else None)
                self._end_inst()
            if not getattr(self, "_terminator_done", False):
                self._terminator(ir_block.terminator)
                self._end_inst()
            self._terminator_done = False

        self.mf.frame_size = 8 * self.next_slot_index
        self._patch_frame_size()
        return self.mf

    def _prologue(self):
        if len(self.ir.params) > len(ARG_REGS):
            raise CodegenError(f"too many parameters in {self.ir.name}")
        if self.frameless:
            # Parameters live in their ABI registers as entry-block temps.
            for i, vreg in enumerate(self.ir.params):
                if self.use_counts.get(vreg, 0) > 0:
                    self.temp_loc[vreg] = ("reg", ARG_REGS[i])
                    if ARG_REGS[i] in self.free_regs:
                        self.free_regs.remove(ARG_REGS[i])
            return
        self.emit(Op.PUSH, (RBP,))
        self.emit(Op.MOV_RR, (RBP, RSP))
        self._frame_sub = self.emit(Op.SUB_RI, (RSP,), imm=0)
        for reg, offset in self.mf.saved_regs:
            self.emit(Op.STORE, (RBP, reg), disp=-offset)
        for i, vreg in enumerate(self.ir.params):
            arg_reg = ARG_REGS[i]
            if vreg in self.promoted:
                self.emit(Op.MOV_RR, (self.promoted[vreg], arg_reg))
                if self.options.naive_param_homing:
                    insn = self.emit(Op.STORE, (RBP, arg_reg),
                                     disp=-self.slots[vreg])
                    insn.set_annotation("param-home", True)
            else:
                self.emit(Op.STORE, (RBP, arg_reg), disp=-self.slots[vreg])

    def _patch_frame_size(self):
        if not self.frameless:
            self._frame_sub.imm = self.mf.frame_size

    def _epilogue_insns(self):
        if self.frameless:
            return []
        out = []
        for reg, offset in self.mf.saved_regs:
            out.append(Instruction(Op.LOAD, (reg, RBP), disp=-offset))
        out.append(Instruction(Op.MOV_RR, (RSP, RBP)))
        out.append(Instruction(Op.POP, (RBP,)))
        return out

    # -- per-instruction selection ------------------------------------------------------

    def _select(self, inst, next_terminator):
        kind = inst.kind
        if kind == "const":
            self._sel_const(inst)
        elif kind == "mov":
            self._sel_mov(inst)
        elif kind == "binop":
            self._sel_binop(inst)
        elif kind == "unop":
            self._sel_unop(inst)
        elif kind == "loadg":
            reg = self.alloc_reg()
            self.emit(Op.LOAD_ABS, (reg,), sym=SymRef(inst.sym, "abs32"),
                      loc=inst.loc)
            self.write_result(inst.dst, reg, inst.loc)
        elif kind == "storeg":
            reg = self.read(inst.a, loc=inst.loc)
            self.emit(Op.STORE_ABS, (reg,), sym=SymRef(inst.sym, "abs32"),
                      loc=inst.loc)
        elif kind == "loadidx":
            idx = self._masked_index(inst)
            base = self.alloc_reg(pinned=(idx,))
            self.emit(Op.MOV_RI32, (base,), imm=0,
                      sym=SymRef(inst.sym, "imm32"), loc=inst.loc)
            self.emit(Op.LOADIDX, (base, base, idx), disp=0, loc=inst.loc)
            self.free_reg(idx)
            self.write_result(inst.dst, base, inst.loc)
        elif kind == "storeidx":
            idx = self._masked_index(inst)
            src = self.read(inst.b, pinned=(idx,), loc=inst.loc)
            base = self.alloc_reg(pinned=(idx, src))
            self._transient.append(base)
            self.emit(Op.MOV_RI32, (base,), imm=0,
                      sym=SymRef(inst.sym, "imm32"), loc=inst.loc)
            self.emit(Op.STOREIDX, (base, idx, src), disp=0, loc=inst.loc)
            self.free_reg(idx)
        elif kind in ("call", "icall"):
            if (next_terminator is not None and self.options.tail_calls
                    and self._try_tail_call(inst, next_terminator)):
                self._terminator_done = True
                return
            self._sel_call(inst)
        elif kind == "funcaddr":
            reg = self.alloc_reg()
            self.emit(Op.MOV_RI64, (reg,), imm=0,
                      sym=SymRef(inst.sym, "abs64"), loc=inst.loc)
            self.write_result(inst.dst, reg, inst.loc)
        elif kind == "out":
            reg = self.read(inst.a, loc=inst.loc)
            self.emit(Op.OUT, (reg,), loc=inst.loc)
        elif kind == "throw":
            reg = self.read(inst.a, loc=inst.loc)
            self.emit(Op.MOV_RR, (RDI, reg), loc=inst.loc)
            call = self.emit(Op.CALL, sym=SymRef(THROW_FUNC, "branch"),
                             loc=inst.loc)
            if inst.lp is not None:
                call.set_annotation("lp", inst.lp)
        elif kind == "landingpad":
            reg = self.alloc_reg()
            self.emit(Op.MOV_RR, (reg, RAX), loc=inst.loc)
            self.write_result(inst.dst, reg, inst.loc)
        elif kind == "profcount":
            reg = self.alloc_reg()
            self._transient.append(reg)
            sym = SymRef("__profc", "abs32", addend=8 * inst.value)
            self.emit(Op.LOAD_ABS, (reg,), sym=sym, loc=inst.loc)
            self.emit(Op.ADD_RI, (reg,), imm=1, loc=inst.loc)
            self.emit(Op.STORE_ABS, (reg,), sym=sym, loc=inst.loc)
        else:
            raise CodegenError(f"unhandled IR instruction kind {kind}")

    def _masked_index(self, inst):
        """Array index masked to the array length (BC indexing is
        modulo the power-of-two array size).  Returns a scratch register
        owned by the caller (must be freed)."""
        size = inst.value
        operand = inst.a
        if isinstance(operand, Imm) and size:
            operand = Imm(operand.value & (size - 1))
        idx = self.read_into_scratch(operand, loc=inst.loc)
        if size and not isinstance(operand, Imm):
            self.emit(Op.AND_RI, (idx,), imm=size - 1, loc=inst.loc)
        return idx

    def _sel_const(self, inst):
        if inst.dst in self.promoted:
            self._mov_imm(self.promoted[inst.dst], inst.value, inst.loc)
            return
        reg = self.alloc_reg()
        self._mov_imm(reg, inst.value, inst.loc)
        self.write_result(inst.dst, reg, inst.loc)

    def _sel_mov(self, inst):
        if inst.dst in self.promoted:
            src = self.read(inst.a, loc=inst.loc)
            if src != self.promoted[inst.dst]:
                self.emit(Op.MOV_RR, (self.promoted[inst.dst], src), loc=inst.loc)
            return
        reg = self.read_into_scratch(inst.a, loc=inst.loc)
        self.write_result(inst.dst, reg, inst.loc)

    def _sel_binop(self, inst):
        oper = inst.oper
        if oper in _CC_MAP:
            self._sel_compare(inst)
            return
        rt = self.read_into_scratch(inst.a, loc=inst.loc)
        b = inst.b
        if oper in _RI_OPS and isinstance(b, Imm) and _fits_i32(b.value):
            self.emit(_RI_OPS[oper], (rt,), imm=b.value, loc=inst.loc)
        elif oper in _RR_OPS:
            breg = self.read(b, pinned=(rt,), loc=inst.loc)
            self.emit(_RR_OPS[oper], (rt, breg), loc=inst.loc)
        elif oper in ("<<", ">>"):
            shift_ri = Op.SHL_RI if oper == "<<" else Op.SAR_RI
            shift_rr = Op.SHL_RR if oper == "<<" else Op.SAR_RR
            if isinstance(b, Imm):
                self.emit(shift_ri, (rt,), imm=b.value & 63, loc=inst.loc)
            else:
                breg = self.read(b, pinned=(rt,), loc=inst.loc)
                self.emit(shift_rr, (rt, breg), loc=inst.loc)
        elif oper in ("/", "%"):
            breg = self.read(b, pinned=(rt,), loc=inst.loc)
            op = Op.IDIV_RR if oper == "/" else Op.IMOD_RR
            self.emit(op, (rt, breg), loc=inst.loc)
        else:
            raise CodegenError(f"unhandled binop {oper}")
        self.write_result(inst.dst, rt, inst.loc)

    def _sel_compare(self, inst):
        areg = self.read(inst.a, loc=inst.loc)
        self._emit_cmp(areg, inst.b, inst.loc)
        rt = self.alloc_reg(pinned=(areg,))
        self.emit(Op.SETCC, (rt,), imm=int(_CC_MAP[inst.oper]), loc=inst.loc)
        self.write_result(inst.dst, rt, inst.loc)

    def _emit_cmp(self, areg, b, loc):
        if isinstance(b, Imm) and _fits_i32(b.value):
            self.emit(Op.CMP_RI, (areg,), imm=b.value, loc=loc)
        else:
            breg = self.read(b, pinned=(areg,), loc=loc)
            self.emit(Op.CMP_RR, (areg, breg), loc=loc)

    def _sel_unop(self, inst):
        if inst.oper == "-":
            rt = self.read_into_scratch(inst.a, loc=inst.loc)
            self.emit(Op.NEG, (rt,), loc=inst.loc)
            self.write_result(inst.dst, rt, inst.loc)
        else:  # "!"
            areg = self.read(inst.a, loc=inst.loc)
            self.emit(Op.CMP_RI, (areg,), imm=0, loc=inst.loc)
            rt = self.alloc_reg(pinned=(areg,))
            self.emit(Op.SETCC, (rt,), imm=int(CondCode.EQ), loc=inst.loc)
            self.write_result(inst.dst, rt, inst.loc)

    # -- calls ----------------------------------------------------------------------------

    def _sel_call(self, inst, tail=False):
        args = inst.args or []
        if len(args) > len(ARG_REGS):
            raise CodegenError(f"too many call arguments in {self.ir.name}")

        # 1. Which temps survive the call? (their uses minus this inst's)
        survivors = []
        arg_uses = {}
        for operand in list(args) + ([inst.a] if inst.kind == "icall" else []):
            if not isinstance(operand, Imm) and operand in self.temp_loc:
                arg_uses[operand] = arg_uses.get(operand, 0) + 1
        for vreg, loc in list(self.temp_loc.items()):
            remaining = self.use_counts.get(vreg, 0) - arg_uses.get(vreg, 0)
            if remaining > 0:
                survivors.append(vreg)
        if tail and survivors:
            return False

        # Save survivors' values now, but keep their registers readable:
        # an argument may still refer to a surviving temp.
        for vreg in survivors:
            loc = self.temp_loc[vreg]
            if loc[0] == "stack":
                reg = self.alloc_reg()
                self.emit(Op.LOAD, (reg, RBP), disp=-loc[1], loc=inst.loc)
                self.overflow_free.append(loc[1])
                self.temp_loc[vreg] = ("reg", reg)
                loc = self.temp_loc[vreg]
            self.emit(Op.PUSH, (loc[1],), loc=inst.loc)

        # 2. Push argument values (left to right).
        for arg in args:
            reg = self.read(arg, loc=inst.loc)
            self.emit(Op.PUSH, (reg,), loc=inst.loc)
            self._end_inst_partial()

        # 3. Indirect target into r10.
        if inst.kind == "icall":
            freg = self.read(inst.a, loc=inst.loc)
            if freg != R10:
                self.emit(Op.MOV_RR, (R10, freg), loc=inst.loc)
            self._end_inst_partial()

        # Survivors' values are safely on the stack; release their regs.
        for vreg in survivors:
            loc = self.temp_loc[vreg]
            if loc[0] == "reg":
                self.free_reg(loc[1])
            elif loc[0] == "stack":
                self.overflow_free.append(loc[1])
            self.temp_loc[vreg] = ("pushed", None)

        # 4. Pop arguments into the ABI registers (right to left).
        for i in reversed(range(len(args))):
            self.emit(Op.POP, (ARG_REGS[i],), loc=inst.loc)

        if tail:
            for insn in self._epilogue_insns():
                self.block.insns.append(insn)
            if inst.kind == "icall":
                self.emit(Op.JMP_REG, (R10,), loc=inst.loc)
            else:
                self.emit(Op.JMP_NEAR, sym=SymRef(inst.sym, "branch"),
                          loc=inst.loc)
            return True

        if inst.kind == "icall":
            call = self.emit(Op.CALL_REG, (R10,), loc=inst.loc)
        else:
            call = self.emit(Op.CALL, sym=SymRef(inst.sym, "branch"),
                             loc=inst.loc)
        if inst.lp is not None:
            call.set_annotation("lp", inst.lp)

        # 5. Restore survivors into fresh registers, then place result.
        for vreg in reversed(survivors):
            reg = self.alloc_reg(pinned=(RAX,))
            self.emit(Op.POP, (reg,), loc=inst.loc)
            self.temp_loc[vreg] = ("reg", reg)
        if inst.dst is not None:
            if inst.dst in self.promoted:
                self.emit(Op.MOV_RR, (self.promoted[inst.dst], RAX),
                          loc=inst.loc)
            elif inst.dst in self.slots:
                self.emit(Op.STORE, (RBP, RAX), disp=-self.slots[inst.dst],
                          loc=inst.loc)
            else:
                if self.use_counts.get(inst.dst, 0) > 0:
                    reg = self.alloc_reg(pinned=(RAX,))
                    self.emit(Op.MOV_RR, (reg, RAX), loc=inst.loc)
                    self.write_result(inst.dst, reg, inst.loc)
        return True

    def _end_inst_partial(self):
        """Release operand regs mid-sequence (used by the call protocol)."""
        self._end_inst()

    def _try_tail_call(self, inst, terminator):
        """Emit a tail call when the call result flows straight to ret."""
        if terminator.kind != "ret":
            return False
        if inst.lp is not None:
            return False
        ret_val = terminator.a
        if inst.dst is not None and ret_val != inst.dst:
            return False
        if ret_val is not None and inst.dst is None:
            return False
        if (inst.dst is not None
                and (inst.dst in self.vars or self.use_counts.get(inst.dst, 0) != 1)):
            return False
        if inst.kind == "call" and inst.sym == THROW_FUNC:
            return False
        return self._sel_call(inst, tail=True)

    # -- terminators -------------------------------------------------------------------------

    def _terminator(self, term):
        kind = term.kind
        self.loc = term.loc or self.loc
        if kind == "br":
            self.emit(Op.JMP_NEAR, label=term.targets[0], loc=term.loc)
        elif kind == "cbr":
            areg = self.read(term.a, loc=term.loc)
            self._emit_cmp(areg, term.b, term.loc)
            self.emit(Op.JCC_LONG, cc=_CC_MAP[term.oper],
                      label=term.targets[0], loc=term.loc)
            self.emit(Op.JMP_NEAR, label=term.targets[1], loc=term.loc)
        elif kind == "switch":
            self._sel_switch(term)
        elif kind == "ret":
            if term.a is not None:
                src = self.read(term.a, loc=term.loc)
                if src != RAX:
                    self.emit(Op.MOV_RR, (RAX, src), loc=term.loc)
            for insn in self._epilogue_insns():
                self.block.insns.append(insn)
            self.emit(Op.REPZ_RET if self.options.repz_ret else Op.RET,
                      loc=term.loc)
        elif kind == "unreachable":
            self.emit(Op.TRAP, loc=term.loc)
        else:
            raise CodegenError(f"unhandled terminator {kind}")

    def _sel_switch(self, term):
        cases = term.cases
        default = term.targets[0]
        values = sorted(cases)
        span = values[-1] - values[0] + 1 if values else 0
        dense = (len(values) >= self.options.dense_switch_min_cases
                 and span <= self.options.dense_switch_max_ratio * len(values))
        areg = self.read(term.a, loc=term.loc)
        if dense:
            rt = self.alloc_reg(pinned=(areg,))
            self.emit(Op.MOV_RR, (rt, areg), loc=term.loc)
            if values[0] != 0:
                self.emit(Op.SUB_RI, (rt,), imm=values[0], loc=term.loc)
            self.emit(Op.CMP_RI, (rt,), imm=span - 1, loc=term.loc)
            self.emit(Op.JCC_LONG, cc=CondCode.UGT, label=default, loc=term.loc)
            table_sym = f"{self.ir.link_name()}.jt{len(self.mf.jump_tables)}"
            entries = [cases.get(values[0] + i, default) for i in range(span)]
            self.mf.jump_tables.append((table_sym, entries))
            base = self.alloc_reg(pinned=(rt,))
            self.emit(Op.MOV_RI32, (base,), imm=0,
                      sym=SymRef(table_sym, "imm32"), loc=term.loc)
            self.emit(Op.LOADIDX, (base, base, rt), disp=0, loc=term.loc)
            jmp = self.emit(Op.JMP_REG, (base,), loc=term.loc)
            jmp.set_annotation("jump-table", table_sym)
            self.free_reg(rt)
            self.free_reg(base)
        else:
            for value in values:
                if not _fits_i32(value):
                    raise CodegenError("switch case value out of i32 range")
                self.emit(Op.CMP_RI, (areg,), imm=value, loc=term.loc)
                self.emit(Op.JCC_LONG, cc=CondCode.EQ, label=cases[value],
                          loc=term.loc)
            self.emit(Op.JMP_NEAR, label=default, loc=term.loc)


def select_function(func_ir, options=None):
    """Lower one IR function to a :class:`MachineFunction`.

    Frameless selection is attempted for eligible leaves; if register
    pressure forces a spill the function is re-selected with a frame.
    """
    options = options or CodegenOptions()
    selector = _FunctionSelector(func_ir, options)
    selector._terminator_done = False
    if selector.frameless:
        try:
            return selector.run()
        except CodegenError:
            selector = _FunctionSelector(func_ir, options, force_frame=True)
            selector._terminator_done = False
    return selector.run()
