"""BX86 code generation: instruction selection, frames, object emission."""

from repro.codegen.options import CodegenOptions
from repro.codegen.machine import MachineBlock, MachineFunction
from repro.codegen.isel import select_function, CodegenError
from repro.codegen.emitter import emit_object, assemble_function

__all__ = [
    "CodegenOptions",
    "MachineBlock",
    "MachineFunction",
    "select_function",
    "CodegenError",
    "emit_object",
    "assemble_function",
]
