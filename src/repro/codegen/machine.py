"""Machine-level function representation (post-isel, pre-assembly)."""


class MachineBlock:
    """A label plus its instruction list.

    ``align`` requests NOP padding so the block starts at a multiple of
    that value.  ``is_loop_header`` / ``is_landing_pad`` carry layout
    metadata to the assembler and debug tooling.
    """

    def __init__(self, label):
        self.label = label
        self.insns = []
        self.align = 1
        self.is_landing_pad = False
        self.is_loop_header = False
        self.count = None  # profile count carried through for layout

    def __repr__(self):
        return f"<MachineBlock {self.label} ({len(self.insns)} insns)>"


class MachineFunction:
    """One function's machine code before assembly.

    Branch instructions reference block labels through
    ``Instruction.label``; external references use ``Instruction.sym``.
    """

    def __init__(self, name, link_name, static=False):
        self.name = name
        self.link_name = link_name
        self.static = static
        self.blocks = []             # list of MachineBlock, layout order
        self.frame_size = 0
        self.saved_regs = []         # [(reg, rbp_offset)]
        self.has_frame_info = True
        self.jump_tables = []        # [(table_symbol, [block labels])]
        self.source_file = None

    def block(self, label):
        for block in self.blocks:
            if block.label == label:
                return block
        raise KeyError(label)

    def insn_count(self):
        return sum(len(b.insns) for b in self.blocks)

    def __repr__(self):
        return f"<MachineFunction {self.link_name} blocks={len(self.blocks)}>"
