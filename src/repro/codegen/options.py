"""Code generation options.

Several of these exist to give specific BOLT passes their real-world
material and are therefore deliberately "as compilers actually behave"
rather than maximally clean:

* ``repz_ret`` — emit AMD-friendly ``repz retq`` returns
  (``strip-rep-ret`` material, paper Table 1 pass 1).
* ``align_loops`` — pad loop headers with multi-byte NOPs
  (BOLT's discard-alignment-NOPs policy, paper section 4).
* ``naive_param_homing`` — store incoming promoted parameters to their
  shadow stack slots even when only the register copy is ever read
  (``frame-opts`` removable-spill material, pass 15).
* ``frame_info`` — emit CFI-lite frame records; hand-written assembly
  in the workloads turns this off (hybrid discovery, section 3.3).
"""


class CodegenOptions:
    def __init__(
        self,
        repz_ret=True,
        align_loops=True,
        align_to=16,
        naive_param_homing=True,
        tail_calls=True,
        frame_info=True,
        dense_switch_min_cases=4,
        dense_switch_max_ratio=3,
    ):
        self.repz_ret = repz_ret
        self.align_loops = align_loops
        self.align_to = align_to
        self.naive_param_homing = naive_param_homing
        self.tail_calls = tail_calls
        self.frame_info = frame_info
        self.dense_switch_min_cases = dense_switch_min_cases
        self.dense_switch_max_ratio = dense_switch_max_ratio

    def copy(self, **overrides):
        out = CodegenOptions(
            repz_ret=self.repz_ret,
            align_loops=self.align_loops,
            align_to=self.align_to,
            naive_param_homing=self.naive_param_homing,
            tail_calls=self.tail_calls,
            frame_info=self.frame_info,
            dense_switch_min_cases=self.dense_switch_min_cases,
            dense_switch_max_ratio=self.dense_switch_max_ratio,
        )
        for key, value in overrides.items():
            setattr(out, key, value)
        return out
