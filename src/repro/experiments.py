"""``python -m repro.experiments`` — regenerate the paper's tables from
the command line, without pytest.

    python -m repro.experiments fig5 [--iterations N]
    python -m repro.experiments fig6
    python -m repro.experiments fig7-8
    python -m repro.experiments fig11
    python -m repro.experiments tab2
"""

import argparse
import sys

from repro.harness import experiments as X


def _fig5(args):
    data = X.figure5(iterations=args.iterations)
    print(f"{'workload':12s}{'before':>12s}{'after':>12s}{'speedup':>10s}")
    for name, before, after, gain in data["rows"]:
        print(f"{name:12s}{before:>12,}{after:>12,}{gain:>+10.1%}")
    print(f"{'GeoMean':12s}{'':>12s}{'':>12s}{data['geomean']:>+10.1%}")


def _fig6(args):
    for label, value in X.figure6().items():
        print(f"{label:10s} {value:+.1%}")


def _fig78(args):
    table = X.figures7and8(iterations=args.iterations)
    keys = ("BOLT", "PGO", "PGO+BOLT", "PGO+LTO", "PGO+LTO+BOLT")
    print(f"{'input':10s}" + "".join(f"{k:>14s}" for k in keys))
    for label, row in table.items():
        print(f"{label:10s}" + "".join(f"{row[k]:>+14.1%}" for k in keys))


def _fig11(args):
    data = X.figure11(iterations=args.iterations)
    print(f"{'scope':12s}{'with LBR':>10s}{'w/o LBR':>10s}{'LBR value':>11s}")
    for scope, (with_lbr, without) in data.items():
        print(f"{scope:12s}{with_lbr:>+10.1%}{without:>+10.1%}"
              f"{with_lbr - without:>+11.1%}")


def _tab2(args):
    data = X.table2(iterations=args.iterations)
    fields = sorted(data["over_baseline"])
    print(f"{'metric':36s}{'over base':>12s}{'over PGO+LTO':>14s}")
    for field in fields:
        base = data["over_baseline"][field]
        pgo = data["over_pgo_lto"][field]
        base_s = f"{base:+.1%}" if base is not None else "n/a"
        pgo_s = f"{pgo:+.1%}" if pgo is not None else "n/a"
        print(f"{field:36s}{base_s:>12s}{pgo_s:>14s}")


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro.experiments")
    parser.add_argument("experiment",
                        choices=["fig5", "fig6", "fig7-8", "fig11", "tab2"])
    parser.add_argument("--iterations", type=int, default=None,
                        help="override workload iteration counts")
    args = parser.parse_args(argv)
    {
        "fig5": _fig5,
        "fig6": _fig6,
        "fig7-8": _fig78,
        "fig11": _fig11,
        "tab2": _tab2,
    }[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
