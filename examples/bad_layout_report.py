#!/usr/bin/env python
"""Reproduce the paper's section 6.3 analysis (Figure 10): even a
PGO-optimized binary contains *cold basic blocks interleaved with hot
ones*, because the compiler's profile is context-merged across inlined
callsites (Figure 2).  BOLT's `-report-bad-layout` finds them, and the
Figure 4-style CFG dump shows one.
"""

from repro.core import BinaryContext, BoltOptions
from repro.core.cfg_builder import build_all_functions
from repro.core.discovery import discover_functions
from repro.core.profile_attach import attach_profile
from repro.core.reports import (
    dump_function,
    format_bad_layout_report,
    report_bad_layout,
)
from repro.harness import build_workload, sample_profile
from repro.workloads import make_workload


def main():
    workload = make_workload("compiler", iterations=160)
    print("building the compiler workload with PGO (FDO) ...")
    built = build_workload(workload, pgo=True)
    profile, _ = sample_profile(built)

    context = BinaryContext(built.exe, BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    attach_profile(context, profile)

    findings = report_bad_layout(context, min_count=30, max_reports=12)
    print(format_bad_layout_report(findings))

    if findings:
        worst = findings[0]
        print(f"\nFigure 4-style dump of {worst['function']} "
              f"(note the cold {worst['block']} between hot blocks):\n")
        print(dump_function(context.functions[worst["function"]],
                            max_blocks=8))


if __name__ == "__main__":
    main()
