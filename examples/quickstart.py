#!/usr/bin/env python
"""Quickstart: the whole BOLT pipeline on a small program in ~40 lines.

    compile -> run (baseline) -> sample profile -> BOLT -> run (optimized)

Mirrors the paper's Figure 1/3 flow: the profile is collected from the
*unmodified* production binary via sampling and applied post-link.
"""

from repro.compiler import build_executable
from repro.core import BoltOptions, optimize_binary
from repro.profiling import SamplingConfig, profile_binary
from repro.uarch import run_binary

SOURCE = """
const array weights[8] = {3, 1, 4, 1, 5, 9, 2, 6};

func score(x) {
  if (x % 7 == 3) {            // rarely taken
    return x * weights[x] + 11;
  }
  return x + weights[x];       // the hot path
}

func main() {
  var i = 0;
  var total = 0;
  while (i < 2000) {
    total = total + score(i);
    i = i + 1;
  }
  out total;
  return 0;
}
"""


def main():
    # 1. Compile and link with --emit-relocs (BOLT's relocations mode).
    exe, _ = build_executable([("demo", SOURCE)], emit_relocs=True)

    # 2. Baseline measurement.
    baseline = run_binary(exe)
    print(f"baseline : output={baseline.output[0]} "
          f"cycles={baseline.counters.cycles:,}")

    # 3. Sample the unmodified binary (perf record -e cycles -j any).
    profile, _ = profile_binary(exe, sampling=SamplingConfig(period=97))
    print(f"profile  : {len(profile.branches)} branch records from LBRs")

    # 4. Post-link optimize (llvm-bolt -reorder-blocks=cache+ ...).
    result = optimize_binary(exe, profile, BoltOptions())

    # 5. Re-measure.
    optimized = run_binary(result.binary)
    assert optimized.output == baseline.output, "semantics must not change"
    gain = baseline.counters.cycles / optimized.counters.cycles - 1
    print(f"bolted   : output={optimized.output[0]} "
          f"cycles={optimized.counters.cycles:,}  (+{gain:.1%} speedup)")
    print(f"text size: {exe.text_size()}B -> hot {result.hot_text_size}B "
          f"+ cold {result.cold_text_size}B")


if __name__ == "__main__":
    main()
