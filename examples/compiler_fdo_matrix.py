#!/usr/bin/env python
"""The Clang/GCC experiment in miniature (paper Figures 7 and 8):

Build the compiler-shaped workload in four configurations and show that
compile-time FDO and post-link BOLT are *complementary*:

    baseline            (O2)
    BOLT                (O2 + BOLT)
    PGO+LTO             (instrumented FDO + LTO)
    PGO+LTO+BOLT        (everything)

The training input for PGO and for BOLT's profile is the same; the
measurement runs use the workload's input mixes.
"""

from repro.harness import (
    build_workload,
    measure,
    run_bolt,
    sample_profile,
    speedup,
)
from repro.workloads import make_workload


def bolted(built, workload):
    profile, _ = sample_profile(built)
    return run_bolt(built, profile).binary


def main():
    workload = make_workload("compiler", iterations=160)
    print("building 4 configurations of the compiler-like workload ...")
    base = build_workload(workload)
    pgo_lto = build_workload(workload, pgo=True, lto=True)

    binaries = {
        "baseline": base.exe,
        "BOLT": bolted(base, workload),
        "PGO+LTO": pgo_lto.exe,
        "PGO+LTO+BOLT": bolted(pgo_lto, workload),
    }

    print(f"{'input':10s}" + "".join(f"{k:>16s}" for k in binaries
                                     if k != "baseline"))
    inputs_by_label = {"default": workload.inputs, **workload.alt_inputs}
    for label, inputs in inputs_by_label.items():
        base_cycles = measure(binaries["baseline"], inputs=inputs
                              ).counters.cycles
        row = f"{label:10s}"
        reference = None
        for key, binary in binaries.items():
            if key == "baseline":
                continue
            cycles = measure(binary, inputs=inputs).counters.cycles
            row += f"{speedup(base_cycles, cycles):>15.1%} "
        print(row)
    print("\n(speedups over the plain -O2 baseline; the paper's claim is "
          "that the BOLT and PGO+LTO columns do not subsume each other)")


if __name__ == "__main__":
    main()
