#!/usr/bin/env python
"""A data-center-shaped service through the full production pipeline
(the paper's section 6.1 setup):

  1. build the HHVM-like workload with LTO,
  2. apply the link-time HFSort baseline (profile-guided function order),
  3. BOLT it on top,
  4. compare cycles and the micro-architecture counters (Figure 6),
  5. render the instruction-address heat maps (Figure 9).
"""

from repro.core import BoltOptions
from repro.harness import (
    build_workload,
    counter_reductions,
    fetch_heatmap,
    hot_footprint,
    measure,
    render_heatmap,
    run_bolt,
    sample_profile,
    speedup,
)
from repro.workloads import make_workload


def main():
    workload = make_workload("hhvm")
    print("building hhvm-like workload with LTO + link-time HFSort ...")
    built = build_workload(workload, lto=True, hfsort_link="hfsort")
    print(f"  text: {built.exe.text_size():,} bytes, "
          f"{len(built.exe.functions())} functions")

    baseline = measure(built, fetch_heat=True)
    print(f"baseline: {baseline.counters.cycles:,} cycles")

    profile, _ = sample_profile(built)
    result = run_bolt(built, profile, BoltOptions())
    optimized = measure(result.binary, inputs=workload.inputs,
                        fetch_heat=True)
    assert optimized.output == baseline.output

    print(f"bolted  : {optimized.counters.cycles:,} cycles  "
          f"(+{speedup(baseline.counters.cycles, optimized.counters.cycles):.1%})")

    non_simple = [f.name for f in result.context.functions.values()
                  if not f.is_simple]
    print(f"non-simple functions (indirect tail calls etc.): "
          f"{len(non_simple)}")

    print("\nFigure 6-style miss reductions:")
    for label, reduction in counter_reductions(
            baseline.counters, optimized.counters).items():
        print(f"  {label:8s} {reduction:+7.1%}")

    print("\nFigure 9-style heat maps (log fetch density, 32x32):")
    span = (0, max(s.end for s in result.binary.sections.values()
                   if s.is_exec))
    for name, cpu in (("before", baseline), ("after", optimized)):
        print(f"--- {name}: hot footprint "
              f"{hot_footprint(cpu, 0.99):,} bytes")
        print(render_heatmap(fetch_heatmap(cpu, grid=32, span=span)))


if __name__ == "__main__":
    main()
