"""Figure 9: instruction-address-space heat maps for HHVM before/after
BOLT.

Paper: hot code that was spread over the 148.2 MB text section is
packed into ~4 MB after BOLT, with residual activity only from
non-simple functions (indirect tail calls).  Shape claims: the hot
fetch footprint shrinks substantially, and most fetch volume
concentrates at the front of the new layout.
"""

from conftest import once, print_table
from repro.harness import fetch_heatmap, hot_footprint, render_heatmap
from repro.harness.heatmap import hot_span


def test_fig9_heatmaps(benchmark, facebook_experiments):
    exp = facebook_experiments["hhvm"]

    rows = []
    footprints = {}
    for coverage in (0.90, 0.99):
        before = hot_footprint(exp.baseline, coverage)
        after = hot_footprint(exp.optimized, coverage)
        footprints[coverage] = (before, after)
        rows.append((f"{coverage:.0%} of fetches", f"{before:,} B",
                     f"{after:,} B", f"{before / after:.2f}x"))
    print_table("Figure 9: hot-code footprint (HHVM analog)",
                ("coverage", "before BOLT", "after BOLT", "packing"),
                rows)

    # Heat maps on a common address axis.
    hi = max(s.end for s in exp.result.binary.sections.values() if s.is_exec)
    span = (0x10000, hi)
    print("\nbefore:")
    print(render_heatmap(fetch_heatmap(exp.baseline, grid=24, span=span)))
    print("after:")
    print(render_heatmap(fetch_heatmap(exp.optimized, grid=24, span=span)))

    for coverage, (before, after) in footprints.items():
        assert after < before, coverage
    # Strong packing of the hottest code (paper: 148 MB -> 4 MB for the
    # 99%-coverage region; our scale is smaller but the ratio is real).
    b99, a99 = footprints[0.99]
    assert b99 / a99 > 1.15

    benchmark.extra_info["footprints"] = {
        str(c): v for c, v in footprints.items()}
    once(benchmark, lambda: hot_footprint(exp.optimized, 0.99))


def test_fig9_non_simple_residual(benchmark, facebook_experiments):
    """The paper attributes the residual out-of-hot-region activity to
    non-simple functions BOLT leaves untouched; our hhvm workload has
    them by construction (indirect tail calls)."""
    exp = facebook_experiments["hhvm"]
    non_simple = [f for f in exp.result.context.functions.values()
                  if not f.is_simple]
    assert non_simple
    reasons = {f.simple_violation for f in non_simple}
    assert any("indirect" in r for r in reasons)
    print(f"\nnon-simple functions: {len(non_simple)} "
          f"({sum(f.size for f in non_simple):,} bytes) — reasons: {reasons}")
    once(benchmark, lambda: len(non_simple))
