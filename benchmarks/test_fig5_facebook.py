"""Figure 5: BOLT speedups on the five data-center workloads, applied on
top of profile-guided function reordering (HFSort at link time; HHVM
additionally built with LTO).

Paper: HHVM 8.0%, TAO ~5%, Proxygen ~4%, Multifeed1/2 ~4-6%;
average 5.4%.  Shape claims checked here: every workload speeds up,
HHVM (the largest, most front-end-bound) gains the most, and the
geomean lands in the single-digit-to-low-teens percent range.
"""

import math

from conftest import once, print_table
from repro.uarch import run_binary


def test_fig5_facebook_speedups(benchmark, facebook_experiments):
    experiments = facebook_experiments
    rows = []
    speedups = {}
    for name, exp in experiments.items():
        speedups[name] = exp.speedup
        rows.append((
            name,
            f"{exp.baseline.counters.cycles:,}",
            f"{exp.optimized.counters.cycles:,}",
            f"{exp.speedup:+.1%}",
        ))
    geomean = math.prod(1 + s for s in speedups.values()) ** (1 / len(speedups)) - 1
    rows.append(("GeoMean", "", "", f"{geomean:+.1%}"))
    print_table("Figure 5: %speedup from BOLT over HFSort baseline",
                ("workload", "cycles before", "cycles after", "speedup"),
                rows)

    # Shape assertions (paper: all positive, avg 5.4%, max 8.0% on HHVM).
    assert all(s > 0 for s in speedups.values()), speedups
    assert geomean > 0.02
    assert speedups["hhvm"] >= max(speedups.values()) * 0.6  # among the top

    hhvm = experiments["hhvm"]
    benchmark.extra_info["speedups"] = {k: round(v, 4)
                                        for k, v in speedups.items()}
    benchmark.extra_info["geomean"] = round(geomean, 4)
    once(benchmark,
         lambda: run_binary(hhvm.result.binary, inputs=hhvm.workload.inputs))
