"""Table 1: the 16-pass optimization pipeline — audited end to end.

For each pass, the benchmark reports what it did on the compiler
workload and asserts it had its intended effect at least once, i.e. the
pipeline is not just present but *active* on realistic input.
"""

from conftest import once, print_table
from repro.core import BoltOptions
from repro.harness import measure, run_bolt, sample_profile, speedup


def test_tab1_pipeline_activity(benchmark, compiler_matrix):
    result = compiler_matrix["bolt"]
    stats = result.pass_stats

    rows = []
    for name, stat in stats.items():
        interesting = {k: v for k, v in stat.items() if v}
        rows.append((name, str(interesting) if interesting else "-"))
    print_table("Table 1: pass-by-pass activity (compiler workload)",
                ("pass", "effect"), rows)

    assert stats["strip-rep-ret"]["stripped"] > 0
    assert stats["icf"]["folded"] + stats["icf-2"]["folded"] > 0
    assert stats["icp"]["promoted"] > 0
    assert stats["peepholes"]["push-pop"] > 0
    assert stats["inline-small"]["inlined"] > 0
    assert stats["simplify-ro-loads"]["converted"] > 0
    assert stats["plt"]["optimized"] > 0
    assert stats["reorder-bbs"]["reordered"] > 0
    assert stats["reorder-bbs"]["cold-blocks"] > 0
    assert stats["fixup-branches"]["inverted"] + \
        stats["fixup-branches"]["removed-jumps"] > 0
    assert stats["reorder-functions"]["functions"] > 0
    assert stats["sctc"]["simplified"] > 0
    assert stats["frame-opts"]["removed-stores"] > 0

    benchmark.extra_info["pass_stats"] = {
        name: {k: v for k, v in stat.items() if v}
        for name, stat in stats.items()}
    once(benchmark, lambda: stats)


def test_tab1_cumulative_pass_value(benchmark, compiler_matrix):
    """Ablation: disabling groups of passes must not *help* — the full
    pipeline is at least as fast as layout-only."""
    workload = compiler_matrix["workload"]
    built = compiler_matrix["baseline"]
    profile, _ = sample_profile(built)
    base_cycles = measure(built).counters.cycles

    full = run_bolt(built, profile, BoltOptions())
    layout_only = run_bolt(built, profile, BoltOptions(
        icf=False, icp=False, peepholes=False, inline_small=False,
        simplify_ro_loads=False, plt=False, sctc=False, frame_opts=False,
        shrink_wrapping=False, strip_rep_ret=False))

    full_cycles = measure(full.binary, inputs=workload.inputs).counters.cycles
    layout_cycles = measure(layout_only.binary,
                            inputs=workload.inputs).counters.cycles

    print_table(
        "Table 1 (cumulative): layout-only vs full pipeline",
        ("configuration", "cycles", "speedup vs O2"),
        [("O2 baseline", f"{base_cycles:,}", "-"),
         ("layout passes only", f"{layout_cycles:,}",
          f"{speedup(base_cycles, layout_cycles):+.1%}"),
         ("full Table 1 pipeline", f"{full_cycles:,}",
          f"{speedup(base_cycles, full_cycles):+.1%}")])

    # Layout is the dominant effect (the paper's central claim)...
    assert speedup(base_cycles, layout_cycles) > 0.05
    # ...and the remaining passes add, not subtract.
    assert full_cycles <= layout_cycles * 1.01

    benchmark.extra_info["full"] = full_cycles
    benchmark.extra_info["layout_only"] = layout_cycles
    once(benchmark, lambda: measure(full.binary, inputs=workload.inputs))
