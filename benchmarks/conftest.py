"""Shared experiment fixtures for the paper-reproduction benchmarks.

Expensive artifacts (built workloads, profiles, BOLTed binaries) are
computed once per session and shared across benchmark files.  Set
``REPRO_BENCH_SCALE`` (float, default 1.0) to shrink workload iteration
counts for a faster smoke run, e.g.::

    REPRO_BENCH_SCALE=0.25 pytest benchmarks/ --benchmark-only
"""

import os

import pytest

from repro.core import BoltOptions
from repro.harness import (
    build_workload,
    measure,
    run_bolt,
    sample_profile,
    speedup,
)
from repro.workloads import FACEBOOK_NAMES, make_workload

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(name, **overrides):
    workload = make_workload(name, **overrides)
    if SCALE != 1.0:
        workload = make_workload(
            name, iterations=max(40, int(workload.spec.iterations * SCALE)),
            **overrides)
    return workload


class Experiment:
    """One workload taken through baseline -> profile -> BOLT."""

    def __init__(self, name, workload, built, bolt_options=None):
        self.name = name
        self.workload = workload
        self.built = built
        self.baseline = measure(built, fetch_heat=True)
        self.profile, _ = sample_profile(built)
        self.result = run_bolt(built, self.profile,
                               bolt_options or BoltOptions())
        self.optimized = measure(self.result.binary, inputs=workload.inputs,
                                 fetch_heat=True)
        assert self.optimized.output == self.baseline.output, \
            f"{name}: BOLT changed program behaviour"

    @property
    def speedup(self):
        return speedup(self.baseline.counters.cycles,
                       self.optimized.counters.cycles)


@pytest.fixture(scope="session")
def facebook_experiments():
    """Figure 5/6 artifacts: the five data-center workloads on top of
    link-time HFSort (HHVM additionally with LTO, paper section 6.1)."""
    out = {}
    for name in FACEBOOK_NAMES:
        workload = scaled(name)
        built = build_workload(workload, lto=(name == "hhvm"),
                               hfsort_link="hfsort")
        out[name] = Experiment(name, workload, built)
    return out


@pytest.fixture(scope="session")
def compiler_matrix():
    """Figure 7/8/Table 2 artifacts: the compiler-shaped workload in the
    four build configurations of section 6.2."""
    workload = scaled("compiler")

    def bolt_of(built):
        profile, _ = sample_profile(built)
        return run_bolt(built, profile)

    base = build_workload(workload)
    pgo = build_workload(workload, pgo=True)
    pgo_lto = build_workload(workload, pgo=True, lto=True)

    return {
        "workload": workload,
        "baseline": base,
        "pgo": pgo,
        "pgo_lto": pgo_lto,
        "bolt": bolt_of(base),
        "pgo_bolt": bolt_of(pgo),
        "pgo_lto_bolt": bolt_of(pgo_lto),
    }


def print_table(title, headers, rows):
    """Uniform benchmark output table."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows),
                                   default=0))
              for i, h in enumerate(headers)]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def once(benchmark, fn):
    """Run a callable exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
