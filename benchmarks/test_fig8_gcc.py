"""Figure 8: GCC-analog speedups — like Figure 7 but PGO without LTO
(the paper could not build GCC with LTO).

Paper (GCC): BOLT 14-24%, PGO 12-17%, PGO+BOLT 18-28%; the combination
always wins and BOLT-on-PGO adds a real increment (7.45% on the full
build).  Shape claims mirror that.
"""

from conftest import once, print_table
from repro.harness import measure, speedup
from repro.uarch import run_binary


def test_fig8_gcc_analog(benchmark, compiler_matrix):
    workload = compiler_matrix["workload"]
    input_mixes = {"input1 (default)": workload.inputs}
    for label, inputs in workload.alt_inputs.items():
        input_mixes[label] = inputs

    rows = []
    all_results = {}
    for label, inputs in input_mixes.items():
        base_cycles = measure(compiler_matrix["baseline"].exe,
                              inputs=inputs).counters.cycles
        results = {
            "BOLT": speedup(base_cycles, measure(
                compiler_matrix["bolt"].binary,
                inputs=inputs).counters.cycles),
            "PGO": speedup(base_cycles, measure(
                compiler_matrix["pgo"].exe, inputs=inputs).counters.cycles),
            "PGO+BOLT": speedup(base_cycles, measure(
                compiler_matrix["pgo_bolt"].binary,
                inputs=inputs).counters.cycles),
        }
        all_results[label] = results
        rows.append((label,) + tuple(f"{results[k]:+.1%}"
                                     for k in ("BOLT", "PGO", "PGO+BOLT")))
    print_table("Figure 8: GCC-analog speedups over -O2 baseline",
                ("input", "BOLT", "PGO", "PGO+BOLT"), rows)

    for label, results in all_results.items():
        assert results["BOLT"] > 0.05, label
        assert results["PGO"] > 0.0, label
        assert results["PGO+BOLT"] > results["PGO"], label

    benchmark.extra_info["speedups"] = {
        label: {k: round(v, 4) for k, v in results.items()}
        for label, results in all_results.items()}
    exe = compiler_matrix["pgo_bolt"].binary
    once(benchmark, lambda: run_binary(exe, inputs=workload.inputs))
