"""Section 5.1: robustness to the hardware sampling event.

The paper found that in LBR mode, BOLT's speedup is within ~1% across
sampling events (cycles / retired instructions / taken branches, with
and without PEBS precision), while naive non-LBR profiles lose most of
the benefit.

Shape claims: the spread of LBR-mode speedups across events is small
relative to the mean speedup; the non-LBR speedup is lower than the
worst LBR-mode speedup.
"""

from conftest import once, print_table
from repro.harness import measure, run_bolt, sample_profile, speedup
from repro.profiling import EVENT_PRESETS, SamplingConfig
from repro.workloads import make_workload
from repro.harness import build_workload


def test_sec51_sampling_event_robustness(benchmark):
    workload = make_workload("tao")
    built = build_workload(workload, hfsort_link="hfsort")
    base = measure(built)

    rows = []
    lbr_speedups = {}
    for name, config in EVENT_PRESETS.items():
        profile, _ = sample_profile(built, sampling=config)
        optimized = measure(run_bolt(built, profile).binary,
                            inputs=workload.inputs)
        assert optimized.output == base.output
        gain = speedup(base.counters.cycles, optimized.counters.cycles)
        lbr_speedups[name] = gain
        rows.append((name, "yes", f"{gain:+.2%}"))

    nolbr_profile, _ = sample_profile(
        built, sampling=SamplingConfig(period=251, use_lbr=False, skid=6))
    nolbr = measure(run_bolt(built, nolbr_profile).binary,
                    inputs=workload.inputs)
    nolbr_gain = speedup(base.counters.cycles, nolbr.counters.cycles)
    rows.append(("cycles (no LBR, naive)", "no", f"{nolbr_gain:+.2%}"))

    print_table("Section 5.1: BOLT speedup by sampling event (TAO analog)",
                ("event", "LBR", "speedup"), rows)

    spread = max(lbr_speedups.values()) - min(lbr_speedups.values())
    mean = sum(lbr_speedups.values()) / len(lbr_speedups)
    print(f"\nLBR-mode spread: {spread:.2%} around mean {mean:.2%}")

    assert all(g > 0 for g in lbr_speedups.values())
    # Paper: "performance differences were within 1%" — we allow a bit
    # more at simulator scale, but the spread stays well below the win.
    assert spread < max(0.03, mean)
    # Non-LBR gives up part of the benefit.
    assert nolbr_gain < max(lbr_speedups.values())

    benchmark.extra_info["speedups"] = {
        k: round(v, 4) for k, v in lbr_speedups.items()}
    benchmark.extra_info["nolbr"] = round(nolbr_gain, 4)
    once(benchmark, lambda: lbr_speedups)
