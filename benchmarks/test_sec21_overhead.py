"""Section 2.1: why sample-based profiling?

The paper's motivation: "instrumentation typically incurs very
significant CPU and memory overheads ... sample-based profiling
overheads are negligible".  Our instrumented builds physically insert
load/add/store counter triples per basic block, so the overhead is
measurable; the sampler only watches the run.

Shape claims: the instrumented binary is substantially slower than the
production binary (tens of percent or more); running under the sampler
costs exactly zero simulated cycles.
"""

from conftest import once, print_table, scaled
from repro.compiler import BuildOptions, compile_program
from repro.harness import build_workload, measure, sample_profile
from repro.linker import link
from repro.uarch import run_binary


def test_sec21_instrumentation_overhead(benchmark):
    workload = scaled("tao")
    built = build_workload(workload)
    production = measure(built)

    # Instrumented build (the -fprofile-generate analog).
    result = compile_program(workload.sources, BuildOptions(instrument=True))
    objects = list(result.objects)
    if workload.asm_sources:
        asm = compile_program(workload.asm_sources, BuildOptions())
        objects.extend(asm.objects)
    libs = []
    if workload.lib_sources:
        libs = compile_program(workload.lib_sources, BuildOptions()).objects
    instrumented_exe = link(objects, libs=libs, name="instrumented")
    instrumented = run_binary(instrumented_exe, inputs=workload.inputs)

    # Sampled run of the *unmodified* production binary.
    profile, sampled_cpu = sample_profile(built)

    inst_overhead = (instrumented.counters.cycles
                     / production.counters.cycles - 1)
    sample_overhead = (sampled_cpu.counters.cycles
                       / production.counters.cycles - 1)

    print_table(
        "Section 2.1: profiling overheads (TAO analog)",
        ("configuration", "cycles", "overhead"),
        [("production (-O2)", f"{production.counters.cycles:,}", "-"),
         ("instrumented (PGO train)", f"{instrumented.counters.cycles:,}",
          f"{inst_overhead:+.1%}"),
         ("production under sampler", f"{sampled_cpu.counters.cycles:,}",
          f"{sample_overhead:+.1%}")])

    assert inst_overhead > 0.15          # instrumentation is expensive
    assert abs(sample_overhead) < 0.001  # sampling is free
    assert len(profile) > 0              # and still yields a usable profile

    benchmark.extra_info["instrumentation"] = round(inst_overhead, 4)
    benchmark.extra_info["sampling"] = round(sample_overhead, 6)
    once(benchmark, lambda: run_binary(instrumented_exe,
                                       inputs=workload.inputs))
