"""Table 2: BOLT's dyno-stats on the Clang-analog binaries, for the
baseline and for the PGO+LTO build.

Paper highlights (over PGO+LTO): taken branches -44.3%, taken forward
branches -61.1%, non-taken conditional +13.7%, executed instructions
-0.7%.  Over baseline: taken branches -69.8%.  Shape claims: taken
branches and taken forward branches drop massively in both columns;
non-taken conditionals *increase* (branches got inverted, not removed);
instruction counts barely move; the over-baseline column is stronger
than the over-PGO+LTO column.
"""

from conftest import once, print_table

ROWS = (
    ("executed forward branches", "executed_forward_branches"),
    ("taken forward branches", "taken_forward_branches"),
    ("executed backward branches", "executed_backward_branches"),
    ("taken backward branches", "taken_backward_branches"),
    ("executed unconditional branches", "executed_unconditional_branches"),
    ("executed instructions", "executed_instructions"),
    ("total branches", "total_branches"),
    ("taken branches", "taken_branches"),
    ("non-taken conditional branches", "non_taken_conditional_branches"),
    ("taken conditional branches", "taken_conditional_branches"),
)


def test_tab2_dyno_stats(benchmark, compiler_matrix):
    over_base = compiler_matrix["bolt"]
    over_pgo_lto = compiler_matrix["pgo_lto_bolt"]

    delta_base = over_base.dyno_after.delta_vs(over_base.dyno_before)
    delta_pgo = over_pgo_lto.dyno_after.delta_vs(over_pgo_lto.dyno_before)

    def fmt(delta, field):
        value = delta.get(field)
        return f"{value:+.1%}" if value is not None else "n/a"

    print_table(
        "Table 2: dyno-stats deltas from BOLT",
        ("metric", "over baseline", "over PGO+LTO"),
        [(label, fmt(delta_base, field), fmt(delta_pgo, field))
         for label, field in ROWS])

    for delta, label in ((delta_base, "baseline"), (delta_pgo, "pgo+lto")):
        assert delta["taken_branches"] < -0.25, label          # paper -69.8/-44.3%
        assert delta["taken_forward_branches"] < -0.3, label   # paper -83.9/-61.1%
        assert delta["non_taken_conditional_branches"] > 0, label
        assert abs(delta["executed_instructions"]) < 0.15, label
    # BOLT finds more to fix in the non-FDO binary.
    assert delta_base["taken_branches"] <= delta_pgo["taken_branches"] + 0.05

    benchmark.extra_info["over_baseline"] = {
        f: round(v, 4) for f, v in delta_base.items() if v is not None}
    benchmark.extra_info["over_pgo_lto"] = {
        f: round(v, 4) for f, v in delta_pgo.items() if v is not None}
    once(benchmark, lambda: over_base.dyno_after.as_dict())
