"""Figure 10 / section 6.3: even the PGO-built binary contains cold
blocks interleaved between hot blocks, traceable (via debug info) to
inlined callsites whose profile was context-merged (Figure 2).

Shape claims: the -report-bad-layout analysis finds such occurrences in
the PGO build, and at least one finding carries a source attribution.
"""

from conftest import once, print_table
from repro.core import BinaryContext, BoltOptions
from repro.core.cfg_builder import build_all_functions
from repro.core.discovery import discover_functions
from repro.core.profile_attach import attach_profile
from repro.core.reports import report_bad_layout
from repro.harness import sample_profile


def _findings(built, min_count):
    profile, _ = sample_profile(built)
    context = BinaryContext(built.exe, BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    attach_profile(context, profile)
    return report_bad_layout(context, min_count=min_count)


def test_fig10_bad_layout_in_pgo_build(benchmark, compiler_matrix):
    findings = _findings(compiler_matrix["pgo"], min_count=20)
    rows = [(f["function"], f["block"], f["exec_count"],
             f"{f['hot_counts'][0]}/{f['hot_counts'][1]}",
             f"{f['source'][0]}:{f['source'][1]}" if f["source"] else "?")
            for f in findings[:10]]
    print_table(
        "Figure 10: cold blocks between hot blocks in the PGO build",
        ("function", "cold block", "count", "hot neighbours", "source"),
        rows)
    assert findings, "PGO build should still contain bad layout"
    assert any(f["source"] is not None for f in findings)

    benchmark.extra_info["findings"] = len(findings)
    once(benchmark, lambda: _findings(compiler_matrix["pgo"], 20))


def test_fig10_bolt_fixes_bad_layout(benchmark, compiler_matrix):
    """After BOLT, hot parts contain no cold-between-hot interleavings
    (cold blocks were moved out of line)."""
    result = compiler_matrix["pgo_bolt"]
    remaining = []
    for func in result.context.functions.values():
        if not func.is_simple or not func.has_profile:
            continue
        layout = [b for b in func.layout() if not b.is_cold]
        hottest = max((b.exec_count for b in layout), default=0)
        threshold = max(1, int(hottest * 0.005))
        for i in range(1, len(layout) - 1):
            if (layout[i].exec_count < threshold
                    and layout[i - 1].exec_count >= threshold
                    and layout[i + 1].exec_count >= threshold):
                remaining.append((func.name, layout[i].label))
    print(f"\ncold-between-hot occurrences left in BOLTed hot text: "
          f"{len(remaining)}")
    assert len(remaining) <= 2, remaining  # essentially eliminated
    once(benchmark, lambda: len(remaining))
