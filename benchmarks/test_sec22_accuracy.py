"""Section 2.2: profile accuracy at different pipeline levels.

The paper cites Chen et al.: profiles retrofitted into compiler IR are
only 84.1-92.9% accurate, and accuracy matters most for low-level
layout decisions.  We reproduce the measurement methodology with the
overlap metric (see ``repro.profiling.accuracy``):

* **ground truth** — exact pre-inline IR edge counts from an
  instrumented run;
* **AutoFDO estimate** — the production (-O2, inlined) binary sampled,
  samples mapped back to source lines through debug info, block counts
  attached, edge counts re-inferred from flow equations.

Reported at three granularities.  Shape claims: accuracy *degrades with
granularity* (function-level is decent, edge-level is badly lossy —
exactly why "using inaccurate profile data can actually lead to
performance degradation"), while the binary-level view BOLT consumes
preserves the fine-grained weights much better.
"""

from collections import defaultdict

from conftest import once, print_table, scaled
from repro.compiler import (
    BuildOptions,
    attach_edge_profile,
    attach_source_profile,
    build_ir,
    collect_edge_profile,
    compile_program,
)
from repro.core import BinaryContext, BoltOptions
from repro.core.cfg_builder import build_all_functions
from repro.core.discovery import discover_functions
from repro.core.profile_attach import attach_profile
from repro.harness import build_workload, sample_profile
from repro.harness.pipeline import _map_to_source
from repro.linker import link
from repro.profiling import SamplingConfig, ir_edge_truth, overlap_accuracy
from repro.uarch import run_binary


def _line_weights_ir(modules):
    weights = {}
    for module in modules:
        for func in module.functions.values():
            for block in func.blocks.values():
                for inst in block.insts:
                    if inst.loc is not None:
                        weights[inst.loc] = (weights.get(inst.loc, 0)
                                             + (block.count or 0))
                        break
    return weights


def test_sec22_profile_accuracy(benchmark):
    workload = scaled("mini")
    sources = workload.sources

    # Ground truth: instrumented run -> exact pre-inline IR edge counts.
    result = compile_program(sources, BuildOptions(instrument=True))
    libs = []
    if workload.lib_sources:
        libs = compile_program(workload.lib_sources, BuildOptions()).objects
    train = link(list(result.objects), libs=libs, name="train")
    cpu = run_binary(train, inputs=workload.inputs)
    exact = collect_edge_profile(cpu.machine, result.counter_keys)

    truth_modules = build_ir(sources)
    for module in truth_modules:
        for func in module.functions.values():
            attach_edge_profile(func, exact)
    truth_edges = ir_edge_truth(truth_modules)
    truth_lines = _line_weights_ir(truth_modules)
    truth_funcs = defaultdict(float)
    for (func, _, _), weight in truth_edges.items():
        truth_funcs[func] += weight

    # AutoFDO estimate: sample the production binary, map via debug info.
    built = build_workload(workload)
    bin_profile, _ = sample_profile(
        built, sampling=SamplingConfig(period=61))
    source_profile = _map_to_source(built.exe, bin_profile)
    autofdo_modules = build_ir(sources)
    for module in autofdo_modules:
        for func in module.functions.values():
            attach_source_profile(func, source_profile)
    est_edges = ir_edge_truth(autofdo_modules)
    est_funcs = defaultdict(float)
    for (func, _, _), weight in est_edges.items():
        est_funcs[func] += weight

    func_acc = overlap_accuracy(truth_funcs, est_funcs)
    edge_acc = overlap_accuracy(truth_edges, est_edges)

    # The binary-level consumer: BOLT's direct CFG attachment, compared
    # as source-line weights against the traced ground truth.
    context = BinaryContext(built.exe, BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    attach_profile(context, bin_profile)
    bolt_lines = {}
    for func in context.functions.values():
        if not func.is_simple:
            continue
        for block in func.blocks.values():
            for insn in block.insns:
                loc = insn.get_annotation("loc")
                if loc is not None:
                    bolt_lines[loc] = (bolt_lines.get(loc, 0)
                                       + block.exec_count)
                    break
    bolt_acc = overlap_accuracy(truth_lines, bolt_lines)

    print_table(
        "Section 2.2: AutoFDO accuracy vs instrumented ground truth",
        ("granularity", "consumer", "accuracy"),
        [("function weights", "AutoFDO (IR)", f"{func_acc:.1%}"),
         ("IR edge weights", "AutoFDO (IR)", f"{edge_acc:.1%}"),
         ("source-line weights", "BOLT (binary CFG)", f"{bolt_acc:.1%}")])

    # Accuracy degrades with granularity for the IR-mapped profile...
    assert func_acc > edge_acc
    assert func_acc > 0.5
    assert edge_acc < 0.9   # clearly lossy (Chen et al.'s point)
    # ...while the binary-level attachment preserves fine-grained
    # weights better than the IR mapping preserves edge weights.
    assert bolt_acc > edge_acc

    benchmark.extra_info["function_level"] = round(func_acc, 4)
    benchmark.extra_info["edge_level"] = round(edge_acc, 4)
    benchmark.extra_info["bolt_line_level"] = round(bolt_acc, 4)
    once(benchmark, lambda: overlap_accuracy(truth_edges, est_edges))
