"""Figure 6: micro-architecture miss reductions for HHVM with BOLT.

Paper: branch misses -11%, I-cache misses -18%, I-TLB ~-11%, plus
small D-cache (~1%), D-TLB and LLC improvements.  Shape claims: the
front-end metrics (I-cache, branch) improve substantially; data-side
metrics move little (BOLT is a code-layout optimizer).
"""

from conftest import once, print_table
from repro.harness import counter_reductions
from repro.harness.metrics import FIGURE6_METRICS
from repro.uarch import run_binary


def test_fig6_hhvm_microarch(benchmark, facebook_experiments):
    exp = facebook_experiments["hhvm"]
    reductions = counter_reductions(exp.baseline.counters,
                                    exp.optimized.counters,
                                    FIGURE6_METRICS)
    rows = [(label, f"{value:+.1%}") for label, value in reductions.items()]
    print_table("Figure 6: HHVM miss reductions from BOLT",
                ("metric", "reduction"), rows)

    assert reductions["I-Cache"] > 0.05       # paper: 18%
    assert reductions["I-TLB"] >= 0.0         # paper: ~11%
    # Branch misses: the paper reports -11%.  Our tournament predictor
    # already predicts the simulator-scale baseline almost perfectly
    # (sub-0.1% miss rates), so BOLT has little left to win here and
    # ICP's guard branches can add a small absolute number of misses.
    # Assert the regression stays bounded; the taken-branch mechanism
    # below is the structural check (see EXPERIMENTS.md).
    assert reductions["Branch"] > -0.30
    # The *taken branch* reduction (the mechanism behind the paper's
    # branch-predictor win) is large and direct.
    taken_red = 1 - (exp.optimized.counters.taken_branches
                     / exp.baseline.counters.taken_branches)
    assert taken_red > 0.2
    # Data-side effects are second-order.
    assert abs(reductions["D-Cache"]) < reductions["I-Cache"]

    benchmark.extra_info["reductions"] = {
        k: round(v, 4) for k, v in reductions.items()}
    once(benchmark,
         lambda: run_binary(exp.result.binary, inputs=exp.workload.inputs))
