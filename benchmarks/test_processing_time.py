"""Processing time (paper section 6.6): BOLT is *practical* — it
rewrites large binaries in minutes, not hours.

Two layers, both recorded into ``BENCH_pr3.json`` at the repo root:

* **Kernel microbenchmarks** — the rewritten ordering kernels
  (reverse-adjacency HFSort, incremental HFSort+, cached-edge ext-TSP),
  the fast CFG snapshot, and the cached line-table lookup, each against
  its pre-PR reference implementation from
  ``repro.core._reference_kernels`` — on inputs where both produce
  identical outputs (the correctness side is pinned by
  ``tests/test_hfsort.py``).
* **End-to-end** — the full ``optimize_binary`` pipeline on the
  compiler workload, fast kernels vs the pre-PR kernels monkeypatched
  back in.  Acceptance: >= 2x faster.

Run with::

    REPRO_BENCH_SCALE=0.25 pytest benchmarks/test_processing_time.py -m perf
"""

import json
import pathlib
import random
import time

import pytest

from conftest import SCALE, print_table, scaled
from repro.belf import write_binary
from repro.belf.linetable import LineTable
from repro.core import BoltOptions
from repro.core._reference_kernels import (
    ext_tsp_reference,
    hfsort_plus_reference,
    hfsort_reference,
    linetable_lookup_reference,
    snapshot_function_deepcopy,
)
from repro.core.hfsort import CallGraph, hfsort, hfsort_plus
from repro.core.layout_algos import _ext_tsp
from repro.harness import build_workload, sample_profile
from repro.harness.pipeline import bolt_processing_time

pytestmark = pytest.mark.perf

_BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr3.json"
_RESULTS = {}


def _record(section, payload):
    _RESULTS[section] = payload
    doc = {"scale": SCALE, **_RESULTS}
    _BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")


def _timed(fn, *args, repeat=3):
    best = None
    out = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        out = fn(*args)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return out, best


def _random_call_graph(n_funcs, n_arcs, seed=1234):
    rng = random.Random(seed)
    graph = CallGraph()
    names = [f"f{i}" for i in range(n_funcs)]
    for name in names:
        graph.add_function(name, rng.choice([0, rng.randrange(1, 1000)]),
                           rng.randrange(16, 4096))
    for _ in range(n_arcs):
        graph.add_arc(rng.choice(names), rng.choice(names),
                      rng.randrange(1, 200))
    return graph


def _random_cfg(n_blocks, seed=99):
    from repro.core.binary_function import BinaryBasicBlock, BinaryFunction
    from repro.isa import Instruction, Op

    rng = random.Random(seed)
    func = BinaryFunction("bench", 0x1000, 64 * n_blocks)
    labels = ["entry"] + [f"b{i}" for i in range(n_blocks - 1)]
    for label in labels:
        block = BinaryBasicBlock(label)
        block.exec_count = rng.randrange(0, 500)
        block.insns = [Instruction(Op.NOPN, imm=rng.randrange(4, 32))]
        func.add_block(block)
    for src in labels:
        for dst in rng.sample(labels[1:], min(2, len(labels) - 1)):
            func.blocks[src].set_edge(dst, rng.randrange(0, 300))
    return func, labels


def test_kernel_microbenchmarks():
    rows, payload = [], {}

    graph = _random_call_graph(400, 2500)
    new, t_new = _timed(hfsort, graph)
    ref, t_ref = _timed(hfsort_reference, graph)
    assert new == ref
    rows.append(("hfsort (400f/2500a)", t_ref, t_new))
    payload["hfsort"] = {"reference_s": t_ref, "fast_s": t_new}

    graph = _random_call_graph(220, 1400, seed=77)
    new, t_new = _timed(hfsort_plus, graph, repeat=1)
    ref, t_ref = _timed(hfsort_plus_reference, graph, repeat=1)
    assert new == ref
    rows.append(("hfsort+ (220f/1400a)", t_ref, t_new))
    payload["hfsort_plus"] = {"reference_s": t_ref, "fast_s": t_new}

    func, labels = _random_cfg(110)
    new, t_new = _timed(_ext_tsp, func, labels, repeat=1)
    ref, t_ref = _timed(ext_tsp_reference, func, labels, repeat=1)
    assert new == ref
    rows.append(("ext-TSP (110 blocks)", t_ref, t_new))
    payload["ext_tsp"] = {"reference_s": t_ref, "fast_s": t_new}

    table = LineTable()
    rng = random.Random(5)
    for i in range(4000):
        table.add(0x1000 + 4 * i, "f.bc", rng.randrange(1, 500))
    probes = [0x1000 + rng.randrange(0, 16000) for _ in range(4000)]

    def fast_lookups():
        return [table.lookup(a) for a in probes]

    def ref_lookups():
        return [linetable_lookup_reference(table, a) for a in probes]

    new, t_new = _timed(fast_lookups, repeat=1)
    ref, t_ref = _timed(ref_lookups, repeat=1)
    assert new == ref
    rows.append(("linetable lookup (4k x 4k)", t_ref, t_new))
    payload["linetable_lookup"] = {"reference_s": t_ref, "fast_s": t_new}

    for name, entry in payload.items():
        entry["speedup"] = round(entry["reference_s"]
                                 / max(entry["fast_s"], 1e-9), 2)
    print_table(
        "Kernel microbenchmarks (pre-PR reference vs fast)",
        ("kernel", "reference", "fast", "speedup"),
        [(n, f"{r:.4f}s", f"{f:.4f}s", f"{r / max(f, 1e-9):.1f}x")
         for (n, r, f) in rows])
    _record("kernels", payload)
    # Each rewritten kernel must actually win on kernel-sized inputs.
    for name, entry in payload.items():
        assert entry["speedup"] > 1.0, name


def test_snapshot_microbenchmark():
    from repro.core import BinaryContext
    from repro.core.cfg_builder import build_all_functions
    from repro.core.discovery import discover_functions
    from repro.core.reports import dump_function

    exe = build_workload(scaled("compiler"), label="O2").exe
    context = BinaryContext(exe, BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    funcs = context.simple_functions()

    def fast():
        return [f.clone() for f in funcs]

    def slow():
        return [snapshot_function_deepcopy(f) for f in funcs]

    fast_snaps, t_new = _timed(fast, repeat=1)
    slow_snaps, t_ref = _timed(slow, repeat=1)
    sample = funcs[: 20]
    for f, a, b in zip(sample, fast_snaps, slow_snaps):
        assert dump_function(a) == dump_function(b), f.name
    speedup = t_ref / max(t_new, 1e-9)
    print_table("Per-function snapshot (one pipeline pass worth)",
                ("method", "seconds"),
                [("copy.deepcopy (pre-PR)", f"{t_ref:.4f}s"),
                 ("BinaryFunction.clone", f"{t_new:.4f}s"),
                 ("speedup", f"{speedup:.1f}x")])
    _record("snapshot", {"reference_s": t_ref, "fast_s": t_new,
                         "functions": len(funcs),
                         "speedup": round(speedup, 2)})
    assert speedup > 1.0


def _synthetic_shards(n_shards, records_per_shard, seed=2024):
    """Random fleet shards: shared hot core + per-shard tail, the shape
    real per-host collections have."""
    from repro.profiling import BinaryProfile, write_fdata

    rng = random.Random(seed)
    names = [f"func_{i}" for i in range(40)]

    def loc():
        return (rng.choice(names), rng.randrange(0, 0x400))

    core = [(loc(), loc()) for _ in range(records_per_shard // 2)]
    shards = []
    for shard in range(n_shards):
        profile = BinaryProfile(event="cycles", lbr=True,
                                build_id="bench-build")
        for src, dst in core:
            profile.add_branch(src, dst, count=rng.randrange(1, 500),
                               mispred=rng.random() < 0.1)
        for _ in range(records_per_shard - len(core)):
            profile.add_branch(loc(), loc(), count=rng.randrange(1, 50))
        shards.append((f"host{shard:02d}", write_fdata(profile)))
    return shards


@pytest.mark.aggregate
def test_aggregation_throughput():
    """merge-fdata throughput (BENCH_pr4.json): shards/second for
    ``--threads 1`` vs ``--threads 4``, byte-identical output required.

    Since PR 5 the pool only engages when the shard cache gives the
    workers file I/O to overlap; plain in-memory aggregation is
    GIL-bound pure Python, so ``--threads 4`` takes the serial path and
    must not be measurably slower than ``--threads 1``."""
    from repro.profiling import aggregate_shards, write_fdata

    n_shards = max(4, int(24 * SCALE))
    records = max(200, int(2000 * SCALE))
    shards = _synthetic_shards(n_shards, records)

    # Interleave paired runs and take medians: the two configurations
    # execute the same amount of work, so alternating them cancels the
    # slow drift of a busy host that back-to-back min-of-N would fold
    # into whichever configuration ran second.
    aggregate_shards(shards, threads=1)  # warm-up (imports, allocator)
    serial = threaded = None
    samples_serial, samples_threaded = [], []
    for _ in range(3):
        t0 = time.perf_counter()
        serial = aggregate_shards(shards, threads=1)
        samples_serial.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        threaded = aggregate_shards(shards, threads=4)
        samples_threaded.append(time.perf_counter() - t0)
    t_serial = sorted(samples_serial)[len(samples_serial) // 2]
    t_threaded = sorted(samples_threaded)[len(samples_threaded) // 2]
    # Parallelism must not change the merged bytes or the report.
    assert write_fdata(serial.profile) == write_fdata(threaded.profile)
    assert serial.to_json() == threaded.to_json()

    serial_rate = n_shards / max(t_serial, 1e-9)
    threaded_rate = n_shards / max(t_threaded, 1e-9)
    print_table(
        f"merge-fdata aggregation throughput "
        f"({n_shards} shards x {records} records)",
        ("configuration", "wall", "shards/s"),
        [("serial", f"{t_serial:.3f}s", f"{serial_rate:.1f}"),
         ("--threads 4", f"{t_threaded:.3f}s", f"{threaded_rate:.1f}")])
    doc = {
        "scale": SCALE,
        "aggregation": {
            "shards": n_shards,
            "records_per_shard": records,
            "serial_s": round(t_serial, 4),
            "threads4_s": round(t_threaded, 4),
            "serial_shards_per_s": round(serial_rate, 2),
            "threads4_shards_per_s": round(threaded_rate, 2),
            "merged_branch_records": len(serial.profile.branches),
        },
    }
    bench_path = _BENCH_PATH.with_name("BENCH_pr4.json")
    bench_path.write_text(json.dumps(doc, indent=2) + "\n")
    assert serial_rate > 0 and threaded_rate > 0
    # PR 5 acceptance: --threads must not lose to serial (10% noise
    # margin; both configurations run the identical serial code path
    # when no shard cache is configured).
    assert threaded_rate >= serial_rate * 0.9, (
        f"--threads 4 slower than serial: "
        f"{threaded_rate:.1f} vs {serial_rate:.1f} shards/s")


def test_end_to_end_processing_time(monkeypatch):
    """Full-pipeline wall time, fast vs pre-PR kernels: the >= 2x
    acceptance gate, measured by the same timing layer ``--time-rewrite``
    prints."""
    workload = scaled("compiler")
    built = build_workload(workload, label="O2")
    profile, _ = sample_profile(built)

    result_fast, timing_fast = bolt_processing_time(built, profile)
    assert timing_fast is not None
    fast_s = timing_fast.total_seconds
    fast_bytes = write_binary(result_fast.binary)

    # Put every pre-PR kernel back (at its call site) and measure again.
    import repro.core.passes.base as base
    import repro.core.passes.reorder_bbs as reorder_bbs
    import repro.core.passes.reorder_functions as reorder_functions
    from repro.core._reference_kernels import order_blocks_reference

    monkeypatch.setattr(base, "snapshot_function", snapshot_function_deepcopy)
    monkeypatch.setattr(reorder_functions, "hfsort", hfsort_reference)
    monkeypatch.setattr(reorder_functions, "hfsort_plus",
                        hfsort_plus_reference)
    monkeypatch.setattr(reorder_bbs, "order_blocks", order_blocks_reference)
    monkeypatch.setattr(LineTable, "lookup", linetable_lookup_reference)

    result_ref, timing_ref = bolt_processing_time(built, profile)
    assert timing_ref is not None
    ref_s = timing_ref.total_seconds
    # The performance layer must not change the output.
    assert write_binary(result_ref.binary) == fast_bytes

    speedup = ref_s / max(fast_s, 1e-9)
    print_table(
        f"End-to-end optimize_binary, compiler workload (scale {SCALE})",
        ("configuration", "wall"),
        [("pre-PR kernels", f"{ref_s:.2f}s"),
         ("fast kernels (this PR)", f"{fast_s:.2f}s"),
         ("speedup", f"{speedup:.1f}x")])
    _record("end_to_end", {
        "workload": "compiler",
        "reference_s": round(ref_s, 3),
        "fast_s": round(fast_s, 3),
        "speedup": round(speedup, 2),
        "phases": timing_fast.as_dict().get("phases", []),
        "passes": timing_fast.as_dict().get("passes", []),
    })
    assert speedup >= 2.0, f"acceptance: expected >= 2x, got {speedup:.2f}x"
