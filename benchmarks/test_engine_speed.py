"""Simulation throughput (PR 5): the block-cached execution engine.

Records ``BENCH_pr5.json`` at the repo root:

* **Simulated MIPS** — simulated million-instructions-per-second of
  host wall time, block engine vs the preserved reference interpreter,
  on the compiler workload and a server workload (proxygen), each with
  and without hardware-style sampling.  Outputs and counters are
  asserted identical run to run (the correctness side is pinned by
  ``tests/test_engine_equivalence.py``).
* **End-to-end** — the wall time of a full experiment leg (baseline
  measure -> sample -> BOLT -> optimized measure) under each engine.

Acceptance: >= 3x simulated-instruction throughput on the compiler
workload.

Run with::

    REPRO_BENCH_SCALE=0.25 pytest benchmarks/test_engine_speed.py -m perf
"""

import json
import pathlib
import time

import pytest

from conftest import SCALE, print_table, scaled
from repro.core import BoltOptions
from repro.harness import build_workload, measure, run_bolt, sample_profile
from repro.harness.metrics import simulated_mips
from repro.profiling import SamplingConfig

pytestmark = pytest.mark.perf

_BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr5.json"
_RESULTS = {}

#: Fresh-process measurement would be ideal; within one process the
#: shared per-binary trace cache makes later block runs *faster*, so
#: measuring the first (cold) run is the conservative choice.
_SAMPLING = SamplingConfig("cycles", period=997, skid=0, use_lbr=True)


def _record(section, payload):
    _RESULTS[section] = payload
    doc = {"scale": SCALE, **_RESULTS}
    _BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")


def _timed_run(built, engine, sampling=None):
    t0 = time.perf_counter()
    if sampling is None:
        cpu = measure(built, engine=engine)
    else:
        _, cpu = sample_profile(built, sampling=sampling, engine=engine)
    wall = time.perf_counter() - t0
    return cpu, wall


def test_simulated_mips():
    rows, payload = [], {}
    speedups = {}
    for name in ("compiler", "proxygen"):
        built = build_workload(scaled(name))
        for mode, sampling in (("plain", None), ("sampled", _SAMPLING)):
            ref_cpu, ref_wall = _timed_run(built, "ref", sampling)
            blk_cpu, blk_wall = _timed_run(built, "block", sampling)
            # Throughput must not come at the cost of exactness.
            assert blk_cpu.counters == ref_cpu.counters, \
                blk_cpu.counters.diff(ref_cpu.counters)
            assert blk_cpu.output == ref_cpu.output
            ref_mips = simulated_mips(ref_cpu.counters, ref_wall)
            blk_mips = simulated_mips(blk_cpu.counters, blk_wall)
            gain = ref_wall / max(blk_wall, 1e-9)
            key = f"{name}/{mode}"
            speedups[key] = gain
            rows.append((key, ref_cpu.counters.instructions,
                         f"{ref_mips:.2f}", f"{blk_mips:.2f}",
                         f"{gain:.2f}x"))
            payload[key] = {
                "instructions": ref_cpu.counters.instructions,
                "reference_s": round(ref_wall, 4),
                "block_s": round(blk_wall, 4),
                "reference_mips": round(ref_mips, 3),
                "block_mips": round(blk_mips, 3),
                "speedup": round(gain, 2),
            }
    print_table(
        "Simulated instruction throughput (reference vs block engine)",
        ("workload", "instructions", "ref MIPS", "block MIPS", "speedup"),
        rows)
    _record("simulated_mips", payload)
    for key, gain in speedups.items():
        assert gain > 1.0, f"{key}: block engine slower than reference"
    # PR 5 acceptance gate.
    assert speedups["compiler/plain"] >= 3.0, (
        f"acceptance: expected >= 3x on compiler, "
        f"got {speedups['compiler/plain']:.2f}x")


def test_end_to_end_experiment_wall():
    """One full experiment leg per engine: how much of EXPERIMENTS'
    wall time the simulation speedup translates into."""
    workload = scaled("compiler")
    built = build_workload(workload)

    def leg(engine):
        t0 = time.perf_counter()
        baseline = measure(built, fetch_heat=True, engine=engine)
        profile, _ = sample_profile(built, engine=engine)
        result = run_bolt(built, profile, BoltOptions())
        optimized = measure(result.binary, inputs=workload.inputs,
                            fetch_heat=True, engine=engine)
        wall = time.perf_counter() - t0
        assert optimized.output == baseline.output
        return baseline, optimized, wall

    base_ref, opt_ref, ref_wall = leg("ref")
    base_blk, opt_blk, blk_wall = leg("block")
    assert base_blk.counters == base_ref.counters
    assert opt_blk.counters == opt_ref.counters

    gain = ref_wall / max(blk_wall, 1e-9)
    print_table(
        f"End-to-end experiment leg, compiler workload (scale {SCALE})",
        ("engine", "wall"),
        [("reference", f"{ref_wall:.2f}s"),
         ("block", f"{blk_wall:.2f}s"),
         ("speedup", f"{gain:.2f}x")])
    _record("end_to_end", {
        "workload": "compiler",
        "reference_s": round(ref_wall, 3),
        "block_s": round(blk_wall, 3),
        "speedup": round(gain, 2),
    })
    assert gain > 1.0
