"""Figure 11: the value of LBRs, measured on the HHVM analog.

Three optimization scopes — function reordering only, basic-block
reordering (+other passes) only, and both — each built twice from the
same run: once with LBR-based profiles and once from plain IP samples
(edge counts recovered via MCF).

Paper: LBRs are worth ~2% CPU out of BOLT's ~8% on HHVM; the gap is
much larger for basic-block reordering than for function reordering
(section 5.3: the call graph survives sampling without LBRs, the
block-level edge profile does not).
"""

from conftest import once, print_table
from repro.core import BoltOptions
from repro.harness import measure, run_bolt, sample_profile, speedup
from repro.profiling import SamplingConfig

SCOPES = {
    "Functions": BoltOptions(reorder_blocks="none", split_functions=0,
                             icp=False, inline_small=False, sctc=False,
                             frame_opts=False, shrink_wrapping=False),
    "BBs": BoltOptions(reorder_functions="none"),
    "Both": BoltOptions(),
}


def test_fig11_lbr_value(benchmark, facebook_experiments):
    exp = facebook_experiments["hhvm"]
    built = exp.built
    workload = exp.workload
    base = exp.baseline

    nolbr_profile, _ = sample_profile(
        built, sampling=SamplingConfig(period=251, use_lbr=False))
    lbr_profile = exp.profile

    rows = []
    gains = {}
    for scope, options in SCOPES.items():
        with_lbr = measure(
            run_bolt(built, lbr_profile, options).binary,
            inputs=workload.inputs)
        without = measure(
            run_bolt(built, nolbr_profile, options).binary,
            inputs=workload.inputs)
        assert with_lbr.output == base.output == without.output
        s_lbr = speedup(base.counters.cycles, with_lbr.counters.cycles)
        s_no = speedup(base.counters.cycles, without.counters.cycles)
        gains[scope] = (s_lbr, s_no)
        rows.append((scope, f"{s_lbr:+.1%}", f"{s_no:+.1%}",
                     f"{s_lbr - s_no:+.1%}"))
    print_table("Figure 11: BOLT speedup with vs without LBRs (HHVM)",
                ("scope", "with LBR", "without LBR", "LBR value"),
                rows)

    # Shape claims: LBR >= non-LBR for the full configuration, and the
    # penalty of losing LBRs is larger for BB reordering than for
    # function reordering (section 5.3).
    assert gains["Both"][0] >= gains["Both"][1] - 0.01
    bb_gap = gains["BBs"][0] - gains["BBs"][1]
    func_gap = gains["Functions"][0] - gains["Functions"][1]
    assert bb_gap >= func_gap - 0.01

    benchmark.extra_info["gains"] = {
        scope: {"lbr": round(a, 4), "nolbr": round(b, 4)}
        for scope, (a, b) in gains.items()}
    once(benchmark, lambda: gains)
