"""Ablation benches for the design decisions DESIGN.md calls out:

1. trust-the-fall-through flow repair (section 5.2) on/off;
2. block layout algorithm: cache+ vs cache vs none vs reverse;
3. function splitting off / hot-only / split-all-cold;
4. NOP stripping on/off;
5. in-place vs relocations rewriting mode (sections 3.1/3.2).
"""

import pytest

from conftest import once, print_table
from repro.core import BoltOptions
from repro.harness import (
    build_workload,
    measure,
    run_bolt,
    sample_profile,
    speedup,
)
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def setup():
    workload = make_workload("multifeed1")
    built = build_workload(workload, hfsort_link="hfsort")
    base = measure(built)
    profile, _ = sample_profile(built)
    return workload, built, base, profile


def _gain(setup, options):
    workload, built, base, profile = setup
    optimized = measure(run_bolt(built, profile, options).binary,
                        inputs=workload.inputs)
    assert optimized.output == base.output
    return speedup(base.counters.cycles, optimized.counters.cycles)


def test_ablation_flow_repair(benchmark, setup):
    on = _gain(setup, BoltOptions(trust_fall_through=True))
    off = _gain(setup, BoltOptions(trust_fall_through=False))
    print_table("Ablation: section 5.2 fall-through flow repair",
                ("config", "speedup"),
                [("trust fall-through (paper)", f"{on:+.2%}"),
                 ("no repair", f"{off:+.2%}")])
    assert on >= off - 0.01
    benchmark.extra_info["on"] = round(on, 4)
    benchmark.extra_info["off"] = round(off, 4)
    once(benchmark, lambda: (on, off))


def test_ablation_block_layout(benchmark, setup):
    gains = {}
    for algo in ("none", "reverse", "cache", "cache+"):
        gains[algo] = _gain(setup, BoltOptions(reorder_blocks=algo))
    print_table("Ablation: block layout algorithm",
                ("algorithm", "speedup"),
                [(a, f"{g:+.2%}") for a, g in gains.items()])
    # Profile-guided layouts beat no reordering; reverse is the worst.
    assert gains["cache+"] >= gains["none"] - 0.005
    assert gains["cache"] >= gains["reverse"]
    assert max(gains, key=gains.get) in ("cache", "cache+")
    benchmark.extra_info["gains"] = {k: round(v, 4)
                                     for k, v in gains.items()}
    once(benchmark, lambda: gains)


def test_ablation_splitting(benchmark, setup):
    gains = {
        "no splitting": _gain(setup, BoltOptions(split_functions=0)),
        "hot-only (conservative)": _gain(setup, BoltOptions(
            split_functions=2, split_all_cold=False)),
        "split-all-cold (paper)": _gain(setup, BoltOptions()),
    }
    print_table("Ablation: function splitting",
                ("config", "speedup"),
                [(k, f"{v:+.2%}") for k, v in gains.items()])
    # At simulator scale splitting is roughly neutral (sampled profiles
    # occasionally mislabel lukewarm blocks as cold, and the cold
    # section sits on nearby pages anyway); its real payoff is the
    # I-TLB relief visible on the large hhvm workload (Figures 5/6).
    assert gains["split-all-cold (paper)"] >= gains["no splitting"] - 0.03
    benchmark.extra_info["gains"] = {k: round(v, 4)
                                     for k, v in gains.items()}
    once(benchmark, lambda: gains)


def test_ablation_nop_stripping(benchmark, setup):
    on = _gain(setup, BoltOptions(strip_nops=True))
    off = _gain(setup, BoltOptions(strip_nops=False))
    print_table("Ablation: section 4 NOP-discarding policy",
                ("config", "speedup"),
                [("strip NOPs (paper)", f"{on:+.2%}"),
                 ("keep alignment NOPs", f"{off:+.2%}")])
    assert on >= off - 0.01
    benchmark.extra_info["on"] = round(on, 4)
    benchmark.extra_info["off"] = round(off, 4)
    once(benchmark, lambda: (on, off))


def test_ablation_rewrite_modes(benchmark):
    """In-place mode (the paper's initial design, 3.1) vs relocations
    mode (3.2): relocations mode wins because it can reorder functions.

    The baselines here deliberately have *no* link-time function
    ordering: when the linker has already applied HFSort, in-place mode
    inherits that good order and the two modes converge; on a plain
    build only relocations mode can fix the function layout."""
    workload = make_workload("multifeed2")
    built_relocs = build_workload(workload, emit_relocs=True)
    built_plain = build_workload(workload, emit_relocs=False)
    base = measure(built_relocs)
    base_plain = measure(built_plain)

    profile_r, _ = sample_profile(built_relocs)
    profile_p, _ = sample_profile(built_plain)
    relocs = measure(run_bolt(built_relocs, profile_r).binary,
                     inputs=workload.inputs)
    inplace = measure(run_bolt(built_plain, profile_p).binary,
                      inputs=workload.inputs)
    assert relocs.output == base.output
    assert inplace.output == base_plain.output

    g_relocs = speedup(base.counters.cycles, relocs.counters.cycles)
    g_inplace = speedup(base_plain.counters.cycles,
                        inplace.counters.cycles)
    print_table("Ablation: rewriting mode (sections 3.1 vs 3.2)",
                ("mode", "speedup"),
                [("in-place (initial design)", f"{g_inplace:+.2%}"),
                 ("relocations (paper default)", f"{g_relocs:+.2%}")])
    assert g_inplace > 0
    assert g_relocs >= g_inplace - 0.01
    benchmark.extra_info["relocs"] = round(g_relocs, 4)
    benchmark.extra_info["inplace"] = round(g_inplace, 4)
    once(benchmark, lambda: (g_relocs, g_inplace))
