"""Figure 7: Clang-analog speedups for BOLT, PGO+LTO, and PGO+LTO+BOLT
over the plain -O2 baseline, across several input mixes.

Paper (Clang): BOLT alone 22-52%, PGO+LTO 22-40%, PGO+LTO+BOLT 34-68%;
the combined configuration always wins.  Shape claims: each column is a
real speedup; the combination beats PGO+LTO alone on every input (the
complementarity result); BOLT alone is competitive with PGO+LTO.
"""

from conftest import once, print_table
from repro.harness import measure, speedup
from repro.uarch import run_binary


def _speedups(matrix, inputs):
    base_cycles = measure(matrix["baseline"].exe, inputs=inputs
                          ).counters.cycles
    return {
        "BOLT": speedup(base_cycles, measure(
            matrix["bolt"].binary, inputs=inputs).counters.cycles),
        "PGO+LTO": speedup(base_cycles, measure(
            matrix["pgo_lto"].exe, inputs=inputs).counters.cycles),
        "PGO+LTO+BOLT": speedup(base_cycles, measure(
            matrix["pgo_lto_bolt"].binary, inputs=inputs).counters.cycles),
    }


def test_fig7_clang_analog(benchmark, compiler_matrix):
    workload = compiler_matrix["workload"]
    input_mixes = {"input1 (default)": workload.inputs}
    for label, inputs in workload.alt_inputs.items():
        input_mixes[label] = inputs

    rows = []
    all_results = {}
    for label, inputs in input_mixes.items():
        results = _speedups(compiler_matrix, inputs)
        all_results[label] = results
        rows.append((label,) + tuple(f"{results[k]:+.1%}" for k in
                                     ("BOLT", "PGO+LTO", "PGO+LTO+BOLT")))
    print_table("Figure 7: Clang-analog speedups over -O2 baseline",
                ("input", "BOLT", "PGO+LTO", "PGO+LTO+BOLT"), rows)

    for label, results in all_results.items():
        assert results["BOLT"] > 0.05, label
        assert results["PGO+LTO"] > 0.0, label
        # The headline complementarity claim: FDO+LTO does not subsume
        # post-link optimization.
        assert results["PGO+LTO+BOLT"] > results["PGO+LTO"], label

    benchmark.extra_info["speedups"] = {
        label: {k: round(v, 4) for k, v in results.items()}
        for label, results in all_results.items()}
    exe = compiler_matrix["pgo_lto_bolt"].binary
    once(benchmark, lambda: run_binary(exe, inputs=workload.inputs))
