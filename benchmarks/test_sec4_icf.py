"""Section 4: BOLT's identical code folding on top of linker ICF.

Paper: "We have measured the reduction of code size for the HHVM binary
to be about 3% on top of the linker's ICF pass" — with the extra folds
coming from functions the linker cannot compare (jump tables, sections
the compiler didn't split).

Shape claims: with linker ICF already applied, BOLT's ICF still folds
functions (specifically including switch-heavy ones) and shaves a
measurable percentage of code size.
"""

from conftest import once, print_table
from repro.core import BoltOptions
from repro.harness import build_workload, measure, run_bolt, sample_profile
from repro.workloads import make_workload


def test_sec4_icf_on_top_of_linker_icf(benchmark):
    workload = make_workload("hhvm")
    built = build_workload(workload, lto=True, linker_icf=True)
    base = measure(built)
    profile, _ = sample_profile(built)

    with_icf = run_bolt(built, profile, BoltOptions(
        split_functions=0, reorder_functions="none"))
    without_icf = run_bolt(built, profile, BoltOptions(
        split_functions=0, reorder_functions="none", icf=False))

    folded = (with_icf.pass_stats["icf"]["folded"]
              + with_icf.pass_stats["icf-2"]["folded"])
    saved = (with_icf.pass_stats["icf"]["saved_bytes"]
             + with_icf.pass_stats["icf-2"]["saved_bytes"])
    size_with = with_icf.hot_text_size
    size_without = without_icf.hot_text_size
    reduction = 1 - size_with / size_without

    print_table(
        "Section 4: BOLT ICF on top of linker ICF (HHVM analog)",
        ("metric", "value"),
        [("functions folded by BOLT", folded),
         ("bytes recovered", f"{saved:,}"),
         ("text without BOLT-ICF", f"{size_without:,}"),
         ("text with BOLT-ICF", f"{size_with:,}"),
         ("size reduction", f"{reduction:.2%}")])

    assert folded > 0
    assert 0.005 < reduction < 0.15  # paper: ~3%

    opt = measure(with_icf.binary, inputs=workload.inputs)
    assert opt.output == base.output

    benchmark.extra_info["folded"] = folded
    benchmark.extra_info["reduction"] = round(reduction, 4)
    once(benchmark, lambda: run_bolt(built, profile, BoltOptions(
        split_functions=0, reorder_functions="none")))
