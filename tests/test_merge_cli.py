"""``repro-bolt merge-fdata`` CLI coverage: exit codes, --json schema,
edge cases (single shard, empty shard, missing file, bad weights), and
cache-hit vs cache-miss runs producing identical merged output."""

import json
import pathlib

import pytest

from repro.cli import main
from repro.profiling import normalize_profile, parse_fdata, write_fdata

pytestmark = pytest.mark.aggregate

SRC = """
func helper(x) {
  if (x % 3 == 0) { return x * 2; }
  return x + 1;
}
func main() {
  var i = 0;
  var acc = 0;
  while (i < 100) { acc = acc + helper(i); i = i + 1; }
  out acc;
  return 0;
}
"""

SRC_V2 = SRC.replace("x * 2", "x * 3").replace("i < 100", "i < 90")


@pytest.fixture(scope="module")
def rig(tmp_path_factory):
    """One built binary plus two host shards, shared by every test."""
    root = tmp_path_factory.mktemp("mergecli")
    (root / "app.bc").write_text(SRC)
    exe = root / "app.belf"
    assert main(["build", str(root / "app.bc"), "-o", str(exe)]) == 0
    shards = []
    for host, period in enumerate((51, 97)):
        shard = root / f"host{host}.fdata"
        assert main(["profile", str(exe), "-o", str(shard),
                     "--period", str(period)]) == 0
        shards.append(shard)
    return {"root": root, "exe": exe, "shards": shards}


def test_merge_two_shards_and_bolt(rig, capsys):
    root, exe = rig["root"], rig["exe"]
    merged = root / "merged.fdata"
    argv = ["merge-fdata"] + [str(s) for s in rig["shards"]]
    assert main(argv + ["-o", str(merged), "-b", str(exe)]) == 0
    out = capsys.readouterr().out
    assert "BOLT-INFO: merge-fdata: 2 shard(s)" in out
    assert merged.exists()

    # The merged profile is the sum of the shards.
    total = sum(parse_fdata(s.read_text()).total_branch_count()
                for s in rig["shards"])
    assert parse_fdata(merged.read_text()).total_branch_count() == total

    # And it drives a working rewrite.
    bolted = root / "app.bolt.belf"
    assert main(["bolt", str(exe), "-p", str(merged),
                 "-o", str(bolted)]) == 0
    capsys.readouterr()
    assert main(["run", str(exe)]) == 0
    baseline = capsys.readouterr().out
    assert main(["run", str(bolted)]) == 0
    assert capsys.readouterr().out == baseline


def test_merge_json_schema(rig, capsys):
    root = rig["root"]
    argv = ["merge-fdata"] + [str(s) for s in rig["shards"]]
    assert main(argv + ["-o", str(root / "m.fdata"),
                        "-b", str(rig["exe"]), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert set(report) >= {"shards", "merged", "coverage", "stale_shards",
                           "cache_hits", "dropped_lines", "diagnostics"}
    assert len(report["shards"]) == 2
    for shard in report["shards"]:
        assert set(shard) >= {"name", "sha", "build_id", "weight",
                              "effective_weight", "stale", "cache",
                              "branch_records", "sample_records",
                              "branch_count", "parse", "match", "flat",
                              "empty", "divergence", "coverage"}
        # The satellite fix: per-shard match-quality stats, even for
        # fresh shards (previously only the attach path reported them).
        assert shard["match"] is not None
        assert set(shard["match"]) == {"matched", "total", "out_of_range",
                                       "quality", "remapped"}
        assert shard["stale"] is False
        assert shard["coverage"] == 1.0
    assert report["merged"]["branch_count"] > 0
    assert report["coverage"]["shard_count"] == 2


def test_merge_single_shard_is_normal_form(rig, capsys):
    root = rig["root"]
    shard = rig["shards"][0]
    merged = root / "single.fdata"
    assert main(["merge-fdata", str(shard), "-o", str(merged)]) == 0
    expected = write_fdata(normalize_profile(parse_fdata(shard.read_text())))
    assert merged.read_text() == expected


def test_merge_missing_input_exits_nonzero(rig, capsys):
    root = rig["root"]
    code = main(["merge-fdata", str(root / "nope.fdata"),
                 "-o", str(root / "x.fdata")])
    assert code == 1
    assert "BOLT-ERROR: no such file" in capsys.readouterr().err


def test_merge_weight_count_mismatch(rig, capsys):
    root = rig["root"]
    argv = ["merge-fdata"] + [str(s) for s in rig["shards"]]
    code = main(argv + ["-o", str(root / "x.fdata"),
                        "--weight", "1.0", "--weight", "2.0",
                        "--weight", "3.0"])
    assert code == 1
    assert "BOLT-ERROR" in capsys.readouterr().err


def test_merge_nonpositive_weight_is_fd011_error(rig, capsys):
    root = rig["root"]
    merged = root / "w0.fdata"
    argv = ["merge-fdata"] + [str(s) for s in rig["shards"]]
    code = main(argv + ["-o", str(merged), "--weight", "0", "--weight", "1"])
    assert code == 1
    assert "FD011" in capsys.readouterr().err
    # The zero-weight shard is excluded; the other one still merges.
    other = normalize_profile(parse_fdata(rig["shards"][1].read_text()))
    assert (parse_fdata(merged.read_text()).total_branch_count()
            == other.total_branch_count())


def test_merge_weight_broadcast_scales(rig, capsys):
    root = rig["root"]
    merged = root / "w2.fdata"
    argv = ["merge-fdata"] + [str(s) for s in rig["shards"]]
    assert main(argv + ["-o", str(merged), "--weight", "2.0"]) == 0
    total = sum(parse_fdata(s.read_text()).total_branch_count()
                for s in rig["shards"])
    assert parse_fdata(merged.read_text()).total_branch_count() == 2 * total


def test_merge_empty_shard_warns_fd010(rig, capsys):
    root = rig["root"]
    empty = root / "empty.fdata"
    empty.write_text("# event: cycles\n# lbr: 1\n")
    merged = root / "withempty.fdata"
    assert main(["merge-fdata", str(rig["shards"][0]), str(empty),
                 "-o", str(merged)]) == 0
    assert "FD010" in capsys.readouterr().err
    expected = write_fdata(
        normalize_profile(parse_fdata(rig["shards"][0].read_text())))
    assert merged.read_text() == expected


def test_merge_cache_hit_and_miss_identical(rig, capsys):
    root, exe = rig["root"], rig["exe"]
    cache = root / "cache"
    argv = ["merge-fdata"] + [str(s) for s in rig["shards"]]

    nocache = root / "nocache.fdata"
    assert main(argv + ["-o", str(nocache), "-b", str(exe)]) == 0
    capsys.readouterr()
    miss = root / "miss.fdata"
    assert main(argv + ["-o", str(miss), "-b", str(exe),
                        "--cache-dir", str(cache), "--json"]) == 0
    miss_report = json.loads(capsys.readouterr().out)
    hit = root / "hit.fdata"
    assert main(argv + ["-o", str(hit), "-b", str(exe),
                        "--cache-dir", str(cache), "--json"]) == 0
    hit_report = json.loads(capsys.readouterr().out)

    assert nocache.read_text() == miss.read_text() == hit.read_text()
    assert miss_report["cache_hits"] == 0
    assert hit_report["cache_hits"] == 2
    # Everything except the cache state matches between hit and miss.
    for a, b in zip(miss_report["shards"], hit_report["shards"]):
        assert a.pop("cache") == "miss"
        assert b.pop("cache") == "hit"
        assert a == b


def test_merge_corrupt_cache_entry_is_a_miss(rig, capsys):
    root, exe = rig["root"], rig["exe"]
    cache = root / "cache2"
    argv = ["merge-fdata"] + [str(s) for s in rig["shards"]]
    first = root / "c1.fdata"
    assert main(argv + ["-o", str(first), "-b", str(exe),
                        "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    for entry in cache.glob("*.shard.json"):
        entry.write_text("{not json")
    second = root / "c2.fdata"
    assert main(argv + ["-o", str(second), "-b", str(exe),
                        "--cache-dir", str(cache), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["cache_hits"] == 0
    assert first.read_text() == second.read_text()


def test_merge_stale_shards_against_rebuilt_binary(rig, capsys):
    """Shards from build A merged against build B: detected stale,
    fuzzy-reconciled, per-shard match quality in the report (FD008)."""
    root = rig["root"]
    (root / "app2.bc").write_text(SRC_V2)
    exe2 = root / "app2.belf"
    assert main(["build", str(root / "app2.bc"), "-o", str(exe2)]) == 0
    capsys.readouterr()
    merged = root / "stale.fdata"
    argv = ["merge-fdata"] + [str(s) for s in rig["shards"]]
    assert main(argv + ["-o", str(merged), "-b", str(exe2), "--json"]) == 0
    captured = capsys.readouterr()
    report = json.loads(captured.out)
    assert report["stale_shards"] == 2
    assert "FD008" in captured.err
    for shard in report["shards"]:
        assert shard["stale"] is True
        assert shard["match"] is not None
        assert shard["effective_weight"] <= shard["weight"]
    # The merged profile is stamped for the *target* build, so a
    # follow-up bolt run will not re-flag it as stale.
    assert parse_fdata(merged.read_text()).build_id is not None


def test_merge_min_match_quality_excludes_shard(rig, capsys):
    root = rig["root"]
    (root / "app2.bc").write_text(SRC_V2)
    exe2 = root / "app2b.belf"
    assert main(["build", str(root / "app2.bc"), "-o", str(exe2)]) == 0
    capsys.readouterr()
    merged = root / "floor.fdata"
    argv = ["merge-fdata"] + [str(s) for s in rig["shards"]]
    assert main(argv + ["-o", str(merged), "-b", str(exe2),
                        "--min-match-quality", "1.1"]) == 0
    assert "FD013" in capsys.readouterr().err
    assert parse_fdata(merged.read_text()).total_branch_count() == 0
