"""Per-pass unit tests for BOLT's optimization pipeline (Table 1)."""

import pytest

from repro.compiler import BuildOptions, build_executable
from repro.core import BinaryContext, BoltOptions, optimize_binary
from repro.core.cfg_builder import build_all_functions
from repro.core.discovery import discover_functions
from repro.core.profile_attach import attach_profile
from repro.core.passes import (
    EliminateUnreachable,
    FixupBranches,
    FrameOptimization,
    IdenticalCodeFolding,
    IndirectCallPromotion,
    InlineSmall,
    Peepholes,
    PLTCalls,
    ReorderBasicBlocks,
    ReorderFunctions,
    ShrinkWrapping,
    SimplifyConditionalTailCalls,
    SimplifyRoLoads,
    StripRepRet,
    build_pipeline,
)
from repro.ir import InlinePolicy
from repro.isa import Op
from repro.profiling import profile_binary, SamplingConfig
from repro.uarch import run_binary


NO_INLINE = BuildOptions(inline=InlinePolicy(max_size=0, hot_max_size=0))


def analyze(sources, bolt_options=None, build_options=None, profile_period=None,
            **link_kwargs):
    exe, _ = build_executable(sources, build_options or NO_INLINE,
                              emit_relocs=True, **link_kwargs)
    context = BinaryContext(exe, bolt_options or BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    if profile_period:
        profile, _ = profile_binary(
            exe, sampling=SamplingConfig(period=profile_period))
        context.profile = profile
        attach_profile(context, profile)
    else:
        context.profile = None
    return exe, context


def insns_of(func):
    return [i for b in func.blocks.values() for i in b.insns]


def test_strip_rep_ret():
    exe, context = analyze([("m", "func main() { return 1; }")])
    before = [i for i in insns_of(context.functions["main"])
              if i.op == Op.REPZ_RET]
    assert before
    stats = StripRepRet().run(context)
    assert stats["stripped"] >= 1
    assert not [i for i in insns_of(context.functions["main"])
                if i.op == Op.REPZ_RET]
    assert [i for i in insns_of(context.functions["main"])
            if i.op == Op.RET][0].size == 1


def test_icf_folds_identical_pair():
    exe, context = analyze([
        ("a", "func d1(x) { return x * 31 + 5; }\n"
              "func main() { return d1(1) + d2(1); }"),
        ("b", "func d2(x) { return x * 31 + 5; }"),
    ])
    stats = IdenticalCodeFolding().run(context)
    assert stats["folded"] == 1
    folded = [f for f in context.functions.values() if f.is_folded]
    assert len(folded) == 1
    assert folded[0].folded_into.name in ("d1", "d2")


def test_icf_folds_jump_table_functions():
    switch_body = """
  switch (x) {
    case 0: { return 5; } case 1: { return 6; }
    case 2: { return 7; } case 3: { return 8; }
  }
  return -1;
"""
    exe, context = analyze([
        ("a", f"func s1(x) {{ {switch_body} }}\n"
              "func main() { return s1(2) + s2(3); }"),
        ("b", f"func s2(x) {{ {switch_body} }}"),
    ])
    stats = IdenticalCodeFolding().run(context)
    assert stats["folded"] == 1  # the linker could not fold these


def test_icf_does_not_fold_different_bodies():
    exe, context = analyze([
        ("a", "func d1(x) { return x * 31; }\n"
              "func main() { return d1(1) + d2(1); }"),
        ("b", "func d2(x) { return x * 32; }"),
    ])
    assert IdenticalCodeFolding().run(context)["folded"] == 0


def test_icf_merges_profile():
    exe, context = analyze([
        ("a", "func d1(x) { return x * 31 + 5; }\n"
              "func main() { var i = 0; var s = 0;\n"
              "  while (i < 100) { s = s + d1(i) + d2(i); i = i + 1; }\n"
              "  out s; return 0; }"),
        ("b", "func d2(x) { return x * 31 + 5; }"),
    ], profile_period=29)
    d1 = context.functions["d1"]
    d2 = context.functions["d2"]
    total = d1.exec_count + d2.exec_count
    IdenticalCodeFolding().run(context)
    survivor = d1 if d2.is_folded else d2
    assert survivor.exec_count == total


def test_peepholes_push_pop():
    exe, context = analyze([("m", """
func g(x) { return x + 1; }
func f(y) { return g(y) * 2; }
func main() { return f(1); }
""")])
    f = context.functions["f"]
    had = any(i.op == Op.PUSH for i in insns_of(f))
    stats = Peepholes().run(context)
    assert stats["push-pop"] >= 1
    # push rdi/pop rdi pairs collapse to nothing or a single mov
    pushes = [i for i in insns_of(f) if i.op == Op.PUSH and i.regs[0] != 5]
    assert had and len(pushes) == 0


def test_peepholes_jump_threading():
    # Construct a forwarder chain manually.
    exe, context = analyze([("m", """
func main() {
  var i = 0;
  while (i < 5) { i = i + 1; }
  return i;
}
""")])
    main = context.functions["main"]
    stats = Peepholes().run(context)
    assert stats is not None  # smoke: no crash, bookkeeping consistent
    for block in main.blocks.values():
        for succ in block.successors:
            assert succ in main.blocks


def test_inline_small_trivial_leaf():
    exe, context = analyze([("m", """
func tiny(a, b) { return a * 3 + b; }
func main() {
  var i = 0;
  var s = 0;
  while (i < 10) { s = s + tiny(i, s); i = i + 1; }
  out s;
  return 0;
}
""")])
    # Peepholes first (the call protocol push/pops hide nothing here but
    # mirror the real pipeline order 4 -> 5).
    Peepholes().run(context)
    stats = InlineSmall().run(context)
    assert stats["inlined"] >= 1
    main = context.functions["main"]
    assert not [i for i in insns_of(main)
                if i.is_call and i.sym and i.sym.name == "tiny"]


def test_inline_small_rejects_memory_and_calls():
    exe, context = analyze([("m", """
var g = 0;
func reads_mem(a, b) { return a + g; }
func has_call(a, b) { return reads_mem(a, b) + 1; }
func main() { return reads_mem(1, 2) + has_call(3, 4); }
""")])
    stats = InlineSmall().run(context)
    assert stats["inlined"] == 0


def test_simplify_ro_loads():
    exe, context = analyze([("m", """
const K = 12345;
func main() { return K + 1; }
""")])
    main = context.functions["main"]
    loads_before = [i for i in insns_of(main) if i.op == Op.LOAD_ABS]
    assert loads_before
    stats = SimplifyRoLoads().run(context)
    assert stats["converted"] >= 1
    movs = [i for i in insns_of(main)
            if i.op == Op.MOV_RI32 and i.imm == 12345]
    assert movs
    # Semantics preserved end to end.
    result = optimize_binary(exe, None, BoltOptions())
    assert run_binary(result.binary).exit_code == run_binary(exe).exit_code


def test_simplify_ro_loads_aborts_on_big_values():
    exe, context = analyze([("m", """
const BIG = 0x123456789AB;
func main() { return BIG >> 40; }
""")])
    stats = SimplifyRoLoads().run(context)
    assert stats["aborted"] >= 1
    assert stats["converted"] == 0


def test_simplify_ro_loads_skips_writable():
    exe, context = analyze([("m", """
var mut = 7;
func main() { return mut; }
""")])
    stats = SimplifyRoLoads().run(context)
    assert stats["converted"] == 0


def test_plt_pass():
    exe, context = analyze(
        [("m", "func main() { out util(3); out util(4); return 0; }")],
        libs=[("lib", "func util(x) { return x * 2; }")])
    stats = PLTCalls().run(context)
    assert stats["optimized"] == 2
    main = context.functions["main"]
    direct = [i for i in insns_of(main)
              if i.is_call and i.sym and i.sym.name == "util"]
    assert len(direct) == 2


def test_plt_pass_skips_builtins():
    exe, context = analyze([("m", """
func main() {
  try { throw 1; } catch (e) { }
  return 0;
}
""")])
    stats = PLTCalls().run(context)
    assert stats["skipped"] >= 1
    assert stats["optimized"] == 0


HOT_COLD = ("m", """
func f(x) {
  if (x % 1024 == 1023) {
    x = x * 3;
    x = x + 17;
    x = x ^ 5;
    return x;
  }
  return x + 1;
}
func main() {
  var i = 0;
  var s = 0;
  while (i < 300) { s = s + f(i); i = i + 1; }
  out s;
  return 0;
}
""")


def test_reorder_bbs_and_splitting():
    exe, context = analyze([HOT_COLD], profile_period=23)
    f = context.functions["f"]
    before = list(f.blocks)
    stats = ReorderBasicBlocks().run(context)
    assert stats.get("cold-blocks", 0) >= 1
    cold = [b for b in f.blocks.values() if b.is_cold]
    assert cold
    hottest = max(b.exec_count for b in f.blocks.values())
    # Cold blocks carry at most profile noise (section 5.2 surplus).
    assert all(b.exec_count <= hottest * 0.005 for b in cold)
    # Entry still first.
    assert next(iter(f.blocks)) == f.entry_label


def test_reorder_bbs_skips_unprofiled():
    exe, context = analyze([HOT_COLD])
    for func in context.functions.values():
        func.has_profile = False
    stats = ReorderBasicBlocks().run(context)
    assert stats.get("skipped-no-profile", 0) >= 1


def test_fixup_branches_invariants():
    exe, context = analyze([HOT_COLD], profile_period=23)
    ReorderBasicBlocks().run(context)
    FixupBranches().run(context)
    for func in context.simple_functions():
        layout = func.layout()
        for i, block in enumerate(layout):
            if not block.insns:
                continue
            last = block.insns[-1]
            next_label = (layout[i + 1].label
                          if i + 1 < len(layout)
                          and layout[i + 1].is_cold == block.is_cold
                          else None)
            if last.is_cond_branch and last.label is not None:
                # A conditional branch at block end means its
                # fall-through is the physical next block.
                assert block.fallthrough_label == next_label or \
                    block.fallthrough_label is None
            if last.op in (Op.JMP_NEAR, Op.JMP_SHORT) and last.label:
                assert last.label != next_label  # no jumps to fall-through


def test_uce_removes_unreachable():
    exe, context = analyze([("m", """
func f(x) {
  if (x > 0) { return 1; }
  return 2;
}
func main() { return f(1); }
""")])
    f = context.functions["f"]
    # Manually disconnect a block to simulate a post-transform orphan.
    orphan = [l for l in f.blocks if l != f.entry_label][0]
    for block in f.blocks.values():
        block.remove_successor(orphan)
    stats = EliminateUnreachable().run(context)
    assert stats["removed-blocks"] >= 1
    assert orphan not in f.blocks


def test_sctc():
    exe, context = analyze([("m", """
var gate = 1;
func target() { return 42; }
func disp() {
  if (gate > 0) { return target(); }
  return 0;
}
func main() { return disp(); }
""")], build_options=NO_INLINE)
    # `disp` is frameless: its taken branch leads to a lone `jmp target`.
    disp = context.functions["disp"]
    stats = SimplifyConditionalTailCalls().run(context)
    assert stats.get("simplified", 0) >= 1
    cond_tails = [i for i in insns_of(disp)
                  if i.is_cond_branch and i.sym is not None]
    assert cond_tails and cond_tails[0].sym.name == "target"


def test_frame_opts_removes_dead_homes():
    exe, context = analyze([("m", """
func f(a) {
  var s = 0;
  var i = 0;
  while (i < a) { s = s + a; i = i + 1; }
  return s;
}
func main() { return f(5); }
""")])
    f = context.functions["f"]
    stats = FrameOptimization().run(context)
    assert stats.get("removed-stores", 0) >= 1
    # Results stay correct.
    result = optimize_binary(exe, None, BoltOptions())
    assert run_binary(result.binary).exit_code == run_binary(exe).exit_code


def test_frame_opts_keeps_saved_reg_slots():
    exe, context = analyze([HOT_COLD], profile_period=23)
    f = context.functions["f"]
    protected = {-off for _, off in f.frame_record.saved_regs}
    FrameOptimization().run(context)
    stores = {i.disp for i in insns_of(f)
              if i.op == Op.STORE and i.regs[0] == 5}
    assert protected <= stores


SHRINK_SRC = ("m", """
func heavy(x) {
  var a = x;
  if (x % 251 == 250) {
    var t0 = a * 3;
    var t1 = t0 + a;
    var t2 = t1 * t0;
    var i = 0;
    while (i < 3) { t2 = t2 + t1 * a; t1 = t1 + t0; i = i + 1; }
    return t2 + t1;
  }
  return x + 1;
}
func main() {
  var i = 0;
  var s = 0;
  while (i < 600) { s = s + heavy(i); i = i + 1; }
  out s;
  return 0;
}
""")


def test_shrink_wrapping_moves_or_removes():
    exe, context = analyze([SHRINK_SRC], profile_period=31)
    stats = ShrinkWrapping().run(context)
    moved = stats.get("moved-saves", 0) + stats.get("removed-dead-saves", 0)
    assert moved >= 1
    result = optimize_binary(exe, None, BoltOptions())
    base = run_binary(exe, max_instructions=10_000_000)
    opt = run_binary(result.binary, max_instructions=10_000_000)
    assert base.output == opt.output


def test_reorder_functions_orders_hot_first():
    exe, context = analyze([("m", """
func hot(x) { return x + 1; }
func cold(x) { return x * 99; }
func main() {
  var i = 0;
  var s = 0;
  while (i < 400) {
    s = s + hot(i);
    if (i % 399 == 398) { s = s + cold(i); }
    i = i + 1;
  }
  out s;
  return 0;
}
""")], profile_period=23)
    ReorderFunctions().run(context)
    order = context.function_order
    assert order.index("hot") < order.index("cold")


def test_icp_transform():
    exe, context = analyze([("m", """
var h = 0;
func t1(x) { return x + 1; }
func t2(x) { return x + 2; }
func init() { h = &t1; return 0; }
func caller(x) {
  var f = h;
  return f(x) + 1;
}
func main() {
  init();
  var i = 0;
  var acc = 0;
  while (i < 200) { acc = acc + caller(i); i = i + 1; }
  out acc;
  return 0;
}
""")], profile_period=19)
    # The call site is perfectly monomorphic: the BTB never misses, so
    # the mispredict gate leaves it alone at the default threshold...
    assert IndirectCallPromotion().run(context)["promoted"] == 0
    # ...and promotes it when promotion is forced.
    context.options = context.options.copy(icp_mispredict_threshold=0.0)
    stats = IndirectCallPromotion().run(context)
    assert stats["promoted"] == 1
    caller = context.functions["caller"]
    direct = [i for i in insns_of(caller)
              if i.op == Op.CALL and i.sym and i.sym.name == "t1"]
    assert direct
    # Still has the indirect fallback.
    assert [i for i in insns_of(caller) if i.op == Op.CALL_REG]
    # End-to-end semantics with the full pipeline.
    profile, _ = profile_binary(exe, sampling=SamplingConfig(period=19))
    result = optimize_binary(exe, profile, BoltOptions())
    assert run_binary(result.binary).output == run_binary(exe).output


def test_pipeline_order_matches_table1():
    manager = build_pipeline(BoltOptions())
    names = [p.name for p in manager.passes]
    expected_prefix = [
        "strip-rep-ret", "icf", "icp", "peepholes", "inline-small",
        "simplify-ro-loads", "icf-2", "plt", "reorder-bbs", "peepholes-2",
        "uce", "fixup-branches", "reorder-functions", "sctc",
    ]
    assert names[: len(expected_prefix)] == expected_prefix
    assert "frame-opts" in names and "shrink-wrapping" in names


def test_pipeline_toggles():
    options = BoltOptions(icf=False, icp=False, sctc=False,
                          frame_opts=False, shrink_wrapping=False,
                          peepholes=False, inline_small=False,
                          simplify_ro_loads=False, plt=False,
                          strip_rep_ret=False, uce=False)
    manager = build_pipeline(options)
    names = [p.name for p in manager.passes]
    assert names == ["reorder-bbs", "fixup-branches", "reorder-functions"]
