"""Full-matrix integration tests on the mini workload.

Every build configuration x BOLT mode must reproduce exactly the
reference interpreter's output stream.  This is the repository's
strongest end-to-end guarantee: the compiler, linker, profiler,
optimizer and machine model all agree on program semantics.
"""

import pytest

from repro.codegen import CodegenOptions
from repro.core import BoltOptions
from repro.harness import build_workload, measure, run_bolt, sample_profile
from repro.lang import parse_module
from repro.lang.interp import Interpreter
from repro.profiling import SamplingConfig
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def mini():
    return make_workload("mini")


@pytest.fixture(scope="module")
def expected(mini):
    modules = [parse_module(t, n) for n, t in
               mini.sources + mini.lib_sources + mini.asm_sources]
    interp = Interpreter(modules, max_steps=100_000_000)
    interp.set_array("mainmod", "input", mini.inputs["mainmod::input"])
    interp.run("main")
    return interp.output


BUILD_CONFIGS = {
    "O2": {},
    "LTO": {"lto": True},
    "PGO": {"pgo": True},
    "PGO+LTO": {"pgo": True, "lto": True},
    "AutoFDO": {"autofdo": True},
    "HFSort": {"hfsort_link": "hfsort"},
    "HFSort+": {"hfsort_link": "hfsort+"},
    "lean-codegen": {"codegen": CodegenOptions(
        repz_ret=False, align_loops=False, naive_param_homing=False,
        tail_calls=False)},
}


@pytest.mark.parametrize("label", list(BUILD_CONFIGS))
def test_build_config_matches_reference(mini, expected, label):
    built = build_workload(mini, **BUILD_CONFIGS[label])
    assert measure(built).output == expected, label


@pytest.mark.parametrize("label", ["O2", "PGO+LTO", "HFSort"])
def test_bolt_on_config_matches_reference(mini, expected, label):
    built = build_workload(mini, **BUILD_CONFIGS[label])
    profile, _ = sample_profile(built)
    result = run_bolt(built, profile)
    assert measure(result.binary, inputs=mini.inputs).output == expected, label


def test_bolt_nolbr_matches_reference(mini, expected):
    built = build_workload(mini)
    profile, _ = sample_profile(
        built, sampling=SamplingConfig(period=251, use_lbr=False))
    result = run_bolt(built, profile)
    assert measure(result.binary, inputs=mini.inputs).output == expected


def test_bolt_inplace_matches_reference(mini, expected):
    built = build_workload(mini, emit_relocs=False)
    profile, _ = sample_profile(built)
    result = run_bolt(built, profile)
    assert not result.context.use_relocations
    assert measure(result.binary, inputs=mini.inputs).output == expected


def test_linker_icf_plus_bolt(mini, expected):
    built = build_workload(mini, linker_icf=True)
    profile, _ = sample_profile(built)
    result = run_bolt(built, profile)
    assert measure(result.binary, inputs=mini.inputs).output == expected


def test_every_input_mix_after_bolt(mini):
    built = build_workload(mini)
    profile, _ = sample_profile(built)
    result = run_bolt(built, profile)
    for label, inputs in mini.alt_inputs.items():
        base = measure(built.exe, inputs=inputs)
        opt = measure(result.binary, inputs=inputs)
        assert base.output == opt.output, label


def test_rebolt_chain_reaches_fixed_point(mini, expected):
    """BOLT output re-BOLTed (in-place, since relocations are stripped)
    keeps semantics and converges: a second round finds nothing more."""
    built = build_workload(mini)
    binary = built.exe
    cycles = []
    for _ in range(3):
        profile, _ = sample_profile(binary, inputs=mini.inputs)
        binary = run_bolt(binary, profile).binary
        cpu = measure(binary, inputs=mini.inputs)
        assert cpu.output == expected
        cycles.append(cpu.counters.cycles)
    # Rounds 2 and 3 operate on already-optimized code: no regression.
    assert cycles[2] <= cycles[1] * 1.02
