"""Code generation and object emission tests."""

import pytest

from repro.belf import RelocType, SymbolType
from repro.codegen import (
    CodegenOptions,
    assemble_function,
    emit_object,
    select_function,
)
from repro.codegen.machine import MachineBlock, MachineFunction
from repro.ir import build_module
from repro.isa import (
    CondCode,
    Instruction,
    Op,
    RBP,
    RAX,
    RDI,
    decode_stream,
)
from repro.lang import parse_module


def select(text, fname, **opts):
    module = build_module(parse_module(text, "t"))
    return select_function(module.functions[fname], CodegenOptions(**opts))


def all_insns(mf):
    return [i for b in mf.blocks for i in b.insns]


def ops_of(mf):
    return [i.op for i in all_insns(mf)]


# -- isel patterns -----------------------------------------------------------


def test_frame_layout():
    mf = select("""
func f(a) {
  var x = a;
  var i = 0;
  while (i < 10) { x = x + i; i = i + 1; }
  return x;
}
""", "f")
    entry = mf.blocks[0].insns
    assert entry[0].op == Op.PUSH and entry[0].regs == (RBP,)
    assert entry[1].op == Op.MOV_RR and entry[1].regs == (RBP, 4)
    assert entry[2].op == Op.SUB_RI
    assert entry[2].imm == mf.frame_size
    assert mf.saved_regs  # loop vars promoted to callee-saved regs


def test_frameless_leaf():
    mf = select("func f(a, b) { return a * 3 + b; }", "f")
    assert mf.frame_size == 0 and not mf.saved_regs
    assert Op.PUSH not in ops_of(mf)


def test_repz_ret_option():
    mf = select("func f() { return 1; }", "f", repz_ret=True)
    assert ops_of(mf)[-1] == Op.REPZ_RET
    mf = select("func f() { return 1; }", "f", repz_ret=False)
    assert ops_of(mf)[-1] == Op.RET


def test_param_homing_annotation():
    mf = select("""
func f(a) {
  var s = 0;
  var i = 0;
  while (i < a) { s = s + a; i = i + 1; }
  return s;
}
""", "f", naive_param_homing=True)
    homes = [i for i in all_insns(mf) if i.get_annotation("param-home")]
    assert homes
    mf2 = select("""
func f(a) {
  var s = 0;
  var i = 0;
  while (i < a) { s = s + a; i = i + 1; }
  return s;
}
""", "f", naive_param_homing=False)
    assert not [i for i in all_insns(mf2) if i.get_annotation("param-home")]


def test_tail_call_direct():
    mf = select("""
func g() { return 2; }
func f(x) {
  if (x > 0) { return g(); }
  return 0;
}
""", "f", tail_calls=True)
    jumps = [i for i in all_insns(mf)
             if i.op == Op.JMP_NEAR and i.sym is not None]
    assert jumps and jumps[0].sym.name == "g"


def test_tail_call_disabled():
    mf = select("""
func g() { return 2; }
func f(x) {
  if (x > 0) { return g(); }
  return 0;
}
""", "f", tail_calls=False)
    assert not [i for i in all_insns(mf)
                if i.op == Op.JMP_NEAR and i.sym is not None]
    assert [i for i in all_insns(mf) if i.op == Op.CALL]


def test_dense_switch_emits_jump_table():
    mf = select("""
func f(x) {
  switch (x) {
    case 0: { return 1; } case 1: { return 2; } case 2: { return 3; }
    case 3: { return 4; } case 4: { return 5; }
  }
  return 0;
}
""", "f")
    assert mf.jump_tables
    assert Op.JMP_REG in ops_of(mf)
    table_sym, entries = mf.jump_tables[0]
    assert len(entries) == 5


def test_sparse_switch_compare_chain():
    mf = select("""
func f(x) {
  switch (x) { case 0: { return 1; } case 1000: { return 2; } }
  return 0;
}
""", "f")
    assert not mf.jump_tables
    assert Op.JMP_REG not in ops_of(mf)


def test_indirect_call_via_r10():
    mf = select("""
var h = 0;
func f(x) {
  var g = h;
  return g(x) + 1;
}
""", "f")
    icalls = [i for i in all_insns(mf) if i.op == Op.CALL_REG]
    assert icalls and icalls[0].regs == (10,)


def test_arg_masking_for_arrays():
    mf = select("""
array a[8];
func f(i) { return a[i]; }
""", "f")
    ands = [i for i in all_insns(mf) if i.op == Op.AND_RI and i.imm == 7]
    assert ands


def test_lp_annotation_on_calls():
    mf = select("""
func g(x) { return x; }
func f(x) {
  var r = 0;
  try { r = g(x); } catch (e) { r = e; }
  return r;
}
""", "f")
    calls = [i for i in all_insns(mf) if i.op == Op.CALL]
    assert any(i.get_annotation("lp") for i in calls)


def test_loop_alignment_annotation():
    mf = select("""
func f(n) {
  var i = 0;
  while (i < n) { i = i + 1; }
  return i;
}
""", "f", align_loops=True)
    assert any(b.align > 1 for b in mf.blocks)
    mf2 = select("""
func f(n) {
  var i = 0;
  while (i < n) { i = i + 1; }
  return i;
}
""", "f", align_loops=False)
    assert all(b.align == 1 for b in mf2.blocks)


def test_too_many_params():
    from repro.codegen.isel import CodegenError

    with pytest.raises(CodegenError):
        select("func f(a, b, c, d, e, g, h) { return a; }", "f")


# -- assembler ------------------------------------------------------------------


def _mf_with_branch(distance):
    """jcc over `distance` bytes of NOPs."""
    mf = MachineFunction("f", "f")
    b0 = MachineBlock("start")
    b0.insns = [Instruction(Op.JCC_SHORT, cc=CondCode.EQ, label="far")]
    mid = MachineBlock("mid")
    mid.insns = [Instruction(Op.NOPN, imm=distance)]
    far = MachineBlock("far")
    far.insns = [Instruction(Op.RET)]
    mf.blocks = [b0, mid, far]
    return mf


def test_relaxation_short():
    image = assemble_function(_mf_with_branch(10), normalize=False)
    insns = decode_stream(image.code)
    assert insns[0].op == Op.JCC_SHORT and insns[0].size == 2


def test_relaxation_long():
    image = assemble_function(_mf_with_branch(200), normalize=False)
    insns = decode_stream(image.code)
    assert insns[0].op == Op.JCC_LONG and insns[0].size == 6
    assert insns[0].target == image.labels["far"]


def test_normalize_drops_fallthrough_jump():
    mf = MachineFunction("f", "f")
    b0 = MachineBlock("a")
    b0.insns = [Instruction(Op.JMP_NEAR, label="b")]
    b1 = MachineBlock("b")
    b1.insns = [Instruction(Op.RET)]
    mf.blocks = [b0, b1]
    image = assemble_function(mf, normalize=True)
    assert decode_stream(image.code)[0].op == Op.RET


def test_normalize_inverts_condition():
    mf = MachineFunction("f", "f")
    b0 = MachineBlock("a")
    b0.insns = [Instruction(Op.JCC_LONG, cc=CondCode.EQ, label="b"),
                Instruction(Op.JMP_NEAR, label="c")]
    b1 = MachineBlock("b")
    b1.insns = [Instruction(Op.NOP)]
    b2 = MachineBlock("c")
    b2.insns = [Instruction(Op.RET)]
    mf.blocks = [b0, b1, b2]
    image = assemble_function(mf, normalize=True)
    first = decode_stream(image.code)[0]
    assert first.cc == CondCode.NE
    assert first.target == image.labels["c"]


def test_alignment_padding():
    mf = MachineFunction("f", "f")
    b0 = MachineBlock("a")
    b0.insns = [Instruction(Op.NOP)]
    b1 = MachineBlock("b")
    b1.align = 16
    b1.insns = [Instruction(Op.RET)]
    mf.blocks = [b0, b1]
    image = assemble_function(mf)
    assert image.labels["b"] == 16
    assert len(image.code) == 17


def test_callsite_merging():
    mf = MachineFunction("f", "f")
    b0 = MachineBlock("a")
    call1 = Instruction(Op.CALL, target=None)
    call1.sym = None
    from repro.isa import SymRef

    call1 = Instruction(Op.CALL, sym=SymRef("g", "branch"))
    call1.set_annotation("lp", "lp")
    call2 = Instruction(Op.CALL, sym=SymRef("g", "branch"))
    call2.set_annotation("lp", "lp")
    b0.insns = [call1, call2, Instruction(Op.RET)]
    lp = MachineBlock("lp")
    lp.insns = [Instruction(Op.RET)]
    mf.blocks = [b0, lp]
    image = assemble_function(mf)
    assert len(image.callsites) == 1  # adjacent sites merged
    assert image.callsites[0].start == 0
    assert image.callsites[0].end == 10


# -- object emission -------------------------------------------------------------


def emit(text, **opts):
    module = build_module(parse_module(text, "t"))
    mfs = [select_function(f, CodegenOptions(**opts))
           for f in module.functions.values()]
    return emit_object(module, mfs)


def test_emit_object_sections_and_symbols():
    obj = emit("""
var g = 5;
const K = 7;
array zeros[8];
array init[4] = {1, 2};
func f() { return g; }
""")
    assert ".text.f" in obj.sections
    assert obj.get_symbol("f").type == SymbolType.FUNC
    assert obj.get_symbol("t::g").section == ".data"
    assert obj.get_symbol("t::K").section == ".rodata"
    assert obj.get_symbol("t::zeros").section == ".bss"
    assert obj.get_symbol("t::init").section == ".data"
    assert obj.get_section(".bss").size == 64


def test_emit_object_relocations():
    obj = emit("""
var g = 1;
func callee() { return 0; }
func f() { return callee() + g; }
""")
    relocs = {(r.symbol, r.type) for r in obj.relocations
              if r.section == ".text.f"}
    assert ("callee", RelocType.PC32) in relocs
    assert ("t::g", RelocType.ABS32) in relocs


def test_emit_object_funcref_reloc():
    obj = emit("func g() { return 0; } func f() { return &g; }")
    relocs = [r for r in obj.relocations if r.section == ".text.f"]
    assert any(r.type == RelocType.ABS64 and r.symbol == "g" for r in relocs)


def test_emit_object_jump_table():
    obj = emit("""
func f(x) {
  switch (x) {
    case 0: { return 1; } case 1: { return 2; }
    case 2: { return 3; } case 3: { return 4; }
  }
  return 0;
}
""")
    ro = obj.get_section(".rodata.f")
    assert ro is not None and len(ro.data) == 32
    table_relocs = [r for r in obj.relocations if r.section == ".rodata.f"]
    assert len(table_relocs) == 4
    assert all(r.symbol == "f" and r.type == RelocType.ABS64
               for r in table_relocs)


def test_emit_object_frame_records_and_lines():
    obj = emit("""
func g(x) { return x; }
func f(x) {
  var r = 0;
  try { r = g(x); } catch (e) { r = e; }
  return r;
}
""")
    record = obj.frame_records["f"]
    assert record.callsites
    assert obj.func_line_tables["f"]


def test_emit_object_no_frame_info_option():
    obj = emit("func f(x) { var y = x + 1; return y; }", frame_info=False)
    assert "f" not in obj.frame_records


def test_static_function_symbol_binding():
    obj = emit("static func s() { return 0; } func f() { return s(); }")
    sym = obj.get_symbol("t::s")
    assert sym is not None and sym.is_local
