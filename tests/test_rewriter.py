"""Whole-pipeline rewriting tests: correctness preservation in both
operating modes, metadata updates, dyno-stats."""

import pytest

from repro.belf import read_binary, write_binary
from repro.compiler import BuildOptions, build_executable
from repro.core import BoltOptions, optimize_binary
from repro.core.reports import dump_function, report_bad_layout
from repro.ir import InlinePolicy
from repro.profiling import SamplingConfig, profile_binary
from repro.uarch import run_binary

RICH_SRC = ("app", """
const array lut[8] = {3, 1, 4, 1, 5, 9, 2, 6};
array state[16];
var handler = 0;

func t1(x) { return x + lut[x]; }
func t2(x) { return x * 2; }
func init() { handler = &t1; return 0; }

func spin(x) {
  switch (x % 8) {
    case 0: { return 10; } case 1: { return 11; }
    case 2: { return 12; } case 3: { return 13; }
    case 4: { return 14; } case 5: { return 15; }
    default: { return 0; }
  }
}

func risky(x) {
  if (x % 173 == 172) { throw x; }
  return x + 1;
}

func work(i) {
  var f = handler;
  var acc = f(i % 8) + spin(i);
  try { acc = acc + risky(i); } catch (e) { acc = acc - e % 7; }
  if (i % 256 == 255) {
    acc = acc * 3;
    state[acc % 16] = acc;
    acc = acc + state[(acc + 1) % 16];
  }
  return acc;
}

func main() {
  init();
  var i = 0;
  var total = 0;
  while (i < 700) {
    total = total + work(i);
    i = i + 1;
  }
  out total;
  return 0;
}
""")


def _built(emit_relocs=True):
    return build_executable(
        [RICH_SRC], BuildOptions(inline=InlinePolicy(max_size=6)),
        emit_relocs=emit_relocs)[0]


@pytest.fixture(scope="module")
def baseline():
    exe = _built()
    cpu = run_binary(exe)
    profile, _ = profile_binary(exe, sampling=SamplingConfig(period=43))
    return exe, cpu, profile


def test_relocations_mode_preserves_semantics(baseline):
    exe, cpu, profile = baseline
    result = optimize_binary(exe, profile, BoltOptions())
    opt = run_binary(result.binary)
    assert opt.output == cpu.output
    assert opt.exit_code == cpu.exit_code


def test_relocations_mode_improves_or_holds(baseline):
    exe, cpu, profile = baseline
    result = optimize_binary(exe, profile, BoltOptions())
    opt = run_binary(result.binary)
    assert opt.counters.cycles < cpu.counters.cycles


def test_in_place_mode(baseline):
    _, cpu, _ = baseline
    exe = _built(emit_relocs=False)
    profile, _ = profile_binary(exe, sampling=SamplingConfig(period=43))
    result = optimize_binary(exe, profile, BoltOptions())
    assert not result.context.use_relocations
    opt = run_binary(result.binary)
    assert opt.output == cpu.output
    # Functions stayed put.
    for sym in exe.functions():
        new = result.binary.get_symbol(sym.link_name())
        assert new.value == sym.value


def test_in_place_respects_use_relocations_override(baseline):
    exe, cpu, profile = baseline  # has relocations
    result = optimize_binary(exe, profile,
                             BoltOptions(use_relocations=False))
    assert not result.context.use_relocations
    assert run_binary(result.binary).output == cpu.output


def test_function_reordering_applied(baseline):
    exe, cpu, profile = baseline
    result = optimize_binary(exe, profile, BoltOptions())
    order = result.context.function_order
    assert order is not None
    # Hot functions (work, main...) must come before never-called ones.
    addresses = {
        s.name: result.binary.get_symbol(s.name).value
        for s in exe.functions() if s.name in ("work", "t2")
    }
    assert addresses["work"] < addresses["t2"]


def test_cold_section_created(baseline):
    exe, cpu, profile = baseline
    result = optimize_binary(exe, profile, BoltOptions())
    cold = result.binary.get_section(".text.cold")
    assert cold is not None and cold.size > 0
    cold_syms = [s for s in result.binary.symbols
                 if s.section == ".text.cold"]
    assert any(s.name.endswith(".cold.0") for s in cold_syms)


def test_no_split_option(baseline):
    exe, cpu, profile = baseline
    result = optimize_binary(exe, profile, BoltOptions(split_functions=0))
    assert result.binary.get_section(".text.cold") is None
    assert run_binary(result.binary).output == cpu.output


def test_text_shrinks(baseline):
    exe, cpu, profile = baseline
    result = optimize_binary(exe, profile, BoltOptions())
    assert result.hot_text_size < exe.text_size()


def test_serialization_roundtrip(baseline):
    exe, cpu, profile = baseline
    result = optimize_binary(exe, profile, BoltOptions())
    loaded = read_binary(write_binary(result.binary))
    assert run_binary(loaded).output == cpu.output


def test_line_table_updated(baseline):
    exe, cpu, profile = baseline
    result = optimize_binary(exe, profile, BoltOptions())
    table = result.binary.line_table
    assert table is not None and len(table) > 0
    main = result.binary.get_symbol("main")
    loc = table.lookup(main.value)
    assert loc is not None and loc[0] == "app.bc"


def test_line_table_dropped_when_disabled(baseline):
    exe, cpu, profile = baseline
    result = optimize_binary(
        exe, profile, BoltOptions(update_debug_sections=False))
    assert result.binary.line_table is None


def test_rebolt_output_runs(baseline):
    """BOLT output (no relocations) can be re-BOLTed in-place."""
    exe, cpu, profile = baseline
    once = optimize_binary(exe, profile, BoltOptions()).binary
    profile2, _ = profile_binary(once, sampling=SamplingConfig(period=43))
    twice = optimize_binary(once, profile2, BoltOptions()).binary
    assert run_binary(twice).output == cpu.output


def test_dyno_stats_improve(baseline):
    exe, cpu, profile = baseline
    result = optimize_binary(exe, profile, BoltOptions())
    before, after = result.dyno_before, result.dyno_after
    assert after.taken_branches < before.taken_branches
    delta = after.delta_vs(before)
    assert delta["taken_branches"] < 0


def test_without_profile_no_layout_changes(baseline):
    exe, cpu, profile = baseline
    result = optimize_binary(exe, None, BoltOptions())
    assert run_binary(result.binary).output == cpu.output


def test_layout_algorithms_all_work(baseline):
    exe, cpu, profile = baseline
    for algo in ("none", "reverse", "cache", "cache+"):
        result = optimize_binary(
            exe, profile, BoltOptions(reorder_blocks=algo))
        assert run_binary(result.binary).output == cpu.output, algo


def test_function_order_algorithms(baseline):
    exe, cpu, profile = baseline
    for algo in ("none", "hfsort", "hfsort+"):
        result = optimize_binary(
            exe, profile, BoltOptions(reorder_functions=algo))
        assert run_binary(result.binary).output == cpu.output, algo


def test_individual_pass_toggles(baseline):
    exe, cpu, profile = baseline
    for flag in ("icf", "icp", "peepholes", "inline_small",
                 "simplify_ro_loads", "plt", "sctc", "frame_opts",
                 "shrink_wrapping", "strip_rep_ret", "strip_nops",
                 "split_eh", "trust_fall_through", "use_mcf"):
        result = optimize_binary(exe, profile,
                                 BoltOptions(**{flag: False}))
        assert run_binary(result.binary).output == cpu.output, flag


def test_nolbr_profile_correctness(baseline):
    exe, cpu, _ = baseline
    profile, _ = profile_binary(
        exe, sampling=SamplingConfig(period=43, use_lbr=False))
    result = optimize_binary(exe, profile, BoltOptions())
    assert run_binary(result.binary).output == cpu.output


def test_dump_function_format(baseline):
    exe, cpu, profile = baseline
    result = optimize_binary(exe, profile, BoltOptions())
    work = result.context.functions["work"]
    text = dump_function(work)
    assert 'Binary Function "work"' in text
    assert "Exec Count" in text
    assert "Successors:" in text


def test_report_bad_layout(baseline):
    exe, cpu, profile = baseline
    from repro.core import BinaryContext
    from repro.core.cfg_builder import build_all_functions
    from repro.core.discovery import discover_functions
    from repro.core.profile_attach import attach_profile

    context = BinaryContext(exe, BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    attach_profile(context, profile)
    findings = report_bad_layout(context, min_count=50)
    # The compiler's layout interleaves the cold error paths with hot
    # code (Figure 10); the report must find at least one instance.
    assert findings
    assert all("function" in f and "block" in f for f in findings)


def test_jump_tables_move(baseline):
    """-jump-tables=move relocates hot functions' tables into
    .rodata.hot and retargets the dispatch sequences."""
    exe, cpu, profile = baseline
    moved = optimize_binary(exe, profile, BoltOptions(jump_tables="move"))
    stayed = optimize_binary(exe, profile, BoltOptions(jump_tables="none"))
    assert run_binary(moved.binary).output == cpu.output
    assert run_binary(stayed.binary).output == cpu.output
    hot_ro = moved.binary.get_section(".rodata.hot")
    assert hot_ro is not None and hot_ro.size > 0
    assert stayed.binary.get_section(".rodata.hot") is None
