"""CLI smoke tests (build/run/profile/bolt/stat/dump on real files)."""

import pathlib

import pytest

from repro.cli import main

SRC = """
func helper(x) {
  if (x % 3 == 0) { return x * 2; }
  return x + 1;
}
func main() {
  var i = 0;
  var acc = 0;
  while (i < 100) { acc = acc + helper(i); i = i + 1; }
  out acc;
  return 0;
}
"""


@pytest.fixture()
def workdir(tmp_path):
    (tmp_path / "app.bc").write_text(SRC)
    return tmp_path


def test_cli_full_pipeline(workdir, capsys):
    app = workdir / "app.bc"
    exe = workdir / "app.belf"
    fdata = workdir / "app.fdata"
    bolted = workdir / "app.bolt.belf"

    assert main(["build", str(app), "-o", str(exe)]) == 0
    assert exe.exists()

    assert main(["run", str(exe)]) == 0
    out = capsys.readouterr().out
    baseline_output = [l for l in out.splitlines() if l.strip().isdigit()]

    assert main(["profile", str(exe), "-o", str(fdata),
                 "--period", "51"]) == 0
    assert "branch records" in capsys.readouterr().out
    assert fdata.read_text().startswith("# event:")

    assert main(["bolt", str(exe), "-p", str(fdata), "-o", str(bolted),
                 "--dyno-stats"]) == 0
    bolt_out = capsys.readouterr().out
    assert "dyno-stats" in bolt_out

    assert main(["run", str(bolted)]) == 0
    out = capsys.readouterr().out
    assert [l for l in out.splitlines()
            if l.strip().isdigit()] == baseline_output

    assert main(["stat", str(bolted)]) == 0
    assert "instructions" in capsys.readouterr().out


def test_cli_build_pgo(workdir, capsys):
    app = workdir / "app.bc"
    exe = workdir / "app.pgo.belf"
    assert main(["build", str(app), "-o", str(exe), "--pgo", "--lto"]) == 0
    assert main(["run", str(exe)]) == 0


def test_cli_dump(workdir, capsys):
    app = workdir / "app.bc"
    exe = workdir / "app.belf"
    main(["build", str(app), "-o", str(exe)])
    capsys.readouterr()
    assert main(["dump", str(exe), "-f", "helper"]) == 0
    out = capsys.readouterr().out
    assert 'Binary Function "helper"' in out
    assert "BB Layout" in out


def test_cli_dump_with_profile(workdir, capsys):
    app = workdir / "app.bc"
    exe = workdir / "app.belf"
    fdata = workdir / "app.fdata"
    main(["build", str(app), "-o", str(exe)])
    main(["profile", str(exe), "-o", str(fdata), "--period", "51"])
    capsys.readouterr()
    assert main(["dump", str(exe), "-f", "main", "-p", str(fdata)]) == 0
    out = capsys.readouterr().out
    assert "Exec Count" in out


def test_cli_dump_unknown_function(workdir, capsys):
    app = workdir / "app.bc"
    exe = workdir / "app.belf"
    main(["build", str(app), "-o", str(exe)])
    assert main(["dump", str(exe), "-f", "nope"]) == 1


def test_cli_bolt_without_profile(workdir, capsys):
    app = workdir / "app.bc"
    exe = workdir / "app.belf"
    bolted = workdir / "app.noprof.belf"
    main(["build", str(app), "-o", str(exe)])
    assert main(["bolt", str(exe), "-o", str(bolted)]) == 0
    assert main(["run", str(bolted)]) == 0


def test_cli_objdump(workdir, capsys):
    app = workdir / "app.bc"
    exe = workdir / "app.belf"
    main(["build", str(app), "-o", str(exe)])
    capsys.readouterr()
    assert main(["objdump", str(exe)]) == 0
    out = capsys.readouterr().out
    assert "Disassembly of section .text:" in out
    assert "<main>:" in out
    assert "retq" in out
