"""Run the full Table 1 pipeline pass by pass with CFG validation after
every pass, on a feature-rich workload.  Any structural corruption a
pass introduces is pinned to that pass."""

import pytest

from repro.core import BinaryContext, BoltOptions
from repro.core.cfg_builder import build_all_functions
from repro.core.discovery import discover_functions
from repro.core.passes.base import build_pipeline
from repro.core.profile_attach import attach_profile
from repro.core.validate import ValidationError, validate_context, validate_function
from repro.core.binary_function import BinaryBasicBlock, BinaryFunction
from repro.harness import build_workload, sample_profile
from repro.isa import Instruction, Op
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def prepared_context():
    workload = make_workload("mini")
    built = build_workload(workload)
    profile, _ = sample_profile(built)
    context = BinaryContext(built.exe, BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    attach_profile(context, profile)
    return context


def test_cfg_valid_after_construction(prepared_context):
    validate_context(prepared_context)


def test_every_pass_preserves_invariants(prepared_context):
    manager = build_pipeline(prepared_context.options)
    for pass_ in manager.passes:
        pass_.run(prepared_context)
        try:
            validate_context(prepared_context)
        except ValidationError as exc:
            pytest.fail(f"pass {pass_.name} broke CFG invariants: {exc}")


def test_validator_detects_missing_successor():
    func = BinaryFunction("f", 0x1000, 16)
    block = func.add_block(BinaryBasicBlock(".LBB0"))
    block.insns = [Instruction(Op.RET)]
    block.successors = [".nope"]
    with pytest.raises(ValidationError):
        validate_function(func)


def test_validator_detects_mid_block_terminator():
    func = BinaryFunction("f", 0x1000, 16)
    block = func.add_block(BinaryBasicBlock(".LBB0"))
    block.insns = [Instruction(Op.RET), Instruction(Op.NOP)]
    with pytest.raises(ValidationError):
        validate_function(func)


def test_validator_detects_bad_fallthrough():
    func = BinaryFunction("f", 0x1000, 16)
    a = func.add_block(BinaryBasicBlock(".LBB0"))
    func.add_block(BinaryBasicBlock(".Ltmp0"))
    a.fallthrough_label = ".Ltmp0"   # not registered as successor
    a.insns = [Instruction(Op.NOP)]
    with pytest.raises(ValidationError):
        validate_function(func)


def test_validator_ignores_non_simple():
    func = BinaryFunction("f", 0x1000, 16)
    func.mark_non_simple("test")
    block = func.add_block(BinaryBasicBlock(".LBB0"))
    block.successors = [".whatever"]
    validate_function(func)  # must not raise
