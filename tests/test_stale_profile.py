"""Stale-profile detection and fuzzy matching.

A profile collected on build A and applied to a *different* build B
(the data-center reality: binaries redeploy faster than profiles
refresh) must never crash the rewrite — it is detected via the
build-id stamp, recovered by fuzzy matching, and reported with a
match-quality percentage.  The resulting binary must still be correct
and must not regress the simulated cycle count of the unoptimized
build.
"""

import pytest

from repro.core import BoltOptions, optimize_binary
from repro.harness import build_workload, measure, run_bolt, sample_profile
from repro.profiling import SamplingConfig, parse_fdata, write_fdata
from repro.uarch import run_binary
from repro.workloads import WorkloadSpec, generate_workload

MAX_INSNS = 20_000_000


def _spec(**overrides):
    base = dict(seed=11, modules=3, workers_per_module=4,
                leaves_per_module=3, iterations=80,
                switch_funcs_per_module=1, cold_modulus=13)
    base.update(overrides)
    return WorkloadSpec("stalerig", **base)


@pytest.fixture(scope="module")
def builds():
    """Variant A (profiled), a mild rebuild (same structure, changed
    constants — the re-release case), and a far rebuild (different
    bodies/sizes/offsets — months of drift)."""
    wl_a = generate_workload(_spec())
    wl_mild = generate_workload(_spec(iterations=90))
    wl_far = generate_workload(_spec(seed=12, iterations=90,
                                     worker_body_scale=1.4))
    built_a = build_workload(wl_a)
    built_mild = build_workload(wl_mild)
    built_far = build_workload(wl_far)
    profile_a, _ = sample_profile(built_a, sampling=SamplingConfig(period=97),
                                  max_instructions=MAX_INSNS)
    return {"a": built_a, "mild": built_mild, "far": built_far,
            "profile_a": profile_a, "workload_mild": wl_mild,
            "workload_far": wl_far}


def test_fresh_profile_not_flagged(builds):
    profile_far, _ = sample_profile(builds["far"],
                                    sampling=SamplingConfig(period=97),
                                    max_instructions=MAX_INSNS)
    result = run_bolt(builds["far"], profile_far)
    assert not result.context.stale_profile


def test_stale_profile_detected_and_recovered(builds):
    result = run_bolt(builds["mild"], builds["profile_a"])

    # Detection is definitive: both builds are stamped and hashes differ.
    assert result.context.stale_profile
    quality = result.context.profile_quality
    assert quality is not None
    assert 0.0 <= quality <= 1.0
    # A mild rebuild keeps most branch sites where they were: the bulk
    # of the profile survives matching.
    assert quality > 0.5

    # The report surfaces both the detection and the quality figure.
    summary = result.summary()
    assert "stale profile" in summary
    assert "quality" in summary
    assert any("stale profile detected" in d.message
               for d in result.diagnostics.warnings)

    # The rewritten binary is still correct.
    base = measure(builds["mild"], max_instructions=MAX_INSNS)
    cpu = run_binary(result.binary, inputs=builds["workload_mild"].inputs,
                     max_instructions=MAX_INSNS)
    assert cpu.output == base.output
    assert cpu.exit_code == base.exit_code


@pytest.mark.parametrize("variant", ["mild", "far"])
def test_stale_profile_does_not_regress_cycles(builds, variant):
    """A stale profile must help (or at worst be neutral) relative to
    the unoptimized build — never actively hurt, even when the rebuild
    drifted so far that few records still match."""
    built = builds[variant]
    workload = builds[f"workload_{variant}"]
    base = measure(built, max_instructions=MAX_INSNS)
    result = run_bolt(built, builds["profile_a"])
    assert result.context.stale_profile
    assert result.context.profile_quality is not None
    bolted = run_binary(result.binary, inputs=workload.inputs,
                        max_instructions=MAX_INSNS)
    assert bolted.output == base.output
    # 2% head-room for layout noise.
    assert bolted.counters.cycles <= base.counters.cycles * 1.02


def test_min_quality_threshold_strips_profile(builds):
    options = BoltOptions(stale_min_quality=1.01)  # unreachable bar
    result = optimize_binary(builds["far"].exe, builds["profile_a"], options)
    assert result.context.stale_profile
    assert any("profile ignored" in d.message
               for d in result.diagnostics.warnings)
    # Still produces a correct binary (layout-only, no profile guidance).
    base = measure(builds["far"], max_instructions=MAX_INSNS)
    cpu = run_binary(result.binary, inputs=builds["workload_far"].inputs,
                     max_instructions=MAX_INSNS)
    assert cpu.output == base.output


def test_stale_matching_can_be_disabled(builds):
    options = BoltOptions(stale_matching=False)
    result = optimize_binary(builds["far"].exe, builds["profile_a"], options)
    assert result.context.stale_profile
    base = measure(builds["far"], max_instructions=MAX_INSNS)
    cpu = run_binary(result.binary, inputs=builds["workload_far"].inputs,
                     max_instructions=MAX_INSNS)
    assert cpu.output == base.output


def test_build_id_round_trips_through_fdata(builds, tmp_path):
    profile = builds["profile_a"]
    assert profile.build_id == builds["a"].exe.content_hash()
    path = tmp_path / "a.fdata"
    path.write_text(write_fdata(profile))
    parsed = parse_fdata(path.read_text())
    assert parsed.build_id == profile.build_id


def test_content_hash_tracks_text_changes(builds):
    a, mild, far = (builds["a"].exe, builds["mild"].exe, builds["far"].exe)
    assert a.content_hash() == a.content_hash()
    assert a.content_hash() != mild.content_hash()
    assert a.content_hash() != far.content_hash()


def test_unstamped_stale_profile_heuristic(builds):
    """Without a build-id the structural heuristic (out-of-range /
    mid-instruction endpoints) still catches a cross-build profile."""
    profile = builds["profile_a"]
    profile_unstamped = type(profile)(event=profile.event, lbr=profile.lbr)
    profile_unstamped.branches = {k: list(v)
                                  for k, v in profile.branches.items()}
    profile_unstamped.ip_samples = dict(profile.ip_samples)
    result = optimize_binary(builds["far"].exe, profile_unstamped,
                             BoltOptions())
    # Heuristic detection is best-effort: it must never crash, and if
    # it does fire the quality figure must be reported.
    if result.context.stale_profile:
        assert result.context.profile_quality is not None
    base = measure(builds["far"], max_instructions=MAX_INSNS)
    cpu = run_binary(result.binary, inputs=builds["workload_far"].inputs,
                     max_instructions=MAX_INSNS)
    assert cpu.output == base.output
