"""Direct CPU semantics tests: hand-assembled instruction sequences for
every opcode, including ones the compiler never emits (TEST, LEA, ...).

Each case builds a raw .text section by encoding instructions, wraps it
in an executable Binary, runs it, and checks the OUT stream / exit code.
"""

import pytest

from repro.belf import Binary, Section, SectionFlag, Symbol, SymbolType
from repro.isa import (
    CondCode,
    Instruction,
    Op,
    RAX,
    RBX,
    RCX,
    RDX,
    RSI,
    RDI,
    R8,
    encode,
    instruction_size,
)
from repro.uarch import run_binary, MachineFault

BASE = 0x10000


def assemble(insns):
    """Resolve label targets and encode a flat instruction list."""
    # First pass: sizes and label offsets.
    offsets = {}
    pos = 0
    for item in insns:
        if isinstance(item, str):
            offsets[item] = pos
        else:
            pos += instruction_size(item)
    blob = b""
    pos = 0
    for item in insns:
        if isinstance(item, str):
            continue
        if item.label is not None:
            item.target = BASE + offsets[item.label]
            item.label = None
        blob += encode(item, BASE + pos)
        pos += instruction_size(item)
    return blob


def run_asm(insns, max_instructions=100_000):
    code = assemble(list(insns))
    binary = Binary(kind="exec", name="asm")
    binary.add_section(Section(
        ".text", flags=SectionFlag.ALLOC | SectionFlag.EXEC, addr=BASE,
        data=code))
    binary.add_symbol(Symbol("main", value=BASE, size=len(code),
                             type=SymbolType.FUNC, section=".text"))
    binary.entry = BASE
    return run_binary(binary, max_instructions=max_instructions)


def I(op, *regs, **kw):
    return Instruction(op, regs, **kw)


def test_mov_and_out():
    cpu = run_asm([
        I(Op.MOV_RI32, RAX, imm=-7),
        I(Op.OUT, RAX),
        I(Op.MOV_RI64, RBX, imm=0x1234_5678_9ABC),
        I(Op.MOV_RR, RAX, RBX),
        I(Op.OUT, RAX),
        I(Op.RET),
    ])
    assert cpu.output == [-7, 0x1234_5678_9ABC]


def test_alu_semantics():
    cpu = run_asm([
        I(Op.MOV_RI32, RAX, imm=100),
        I(Op.MOV_RI32, RBX, imm=7),
        I(Op.ADD_RR, RAX, RBX), I(Op.OUT, RAX),      # 107
        I(Op.SUB_RI, RAX, imm=200), I(Op.OUT, RAX),  # -93
        I(Op.IMUL_RR, RAX, RBX), I(Op.OUT, RAX),     # -651
        I(Op.NEG, RAX), I(Op.OUT, RAX),              # 651
        I(Op.AND_RI, RAX, imm=0xFF), I(Op.OUT, RAX),  # 651 & 255 = 139
        I(Op.OR_RI, RAX, imm=0x100), I(Op.OUT, RAX),  # 395
        I(Op.XOR_RR, RAX, RBX), I(Op.OUT, RAX),       # 395 ^ 7 = 396
        I(Op.RET),
    ])
    assert cpu.output == [107, -93, -651, 651, 139, 395, 396]


def test_division_semantics():
    cpu = run_asm([
        I(Op.MOV_RI32, RAX, imm=-7),
        I(Op.MOV_RI32, RBX, imm=2),
        I(Op.MOV_RR, RCX, RAX),
        I(Op.IDIV_RR, RAX, RBX), I(Op.OUT, RAX),   # -3 (truncating)
        I(Op.IMOD_RR, RCX, RBX), I(Op.OUT, RCX),   # -1
        I(Op.RET),
    ])
    assert cpu.output == [-3, -1]


def test_division_by_zero():
    with pytest.raises(MachineFault):
        run_asm([
            I(Op.MOV_RI32, RAX, imm=1),
            I(Op.MOV_RI32, RBX, imm=0),
            I(Op.IDIV_RR, RAX, RBX),
            I(Op.RET),
        ])


def test_shift_semantics():
    cpu = run_asm([
        I(Op.MOV_RI32, RAX, imm=-16),
        I(Op.MOV_RR, RBX, RAX),
        I(Op.MOV_RR, RCX, RAX),
        I(Op.SHL_RI, RAX, imm=2), I(Op.OUT, RAX),    # -64
        I(Op.SAR_RI, RBX, imm=2), I(Op.OUT, RBX),    # -4
        I(Op.SHR_RI, RCX, imm=60), I(Op.OUT, RCX),   # logical: 15
        I(Op.MOV_RI32, RDX, imm=3),
        I(Op.MOV_RI32, RSI, imm=1),
        I(Op.SHL_RR, RSI, RDX), I(Op.OUT, RSI),      # 8
        I(Op.RET),
    ])
    assert cpu.output == [-64, -4, 15, 8]


def test_lea_semantics():
    cpu = run_asm([
        I(Op.MOV_RI32, RBX, imm=1000),
        I(Op.LEA, RAX, RBX, disp=-48),
        I(Op.OUT, RAX),
        I(Op.RET),
    ])
    assert cpu.output == [952]


def test_test_and_setcc():
    cpu = run_asm([
        I(Op.MOV_RI32, RAX, imm=0b1100),
        I(Op.TEST_RI, RAX, imm=0b0011),              # 0 -> EQ true
        I(Op.SETCC, RBX, imm=int(CondCode.EQ)), I(Op.OUT, RBX),   # 1
        I(Op.TEST_RR, RAX, RAX),                     # nonzero -> NE true
        I(Op.SETCC, RBX, imm=int(CondCode.NE)), I(Op.OUT, RBX),   # 1
        I(Op.RET),
    ])
    assert cpu.output == [1, 1]


def test_setcc_all_condition_codes():
    insns = [
        I(Op.MOV_RI32, RAX, imm=-5),
        I(Op.MOV_RI32, RBX, imm=3),
        I(Op.CMP_RR, RAX, RBX),
    ]
    # signed: -5 < 3; unsigned: huge > 3.
    expected = {
        CondCode.EQ: 0, CondCode.NE: 1, CondCode.LT: 1, CondCode.LE: 1,
        CondCode.GT: 0, CondCode.GE: 0, CondCode.ULT: 0, CondCode.ULE: 0,
        CondCode.UGT: 1, CondCode.UGE: 1,
    }
    outs = []
    for cc, value in expected.items():
        insns += [I(Op.CMP_RR, RAX, RBX),
                  I(Op.SETCC, RCX, imm=int(cc)), I(Op.OUT, RCX)]
        outs.append(value)
    insns.append(I(Op.RET))
    assert run_asm(insns).output == outs


def test_stack_ops():
    cpu = run_asm([
        I(Op.MOV_RI32, RAX, imm=111),
        I(Op.MOV_RI32, RBX, imm=222),
        I(Op.PUSH, RAX),
        I(Op.PUSH, RBX),
        I(Op.POP, RCX), I(Op.OUT, RCX),   # 222 (LIFO)
        I(Op.POP, RDX), I(Op.OUT, RDX),   # 111
        I(Op.RET),
    ])
    assert cpu.output == [222, 111]


def test_branches_and_labels():
    cpu = run_asm([
        I(Op.MOV_RI32, RAX, imm=0),
        I(Op.MOV_RI32, RCX, imm=5),
        "loop",
        I(Op.ADD_RI, RAX, imm=10),
        I(Op.SUB_RI, RCX, imm=1),
        I(Op.CMP_RI, RCX, imm=0),
        I(Op.JCC_LONG, cc=CondCode.GT, label="loop"),
        I(Op.OUT, RAX),
        I(Op.JMP_NEAR, label="end"),
        I(Op.MOV_RI32, RAX, imm=999),   # skipped
        I(Op.OUT, RAX),
        "end",
        I(Op.RET),
    ])
    assert cpu.output == [50]
    assert cpu.counters.cond_branches == 5
    assert cpu.counters.uncond_branches == 1


def test_short_branch_forms():
    cpu = run_asm([
        I(Op.MOV_RI32, RAX, imm=1),
        I(Op.CMP_RI, RAX, imm=1),
        I(Op.JCC_SHORT, cc=CondCode.EQ, label="takeit"),
        I(Op.OUT, RAX),   # skipped
        "takeit",
        I(Op.JMP_SHORT, label="done"),
        I(Op.MOV_RI32, RAX, imm=0),  # skipped
        "done",
        I(Op.OUT, RAX),
        I(Op.RET),
    ])
    assert cpu.output == [1]


def test_nops_execute():
    cpu = run_asm([
        I(Op.NOP),
        I(Op.NOPN, imm=9),
        I(Op.MOV_RI32, RAX, imm=4),
        I(Op.OUT, RAX),
        I(Op.REPZ_RET),
    ])
    assert cpu.output == [4]
    assert cpu.counters.instructions == 5


def test_memory_ops_abs_and_indexed():
    data_addr = 0x20000
    cpu = None
    insns = [
        # store_abs / load_abs
        I(Op.MOV_RI32, RAX, imm=77),
        I(Op.STORE_ABS, RAX, addr=data_addr),
        I(Op.LOAD_ABS, RBX, addr=data_addr),
        I(Op.OUT, RBX),
        # indexed: mem[base + idx*8]
        I(Op.MOV_RI32, RCX, imm=data_addr),
        I(Op.MOV_RI32, RDX, imm=3),
        I(Op.MOV_RI32, RSI, imm=55),
        I(Op.STOREIDX, RCX, RDX, RSI, disp=0),
        I(Op.LOADIDX, RDI, RCX, RDX, disp=0),
        I(Op.OUT, RDI),
        # reg+disp forms
        I(Op.STORE, RCX, RSI, disp=64),
        I(Op.LOAD, R8, RCX, disp=64),
        I(Op.OUT, R8),
        I(Op.RET),
    ]
    cpu = run_asm(insns)
    assert cpu.output == [77, 55, 55]
    assert cpu.counters.mem_reads >= 3
    assert cpu.counters.mem_writes >= 3


def test_indirect_jump_and_call():
    cpu = run_asm([
        I(Op.MOV_RI32, RAX, imm=0),
        I(Op.MOV_RI64, RBX, imm=0),   # patched below via label math
        "setup",
        # jump over the next instruction via register
        I(Op.MOV_RI32, RAX, imm=1),
        I(Op.OUT, RAX),
        I(Op.RET),
    ])
    assert cpu.output == [1]


def test_trap_faults():
    with pytest.raises(MachineFault):
        run_asm([I(Op.TRAP)])


def test_halt_stops():
    cpu = run_asm([
        I(Op.MOV_RI32, RAX, imm=9),
        I(Op.HALT),
        I(Op.OUT, RAX),   # never reached
    ])
    assert cpu.output == []
    assert cpu.exit_code == 9


def test_wraparound_arithmetic():
    cpu = run_asm([
        I(Op.MOV_RI64, RAX, imm=(1 << 63) - 1),
        I(Op.ADD_RI, RAX, imm=1),
        I(Op.OUT, RAX),
        I(Op.RET),
    ])
    assert cpu.output == [-(1 << 63)]
