"""Dataflow framework tests: use/def tables, liveness, dominators,
stack-slot analysis."""

from hypothesis import given, strategies as st

from repro.compiler import BuildOptions, build_executable
from repro.core import BinaryContext, BoltOptions
from repro.core.binary_function import BinaryBasicBlock, BinaryFunction
from repro.core.cfg_builder import build_all_functions
from repro.core.discovery import discover_functions
from repro.core.dataflow import (
    FLAGS,
    dominators,
    insn_uses_defs,
    liveness,
    reachable_from,
    stack_slot_accesses,
)
from repro.ir import InlinePolicy
from repro.isa import Instruction, Op, RAX, RBP, RBX, RCX, RSP


def test_uses_defs_table_consistency():
    cases = [
        (Instruction(Op.MOV_RR, (RAX, RBX)), {RBX}, {RAX}),
        (Instruction(Op.ADD_RR, (RAX, RBX)), {RAX, RBX}, {RAX}),
        (Instruction(Op.ADD_RI, (RAX,), imm=1), {RAX}, {RAX}),
        (Instruction(Op.LOAD, (RAX, RBP), disp=-8), {RBP}, {RAX}),
        (Instruction(Op.STORE, (RBP, RBX), disp=-8), {RBP, RBX}, set()),
        (Instruction(Op.CMP_RR, (RAX, RBX)), {RAX, RBX}, {FLAGS}),
        (Instruction(Op.SETCC, (RCX,), imm=0), {FLAGS}, {RCX}),
        (Instruction(Op.PUSH, (RBX,)), {RBX, RSP}, {RSP}),
        (Instruction(Op.POP, (RBX,)), {RSP}, {RBX, RSP}),
        (Instruction(Op.LOADIDX, (RAX, RBX, RCX)), {RBX, RCX}, {RAX}),
        (Instruction(Op.JCC_SHORT, cc=0, target=0), {FLAGS}, set()),
        (Instruction(Op.JMP_REG, (RAX,)), {RAX}, set()),
        (Instruction(Op.RET), {RAX, RSP}, {RSP}),
    ]
    for insn, uses, defs in cases:
        got_uses, got_defs = insn_uses_defs(insn)
        assert got_uses == uses, insn
        assert got_defs == defs, insn


def test_call_clobbers_caller_saved():
    from repro.isa import SymRef
    from repro.isa.registers import CALLER_SAVED

    uses, defs = insn_uses_defs(Instruction(Op.CALL, sym=SymRef("f", "branch")))
    assert set(CALLER_SAVED) <= defs
    assert RBX not in defs  # callee-saved survive


def _func_from_source(text, name="f"):
    exe, _ = build_executable(
        [("m", text)], BuildOptions(inline=InlinePolicy(max_size=0)),
        emit_relocs=True)
    context = BinaryContext(exe, BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    return context.functions[name]


def test_liveness_param_live_into_use():
    func = _func_from_source("""
func f(a) {
  var x = a + 1;
  if (x > 2) { return x; }
  return a;
}
func main() { return f(1); }
""")
    live_in, live_out = liveness(func)
    # rdi (the argument register) is live into the entry block.
    assert 7 in live_in[func.entry_label]


def test_liveness_callee_saved_live_at_exit():
    func = _func_from_source("""
func f(a) {
  var s = 0;
  var i = 0;
  while (i < a) { s = s + i; i = i + 1; }
  return s;
}
func main() { return f(3); }
""")
    live_in, live_out = liveness(func)
    for label, block in func.blocks.items():
        term = block.terminator()
        if term is not None and term.is_return:
            assert RBX in live_out[label]
            assert RAX in live_out[label]


def test_dominators_diamond():
    func = BinaryFunction("d", 0, 10)
    for label in ("e", "a", "b", "j"):
        func.add_block(BinaryBasicBlock(label))
    func.blocks["e"].set_edge("a")
    func.blocks["e"].set_edge("b")
    func.blocks["a"].set_edge("j")
    func.blocks["b"].set_edge("j")
    dom = dominators(func)
    assert dom["j"] == {"e", "j"}
    assert dom["a"] == {"e", "a"}


def test_dominators_ignore_unreachable():
    func = BinaryFunction("d", 0, 10)
    for label in ("e", "a", "dead"):
        func.add_block(BinaryBasicBlock(label))
    func.blocks["e"].set_edge("a")
    func.blocks["dead"].set_edge("a")  # unreachable predecessor
    dom = dominators(func)
    assert "e" in dom["a"]  # not polluted by the unreachable block


def test_reachability_includes_landing_pads():
    func = BinaryFunction("d", 0, 10)
    for label in ("e", "lp"):
        func.add_block(BinaryBasicBlock(label))
    func.blocks["e"].landing_pads.append("lp")
    assert reachable_from(func, "e") == {"e", "lp"}


def test_stack_slot_analysis():
    func = BinaryFunction("d", 0, 10)
    block = func.add_block(BinaryBasicBlock("e"))
    block.insns = [
        Instruction(Op.STORE, (RBP, RBX), disp=-8),
        Instruction(Op.LOAD, (RAX, RBP), disp=-16),
        Instruction(Op.STORE, (RBP, RCX), disp=-24),
    ]
    loads, stores, escapes = stack_slot_accesses(func)
    assert stores == {-8, -24}
    assert loads == {-16}
    assert not escapes


def test_stack_slot_escape_detection():
    func = BinaryFunction("d", 0, 10)
    block = func.add_block(BinaryBasicBlock("e"))
    block.insns = [Instruction(Op.MOV_RR, (RCX, RBP))]
    _, _, escapes = stack_slot_accesses(func)
    assert escapes
    block.insns = [Instruction(Op.LEA, (RCX, RBP), disp=-8)]
    _, _, escapes = stack_slot_accesses(func)
    assert escapes
    # The epilogue's mov rsp, rbp is not an escape.
    block.insns = [Instruction(Op.MOV_RR, (RSP, RBP))]
    _, _, escapes = stack_slot_accesses(func)
    assert not escapes


@given(ops=st.lists(st.sampled_from([
    Op.MOV_RR, Op.ADD_RR, Op.CMP_RR, Op.PUSH, Op.POP, Op.NEG,
]), min_size=1, max_size=10))
def test_prop_liveness_converges(ops):
    """Liveness terminates and produces consistent in/out sets."""
    func = BinaryFunction("p", 0, 10)
    block = func.add_block(BinaryBasicBlock("e"))
    for op in ops:
        nregs = len(__import__("repro.isa.opcodes", fromlist=["OPERAND_FORMATS"])
                    .OPERAND_FORMATS[op])
        regs = tuple(range(min(2, max(1, nregs))))[:2]
        if op in (Op.PUSH, Op.POP, Op.NEG):
            block.insns.append(Instruction(op, (1,)))
        else:
            block.insns.append(Instruction(op, (1, 2)))
    live_in, live_out = liveness(func)
    assert set(live_in) == {"e"}


def test_dominators_irreducible_loop():
    # e -> a, e -> b, a <-> b: neither cycle node dominates the other.
    func = BinaryFunction("d", 0, 10)
    for label in ("e", "a", "b"):
        func.add_block(BinaryBasicBlock(label))
    func.blocks["e"].set_edge("a")
    func.blocks["e"].set_edge("b")
    func.blocks["a"].set_edge("b")
    func.blocks["b"].set_edge("a")
    dom = dominators(func)
    assert dom["a"] == {"e", "a"}
    assert dom["b"] == {"e", "b"}


def test_dominators_single_block():
    func = BinaryFunction("d", 0, 10)
    func.add_block(BinaryBasicBlock("e"))
    assert dominators(func) == {"e": {"e"}}


def test_liveness_irreducible_loop():
    # The use of rbx in block b must be live around the whole cycle.
    func = BinaryFunction("d", 0, 10)
    for label in ("e", "a", "b"):
        func.add_block(BinaryBasicBlock(label))
    func.blocks["e"].set_edge("a")
    func.blocks["e"].set_edge("b")
    func.blocks["a"].set_edge("b")
    func.blocks["b"].set_edge("a")
    func.blocks["b"].insns = [Instruction(Op.MOV_RR, (RCX, RBX))]
    live_in, live_out = liveness(func)
    assert RBX in live_in["e"]
    assert RBX in live_in["a"] and RBX in live_out["a"]


def test_liveness_single_block():
    func = BinaryFunction("d", 0, 10)
    block = func.add_block(BinaryBasicBlock("e"))
    block.insns = [Instruction(Op.MOV_RR, (RAX, RBX)),
                   Instruction(Op.RET)]
    live_in, live_out = liveness(func)
    assert RBX in live_in["e"]
    assert RAX in live_out["e"]  # the return value is live at exit


def test_unmodeled_opcode_raises_diagnostic():
    import pytest

    from repro.core.dataflow import UnmodeledOpcodeError

    insn = Instruction(Op.NOP)
    insn.op = "not-an-opcode"
    with pytest.raises(UnmodeledOpcodeError) as exc:
        insn_uses_defs(insn)
    assert "no use/def model" in str(exc.value)
    assert "insn_uses_defs" in str(exc.value)


def test_every_opcode_is_modeled():
    """The full Op enum must have a use/def model (or a deliberate
    no-effect entry) so no analysis can hit UnmodeledOpcodeError on
    real code."""
    from repro.isa.opcodes import OPERAND_FORMATS

    for op in Op:
        if op == Op.PREFIX_0F:
            continue  # encoding artifact, never carried by decoded insns
        nregs = len(OPERAND_FORMATS.get(op, ""))
        insn = Instruction(Op.NOP)
        insn.op = op
        insn.regs = tuple(range(nregs))
        insn_uses_defs(insn)  # must not raise
