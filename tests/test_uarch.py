"""Microarchitecture model tests: caches, TLB, predictors, LBR, CPU."""

import pytest
from hypothesis import given, strategies as st

from repro.belf import STACK_TOP
from repro.compiler import build_executable, BuildOptions
from repro.uarch import (
    Cache,
    TLB,
    BranchPredictor,
    Counters,
    LBR,
    Machine,
    MachineFault,
    UarchConfig,
    run_binary,
)
from repro.uarch.machine import Memory, EXIT_MAGIC


# -- caches ---------------------------------------------------------------


def test_cache_hit_miss():
    cache = Cache(size=1024, assoc=2, line_size=64)
    assert not cache.access(0x0)       # cold miss
    assert cache.access(0x10)          # same line
    assert cache.access(0x3F)
    assert not cache.access(0x40)      # next line
    assert cache.accesses == 4 and cache.misses == 2


def test_cache_lru_eviction():
    # 2-way, 64B lines, 1024B total -> 8 sets; addresses 0, 512, 1024
    # map to set 0.
    cache = Cache(size=1024, assoc=2, line_size=64)
    cache.access(0)
    cache.access(512)
    cache.access(0)           # refresh 0 -> LRU is 512
    cache.access(1024)        # evicts 512
    assert cache.access(0)
    assert not cache.access(512)


def test_cache_validation():
    with pytest.raises(ValueError):
        Cache(size=1000, assoc=3, line_size=64)
    with pytest.raises(ValueError):
        Cache(size=1024, assoc=2, line_size=48)


def test_tlb_lru():
    tlb = TLB(entries=2, page_size=4096)
    assert not tlb.access(0x0000)
    assert not tlb.access(0x1000)
    assert tlb.access(0x0800)          # page 0 again
    assert not tlb.access(0x2000)      # evicts page 1 (LRU)
    assert not tlb.access(0x1000)
    assert tlb.access(0x2000)


def test_tlb_repeat_fast_path():
    tlb = TLB(entries=4, page_size=4096)
    tlb.access(0x1000)
    for _ in range(10):
        assert tlb.access(0x1234)
    assert tlb.misses == 1


@given(addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
def test_prop_cache_miss_bound(addrs):
    """Misses never exceed accesses; re-access of a just-hit line hits."""
    cache = Cache(size=2048, assoc=4, line_size=64)
    for addr in addrs:
        cache.access(addr)
        assert cache.access(addr)  # immediate re-access must hit
    assert cache.misses <= cache.accesses


# -- branch prediction -----------------------------------------------------------


def test_predictor_learns_loop():
    bp = BranchPredictor()
    correct = 0
    for _ in range(100):
        if bp.update_cond(0x100, True):
            correct += 1
    assert correct >= 95


def test_predictor_alternating_with_history():
    bp = BranchPredictor()
    results = [bp.update_cond(0x200, (i % 2 == 0)) for i in range(200)]
    # gshare history should learn the alternating pattern eventually
    assert sum(results[100:]) >= 90


def test_btb_indirect():
    bp = BranchPredictor()
    assert not bp.predict_indirect(0x10, 0x1000)  # cold
    assert bp.predict_indirect(0x10, 0x1000)
    assert not bp.predict_indirect(0x10, 0x2000)  # target changed
    assert bp.predict_indirect(0x10, 0x2000)


def test_ras():
    bp = BranchPredictor(ras_depth=2)
    bp.push_return(0x100)
    bp.push_return(0x200)
    assert bp.predict_return(0x200)
    assert bp.predict_return(0x100)
    assert not bp.predict_return(0x300)  # empty
    bp.push_return(0x1)
    bp.push_return(0x2)
    bp.push_return(0x3)  # overflows: 0x1 dropped
    bp.predict_return(0x3)
    bp.predict_return(0x2)
    assert not bp.predict_return(0x1)


# -- LBR ---------------------------------------------------------------------------


def test_lbr_ring():
    lbr = LBR(depth=4)
    for i in range(6):
        lbr.record(i, i + 100, False)
    snap = lbr.snapshot()
    assert len(snap) == 4
    assert snap == [(2, 102, False), (3, 103, False), (4, 104, False),
                    (5, 105, False)]


def test_lbr_partial():
    lbr = LBR(depth=8)
    lbr.record(1, 2, True)
    assert lbr.snapshot() == [(1, 2, True)]
    lbr.clear()
    assert lbr.snapshot() == []


# -- memory ------------------------------------------------------------------------


def test_memory_rw():
    mem = Memory()
    mem.write_word(0x1000, -5)
    assert mem.read_word(0x1000) == -5
    mem.write_word(0xFFF, 0x0102030405060708)  # page-straddling
    assert mem.read_word(0xFFF) == 0x0102030405060708
    assert mem.read_word(0x500000) == 0  # untouched = zero


def test_memory_bytes_roundtrip():
    mem = Memory()
    blob = bytes(range(256)) * 20
    mem.write_bytes(0xFF0, blob)
    assert mem.read_bytes(0xFF0, len(blob)) == blob


# -- CPU semantics ------------------------------------------------------------------


def run_src(text, **kwargs):
    exe, _ = build_executable([("t", text)])
    return run_binary(exe, **kwargs)


def test_exit_code():
    cpu = run_src("func main() { return 42; }")
    assert cpu.exit_code == 42
    assert cpu.halted


def test_counters_basics():
    cpu = run_src("""
func main() {
  var i = 0;
  while (i < 10) { i = i + 1; }
  return 0;
}
""")
    c = cpu.counters
    assert c.instructions > 0
    assert c.cycles >= c.instructions
    assert c.cond_branches >= 10
    assert c.taken_branches > 0
    assert c.l1i_accesses >= c.instructions


def test_execution_limit():
    from repro.uarch import ExecutionLimitExceeded

    with pytest.raises(ExecutionLimitExceeded):
        run_src("func main() { while (1) { } return 0; }",
                max_instructions=1000)


def test_fetch_heat():
    cpu = run_src("func main() { return 1; }", fetch_heat=True)
    assert cpu.fetch_heat
    assert all(v > 0 for v in cpu.fetch_heat.values())


def test_input_poking():
    exe, _ = build_executable([("t", """
array input[4];
func main() { out input[0] + input[3]; return 0; }
""")])
    cpu = run_binary(exe, inputs={"t::input": [10, 0, 0, 32]})
    assert cpu.output == [42]


def test_jump_to_nonexec_faults():
    exe, _ = build_executable([("t", """
var fp = 12345;
func main() {
  var f = fp;
  return f();
}
""")])
    with pytest.raises(MachineFault):
        run_binary(exe)


def test_branch_predictor_effect_on_cycles():
    """A predictable branch pattern must cost fewer cycles than an
    unpredictable one with identical instruction counts."""
    predictable = run_src("""
array noise[16] = {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
func main() {
  var i = 0;
  var acc = 0;
  while (i < 500) {
    if (noise[i % 16] > 0) { acc = acc + 1; } else { acc = acc - 1; }
    i = i + 1;
  }
  out acc;
  return 0;
}
""")
    chaotic = run_src("""
array noise[16] = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 0};
func main() {
  var i = 0;
  var acc = 0;
  while (i < 500) {
    if (noise[i % 16] > 0) { acc = acc + 1; } else { acc = acc - 1; }
    i = i + 1;
  }
  out acc;
  return 0;
}
""")
    assert chaotic.counters.branch_misses > predictable.counters.branch_misses
    # Cycle difference should reflect the mispredictions.
    assert chaotic.counters.cycles > predictable.counters.cycles


def test_icache_effect_of_code_spread():
    """Touching many distinct functions costs more I-cache misses than
    looping over one."""
    many_funcs = "\n".join(
        f"func f{i}(x) {{ return x + {i}; }}" for i in range(64))
    spread = run_src(many_funcs + """
func main() {
  var i = 0;
  var acc = 0;
  while (i < 50) {
""" + "\n".join(f"    acc = acc + f{i}(i);" for i in range(64)) + """
    i = i + 1;
  }
  out acc;
  return 0;
}
""")
    tight = run_src("""
func f0(x) { return x + 1; }
func main() {
  var i = 0;
  var acc = 0;
  while (i < 3200) {
    acc = acc + f0(i);
    i = i + 1;
  }
  out acc;
  return 0;
}
""")
    spread_rate = spread.counters.l1i_misses / spread.counters.l1i_accesses
    tight_rate = tight.counters.l1i_misses / tight.counters.l1i_accesses
    assert spread_rate > tight_rate * 5


def test_counters_as_dict_and_rates():
    counters = Counters()
    counters.l1i_accesses = 100
    counters.l1i_misses = 10
    assert counters.as_dict()["l1i_misses"] == 10
    assert counters.miss_rates()["l1i"] == 0.1
    assert counters.miss_rates()["dtlb"] is None


def test_machine_function_at():
    exe, _ = build_executable([("t", "func main() { return helper(); }\n"
                                     "func helper() { return 7; }")])
    machine = Machine(exe)
    sym = exe.get_symbol("helper")
    assert machine.function_at(sym.value).name == "helper"
    assert machine.function_at(sym.value + sym.size - 1).name == "helper"
    assert machine.function_at(0x20) is None


def test_uarch_config_custom():
    cpu = run_src("func main() { return 0; }")
    big_config = UarchConfig(l1i_size=65536, llc_size=1 << 20)
    exe, _ = build_executable([("t", "func main() { return 0; }")])
    cpu2 = run_binary(exe, config=big_config)
    assert cpu2.exit_code == 0


def test_l2_level_reduces_cycles():
    """Enabling a private L2 reduces L1-miss cost and shows up in the
    counters."""
    src = """
func main() {
  var i = 0;
  var acc = 0;
""" + "\n".join(f"  acc = acc + f{k}(i);" for k in range(48)) + """
  while (i < 40) {
""" + "\n".join(f"    acc = acc + f{k}(i);" for k in range(48)) + """
    i = i + 1;
  }
  out acc;
  return 0;
}
""" + "\n".join(f"func f{k}(x) {{ return x + {k}; }}" for k in range(48))
    from repro.ir import InlinePolicy

    exe, _ = build_executable(
        [("t", src)],
        BuildOptions(inline=InlinePolicy(max_size=0, hot_max_size=0)))
    # The loop's working set exceeds a 1 KiB L1I but fits a 16 KiB L2.
    no_l2 = run_binary(exe, config=UarchConfig(l1i_size=1024))
    with_l2 = run_binary(exe, config=UarchConfig(l1i_size=1024,
                                                 l2_size=16384))
    assert with_l2.output == no_l2.output
    assert with_l2.counters.l2_accesses > 0
    assert with_l2.counters.l2_misses < with_l2.counters.l2_accesses * 0.5
    assert with_l2.counters.cycles < no_l2.counters.cycles
    assert no_l2.counters.l2_accesses == 0


def test_next_line_prefetcher_reduces_l1i_misses():
    src = """
func main() {
  var i = 0;
  var acc = 0;
  while (i < 30) {
""" + "\n".join(f"    acc = acc + {k} * i + (acc >> 1);" for k in range(120)) + """
    i = i + 1;
  }
  out acc;
  return 0;
}
"""
    exe, _ = build_executable([("t", src)], BuildOptions())
    plain = run_binary(exe, config=UarchConfig(l1i_size=2048))
    prefetch = run_binary(exe, config=UarchConfig(l1i_size=2048,
                                                  prefetch_next_line=True))
    assert prefetch.output == plain.output
    # Straight-line code: the next-line prefetcher should cut I-misses.
    assert prefetch.counters.l1i_misses < plain.counters.l1i_misses


def test_cache_install_no_stats():
    cache = Cache(size=1024, assoc=2, line_size=64)
    cache.install(0x40)
    assert cache.accesses == 0 and cache.misses == 0
    assert cache.access(0x40)  # prefetched line hits
