"""End-to-end fleet aggregation: N simulated hosts sample the same
service, merge-fdata aggregates the shards, and the merged profile
drives the rewrite (the paper's data-center flow, section 2).

Acceptance pin: merging K shards of the same workload yields a rewrite
whose dyno-stats match the single merged-profile baseline.
"""

import pytest

from repro.core import BoltOptions
from repro.core.dyno_stats import DynoStats
from repro.harness import (
    bolt_with_fleet_profile,
    build_workload,
    collect_fleet_shards,
    run_bolt,
)
from repro.profiling import (
    aggregate_shards,
    merge_profiles,
    parse_fdata,
    write_fdata,
)
from repro.workloads import make_workload

pytestmark = pytest.mark.aggregate

HOSTS = 3


@pytest.fixture(scope="module")
def mini_built():
    return build_workload(make_workload("mini"))


@pytest.fixture(scope="module")
def shards(mini_built):
    return collect_fleet_shards(mini_built, hosts=HOSTS)


def test_fleet_shards_are_distinct(shards):
    assert [name for name, _ in shards] == ["host00", "host01", "host02"]
    texts = [text for _, text in shards]
    assert len(set(texts)) == HOSTS  # different periods/input mixes
    for text in texts:
        profile = parse_fdata(text)
        assert profile.total_branch_count() > 0
        assert profile.build_id is not None  # stamped by the sampler


def test_aggregate_matches_hand_summed_counts(mini_built, shards):
    """The aggregate pipeline is plain integer summation: recompute the
    expected totals by hand, independent of the merge code."""
    expected = {}
    for _, text in shards:
        for key, (count, mispred) in parse_fdata(text).branches.items():
            prev = expected.get(key, (0, 0))
            expected[key] = (prev[0] + count, prev[1] + mispred)
    expected = {key: [count, mispred]
                for key, (count, mispred) in expected.items()
                if count > 0 or mispred > 0}

    aggregation = aggregate_shards(shards, binary=mini_built.exe)
    assert aggregation.profile.branches == expected
    report = aggregation.report()
    assert report["stale_shards"] == 0
    assert report["coverage"]["shard_count"] == HOSTS
    for shard in report["shards"]:
        assert shard["match"] is not None
        assert shard["match"]["quality"] == 1.0
        assert 0.0 <= shard["divergence"] <= 1.0


def test_fleet_dyno_stats_match_single_merged_baseline(mini_built, shards):
    """Acceptance: aggregate_shards(K shards) and a direct single-step
    merge of the same shards produce the same merged profile and,
    through the rewrite, identical dyno-stats."""
    aggregation = aggregate_shards(shards, binary=mini_built.exe)
    baseline = merge_profiles([parse_fdata(text) for _, text in shards])
    baseline.build_id = aggregation.profile.build_id
    assert write_fdata(aggregation.profile) == write_fdata(baseline)

    fleet_result = run_bolt(mini_built, aggregation.profile)
    base_result = run_bolt(mini_built, baseline)
    assert fleet_result.degraded is None
    for field in DynoStats.FIELDS:
        assert (getattr(fleet_result.dyno_after, field)
                == getattr(base_result.dyno_after, field)), field


def test_bolt_with_fleet_profile_end_to_end(mini_built):
    result, aggregation = bolt_with_fleet_profile(
        mini_built, hosts=HOSTS, threads=2,
        options=BoltOptions(validate_output="execute"))
    assert result.degraded is None
    assert result.binary is not None
    # The rewrite actually improved the profiled layout.
    delta = result.dyno_after.delta_vs(result.dyno_before)
    assert delta["taken_branches"] < 0
    # And the aggregation report is sane.
    report = aggregation.report()
    assert report["coverage"]["shard_count"] == HOSTS
    assert report["stale_shards"] == 0
    assert report["merged"]["branch_count"] > 0
    assert report["diagnostics"]["errors"] == 0
