"""Dyno-stats and report tests."""

from repro.core.binary_function import BinaryBasicBlock, BinaryFunction
from repro.core.dyno_stats import DynoStats, compute_function_dyno_stats
from repro.core.reports import (
    dump_function,
    format_bad_layout_report,
    report_bad_layout,
)
from repro.isa import CondCode, Instruction, Op


def _branchy_function():
    """entry (100) --jcc--> target (30); fallthrough mid (70) -> ret."""
    func = BinaryFunction("f", 0x1000, 64)
    entry = func.add_block(BinaryBasicBlock(".LBB0"))
    mid = func.add_block(BinaryBasicBlock(".LFT0"))
    target = func.add_block(BinaryBasicBlock(".Ltmp0"))

    entry.exec_count = 100
    jcc = Instruction(Op.JCC_LONG, cc=CondCode.EQ, label=".Ltmp0")
    entry.insns = [Instruction(Op.CMP_RI, (0,), imm=1), jcc]
    entry.set_edge(".Ltmp0", 30)
    entry.set_edge(".LFT0", 70)
    entry.fallthrough_label = ".LFT0"

    mid.exec_count = 70
    mid.insns = [Instruction(Op.RET)]
    target.exec_count = 30
    target.insns = [Instruction(Op.RET)]
    return func


def test_dyno_stats_forward_branch():
    func = _branchy_function()
    stats = compute_function_dyno_stats(func)
    assert stats.executed_forward_branches == 100
    assert stats.taken_forward_branches == 30
    assert stats.non_taken_conditional_branches == 70
    assert stats.taken_branches == 30
    assert stats.executed_instructions == 100 * 2 + 70 + 30


def test_dyno_stats_backward_after_reorder():
    func = _branchy_function()
    func.reorder([".LBB0", ".Ltmp0", ".LFT0"])
    stats = compute_function_dyno_stats(func)
    assert stats.executed_backward_branches == 0
    assert stats.executed_forward_branches == 100  # target still later? no:
    # .Ltmp0 now directly follows the entry, so the branch is forward at
    # distance 1 — position-based classification keeps it forward.
    assert stats.taken_forward_branches == 30


def test_dyno_stats_uncond_jump():
    func = _branchy_function()
    entry = func.blocks[".LBB0"]
    entry.insns = [Instruction(Op.JMP_NEAR, label=".Ltmp0")]
    entry.successors = [".Ltmp0"]
    entry.edge_counts = {".Ltmp0": 100}
    entry.fallthrough_label = None
    stats = compute_function_dyno_stats(func)
    assert stats.executed_unconditional_branches == 100
    assert stats.taken_branches == 100


def test_dyno_stats_delta():
    a = DynoStats()
    a.taken_branches = 100
    b = DynoStats()
    b.taken_branches = 40
    delta = b.delta_vs(a)
    assert abs(delta["taken_branches"] - (-0.6)) < 1e-9
    assert delta["executed_calls"] is None  # zero baseline
    combined = a + b
    assert combined.taken_branches == 140


def test_dump_function_non_simple():
    func = BinaryFunction("weird", 0x2000, 16)
    func.mark_non_simple("unresolved indirect jump (tail call?)")
    func.add_block(BinaryBasicBlock(".LBB0"))
    text = dump_function(func)
    assert "IsSimple    : 0" in text
    assert "indirect" in text


def test_report_bad_layout_detects_sandwich():
    func = _branchy_function()
    # Make the middle block cold between two hot ones.
    func.blocks[".LFT0"].exec_count = 0
    func.blocks[".Ltmp0"].exec_count = 95
    func.has_profile = True
    func.blocks[".LFT0"].insns[0].set_annotation("loc", ("f.bc", 42))

    class FakeContext:
        functions = {"f": func}

    findings = report_bad_layout(FakeContext(), min_count=10)
    assert len(findings) == 1
    finding = findings[0]
    assert finding["block"] == ".LFT0"
    assert finding["source"] == ("f.bc", 42)
    report = format_bad_layout_report(findings)
    assert "f.bc:42" in report
    assert ".LFT0" in report


def test_report_bad_layout_respects_max():
    func = _branchy_function()
    func.has_profile = True
    func.blocks[".LFT0"].exec_count = 0
    func.blocks[".Ltmp0"].exec_count = 95

    class FakeContext:
        functions = {"f": func}

    assert report_bad_layout(FakeContext(), min_count=10, max_reports=0) == []


def test_rewrite_result_summary():
    from repro.compiler import build_executable
    from repro.core import BoltOptions, optimize_binary
    from repro.profiling import SamplingConfig, profile_binary

    exe, _ = build_executable([("m", """
func hot(x) {
  if (x % 9 == 8) { return x * 3; }
  return x + 1;
}
func main() {
  var i = 0;
  var s = 0;
  while (i < 300) { s = s + hot(i); i = i + 1; }
  out s;
  return 0;
}
""")], emit_relocs=True)
    profile, _ = profile_binary(exe, sampling=SamplingConfig(period=41))
    result = optimize_binary(exe, profile, BoltOptions())
    text = result.summary()
    assert "BOLT-INFO" in text
    assert "functions discovered" in text
    assert "dyno-stats" in text
    assert "profile match" in text
