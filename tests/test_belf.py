"""Tests for the BELF container and its byte serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.belf import (
    Binary,
    Section,
    Symbol,
    Relocation,
    FrameRecord,
    CallSiteRecord,
    LineTable,
    SectionType,
    SectionFlag,
    SymbolType,
    SymbolBind,
    RelocType,
    write_binary,
    read_binary,
    BelfFormatError,
)


def make_sample_binary():
    binary = Binary(kind="exec", name="sample")
    text = Section(".text", flags=SectionFlag.ALLOC | SectionFlag.EXEC,
                   addr=0x10000, data=b"\x01\x02\x03\x04", align=16)
    binary.add_section(text)
    data = Section(".data", flags=SectionFlag.ALLOC | SectionFlag.WRITE,
                   addr=0x20000, data=b"\x00" * 16)
    binary.add_section(data)
    bss = Section(".bss", type=SectionType.NOBITS,
                  flags=SectionFlag.ALLOC | SectionFlag.WRITE,
                  addr=0x30000, mem_size=64)
    binary.add_section(bss)
    binary.add_symbol(Symbol("main", value=0x10000, size=2, type=SymbolType.FUNC,
                             bind=SymbolBind.GLOBAL, section=".text"))
    binary.add_symbol(Symbol("helper", value=0x10002, size=2, type=SymbolType.FUNC,
                             bind=SymbolBind.LOCAL, section=".text", module="m1"))
    binary.add_symbol(Symbol("gvar", value=0x20000, size=8, type=SymbolType.OBJECT,
                             section=".data"))
    binary.relocations.append(
        Relocation(".text", 0x2, RelocType.PC32, "helper", addend=-4))
    binary.frame_records["main"] = FrameRecord(
        "main", frame_size=32, saved_regs=[(3, 8)],
        callsites=[CallSiteRecord(0, 4, 2, action=1)])
    table = LineTable()
    table.add(0x10000, "a.bc", 10)
    table.add(0x10002, "b.bc", 20)
    binary.line_table = table
    binary.entry = 0x10000
    binary.emit_relocs = True
    return binary


def test_section_basics():
    s = Section(".text", flags=SectionFlag.ALLOC | SectionFlag.EXEC, addr=0x1000,
                data=b"abcd")
    assert s.size == 4
    assert s.end == 0x1004
    assert s.is_exec and s.is_alloc and not s.is_writable
    assert s.contains(0x1003) and not s.contains(0x1004)
    off = s.append(b"xy")
    assert off == 4 and s.size == 6
    s.pad_to(8)
    assert s.size == 8


def test_nobits_section_size():
    s = Section(".bss", type=SectionType.NOBITS, mem_size=128)
    assert s.size == 128
    s.size = 256
    assert s.size == 256
    p = Section(".data", data=b"ab")
    with pytest.raises(ValueError):
        p.size = 10


def test_symbol_link_names():
    g = Symbol("foo", bind=SymbolBind.GLOBAL)
    l = Symbol("foo", bind=SymbolBind.LOCAL, module="m1")
    l2 = Symbol("foo", bind=SymbolBind.LOCAL, module="m2")
    assert g.link_name() == "foo"
    assert l.link_name() == "m1::foo"
    assert l.link_name() != l2.link_name()


def test_binary_lookup():
    binary = make_sample_binary()
    assert binary.get_symbol("main").value == 0x10000
    assert binary.get_symbol("m1::helper").size == 2
    assert binary.get_symbol("nonexistent") is None
    assert binary.section_at(0x10001).name == ".text"
    assert binary.section_at(0x999) is None
    assert binary.function_at(0x10003).name == "helper"
    assert binary.function_at(0x20000) is None
    assert len(binary.functions()) == 2
    assert binary.text_size() == 4


def test_duplicate_section_rejected():
    binary = Binary()
    binary.add_section(Section(".text"))
    with pytest.raises(ValueError):
        binary.add_section(Section(".text"))


def test_read_word():
    binary = make_sample_binary()
    section = binary.get_section(".data")
    section.data[0:8] = (0xDEADBEEF).to_bytes(8, "little")
    assert binary.read_word(0x20000) == 0xDEADBEEF
    with pytest.raises(KeyError):
        binary.read_word(0x99999999)


def test_serialize_roundtrip():
    binary = make_sample_binary()
    blob = write_binary(binary)
    loaded = read_binary(blob)
    assert loaded.kind == "exec"
    assert loaded.name == "sample"
    assert loaded.entry == 0x10000
    assert loaded.emit_relocs
    assert list(loaded.sections) == [".text", ".data", ".bss"]
    assert bytes(loaded.get_section(".text").data) == b"\x01\x02\x03\x04"
    assert loaded.get_section(".bss").size == 64
    assert loaded.get_section(".bss").type == SectionType.NOBITS
    assert len(loaded.symbols) == 3
    helper = loaded.get_symbol("m1::helper")
    assert helper.module == "m1" and helper.bind == SymbolBind.LOCAL
    assert loaded.relocations == [
        Relocation(".text", 0x2, RelocType.PC32, "helper", addend=-4)]
    record = loaded.frame_records["main"]
    assert record.frame_size == 32
    assert record.saved_regs == [(3, 8)]
    assert record.callsites[0].landing_pad == 2
    assert loaded.line_table.lookup(0x10001) == ("a.bc", 10)
    assert loaded.line_table.lookup(0x10005) == ("b.bc", 20)


def test_serialize_object_without_linetable():
    binary = Binary(kind="object", name="obj")
    binary.add_section(Section(".text", data=b"\x04"))
    loaded = read_binary(write_binary(binary))
    assert loaded.kind == "object"
    assert loaded.line_table is None
    assert loaded.entry is None


def test_read_bad_magic():
    with pytest.raises(BelfFormatError):
        read_binary(b"NOPE" + b"\x00" * 32)


def test_read_truncated():
    blob = write_binary(make_sample_binary())
    with pytest.raises(BelfFormatError):
        read_binary(blob[: len(blob) // 2])


def test_frame_record_landing_pad_lookup():
    record = FrameRecord("f", callsites=[CallSiteRecord(10, 20, 100),
                                         CallSiteRecord(30, 40, 200)])
    assert record.landing_pad_for(15) == 100
    assert record.landing_pad_for(30) == 200
    assert record.landing_pad_for(25) is None
    assert record.has_landing_pads
    copy = record.copy()
    copy.callsites[0].landing_pad = 999
    assert record.callsites[0].landing_pad == 100


def test_line_table_rebase():
    table = LineTable()
    table.add(100, "f.bc", 1)
    table.add(200, "f.bc", 2)
    moved = table.rebase(lambda a: a + 1000 if a == 100 else None)
    assert moved.lookup(1100) == ("f.bc", 1)
    assert len(moved) == 1


def test_line_table_empty_lookup():
    assert LineTable().lookup(5) is None
    table = LineTable()
    table.add(100, "f", 1)
    assert table.lookup(50) is None


@given(
    sections=st.lists(
        st.tuples(st.sampled_from([".text", ".data", ".rodata", ".bss2"]),
                  st.binary(max_size=64)),
        max_size=4,
        unique_by=lambda t: t[0],
    ),
    nsyms=st.integers(min_value=0, max_value=5),
)
def test_prop_serialize_roundtrip(sections, nsyms):
    binary = Binary(kind="object", name="prop")
    for name, data in sections:
        binary.add_section(Section(name, data=data))
    for i in range(nsyms):
        binary.add_symbol(Symbol(f"sym{i}", value=i * 7, size=i,
                                 type=SymbolType.FUNC if i % 2 else SymbolType.OBJECT))
    loaded = read_binary(write_binary(binary))
    assert list(loaded.sections) == [name for name, _ in sections]
    for name, data in sections:
        assert bytes(loaded.get_section(name).data) == data
    assert len(loaded.symbols) == nsyms
    for before, after in zip(binary.symbols, loaded.symbols):
        assert before.name == after.name and before.value == after.value
