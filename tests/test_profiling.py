"""Profiling tests: sampler, aggregation, fdata format, MCF."""

import pytest
from hypothesis import given, strategies as st

from repro.compiler import build_executable, BuildOptions
from repro.profiling import (
    AddressMapper,
    BinaryProfile,
    EVENT_PRESETS,
    Sampler,
    SamplingConfig,
    aggregate_samples,
    min_cost_flow_edges,
    parse_fdata,
    profile_binary,
    write_fdata,
)

LOOP_SRC = ("t", """
func hot(x) {
  if (x % 2 == 0) { return x + 1; }
  return x - 1;
}
func cold(x) { return x * 100; }
func main() {
  var i = 0;
  var acc = 0;
  while (i < 400) {
    acc = acc + hot(i);
    if (i % 97 == 0) { acc = acc + cold(i); }
    i = i + 1;
  }
  out acc;
  return 0;
}
""")


@pytest.fixture(scope="module")
def exe():
    from repro.ir import InlinePolicy

    # Keep the calls: inlining everything would leave nothing to map.
    options = BuildOptions(inline=InlinePolicy(max_size=0, hot_max_size=0))
    binary, _ = build_executable([LOOP_SRC], options, emit_relocs=True)
    return binary


def test_sampling_config_validation():
    with pytest.raises(ValueError):
        SamplingConfig(event="bogus")
    assert EVENT_PRESETS["cycles:pebs"].skid == 0
    assert EVENT_PRESETS["cycles"].skid > 0


def test_sampler_collects(exe):
    profile, cpu = profile_binary(exe, sampling=SamplingConfig(period=67))
    assert len(profile.branches) > 0
    assert len(profile.ip_samples) > 0
    # Sample count roughly tracks cycles / period.
    expected = cpu.counters.cycles / 67
    total = sum(profile.ip_samples.values())
    assert 0.5 * expected <= total <= 1.5 * expected


def test_lbr_vs_nolbr(exe):
    lbr, _ = profile_binary(exe, sampling=SamplingConfig(period=67))
    nolbr, _ = profile_binary(exe, sampling=SamplingConfig(period=67,
                                                           use_lbr=False))
    assert lbr.lbr and not nolbr.lbr
    assert len(lbr.branches) > 0
    assert len(nolbr.branches) == 0
    assert len(nolbr.ip_samples) > 0


def test_profile_symbolization(exe):
    profile, _ = profile_binary(exe, sampling=SamplingConfig(period=53))
    funcs = profile.functions()
    assert "main" in funcs and "hot" in funcs
    # The hot loop dominates samples.
    hot_weight = sum(c for (f, _), c in profile.ip_samples.items()
                     if f in ("main", "hot"))
    assert hot_weight >= 0.8 * sum(profile.ip_samples.values())


def test_calls_between(exe):
    profile, _ = profile_binary(exe, sampling=SamplingConfig(period=53))
    calls = profile.calls_between()
    assert calls.get(("main", "hot"), 0) > calls.get(("main", "cold"), 0)


def test_branches_within(exe):
    profile, _ = profile_binary(exe, sampling=SamplingConfig(period=53))
    within = profile.branches_within("main")
    assert within
    for (from_off, to_off) in within:
        assert from_off >= 0 and to_off >= 0


def test_event_choices_produce_profiles(exe):
    for name, config in EVENT_PRESETS.items():
        profile, _ = profile_binary(exe, sampling=config)
        assert len(profile) > 0, name


def test_skid_biases_attribution(exe):
    precise, _ = profile_binary(
        exe, sampling=SamplingConfig(period=61, skid=0, use_lbr=False))
    skidded, _ = profile_binary(
        exe, sampling=SamplingConfig(period=61, skid=8, use_lbr=False))
    assert precise.ip_samples != skidded.ip_samples


def test_fdata_roundtrip():
    profile = BinaryProfile(event="cycles", lbr=True)
    profile.add_branch(("f", 0x10), ("g", 0x0), mispred=True, count=5)
    profile.add_branch(("f", 0x20), ("f", 0x8), count=3)
    profile.add_sample(("f", 0x10), 7)
    profile.add_sample(("odd name", 0x1), 1)
    text = write_fdata(profile)
    back = parse_fdata(text)
    assert back.branches == profile.branches
    assert back.ip_samples == profile.ip_samples
    assert back.event == "cycles" and back.lbr


def test_fdata_parse_errors():
    with pytest.raises(ValueError):
        parse_fdata("1 f 0 2 g 0 0 1\n")
    with pytest.raises(ValueError):
        parse_fdata("X whatever\n")
    with pytest.raises(ValueError):
        parse_fdata("S f 0\n")


@given(
    records=st.lists(
        st.tuples(st.text(alphabet="abc_: %", min_size=1, max_size=8),
                  st.integers(0, 0xFFFF),
                  st.integers(0, 0xFFFF),
                  st.integers(1, 1000)),
        max_size=20,
    )
)
def test_prop_fdata_roundtrip(records):
    profile = BinaryProfile()
    for name, f, t, count in records:
        profile.add_branch((name, f), (name, t), count=count)
    back = parse_fdata(write_fdata(profile))
    assert back.branches == profile.branches


def test_address_mapper(exe):
    mapper = AddressMapper(exe)
    main = exe.get_symbol("main")
    assert mapper.map(main.value) == ("main", 0)
    assert mapper.map(main.value + 3) == ("main", 3)
    assert mapper.map(0x10) is None


def test_aggregate_drops_unmapped(exe):
    mapper = AddressMapper(exe)
    main = exe.get_symbol("main")
    samples = [
        (main.value, [(main.value + 5, 0x99999, False)]),   # target unmapped
        (main.value, [(main.value + 5, main.value, True)]),
    ]
    profile = aggregate_samples(samples, mapper)
    assert len(profile.branches) == 1
    ((key, (count, mispreds)),) = profile.branches.items()
    assert count == 1 and mispreds == 1


# -- MCF --------------------------------------------------------------------------


def test_mcf_simple_diamond():
    #     entry (100)
    #     /        \
    #  left(70)  right(30)
    #     \        /
    #      exit(100)
    blocks = ["entry", "left", "right", "exit"]
    edges = [("entry", "left"), ("entry", "right"),
             ("left", "exit"), ("right", "exit")]
    counts = {"entry": 100, "left": 70, "right": 30, "exit": 100}
    flows = min_cost_flow_edges(blocks, edges, counts, "entry", ["exit"])
    assert flows[("entry", "left")] > flows[("entry", "right")]
    total_out = flows[("entry", "left")] + flows[("entry", "right")]
    assert total_out >= 90  # close to the measured entry count


def test_mcf_handles_inconsistent_counts():
    # Successor claims more flow than the predecessor: still feasible.
    blocks = ["a", "b"]
    edges = [("a", "b")]
    counts = {"a": 10, "b": 50}
    flows = min_cost_flow_edges(blocks, edges, counts, "a", ["b"])
    assert flows[("a", "b")] >= 0


def test_mcf_zero_counts():
    blocks = ["a", "b"]
    edges = [("a", "b")]
    flows = min_cost_flow_edges(blocks, edges, {}, "a", ["b"])
    assert flows[("a", "b")] >= 0


# -- YAML profile format (perf2bolt -w, paper 6.2.1) ---------------------------


def test_yaml_profile_roundtrip():
    from repro.profiling import parse_yaml_profile, write_yaml_profile

    profile = BinaryProfile(event="cycles", lbr=True)
    profile.add_branch(("main", 0x10), ("hot", 0x0), mispred=True, count=5)
    profile.add_branch(("main", 0x24), ("main", 0x8), count=9)
    profile.add_sample(("main", 0x10), 7)
    profile.add_sample(("weird name", 0x4), 2)
    text = write_yaml_profile(profile)
    assert text.startswith("---")
    back = parse_yaml_profile(text)
    assert back.branches == profile.branches
    assert back.ip_samples == profile.ip_samples
    assert back.event == "cycles" and back.lbr


def test_yaml_profile_parse_errors():
    from repro.profiling import parse_yaml_profile, YamlProfileError

    with pytest.raises(YamlProfileError):
        parse_yaml_profile("---\nfunctions:\n      - { off: 0x1 }\n")
    with pytest.raises(YamlProfileError):
        parse_yaml_profile("garbage here\n")


def test_yaml_profile_from_real_run(exe):
    from repro.profiling import parse_yaml_profile, write_yaml_profile

    profile, _ = profile_binary(exe, sampling=SamplingConfig(period=71))
    back = parse_yaml_profile(write_yaml_profile(profile))
    assert back.branches == profile.branches
    assert back.ip_samples == profile.ip_samples


# -- accuracy metric (section 2.2) ----------------------------------------------


def test_overlap_accuracy_bounds():
    from repro.profiling import overlap_accuracy

    truth = {"a": 50, "b": 50}
    assert overlap_accuracy(truth, truth) == pytest.approx(1.0)
    assert overlap_accuracy(truth, {"a": 100}) == pytest.approx(0.5)
    assert overlap_accuracy(truth, {"c": 100}) == 0.0
    assert overlap_accuracy({}, truth) == 0.0
    assert overlap_accuracy(truth, {"a": 25, "b": 75}) == pytest.approx(0.75)


def test_sampled_profile_accuracy_vs_trace(exe):
    """Sampled IP distribution approximates the fully-traced truth."""
    from repro.profiling import (
        binary_block_truth,
        overlap_accuracy,
        sampled_block_estimate,
    )

    truth, _ = binary_block_truth(exe)
    profile, _ = profile_binary(
        exe, sampling=SamplingConfig(period=31, use_lbr=False))
    estimate = sampled_block_estimate(profile)
    accuracy = overlap_accuracy(truth, estimate)
    assert accuracy > 0.5  # coarse agreement; it is a sample after all
