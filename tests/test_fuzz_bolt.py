"""Fuzzing the full pipeline: randomly-shaped generated workloads are
compiled, linked, profiled, BOLTed (both modes) and executed; every
variant must reproduce the reference interpreter's output stream.

This is the heavyweight counterpart of the per-module property tests:
it shakes interactions between the workload generator's features
(switches, function pointers, EH, indirect tail calls, duplicates) and
every stage of the toolchain.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import BoltOptions
from repro.harness import build_workload, measure, run_bolt, sample_profile
from repro.lang import parse_module
from repro.lang.interp import Interpreter
from repro.profiling import SamplingConfig
from repro.workloads import WorkloadSpec, generate_workload


def reference(workload):
    modules = [parse_module(t, n) for n, t in
               workload.sources + workload.lib_sources + workload.asm_sources]
    interp = Interpreter(modules, max_steps=80_000_000)
    interp.set_array("mainmod", "input", workload.inputs["mainmod::input"])
    interp.run("main")
    return interp.output


@st.composite
def _spec(draw):
    return WorkloadSpec(
        "fuzz",
        seed=draw(st.integers(0, 10_000)),
        modules=draw(st.integers(1, 3)),
        workers_per_module=draw(st.integers(2, 5)),
        leaves_per_module=draw(st.integers(1, 3)),
        iterations=draw(st.integers(20, 60)),
        hot_entries=draw(st.integers(1, 2)),
        switch_funcs_per_module=draw(st.integers(0, 2)),
        fptr_funcs_per_module=draw(st.integers(0, 1)),
        itail_funcs_per_module=draw(st.integers(0, 1)),
        eh_funcs_per_module=draw(st.integers(0, 1)),
        dup_leaf_groups=draw(st.integers(0, 2)),
        asm_module=draw(st.booleans()),
        cold_modulus=draw(st.sampled_from((17, 41, 101))),
        use_runtime_lib=draw(st.booleans()),
        input_kind=draw(st.sampled_from(("uniform", "skewed", "bursty"))),
    )


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(spec=_spec())
def test_fuzz_full_pipeline(spec):
    workload = generate_workload(spec)
    expected = reference(workload)

    built = build_workload(workload)
    baseline = measure(built, max_instructions=30_000_000)
    assert baseline.output == expected

    profile, _ = sample_profile(
        built, sampling=SamplingConfig(period=83),
        max_instructions=30_000_000)
    result = run_bolt(built, profile, BoltOptions())
    optimized = measure(result.binary, inputs=workload.inputs,
                        max_instructions=30_000_000)
    assert optimized.output == expected


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(spec=_spec(), seed2=st.integers(0, 3))
def test_fuzz_inplace_and_nolbr(spec, seed2):
    workload = generate_workload(spec)
    expected = reference(workload)

    built = build_workload(workload, emit_relocs=(seed2 % 2 == 0))
    profile, _ = sample_profile(
        built, sampling=SamplingConfig(period=83, use_lbr=(seed2 < 2)),
        max_instructions=30_000_000)
    result = run_bolt(built, profile, BoltOptions())
    optimized = measure(result.binary, inputs=workload.inputs,
                        max_instructions=30_000_000)
    assert optimized.output == expected
