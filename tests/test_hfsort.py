"""HFSort/HFSort+ and block-layout algorithm tests.

The fast kernels (reverse-adjacency HFSort, incremental HFSort+ and
ext-TSP) must produce *identical* orders to the pre-PR reference
implementations kept in ``repro.core._reference_kernels`` — the
equivalence properties at the bottom pin that down on random graphs.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core._reference_kernels import (
    hfsort_plus_reference,
    hfsort_reference,
    order_blocks_reference,
)
from repro.core.binary_function import BinaryBasicBlock, BinaryFunction
from repro.core.hfsort import (
    CallGraph,
    OrderingError,
    _check_permutation,
    hfsort,
    hfsort_plus,
)
from repro.core.layout_algos import order_blocks


def graph_of(nodes, arcs):
    graph = CallGraph()
    for name, weight, size in nodes:
        graph.add_function(name, weight, size)
    for caller, callee, weight in arcs:
        graph.add_arc(caller, callee, weight)
    return graph


def test_hfsort_clusters_call_chain():
    graph = graph_of(
        [("a", 100, 64), ("b", 90, 64), ("c", 80, 64), ("x", 1, 64)],
        [("a", "b", 50), ("b", "c", 40)],
    )
    order = hfsort(graph)
    # The a->b->c chain stays contiguous, in call order.
    ia, ib, ic = order.index("a"), order.index("b"), order.index("c")
    assert ib == ia + 1 and ic == ib + 1
    assert order.index("x") > ic


def test_hfsort_respects_merge_cap():
    graph = graph_of(
        [("a", 100, 5000), ("b", 90, 5000)],
        [("a", "b", 50)],
    )
    order = hfsort(graph, merge_cap=6000)   # merge would exceed the cap
    assert set(order) == {"a", "b"}
    # Order by density, not by chain.
    assert order.index("a") < order.index("b")


def test_hfsort_cold_functions_last():
    graph = graph_of(
        [("hot", 100, 10), ("cold1", 0, 10), ("cold2", 0, 10)],
        [],
    )
    order = hfsort(graph)
    assert order[0] == "hot"
    assert set(order[1:]) == {"cold1", "cold2"}


def test_hfsort_heaviest_caller_wins():
    graph = graph_of(
        [("h1", 100, 16), ("h2", 100, 16), ("shared", 90, 16)],
        [("h1", "shared", 10), ("h2", "shared", 80)],
    )
    order = hfsort(graph)
    # shared joins h2 (the heavier caller) and follows it.
    assert order.index("shared") == order.index("h2") + 1


def test_hfsort_plus_groups_hot_arcs():
    graph = graph_of(
        [("a", 100, 32), ("b", 80, 32), ("c", 60, 32), ("d", 1, 32)],
        [("a", "b", 70), ("b", "c", 60), ("c", "a", 10)],
    )
    order = hfsort_plus(graph)
    hot_positions = [order.index(n) for n in ("a", "b", "c")]
    assert max(hot_positions) - min(hot_positions) == 2  # contiguous
    assert order.index("d") > max(hot_positions)


@given(
    weights=st.lists(st.integers(0, 1000), min_size=1, max_size=12),
)
def test_prop_hfsort_is_permutation(weights):
    graph = CallGraph()
    names = [f"f{i}" for i in range(len(weights))]
    for name, weight in zip(names, weights):
        graph.add_function(name, weight, 16)
    for i in range(len(names) - 1):
        graph.add_arc(names[i], names[i + 1], weights[i])
    for flavor in (hfsort, hfsort_plus):
        order = flavor(graph)
        assert sorted(order) == sorted(names)


# -- block layout algorithms -------------------------------------------------


def _make_func(edges, counts, entry="e"):
    func = BinaryFunction("f", 0x1000, 100)
    labels = sorted({entry} | {x for e in edges for x in e} | set(counts))
    labels.remove(entry)
    labels.insert(0, entry)
    for label in labels:
        block = BinaryBasicBlock(label)
        block.exec_count = counts.get(label, 0)
        from repro.isa import Instruction, Op

        block.insns = [Instruction(Op.NOPN, imm=8)]
        func.add_block(block)
    for (src, dst), count in edges.items():
        func.blocks[src].set_edge(dst, count)
    return func


def test_order_blocks_none_and_reverse():
    func = _make_func({("e", "a"): 1, ("a", "b"): 1},
                      {"e": 1, "a": 1, "b": 1})
    assert order_blocks(func, "none") == list(func.blocks)
    rev = order_blocks(func, "reverse")
    assert rev[0] == "e" and rev[1:] == list(func.blocks)[1:][::-1]


def test_order_blocks_cache_chains_hot_path():
    func = _make_func(
        {("e", "hot"): 90, ("e", "cold"): 10, ("hot", "exit"): 90,
         ("cold", "exit"): 10},
        {"e": 100, "hot": 90, "cold": 10, "exit": 100},
    )
    order = order_blocks(func, "cache")
    assert order[0] == "e"
    assert order.index("hot") < order.index("cold")


def test_order_blocks_cache_plus_prefers_fallthrough():
    func = _make_func(
        {("e", "a"): 60, ("e", "b"): 40, ("a", "x"): 60, ("b", "x"): 40},
        {"e": 100, "a": 60, "b": 40, "x": 100},
    )
    order = order_blocks(func, "cache+")
    assert order[0] == "e"
    assert order.index("a") < order.index("b")


def test_order_blocks_entry_stays_first_always():
    func = _make_func(
        {("e", "a"): 1, ("a", "e2"): 100, ("e2", "a"): 100},
        {"e": 1, "a": 101, "e2": 100},
    )
    for algo in ("cache", "cache+", "reverse", "none"):
        order = order_blocks(func, algo)
        assert order[0] == "e", algo
        assert sorted(order) == sorted(func.blocks)


@given(
    n=st.integers(2, 8),
    seed=st.integers(0, 1000),
)
def test_prop_layouts_are_permutations(n, seed):
    import random

    rng = random.Random(seed)
    labels = ["e"] + [f"b{i}" for i in range(n)]
    edges = {}
    counts = {label: rng.randrange(0, 100) for label in labels}
    for i, src in enumerate(labels):
        for dst in rng.sample(labels[1:], min(2, n)):
            edges[(src, dst)] = rng.randrange(0, 50)
    func = _make_func(edges, counts)
    for algo in ("cache", "cache+"):
        order = order_blocks(func, algo, hot_threshold=1)
        assert sorted(order) == sorted(func.blocks), algo
        assert order[0] == "e"


# -- permutation guard and cold-tail regression ------------------------------


def test_check_permutation_raises_on_dropped_function():
    with pytest.raises(OrderingError, match="missing"):
        _check_permutation("hfsort", ["a", "b"], ["a", "b", "c"])
    with pytest.raises(OrderingError, match="extra"):
        _check_permutation("hfsort", ["a", "b", "x"], ["a", "b", "c"])
    _check_permutation("hfsort", ["b", "a"], ["a", "b"])  # permutation: fine


def test_hfsort_plus_cold_tail_complete_and_in_input_order():
    """Regression: the cold tail must carry *every* unprofiled function
    through, in hfsort's (natural input) order — nothing silently
    dropped even when hot clusters churn through many merges."""
    nodes = [(f"hot{i}", 100 - i, 64) for i in range(8)]
    nodes += [(f"cold{i}", 0, 64) for i in range(8)]
    arcs = [(f"hot{i}", f"hot{i + 1}", 50 + i) for i in range(7)]
    graph = graph_of(nodes, arcs)
    order = hfsort_plus(graph)
    assert sorted(order) == sorted(graph.weights)
    tail = order[-8:]
    assert tail == [f"cold{i}" for i in range(8)]  # input order preserved


def test_hfsort_plus_handles_duplicate_registration():
    graph = graph_of(
        [("a", 50, 32), ("a", 50, 32), ("b", 10, 32), ("z", 0, 32)],
        [("a", "b", 30)],
    )
    assert graph.weights["a"] == 100  # weights accumulate
    order = hfsort_plus(graph)
    assert sorted(order) == ["a", "b", "z"]


# -- equivalence with the pre-PR reference kernels ---------------------------


def _random_graph(rng, n):
    graph = CallGraph()
    names = [f"f{i}" for i in range(n)]
    for name in names:
        graph.add_function(name, rng.choice([0, 0, rng.randrange(1, 500)]),
                           rng.randrange(1, 9000))
    for _ in range(rng.randrange(0, 3 * n)):
        graph.add_arc(rng.choice(names), rng.choice(names),
                      rng.randrange(0, 100))
    return graph


@given(n=st.integers(1, 14), seed=st.integers(0, 10_000))
def test_prop_hfsort_matches_reference(n, seed):
    import random

    graph = _random_graph(random.Random(seed), n)
    assert hfsort(graph) == hfsort_reference(graph)
    assert hfsort_plus(graph) == hfsort_plus_reference(graph)


@given(n=st.integers(2, 10), seed=st.integers(0, 10_000))
def test_prop_order_blocks_matches_reference(n, seed):
    import random

    rng = random.Random(seed)
    labels = ["e"] + [f"b{i}" for i in range(n)]
    counts = {label: rng.choice([0, rng.randrange(0, 200)])
              for label in labels}
    edges = {}
    for src in labels:
        for dst in rng.sample(labels[1:], min(rng.randrange(0, 4), n)):
            edges[(src, dst)] = rng.randrange(0, 80)
    func = _make_func(edges, counts)
    for algo in ("none", "reverse", "cache", "cache+"):
        assert (order_blocks(func, algo)
                == order_blocks_reference(func, algo)), algo
