"""Whole-binary lint, the static validation tier, and the lint CLI.

The acceptance contract: each of the four binary fault classes maps to
a stable rule ID, ``--validate static`` rejects all of them (falling
back to passthrough), and clean binaries — input and BOLTed output —
lint with zero findings.
"""

import json
import pathlib

import pytest

from repro.analysis import lint_binary, validate_translation
from repro.analysis.rules import RULES, parse_suppressions
from repro.belf import write_binary
from repro.cli import main
from repro.compiler import build_executable
from repro.core import BoltOptions, optimize_binary
from repro.faults import BINARY_FAULTS, inject_binary_fault
from repro.isa import Op
from repro.isa.decoding import decode_stream
from repro.profiling import profile_binary
from repro.uarch import run_binary

pytestmark = pytest.mark.analysis

SOURCE = """
func score(x) {
  if (x % 7 == 3) { return x * 2 + 11; }
  return x + 1;
}
func helper(a, b) {
  var t = a * 3;
  if (t > b) { return t - b; }
  return b - t;
}
func spare(n) {
  var s = 0;
  var j = 0;
  while (j < n) { s = s + helper(j, n); j = j + 1; }
  return s;
}
func main() {
  var i = 0;
  var total = 0;
  while (i < 2000) { total = total + score(i); i = i + 1; }
  out total;
  return 0;
}
"""

#: Fault class -> the rule ID that must identify it.
FAULT_RULES = {
    "garbage-text": "BL102",
    "truncate-section": "BL103",
    "bogus-reloc": "BL106",
    "wrong-symbol-size": "BL105",
}

#: Functions the workload never calls with these inputs — corrupting
#: them keeps the program runnable, which is exactly the damage the
#: structural tier cannot see.
VICTIMS = ["helper", "spare"]


@pytest.fixture(scope="module")
def rig():
    exe, _ = build_executable([("demo", SOURCE)], emit_relocs=True)
    profile, _ = profile_binary(exe)
    return {"exe": exe, "profile": profile,
            "output": run_binary(exe).output}


# ---------------------------------------------------------------------------
# Clean binaries lint clean
# ---------------------------------------------------------------------------


def test_clean_input_zero_findings(rig):
    report = lint_binary(rig["exe"])
    assert report.findings == []


def test_clean_rewrite_passes_static_gate(rig):
    result = optimize_binary(rig["exe"], rig["profile"],
                             BoltOptions(validate_output="static"))
    assert result.degraded is None
    assert lint_binary(result.binary).findings == []
    assert run_binary(result.binary).output == rig["output"]


# ---------------------------------------------------------------------------
# Fault corpus: every corruption class maps to a stable rule ID
# ---------------------------------------------------------------------------


@pytest.mark.faults
@pytest.mark.parametrize("kind", BINARY_FAULTS)
def test_fault_class_maps_to_rule(rig, kind):
    bad, affected = inject_binary_fault(rig["exe"], kind, targets=VICTIMS)
    assert affected
    report = lint_binary(bad)
    assert FAULT_RULES[kind] in report.rules_hit()
    assert report.errors  # every class is ERROR severity


@pytest.mark.faults
@pytest.mark.parametrize("kind", BINARY_FAULTS)
def test_static_gate_rejects_corrupt_input(rig, kind):
    bad, _ = inject_binary_fault(rig["exe"], kind, targets=VICTIMS)
    result = optimize_binary(bad, rig["profile"],
                             BoltOptions(validate_output="static"))
    assert result.degraded == "passthrough"
    rendered = " ".join(d.render() for d in result.diagnostics.records)
    assert FAULT_RULES[kind] in rendered


@pytest.mark.faults
def test_structural_tier_misses_bogus_reloc(rig):
    """The differentiator: a dangling relocation produces a wrong
    binary the structural tier happily ships; only the static tier
    (input lint, BL106) rejects it."""
    bad, _ = inject_binary_fault(rig["exe"], "bogus-reloc", targets=VICTIMS)
    structural = optimize_binary(
        bad, rig["profile"],
        BoltOptions(validate_output="structural", lint="none"))
    assert structural.degraded is None  # sailed through
    static = optimize_binary(bad, rig["profile"],
                             BoltOptions(validate_output="static"))
    assert static.degraded == "passthrough"


# ---------------------------------------------------------------------------
# Translation validation: a byte flip in the emitted code is caught
# ---------------------------------------------------------------------------


def test_translation_validator_catches_byte_flip(rig):
    result = optimize_binary(rig["exe"], rig["profile"],
                             BoltOptions(validate_output="none"))
    assert result.fragments
    clean = validate_translation(result.context, result.binary,
                                 result.fragments)
    assert clean == []

    # Corrupt the trailing immediate byte of some emitted instruction.
    flipped = None
    for name, frag in result.fragments.items():
        if frag.raw:
            continue
        section = result.binary.section_at(frag.address)
        start = frag.address - section.addr
        insns = decode_stream(section.data, start, start + frag.size,
                              base_address=frag.address)
        for insn in insns:
            if insn.op in (Op.CMP_RI, Op.ADD_RI, Op.MOV_RI32):
                offset = insn.address - section.addr + insn.size - 1
                section.data[offset] ^= 0x40
                flipped = (name, insn)
                break
        if flipped:
            break
    assert flipped is not None
    findings = validate_translation(result.context, result.binary,
                                    result.fragments)
    assert any(f.rule in ("BL201", "BL202") for f in findings)


# ---------------------------------------------------------------------------
# Suppression
# ---------------------------------------------------------------------------


def test_parse_suppressions_forms():
    sup = parse_suppressions("BL003, crc32:BL001,crc32:*")
    assert (None, "BL003") in sup
    assert ("crc32", "BL001") in sup
    assert ("crc32", "*") in sup
    assert parse_suppressions(["BL001"]) == frozenset({(None, "BL001")})


def test_lint_suppression_counts(rig):
    bad, _ = inject_binary_fault(rig["exe"], "garbage-text",
                                 targets=VICTIMS)
    report = lint_binary(bad, suppress=("BL102",))
    assert report.suppressed > 0
    assert "BL102" not in report.rules_hit()


def test_rule_registry_is_stable():
    # Rule IDs are a public contract: never renumber, only add.
    assert {"BL001", "BL002", "BL003", "BL004", "BL005", "BL006", "BL007",
            "BL101", "BL102", "BL103", "BL104", "BL105", "BL106",
            "BL201", "BL202", "BL203", "BL204"} <= set(RULES)


# ---------------------------------------------------------------------------
# CLI: repro-bolt lint
# ---------------------------------------------------------------------------


@pytest.fixture()
def cli_files(tmp_path, rig):
    clean = tmp_path / "clean.belf"
    clean.write_bytes(write_binary(rig["exe"]))
    bad_exe, _ = inject_binary_fault(rig["exe"], "garbage-text",
                                     targets=VICTIMS)
    bad = tmp_path / "bad.belf"
    bad.write_bytes(write_binary(bad_exe))
    return {"clean": clean, "bad": bad, "dir": tmp_path}


def test_lint_cli_clean_exits_zero(cli_files, capsys):
    assert main(["lint", str(cli_files["clean"])]) == 0
    out = capsys.readouterr().out
    assert "BOLT-INFO: lint" in out
    assert "0 error(s)" in out


def test_lint_cli_errors_exit_nonzero(cli_files, capsys):
    assert main(["lint", str(cli_files["bad"])]) == 1
    out = capsys.readouterr().out
    assert "BL102" in out


def test_lint_cli_json(cli_files, capsys):
    assert main(["lint", str(cli_files["bad"]), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] > 0
    assert "BL102" in payload["summary"]["rules"]
    assert all("rule" in f and "message" in f for f in payload["findings"])


def test_lint_cli_suppress(cli_files, capsys):
    assert main(["lint", str(cli_files["bad"]),
                 "--suppress", "BL102"]) == 0
    assert "suppressed" in capsys.readouterr().out


def test_bolt_cli_validate_static(cli_files, tmp_path, capsys):
    fdata = tmp_path / "p.fdata"
    assert main(["profile", str(cli_files["clean"]),
                 "-o", str(fdata)]) == 0
    capsys.readouterr()
    out = tmp_path / "out.belf"
    assert main(["bolt", str(cli_files["clean"]), "-p", str(fdata),
                 "-o", str(out), "--validate", "static"]) == 0
    err = capsys.readouterr().err
    assert "degraded" not in err
