"""IR-level lint checker tests: each rule fires on a hand-built broken
CFG and stays silent on clean ones (including compiler output and
split-function cold fragments)."""

import pytest

from repro.analysis import check_function
from repro.belf.frameinfo import FrameRecord
from repro.compiler import build_executable
from repro.core import BinaryContext, BoltOptions
from repro.core.binary_function import (
    BinaryBasicBlock,
    BinaryFunction,
    JumpTable,
)
from repro.core.cfg_builder import build_all_functions
from repro.core.discovery import discover_functions
from repro.core.validate import ValidationError, validate_function
from repro.isa import Instruction, Op, SymRef, RAX, RBP, RBX

pytestmark = pytest.mark.analysis


def make_func(name="f"):
    return BinaryFunction(name, 0x1000, 64)


def block(label, insns, **attrs):
    b = BinaryBasicBlock(label)
    b.insns = list(insns)
    for key, value in attrs.items():
        setattr(b, key, value)
    return b


def rules(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# BL001: stack-height consistency
# ---------------------------------------------------------------------------


def test_bl001_unbalanced_push_at_return():
    func = make_func()
    func.add_block(block("e", [Instruction(Op.PUSH, (RBX,)),
                               Instruction(Op.RET)]))
    assert "BL001" in rules(check_function(func))


def test_bl001_pop_below_entry():
    func = make_func()
    func.add_block(block("e", [Instruction(Op.POP, (RBX,)),
                               Instruction(Op.RET)]))
    findings = [f for f in check_function(func) if f.rule == "BL001"]
    assert findings and "below" in findings[0].message


def test_bl001_balanced_is_clean():
    func = make_func()
    func.add_block(block("e", [Instruction(Op.PUSH, (RBX,)),
                               Instruction(Op.POP, (RBX,)),
                               Instruction(Op.RET)]))
    assert check_function(func) == []


def test_bl001_tail_call_with_live_frame():
    func = make_func()
    func.add_block(block("e", [
        Instruction(Op.PUSH, (RBX,)),
        Instruction(Op.JMP_NEAR, sym=SymRef("other", "branch")),
    ]))
    assert "BL001" in rules(check_function(func))


def test_cold_fragment_transfer_is_not_a_tail_call():
    # A branch to the function's own cold fragment carries the live
    # frame by design; it must not be treated as a tail-call exit.
    func = make_func()
    func.add_block(block("e", [
        Instruction(Op.PUSH, (RBX,)),
        Instruction(Op.JMP_NEAR, sym=SymRef("f.cold.0", "branch")),
    ]))
    assert check_function(func) == []


def test_cold_fragment_function_has_unknown_entry_state():
    # A re-discovered .cold.0 fragment starts mid-frame: popping the
    # parent's frame must not count as popping below the entry height.
    func = make_func("f.cold.0")
    func.add_block(block("e", [Instruction(Op.POP, (RBP,)),
                               Instruction(Op.RET)]))
    assert check_function(func) == []


# ---------------------------------------------------------------------------
# BL002: callee-saved preservation
# ---------------------------------------------------------------------------


def _framed(name="f", saved=((RBX, 8),)):
    func = make_func(name)
    func.frame_record = FrameRecord(name, frame_size=16, saved_regs=saved)
    return func


def test_bl002_clobbered_without_restore():
    func = _framed()
    func.add_block(block("e", [
        Instruction(Op.STORE, (RBP, RBX), disp=-8),
        Instruction(Op.MOV_RI32, (RBX,), imm=0),
        Instruction(Op.RET),
    ]))
    assert "BL002" in rules(check_function(func))


def test_bl002_restored_is_clean():
    func = _framed()
    func.add_block(block("e", [
        Instruction(Op.STORE, (RBP, RBX), disp=-8),
        Instruction(Op.MOV_RI32, (RBX,), imm=0),
        Instruction(Op.LOAD, (RBX, RBP), disp=-8),
        Instruction(Op.RET),
    ]))
    assert check_function(func) == []


def test_bl002_untouched_register_is_clean():
    func = _framed()
    func.add_block(block("e", [Instruction(Op.RET)]))
    assert check_function(func) == []


def test_bl002_skipped_for_cold_fragments():
    func = _framed("f.cold.0")
    func.add_block(block("e", [
        Instruction(Op.MOV_RI32, (RBX,), imm=0),
        Instruction(Op.RET),
    ]))
    assert check_function(func) == []


# ---------------------------------------------------------------------------
# BL003: flags use-before-def
# ---------------------------------------------------------------------------


def test_bl003_branch_on_undefined_flags():
    func = make_func()
    e = block("e", [Instruction(Op.JCC_SHORT, cc=0, label="b")])
    e.set_edge("b")
    e.set_edge("a")
    e.fallthrough_label = "a"
    func.add_block(e)
    func.add_block(block("a", [Instruction(Op.RET)]))
    func.add_block(block("b", [Instruction(Op.RET)]))
    assert "BL003" in rules(check_function(func))


def test_bl003_compare_defines_flags():
    func = make_func()
    e = block("e", [Instruction(Op.CMP_RI, (RAX,), imm=0),
                    Instruction(Op.JCC_SHORT, cc=0, label="b")])
    e.set_edge("b")
    e.set_edge("a")
    e.fallthrough_label = "a"
    func.add_block(e)
    func.add_block(block("a", [Instruction(Op.RET)]))
    func.add_block(block("b", [Instruction(Op.RET)]))
    assert check_function(func) == []


# ---------------------------------------------------------------------------
# BL004: unreachable code / BL005: fall-through
# ---------------------------------------------------------------------------


def test_bl004_unreachable_real_code():
    func = make_func()
    func.add_block(block("e", [Instruction(Op.RET)]))
    func.add_block(block("dead", [Instruction(Op.MOV_RR, (RAX, RBX)),
                                  Instruction(Op.RET)]))
    findings = check_function(func)
    assert "BL004" in rules(findings)
    assert any(f.block == "dead" for f in findings)


def test_bl004_tolerates_nop_padding_blocks():
    # Alignment padding between a terminator and the next target
    # decodes as an unreachable empty/nop-only block: layout residue,
    # not dead code.
    func = make_func()
    e = block("e", [Instruction(Op.JMP_NEAR, label="x")])
    e.set_edge("x")
    func.add_block(e)
    pad = block("pad", [Instruction(Op.NOP)])
    pad.set_edge("x")
    pad.fallthrough_label = "x"
    func.add_block(pad)
    func.add_block(block("x", [Instruction(Op.RET)]))
    assert check_function(func) == []


def test_bl005_control_runs_off_the_end():
    func = make_func()
    func.add_block(block("e", [Instruction(Op.MOV_RR, (RAX, RBX))]))
    assert "BL005" in rules(check_function(func))


def test_bl005_layout_breaks_fallthrough():
    func = make_func()
    e = block("e", [Instruction(Op.MOV_RR, (RAX, RBX))])
    e.set_edge("x")
    e.fallthrough_label = "x"
    func.add_block(e)
    # Layout places "y" between e and its fall-through target.
    y = block("y", [Instruction(Op.RET)])
    func.add_block(y)
    func.add_block(block("x", [Instruction(Op.RET)]))
    assert "BL005" in rules(check_function(func))


# ---------------------------------------------------------------------------
# BL006: jump tables / BL007: structural invariants
# ---------------------------------------------------------------------------


def _jump_table_func(entries, successors, size=None):
    func = make_func()
    table = JumpTable(0x2000, size if size is not None else 8 * len(entries),
                      list(entries), ".rodata")
    insn = Instruction(Op.JMP_REG, (RAX,))
    insn.set_annotation("jump-table", table)
    e = block("e", [insn])
    for succ in successors:
        e.set_edge(succ)
    func.add_block(e)
    func.add_block(block("x", [Instruction(Op.RET)]))
    func.add_block(block("y", [Instruction(Op.RET)]))
    func.jump_tables.append(table)
    return func


def test_bl006_entry_not_a_block_head():
    func = _jump_table_func(["ghost"], ["x"])
    assert "BL006" in rules(check_function(func))


def test_bl006_successors_disagree_with_entries():
    func = _jump_table_func(["x"], ["x", "y"])
    assert "BL006" in rules(check_function(func))


def test_bl006_size_does_not_cover_entries():
    func = _jump_table_func(["x", "y"], ["x", "y"], size=8)
    assert "BL006" in rules(check_function(func))


def test_bl006_consistent_table_is_clean():
    func = _jump_table_func(["x", "y"], ["x", "y"])
    assert check_function(func) == []


def test_bl007_bogus_successor():
    func = make_func()
    e = block("e", [Instruction(Op.RET)])
    e.set_edge("ghost")
    func.add_block(e)
    assert "BL007" in rules(check_function(func))


# ---------------------------------------------------------------------------
# Pass-fact cross-checks
# ---------------------------------------------------------------------------


def test_fact_frame_opts_removed_protected_slot():
    func = _framed()
    func.add_block(block("e", [Instruction(Op.RET)]))
    func.analysis_facts["frame-opts-removed"] = [-8]
    findings = [f for f in check_function(func) if f.rule == "BL002"]
    assert findings and "frame-opts" in findings[0].message


def test_fact_sctc_branch_must_survive():
    func = make_func()
    func.add_block(block("e", [Instruction(Op.RET)]))
    func.analysis_facts["sctc"] = ["e"]
    findings = [f for f in check_function(func) if f.rule == "BL007"]
    assert findings and "SCTC" in findings[0].message


def test_fact_shrink_wrap_store_must_exist():
    func = _framed()
    e = block("e", [Instruction(Op.MOV_RI32, (RBX,), imm=0)])
    e.set_edge("x")
    e.fallthrough_label = "x"
    func.add_block(e)
    func.add_block(block("x", [Instruction(Op.LOAD, (RBX, RBP), disp=-8),
                               Instruction(Op.RET)]))
    func.analysis_facts["shrink-wrap"] = {RBX: "x"}  # but no store there
    findings = [f for f in check_function(func) if f.rule == "BL002"]
    assert findings and "shrink-wrapping" in findings[0].message


# ---------------------------------------------------------------------------
# Non-simple functions are skipped; compiler output is clean
# ---------------------------------------------------------------------------


def test_non_simple_function_is_skipped():
    func = make_func()
    e = block("e", [Instruction(Op.PUSH, (RBX,)), Instruction(Op.RET)])
    func.add_block(e)
    func.mark_non_simple("test")
    assert check_function(func) == []


def test_compiler_output_is_clean():
    exe, _ = build_executable([("m", """
func helper(x) {
  if (x % 3 == 0) { return x * 2; }
  return x + 1;
}
func main() {
  var i = 0;
  var acc = 0;
  while (i < 50) { acc = acc + helper(i); i = i + 1; }
  out acc;
  return 0;
}
""")], emit_relocs=True)
    context = BinaryContext(exe, BoltOptions())
    discover_functions(context)
    build_all_functions(context)
    for func in context.simple_functions():
        assert check_function(func) == [], func.name


# ---------------------------------------------------------------------------
# validate_function satellites: landing-pad reachability, edge counts
# ---------------------------------------------------------------------------


def test_validate_rejects_negative_edge_count():
    func = make_func()
    e = block("e", [Instruction(Op.JMP_NEAR, label="x")])
    e.set_edge("x", count=-5)
    func.add_block(e)
    func.add_block(block("x", [Instruction(Op.RET)]))
    with pytest.raises(ValidationError, match="negative edge count"):
        validate_function(func)


def test_validate_rejects_unreachable_landing_pad():
    func = make_func()
    func.add_block(block("e", [Instruction(Op.RET)]))
    lp = block("lp", [Instruction(Op.RET)])
    lp.is_landing_pad = True
    func.add_block(lp)
    with pytest.raises(ValidationError, match="landing-pad"):
        validate_function(func)


def test_validate_accepts_registered_landing_pad():
    func = make_func()
    e = block("e", [Instruction(Op.RET)])
    e.landing_pads.append("lp")
    func.add_block(e)
    lp = block("lp", [Instruction(Op.RET)])
    lp.is_landing_pad = True
    func.add_block(lp)
    validate_function(func)  # no raise
