"""Front-end tests: lexer, parser, semantic checks, reference interpreter."""

import pytest
from hypothesis import given, strategies as st

from repro.lang import (
    Lexer,
    LexError,
    ParseError,
    SemaError,
    TokenType,
    ast,
    check_module,
    parse_module,
)
from repro.lang.interp import Interpreter, BCError


def lex(text):
    return Lexer(text, "t.bc").tokens()


def parse(text):
    return parse_module(text, "t")


def check(text):
    module = parse(text)
    return module, check_module(module)


# -- lexer -----------------------------------------------------------------


def test_lex_numbers():
    tokens = lex("0 42 0x1F 0xff")
    assert [t.value for t in tokens[:-1]] == [0, 42, 0x1F, 0xFF]


def test_lex_keywords_vs_idents():
    tokens = lex("func funky if iffy")
    assert tokens[0].type == TokenType.KEYWORD
    assert tokens[1].type == TokenType.IDENT
    assert tokens[2].type == TokenType.KEYWORD
    assert tokens[3].type == TokenType.IDENT


def test_lex_punct_maximal_munch():
    tokens = lex("a<<b <= < == = && &")
    values = [t.value for t in tokens[:-1]]
    assert values == ["a", "<<", "b", "<=", "<", "==", "=", "&&", "&"]


def test_lex_comments_and_lines():
    tokens = lex("a // comment\nb")
    assert tokens[0].line == 1
    assert tokens[1].line == 2


def test_lex_error():
    with pytest.raises(LexError):
        lex("a $ b")


def test_lex_bad_hex():
    with pytest.raises(LexError):
        lex("0x")


def test_lex_eof():
    assert lex("")[-1].type == TokenType.EOF


# -- parser -----------------------------------------------------------------


def test_parse_function():
    module = parse("func f(a, b) { return a + b; }")
    assert len(module.functions) == 1
    func = module.functions[0]
    assert func.name == "f" and func.params == ["a", "b"]
    assert not func.static


def test_parse_static():
    module = parse("static func f() { return 0; }")
    assert module.functions[0].static


def test_parse_globals():
    module = parse("var g = 5;\nconst K = 7;\nvar n = -3;\n"
                   "array a[8] = {1, 2};\nconst array c[4] = {9};")
    kinds = [(d.name, d.const) for d in module.globals]
    assert kinds == [("g", False), ("K", True), ("n", False),
                     ("a", False), ("c", True)]
    assert module.globals[2].init == -3
    assert module.globals[3].size == 8 and module.globals[3].init == [1, 2]


def test_parse_precedence():
    module = parse("func f() { return 1 + 2 * 3 == 7 && 1; }")
    expr = module.functions[0].body.stmts[0].value
    assert isinstance(expr, ast.Binary) and expr.op == "&&"
    left = expr.left
    assert left.op == "=="


def test_parse_unary_chain():
    module = parse("func f(x) { return !-x; }")
    expr = module.functions[0].body.stmts[0].value
    assert expr.op == "!" and expr.operand.op == "-"


def test_parse_call_and_index():
    module = parse("array a[4];\nfunc f(x) { return g(a[x], 1)(2); }")
    call = module.functions[0].body.stmts[0].value
    assert call.indirect  # g(...) returns a value that is then called


def test_parse_funcref():
    module = parse("func g() { return 0; } func f() { return &g; }")
    expr = module.functions[1].body.stmts[0].value
    assert isinstance(expr, ast.FuncRef) and expr.name == "g"


def test_parse_switch():
    module = parse("""
func f(x) {
  switch (x) {
    case 0: { return 1; }
    case -2: { return 2; }
    default: { return 3; }
  }
}
""")
    sw = module.functions[0].body.stmts[0]
    assert [v for v, _ in sw.cases] == [0, -2]
    assert sw.default is not None


def test_parse_switch_duplicate_case():
    with pytest.raises(ParseError):
        parse("func f(x) { switch (x) { case 1: {} case 1: {} } }")


def test_parse_try_catch_throw():
    module = parse("func f() { try { throw 5; } catch (e) { return e; } }")
    stmt = module.functions[0].body.stmts[0]
    assert isinstance(stmt, ast.Try) and stmt.catch_var == "e"


def test_parse_errors():
    for bad in (
        "func f( {",
        "func f() { return 1 }",
        "func f() { if x { } }",
        "var = 3;",
        "func f() { 1 + ; }",
        "func f() { x[1 = 2; }",
        "garbage",
        "func f() { (1 + 2 = 3; }",
        "array a[2] = {1, 2, 3};",
    ):
        with pytest.raises(ParseError):
            parse(bad)


def test_parse_assignment_target_validation():
    with pytest.raises(ParseError):
        parse("func f() { f() = 3; }")


def test_parse_unterminated_block():
    with pytest.raises(ParseError):
        parse("func f() { if (1) {")


# -- sema ----------------------------------------------------------------------


def test_sema_ok():
    _, info = check("""
var g = 1;
array a[8];
func helper(x) { return x; }
func main() {
  var y = helper(g) + a[0];
  a[1] = y;
  g = y;
  return y;
}
""")
    assert "helper" in info.functions
    assert not info.extern_calls


def test_sema_undeclared_variable():
    with pytest.raises(SemaError):
        check("func f() { return nope; }")


def test_sema_assign_to_const():
    with pytest.raises(SemaError):
        check("const K = 1; func f() { K = 2; return 0; }")


def test_sema_assign_to_const_array():
    with pytest.raises(SemaError):
        check("const array a[4] = {1}; func f() { a[0] = 2; return 0; }")


def test_sema_array_as_value():
    with pytest.raises(SemaError):
        check("array a[4]; func f() { return a; }")


def test_sema_index_unknown_array():
    with pytest.raises(SemaError):
        check("func f() { return b[0]; }")


def test_sema_break_outside_loop():
    with pytest.raises(SemaError):
        check("func f() { break; }")


def test_sema_continue_outside_loop():
    with pytest.raises(SemaError):
        check("func f() { continue; }")


def test_sema_arity_mismatch():
    with pytest.raises(SemaError):
        check("func g(a, b) { return a; } func f() { return g(1); }")


def test_sema_extern_calls_allowed():
    _, info = check("func f() { return other_module_func(1); }")
    assert "other_module_func" in info.extern_calls


def test_sema_duplicate_global():
    with pytest.raises(SemaError):
        check("var g = 1; var g = 2;")


def test_sema_duplicate_function():
    with pytest.raises(SemaError):
        check("func f() { return 0; } func f() { return 1; }")


def test_sema_redeclaration_in_scope():
    with pytest.raises(SemaError):
        check("func f() { var x = 1; var x = 2; return x; }")


def test_sema_shadowing_allowed():
    check("func f() { var x = 1; { var x = 2; } return x; }")


def test_sema_duplicate_param():
    with pytest.raises(SemaError):
        check("func f(a, a) { return a; }")


def test_sema_array_size_power_of_two():
    with pytest.raises(SemaError):
        check("array a[6];")
    check("array a[8];")


def test_sema_catch_var_scoped():
    with pytest.raises(SemaError):
        check("func f() { try { } catch (e) { } return e; }")


# -- reference interpreter ----------------------------------------------------------


def run_bc(text, entry="main", modules_extra=(), inputs=None):
    modules = [parse_module(text, "t")]
    for i, extra in enumerate(modules_extra):
        modules.append(parse_module(extra, f"x{i}"))
    interp = Interpreter(modules)
    if inputs:
        for (mod, name), values in inputs.items():
            interp.set_array(mod, name, values)
    result = interp.run(entry)
    return result, interp.output


def test_interp_arith():
    result, out = run_bc("func main() { out 2 + 3 * 4; return 6 / 4; }")
    assert out == [14] and result == 1


def test_interp_division_semantics():
    _, out = run_bc("func main() { out -7 / 2; out -7 % 2; out 7 % -2; return 0; }")
    assert out == [-3, -1, 1]  # C-style truncation


def test_interp_division_by_zero():
    with pytest.raises(BCError):
        run_bc("func main() { var z = 0; return 1 / z; }")


def test_interp_shifts():
    _, out = run_bc("func main() { out 1 << 4; out -16 >> 2; return 0; }")
    assert out == [16, -4]


def test_interp_wrapping():
    _, out = run_bc(
        "func main() { out 0x7FFFFFFFFFFFFFFF + 0x7FFFFFFFFFFFFFFF + 2; return 0; }")
    assert out == [0]


def test_interp_loops_and_break():
    _, out = run_bc("""
func main() {
  var i = 0;
  var s = 0;
  while (1) {
    i = i + 1;
    if (i % 2 == 0) { continue; }
    if (i > 9) { break; }
    s = s + i;
  }
  out s;
  return 0;
}
""")
    assert out == [1 + 3 + 5 + 7 + 9]


def test_interp_switch_fall_out():
    _, out = run_bc("""
func main() {
  var i = 0;
  while (i < 5) {
    switch (i) {
      case 0: { out 10; }
      case 2: { out 20; }
      default: { out 99; }
    }
    i = i + 1;
  }
  return 0;
}
""")
    assert out == [10, 99, 20, 99, 99]


def test_interp_exceptions_nested():
    _, out = run_bc("""
func deep(x) {
  if (x > 2) { throw x * 10; }
  return x;
}
func mid(x) { return deep(x) + 100; }
func main() {
  try { out mid(1); out mid(5); out 777; }
  catch (e) { out e; }
  return 0;
}
""")
    assert out == [101, 50]


def test_interp_uncaught():
    with pytest.raises(BCError):
        run_bc("func main() { throw 3; }")


def test_interp_function_pointers():
    _, out = run_bc("""
func a(x) { return x + 1; }
func b(x) { return x * 2; }
func main() {
  var f = &a;
  out f(10);
  f = &b;
  out f(10);
  return 0;
}
""")
    assert out == [11, 20]


def test_interp_cross_module_static():
    main = "func main() { out api(1); return 0; }"
    other = """
static func helper(x) { return x + 41; }
func api(x) { return helper(x); }
"""
    _, out = run_bc(main, modules_extra=[other])
    assert out == [42]


def test_interp_array_mask_semantics():
    _, out = run_bc("""
array a[4] = {10, 20, 30, 40};
func main() {
  out a[5];
  out a[-1];
  a[7] = 99;
  out a[3];
  return 0;
}
""")
    assert out == [20, 40, 99]


def test_interp_short_circuit_effects():
    _, out = run_bc("""
var calls = 0;
func tick() { calls = calls + 1; return 1; }
func main() {
  var r = 0 && tick();
  out calls;
  r = 1 || tick();
  out calls;
  r = 1 && tick();
  out calls;
  return 0;
}
""")
    assert out == [0, 0, 1]


@given(a=st.integers(-(2**63), 2**63 - 1), b=st.integers(-(2**63), 2**63 - 1))
def test_prop_interp_wrap_matches_ctypes(a, b):
    """+ - * all wrap like two's-complement 64-bit."""
    import ctypes

    _, out = run_bc(
        f"func main() {{ out ({a}) + ({b}); out ({a}) * ({b}); return 0; }}")
    assert out[0] == ctypes.c_int64(a + b).value
    assert out[1] == ctypes.c_int64(a * b).value


# -- for loops & compound assignment ------------------------------------------


def test_parse_for_loop():
    module = parse("func f() { for (var i = 0; i < 3; i += 1) { out i; } return 0; }")
    loop = module.functions[0].body.stmts[0]
    assert isinstance(loop, ast.For)
    assert isinstance(loop.init, ast.VarDecl)
    assert loop.cond is not None and loop.step is not None


def test_parse_for_empty_parts():
    module = parse("func f() { for (;;) { break; } return 0; }")
    loop = module.functions[0].body.stmts[0]
    assert loop.init is None and loop.cond is None and loop.step is None


def test_compound_assign_desugars():
    module = parse("func f() { var x = 1; x += 2; x <<= 1; return x; }")
    stmt = module.functions[0].body.stmts[1]
    assert isinstance(stmt, ast.Assign)
    assert isinstance(stmt.value, ast.Binary) and stmt.value.op == "+"
    shift = module.functions[0].body.stmts[2]
    assert shift.value.op == "<<"


def test_compound_assign_invalid_target():
    with pytest.raises(ParseError):
        parse("func f() { f() += 1; }")


def test_sema_for_init_scope():
    # The loop variable is not visible after the loop.
    with pytest.raises(SemaError):
        check("func f() { for (var i = 0; i < 3; i += 1) { } return i; }")


def test_interp_for_continue_runs_step():
    _, out = run_bc("""
func main() {
  var s = 0;
  for (var i = 0; i < 6; i += 1) {
    if (i % 2 == 0) { continue; }
    s += i;
  }
  out s;
  return 0;
}
""")
    assert out == [1 + 3 + 5]


def test_interp_compound_on_array():
    _, out = run_bc("""
array a[4] = {1, 2, 3, 4};
func main() {
  a[1] *= 10;
  a[2] += a[1];
  out a[1]; out a[2];
  return 0;
}
""")
    assert out == [20, 23]
