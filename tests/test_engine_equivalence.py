"""Engine equivalence (PR 5): the block-cached engine is bit-exact.

The block engine (``repro.uarch.cpu.BlockCPU``) is a performance
optimization only — every architecturally or microarchitecturally
visible quantity must be *identical* to the preserved per-instruction
reference interpreter (``repro.uarch._reference_cpu.ReferenceCPU``):
counters, cycles, cache/TLB internals, branch-predictor tables, LBR
contents, sample streams (all events, with and without skid/LBR),
fetch-heat maps, program output, exit codes, registers, flags, and
fault messages.

Three layers:

* hypothesis-generated random loop programs x sampler configurations;
* compiled programs exercising ``__throw`` unwinding from inside a
  cached trace;
* self-modifying code: a mid-run store into an executable range must
  invalidate the shared trace cache while replicating the reference
  interpreter's stale per-CPU decode cache.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.belf import Binary, Section, SectionFlag, Symbol, SymbolType
from repro.compiler import build_executable
from repro.isa import (
    CondCode,
    Instruction,
    Op,
    RAX,
    RBX,
    RCX,
    RDX,
    RSI,
    RDI,
    encode,
    instruction_size,
)
from repro.profiling import Sampler, SamplingConfig
from repro.uarch import Machine, MachineFault
from repro.uarch.cpu import CPU, ExecutionLimitExceeded

pytestmark = pytest.mark.perf

BASE = 0x10000
DATA = 0x40000


def I(op, *regs, **kw):
    return Instruction(op, regs, **kw)


def assemble(insns):
    """Resolve label targets and encode a flat instruction list."""
    offsets = {}
    pos = 0
    for item in insns:
        if isinstance(item, str):
            offsets[item] = pos
        else:
            pos += instruction_size(item)
    blob = b""
    pos = 0
    for item in insns:
        if isinstance(item, str):
            continue
        if item.label is not None:
            item.target = BASE + offsets[item.label]
            item.label = None
        blob += encode(item, BASE + pos)
        pos += instruction_size(item)
    return blob


def make_exe(insns):
    code = assemble(list(insns))
    binary = Binary(kind="exec", name="asm")
    binary.add_section(Section(
        ".text", flags=SectionFlag.ALLOC | SectionFlag.EXEC, addr=BASE,
        data=code))
    binary.add_symbol(Symbol("main", value=BASE, size=len(code),
                             type=SymbolType.FUNC, section=".text"))
    binary.entry = BASE
    return binary


#: Sampler configurations from the paper's section 5.1 matrix: every
#: event, skid on/off, LBR on/off.  Small coprime periods so short
#: programs still take plenty of samples.
SAMPLINGS = {
    "none": None,
    "cycles+lbr": SamplingConfig("cycles", period=97, skid=0, use_lbr=True),
    "insns+skid": SamplingConfig("instructions", period=61, skid=3,
                                 use_lbr=False),
    "taken+skid+lbr": SamplingConfig("taken-branches", period=31, skid=1,
                                     use_lbr=True),
}


def _outcome(exe, engine, sampling=None, inputs=None,
             max_instructions=200_000, fetch_heat=False):
    """Run one engine and capture *everything* observable."""
    machine = Machine(exe)
    if inputs:
        for name, values in inputs.items():
            machine.poke_array(name, values)
    sampler = Sampler(sampling) if sampling is not None else None
    cpu = CPU(machine, sampler=sampler, engine=engine)
    if fetch_heat:
        cpu.fetch_heat = {}
    error = None
    try:
        cpu.run(max_instructions)
    except (MachineFault, ExecutionLimitExceeded) as exc:
        error = (type(exc).__name__, str(exc))
    return {
        "error": error,
        "counters": cpu.counters.as_dict(),
        "output": list(cpu.output),
        "exit_code": cpu.exit_code,
        "halted": cpu.halted,
        "pc": cpu.pc,
        "regs": list(cpu.regs),
        "flags": (cpu.flag_a, cpu.flag_b),
        "bp": cpu.bp.state(),
        "lbr": None if cpu.lbr is None else cpu.lbr.state(),
        "samples": None if sampler is None else sampler.state(),
        "caches": {
            name: (unit.accesses, unit.misses)
            for name, unit in (("l1i", cpu.l1i), ("l1d", cpu.l1d),
                               ("llc", cpu.llc), ("itlb", cpu.itlb),
                               ("dtlb", cpu.dtlb))
        },
        "fetch_heat": cpu.fetch_heat,
    }


def assert_engines_match(exe, sampling=None, **kw):
    ref = _outcome(exe, "ref", sampling=sampling, **kw)
    blk = _outcome(exe, "block", sampling=sampling, **kw)
    if ref["counters"] != blk["counters"]:
        diff = {field: (ref["counters"][field], blk["counters"][field])
                for field in ref["counters"]
                if ref["counters"][field] != blk["counters"][field]}
        pytest.fail(f"counters diverged (ref, block): {diff}")
    for key in ref:
        assert blk[key] == ref[key], f"{key} diverged"
    return ref


# ---------------------------------------------------------------------------
# Hypothesis: random loop programs x sampler configurations
# ---------------------------------------------------------------------------

_BODY_REGS = (RAX, RBX, RDX, RDI)

_body_item = st.tuples(
    st.sampled_from(["movi", "addi", "subi", "addr", "cmp_skip",
                     "load", "store", "out", "call"]),
    st.integers(0, len(_BODY_REGS) - 1),
    st.integers(-100, 100),
)


def _build_program(items, loop_n):
    """A counted loop over a random body; always terminates."""
    insns = [
        I(Op.MOV_RI32, RCX, imm=loop_n),
        I(Op.MOV_RI64, RSI, imm=DATA),
        "loop",
    ]
    for k, (kind, which, val) in enumerate(items):
        reg = _BODY_REGS[which]
        other = _BODY_REGS[(which + 1) % len(_BODY_REGS)]
        if kind == "movi":
            insns.append(I(Op.MOV_RI32, reg, imm=val))
        elif kind == "addi":
            insns.append(I(Op.ADD_RI, reg, imm=val))
        elif kind == "subi":
            insns.append(I(Op.SUB_RI, reg, imm=val))
        elif kind == "addr":
            insns.append(I(Op.ADD_RR, reg, other))
        elif kind == "cmp_skip":
            insns.append(I(Op.CMP_RI, reg, imm=val))
            insns.append(I(Op.JCC_SHORT, cc=CondCode.GT,
                           label=f"skip{k}"))
            insns.append(I(Op.ADD_RI, reg, imm=1))
            insns.append(f"skip{k}")
        elif kind == "load":
            insns.append(I(Op.LOAD, reg, RSI, disp=(val % 32) * 8))
        elif kind == "store":
            insns.append(I(Op.STORE, RSI, reg, disp=(val % 32) * 8))
        elif kind == "out":
            insns.append(I(Op.OUT, reg))
        elif kind == "call":
            insns.append(I(Op.CALL, label="sub"))
    insns += [
        I(Op.SUB_RI, RCX, imm=1),
        I(Op.CMP_RI, RCX, imm=0),
        I(Op.JCC_LONG, cc=CondCode.NE, label="loop"),
        I(Op.MOV_RI32, RAX, imm=0),
        I(Op.RET),
        "sub",
        I(Op.ADD_RI, RAX, imm=3),
        I(Op.RET),
    ]
    return make_exe(insns)


@given(st.lists(_body_item, min_size=1, max_size=12),
       st.integers(1, 40),
       st.sampled_from(sorted(SAMPLINGS)))
@settings(deadline=None, max_examples=60)
def test_random_programs_bit_exact(items, loop_n, sampling_name):
    exe = _build_program(items, loop_n)
    assert_engines_match(exe, sampling=SAMPLINGS[sampling_name])


@given(st.lists(_body_item, min_size=1, max_size=8), st.integers(2, 30))
@settings(deadline=None, max_examples=25)
def test_random_programs_fetch_heat(items, loop_n):
    exe = _build_program(items, loop_n)
    assert_engines_match(exe, fetch_heat=True)


@given(st.lists(_body_item, min_size=1, max_size=8),
       st.integers(20, 200))
@settings(deadline=None, max_examples=25)
def test_limit_exceeded_bit_exact(items, budget):
    """Both engines must stop at the same instruction with the same
    message and the same partial state when the budget runs out."""
    exe = _build_program(items, 1_000_000)
    ref = _outcome(exe, "ref", max_instructions=budget)
    blk = _outcome(exe, "block", max_instructions=budget)
    assert ref["error"] is not None
    assert ref["error"][0] == "ExecutionLimitExceeded"
    assert blk == ref


# ---------------------------------------------------------------------------
# Exception unwinding from inside a cached trace
# ---------------------------------------------------------------------------

_THROW_SOURCE = """
func thrower(x) {
  if (x == 3) { throw 333; }
  return x;
}
func middle(x) {
  var local = x * 2;
  return thrower(x) + local;
}
func main() {
  var i = 0;
  var acc = 0;
  while (i < 9) {
    try { acc = acc + middle(i); }
    catch (e) { acc = acc + e; }
    i = i + 1;
  }
  out acc;
  return 0;
}
"""


@pytest.mark.parametrize("sampling_name", sorted(SAMPLINGS))
def test_unwind_inside_cached_trace(sampling_name):
    """The ``__throw`` at i==3 fires after the hot loop traces are
    already cached; the unwinder runs mid-trace on the block engine."""
    exe, _ = build_executable([("t", _THROW_SOURCE)])
    state = assert_engines_match(exe, sampling=SAMPLINGS[sampling_name])
    assert state["error"] is None
    assert state["exit_code"] == 0


def test_uncaught_throw_faults_identically():
    exe, _ = build_executable(
        [("t", "func main() { var i = 0; while (i < 4) { i = i + 1; } "
               "throw 42; }")])
    state = assert_engines_match(exe)
    assert state["error"] is not None
    assert state["error"][0] == "MachineFault"


# ---------------------------------------------------------------------------
# Self-modifying code: write-to-exec-range invalidation
# ---------------------------------------------------------------------------


def _patching_program(patch_word):
    """A loop whose body stores ``patch_word`` over its own tail.

    The patched address has already been fetched before the store, so
    the reference interpreter keeps executing its stale decode; the
    block engine must invalidate its shared traces and replicate that
    staleness exactly.
    """
    insns = [
        I(Op.MOV_RI32, RCX, imm=6),
        I(Op.MOV_RI64, RBX, imm=patch_word),
        "loop",
        "patch",
        I(Op.NOPN, imm=8),                 # 8 bytes of patch target
        I(Op.ADD_RI, RAX, imm=5),
        I(Op.OUT, RAX),
        I(Op.SUB_RI, RCX, imm=1),
        I(Op.CMP_RI, RCX, imm=3),
        I(Op.JCC_SHORT, cc=CondCode.NE, label="skip"),
        # Overwrite the already-executed patch site mid-run.
        I(Op.MOV_RI64, RDX, imm=BASE),
        I(Op.MOV_RI64, RDI, imm=0),        # patch offset, fixed below
        "skip",
        I(Op.CMP_RI, RCX, imm=0),
        I(Op.JCC_LONG, cc=CondCode.NE, label="loop"),
        I(Op.RET),
    ]
    # Compute the patch site address and splice in the actual store.
    offsets = {}
    pos = 0
    for item in insns:
        if isinstance(item, str):
            offsets[item] = pos
        else:
            pos += instruction_size(item)
    patch_addr = BASE + offsets["patch"]
    out = []
    for item in insns:
        if (not isinstance(item, str) and item.op == Op.MOV_RI64
                and item.regs and item.regs[0] == RDI):
            out.append(I(Op.STORE_ABS, RBX, addr=patch_addr))
        elif (not isinstance(item, str) and item.op == Op.MOV_RI64
              and item.regs and item.regs[0] == RDX):
            continue
        else:
            out.append(item)
    return make_exe(out)


@pytest.mark.parametrize("sampling_name", ["none", "cycles+lbr"])
def test_self_modifying_code_invalidates(sampling_name):
    """A store into the executable range mid-run: the engines must stay
    in lockstep both while the stale decode is replayed and afterwards."""
    exe = _patching_program(patch_word=0)   # 0x00... = undecodable bytes
    state = assert_engines_match(exe, sampling=SAMPLINGS[sampling_name])
    # The program runs to completion: the patch site was decoded before
    # the store, and per-CPU decode caches are never invalidated.
    assert state["error"] is None
    assert state["output"] == [5 * (k + 1) for k in range(6)]


def test_code_write_marks_machine_dirty():
    exe = _patching_program(patch_word=0)
    machine = Machine(exe)
    cpu = CPU(machine, engine="block")
    cpu.run(200_000)
    assert machine.code_dirty is True


def test_fresh_decode_after_patch_faults_identically():
    """Jumping to *never-executed* bytes that were overwritten mid-run:
    both engines decode the new (garbage) bytes and fault the same."""
    insns = [
        I(Op.MOV_RI64, RBX, imm=-1),       # 0xFF bytes: invalid opcodes
        I(Op.STORE_ABS, RBX, addr=0),      # placeholder, fixed below
        I(Op.JMP_NEAR, label="patch"),
        "patch",
        I(Op.NOPN, imm=8),
        I(Op.RET),
    ]
    offsets = {}
    pos = 0
    for item in insns:
        if isinstance(item, str):
            offsets[item] = pos
        else:
            pos += instruction_size(item)
    patch_addr = BASE + offsets["patch"]
    fixed = []
    for item in insns:
        if not isinstance(item, str) and item.op == Op.STORE_ABS:
            fixed.append(I(Op.STORE_ABS, RBX, addr=patch_addr))
        else:
            fixed.append(item)
    exe = make_exe(fixed)
    ref = _outcome(exe, "ref")
    blk = _outcome(exe, "block")
    assert ref["error"] is not None
    assert blk == ref


# ---------------------------------------------------------------------------
# Compiled workload spot check (kept small; benchmarks cover the rest)
# ---------------------------------------------------------------------------


def test_compiled_workload_bit_exact():
    from repro.harness import build_workload
    from repro.workloads import make_workload

    built = build_workload(make_workload("compiler", iterations=2))
    assert_engines_match(
        built.exe,
        sampling=SamplingConfig("cycles", period=997, skid=0, use_lbr=True),
        inputs=built.workload.inputs,
        max_instructions=5_000_000)
